//! Cross-crate integration for the audio path: PCM -> SBC -> L2CAP ->
//! slot schedule -> BlueFi DH5 packets -> channel -> BR receiver -> PCM.

use bluefi::apps::audio::{A2dpStreamer, AudioConfig};
use bluefi::apps::l2cap::{parse_l2cap, MediaHeader};
use bluefi::apps::sbc::{SbcCodec, SbcParams};
use bluefi::bt::br::BrDecode;
use bluefi::bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi::sim::channel::{Channel, ChannelConfig};
use bluefi::wifi::channels::{bt_channel_freq_hz, subcarrier_in_channel};
use bluefi::wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi::wifi::ChipModel;
use bluefi::core::rng::{SeedableRng, StdRng};

#[test]
fn one_audio_packet_roundtrips_to_sbc_frames() {
    let cfg = AudioConfig::default();
    let mut streamer = A2dpStreamer::new(cfg.clone());
    let pcm: Vec<f64> = (0..128 * 2)
        .map(|i| (2.0 * std::f64::consts::PI * 440.0 * i as f64 / 44_100.0).sin() * 0.4)
        .collect();
    let media = streamer.media_packets(&pcm);
    assert_eq!(media.len(), 2);
    let sched = streamer.schedule(&media[..1], 0);
    assert_eq!(sched.len(), 1, "one media packet fits one DH5");
    let p = &sched[0];

    // Through the air at close range.
    let chip = ChipModel::rtl8811au();
    let ppdu = chip.transmit_with_seed(&p.synthesis.psdu, p.synthesis.mcs, 18.0, 71);
    let channel = Channel::new(ChannelConfig::office(0.5));
    let mut rng = StdRng::seed_from_u64(0xAA);
    let sc = subcarrier_in_channel(bt_channel_freq_hz(p.bt_channel), cfg.wifi_channel);
    let rx = GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: sc * SUBCARRIER_SPACING_HZ,
        ..Default::default()
    });
    let out = rx.receive_br(&channel.apply(&ppdu.iq, &mut rng), cfg.addr.lap, cfg.addr.uap, p.clk6_1);

    match out.decode {
        Some(BrDecode::Ok { payload, .. }) if payload == p.payload => {
            // Unwrap L2CAP -> RTP -> SBC -> PCM.
            let (cid, media_pkt) = parse_l2cap(&payload).expect("l2cap");
            assert_eq!(cid, bluefi::apps::l2cap::A2DP_STREAM_CID);
            let (hdr, sbc) = MediaHeader::parse(media_pkt).expect("media header");
            assert_eq!(hdr.n_frames, 1);
            let mut codec = SbcCodec::new(SbcParams::default());
            let decoded = codec.decode_frame(sbc).expect("sbc frame");
            assert_eq!(decoded.len(), 128);
        }
        other => {
            // The simulated receiver has a residual BER; CRC errors are an
            // acceptable outcome, silence is not.
            assert!(
                matches!(other, Some(BrDecode::CrcError { .. }) | Some(BrDecode::Ok { .. })),
                "decode outcome {other:?}"
            );
        }
    }
}

#[test]
fn scheduler_honours_hopping_and_afh() {
    let cfg = AudioConfig::default();
    let streamer = A2dpStreamer::new(cfg.clone());
    let frames: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 150]).collect();
    let sched = streamer.schedule(&frames, 2_000);
    assert_eq!(sched.len(), 6);
    let map = bluefi::bt::hopping::ChannelMap::from_channels(
        bluefi::wifi::channels::usable_bt_channels_in_wifi(cfg.wifi_channel),
    );
    let hop = bluefi::bt::hopping::HopSelector::new(cfg.addr.lap, cfg.addr.uap);
    for p in &sched {
        // The scheduled slot's hop must actually land on the packet's channel.
        let clk = bluefi::bt::hopping::SlotClock::at_slot(p.slot);
        assert_eq!(hop.channel(clk.clk, &map), p.bt_channel, "slot {}", p.slot);
        // And the whitening clock must match the slot.
        assert_eq!(p.clk6_1, clk.clk6_1());
    }
}
