//! Future-work extension (paper Sec 5.3): EDR modulation over BlueFi.
//! π/4-DQPSK and 8DPSK are constant-envelope phase modulations, so they
//! ride the synthesis pipeline unchanged — 2-3x the bit rate per slot.

use bluefi::bt::edr::{edr_demodulate, edr_modulate_phase, EdrScheme};
use bluefi::bt::gfsk::GfskParams;
use bluefi::bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi::core::pipeline::BlueFi;
use bluefi::core::qam::Quantizer;
use bluefi::core::reversal::{coded_stream, extract_psdu, reverse_fec};
use bluefi::wifi::channels::ChannelPlan;
use bluefi::wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi::wifi::ChipModel;

fn pattern(n: usize, k: usize) -> Vec<bool> {
    (0..n).map(|i| (i * k + 1) % 5 < 2).collect()
}

fn edr_over_bluefi(scheme: EdrScheme) -> f64 {
    let p = GfskParams::default();
    let bits = pattern(scheme.bits_per_symbol() * 60, 5);
    let offset_hz = ChannelPlan::pinned(3, 13.0).subcarrier * SUBCARRIER_SPACING_HZ;
    let phase = edr_modulate_phase(&bits, scheme, &p, offset_hz);

    // The pipeline's stages are phase-generic: run them on the DPSK phase.
    let bf = BlueFi::default();
    let theta = bf.cp.make_compatible(&phase, offset_hz / p.sample_rate_hz);
    let bodies = bf.cp.strip_cp(&theta);
    let quant = Quantizer::new(bluefi::wifi::Modulation::Qam64, bf.scale);
    let symbols: Vec<_> = bodies.iter().map(|b| quant.quantize_body(b)).collect();
    let (coded, weights) = coded_stream(&symbols, bf.strategy.mcs(), 13.0, &bf.weights);
    let mut rev = reverse_fec(&coded, &weights, bf.strategy, 13.0);
    let (psdu, _) = extract_psdu(&mut rev.scrambled, 71);
    let ppdu = ChipModel::ar9331().transmit_with_seed(&psdu, bf.strategy.mcs(), 18.0, 71);

    // Differential receiver over the filtered baseband.
    let rx = GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: offset_hz,
        filter_halfwidth_hz: 750e3,
        ..Default::default()
    });
    let demod = rx.demodulate(&ppdu.iq);
    let nominal = 720 + p.guard_bits * p.sps();
    let n_sym = bits.len() / scheme.bits_per_symbol();
    let mut best = usize::MAX;
    for start in nominal.saturating_sub(10)..nominal + 10 {
        let got = edr_demodulate(&demod.filtered, scheme, p.sps(), start, n_sym);
        let errs = got.iter().zip(&bits).filter(|(a, b)| a != b).count();
        best = best.min(errs);
    }
    best as f64 / bits.len() as f64
}

#[test]
fn dqpsk2_payload_survives_the_pipeline() {
    let ber = edr_over_bluefi(EdrScheme::Dqpsk2);
    assert!(ber < 0.05, "π/4-DQPSK over BlueFi BER {ber}");
}

#[test]
fn dpsk8_payload_survives_the_pipeline() {
    let ber = edr_over_bluefi(EdrScheme::Dpsk8);
    assert!(ber < 0.08, "8DPSK over BlueFi BER {ber}");
}
