//! Cross-crate integration: Bluetooth payload -> BlueFi synthesis -> real
//! 802.11n TX chain -> radio channel -> unmodified Bluetooth receiver.

use bluefi::apps::beacon::{build_beacon, BeaconConfig, BeaconFormat};
use bluefi::bt::ble::adv_air_bits;
use bluefi::core::pipeline::BlueFi;
use bluefi::core::verify::{loopback_ble, loopback_ble_bit_errors};
use bluefi::sim::devices::DeviceModel;
use bluefi::sim::experiments::{run_beacon_session, SessionConfig, TxKind};
use bluefi::wifi::ChipModel;

#[test]
fn ibeacon_survives_the_full_stack_loopback() {
    // The simulated receiver keeps a small residual BER on BlueFi
    // waveforms (real silicon is cleaner; see EXPERIMENTS.md), so the
    // deterministic loopback asserts synchronization on every payload and a
    // tight aggregate BER rather than per-packet CRC success.
    let bf = BlueFi::default();
    let mut errs = 0usize;
    let mut bits = 0usize;
    for minor in 0..6u16 {
        let cfg = BeaconConfig {
            format: BeaconFormat::IBeacon {
                uuid: [0xB1; 16],
                major: 1,
                minor,
                measured_power: -59,
            },
            channels: vec![38],
            ..Default::default()
        };
        let packets = build_beacon(&cfg, &bf, 1).expect("valid channels");
        assert!(!packets.per_channel.is_empty());
        for (ch, syn) in &packets.per_channel {
            let out = loopback_ble(syn, &ChipModel::ar9331(), *ch);
            assert!(out.rssi_dbm.is_some(), "channel {ch}: no sync");
            let air = adv_air_bits(&cfg.format.to_pdu(cfg.adv_address), *ch);
            let (e, n) = loopback_ble_bit_errors(&syn, &ChipModel::ar9331(), &air)
                .expect("synchronized");
            errs += e;
            bits += n;
        }
    }
    let ber = errs as f64 / bits as f64;
    assert!(ber < 0.015, "aggregate beacon BER {ber}");
}

#[test]
fn beacon_session_through_noisy_channel_yields_reports() {
    let mut s = SessionConfig::office(DeviceModel::pixel(), 2.0);
    s.duration_s = 8.0;
    let kind = TxKind::BlueFi { chip: ChipModel::rtl8811au(), tx_dbm: 18.0 };
    let trace = run_beacon_session(&kind, &s, 0xE2E);
    assert!(trace.len() >= 4, "only {} reports", trace.len());
    // Sanity: reported RSSI near the link budget (18 dBm - ~52 dB).
    for r in &trace {
        assert!(r.rssi_dbm < -10.0 && r.rssi_dbm > -80.0, "rssi {}", r.rssi_dbm);
    }
}

#[test]
fn seed_prediction_keeps_incrementing_chips_decodable() {
    // Atheros stock driver increments the scrambler seed per packet; the
    // synthesizer predicts it and every packet still decodes.
    let mut chip = ChipModel::ar9331_stock();
    let cfg = BeaconConfig {
        format: BeaconFormat::AltBeacon {
            mfg_id: 0x0118,
            beacon_id: [3; 20],
            reference_rssi: -60,
        },
        ..Default::default()
    };
    let bf = BlueFi::default();
    let mut ok = 0;
    let mut synced = 0;
    for pkt in 0..6 {
        let seed = chip.seed_policy.predict(0);
        let packets = build_beacon(&cfg, &bf, seed).expect("valid channels");
        let (ch, syn) = &packets.per_channel[0];
        // The chip consumes a seed for this transmission.
        let ppdu = chip.transmit(&syn.psdu, syn.mcs, 18.0);
        assert_eq!(ppdu.seed, seed, "packet {pkt}: seed prediction diverged");
        let rx = bluefi::core::verify::tuned_receiver(syn);
        let out = rx.receive_ble_adv(&ppdu.iq, *ch);
        if out.rssi_dbm.is_some() {
            synced += 1;
        }
        if out.ok() {
            ok += 1;
        }
    }
    let _ = ok;
    assert_eq!(synced, 6, "every seed's packet must synchronize");
}
