//! Tier-1 conformance smoke: every `cargo test -q` run exercises all
//! three layers of the conformance subsystem — committed golden fixtures,
//! the differential execution-path matrix, and a budgeted fuzz soak.

use bluefi_conformance::golden::{check_all, default_dir};
use bluefi_conformance::{run_fuzz, run_matrix};

#[test]
fn golden_fixtures_have_not_drifted() {
    let report = check_all(&default_dir()).expect("fixtures readable — run `cargo run -p bluefi-conformance -- regen` after an intentional change");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn execution_paths_agree_bit_for_bit() {
    let report = run_matrix().expect("matrix runs");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn hundred_iteration_fuzz_budget_is_clean() {
    let report = run_fuzz(1, 100);
    assert_eq!(report.iters, 100);
    assert!(report.is_clean(), "{}", report.render());
}
