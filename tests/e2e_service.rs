//! End-to-end harness for the `bluefi-service` daemon: a concurrent soak
//! (hundreds of mock-backend clients, zero lost or duplicated responses,
//! bounded queue depth) plus protocol fault injection — malformed JSON,
//! oversized and truncated frames, half-closed sockets, slow readers,
//! disconnect-mid-request — each mapped to its pinned JSON-RPC error code
//! or a counted shed, never a hang.

use bluefi_core::json::Json;
use bluefi_core::BatchJob;
use bluefi_service::backend::ServiceBackend;
use bluefi_service::proto::{self, write_frame, FrameEvent, FrameReader};
use bluefi_service::{
    ClientError, MockBackend, Server, ServerState, ServiceClient, ServiceConfig,
};
use bluefi_wifi::channels::{bt_channel_freq_hz, plan_channel};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bluefi-e2e-{}-{tag}.sock", std::process::id()))
}

fn mock_server(tag: &str, cfg: ServiceConfig) -> Server {
    Server::spawn(sock_path(tag), Arc::new(MockBackend::new()), cfg).expect("spawn server")
}

fn test_bits(client: usize, req: usize) -> Vec<bool> {
    (0..96).map(|i| (i * 31 + client * 7 + req * 13) % 5 < 2).collect()
}

/// The locally computed mock response for a job — what the wire must echo.
fn expected_psdu_hex(bits: &[bool], bt_channel: u8, seed: u8) -> String {
    let plan = plan_channel(bt_channel_freq_hz(bt_channel)).expect("plannable channel");
    let syn = MockBackend::new().synthesize(&BatchJob { bits: bits.to_vec(), plan, seed });
    proto::hex_encode(&syn.psdu)
}

/// Reads one response frame from a raw socket, with a hang guard.
fn read_one_frame(stream: &mut UnixStream) -> Option<Json> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut fr = FrameReader::new(proto::DEFAULT_MAX_FRAME);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match fr.poll(stream).expect("poll") {
            FrameEvent::Frame(payload) => {
                let text = std::str::from_utf8(&payload).expect("utf8");
                return Some(Json::parse(text).expect("response json"));
            }
            FrameEvent::Eof | FrameEvent::TruncatedEof => return None,
            FrameEvent::WouldBlock => {
                assert!(Instant::now() < deadline, "no response within 10 s");
            }
            other => panic!("unexpected frame event {other:?}"),
        }
    }
}

fn error_code(resp: &Json) -> Option<i64> {
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_f64)
        .map(|c| c as i64)
}

// -- Soak ------------------------------------------------------------------

/// The headline soak: 200 concurrent clients, several requests each, all
/// against one daemon. Every response must arrive (none lost), match its
/// request id (none duplicated or cross-wired), and carry the exact bytes
/// the mock backend computes for that job (no payload mixups). The queue
/// high-water mark must respect the configured bound.
#[test]
fn soak_200_concurrent_clients_zero_lost_zero_duplicated() {
    const CLIENTS: usize = 200;
    const REQS: usize = 5;
    let cfg = ServiceConfig { workers: 4, queue_depth: 512, ..ServiceConfig::default() };
    let queue_bound = cfg.queue_depth;
    let server = mock_server("soak", cfg);
    let path = server.socket_path().to_path_buf();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || -> Result<usize, String> {
                let mut client = ServiceClient::connect(&path).map_err(|e| e.to_string())?;
                client.set_timeout(Duration::from_secs(20)).map_err(|e| e.to_string())?;
                let mut got = 0;
                for r in 0..REQS {
                    let bits = test_bits(c, r);
                    // The standard conformance grid's channels — all
                    // plannable in every chip's WiFi band.
                    let bt_channel = [10u8, 24, 50][c % 3];
                    let seed = (r % 128) as u8;
                    let result = client
                        .synthesize(&bits, bt_channel, seed)
                        .map_err(|e| format!("client {c} req {r}: {e}"))?;
                    let psdu = result.get("psdu").and_then(Json::as_str).unwrap_or("");
                    let want = expected_psdu_hex(&bits, bt_channel, seed);
                    if psdu != want {
                        return Err(format!("client {c} req {r}: psdu mismatch"));
                    }
                    got += 1;
                }
                Ok(got)
            })
        })
        .collect();

    let mut delivered = 0;
    for w in workers {
        delivered += w.join().expect("client thread").expect("soak client");
    }
    assert_eq!(delivered, CLIENTS * REQS, "every request answered exactly once");

    let stats = server.stats();
    assert_eq!(stats.ok(), (CLIENTS * REQS) as u64, "all successes server-side");
    assert_eq!(stats.shed(), 0, "queue bound generous enough to avoid shed");
    assert_eq!(stats.accepted(), CLIENTS as u64);
    assert!(
        stats.queue_highwater() <= queue_bound as u64,
        "queue depth {} exceeded bound {queue_bound}",
        stats.queue_highwater()
    );
    let stopped = server.shutdown();
    assert_eq!(stopped.stats().requests(), (CLIENTS * REQS) as u64);
}

/// A saturating burst against a tiny queue: every request is answered
/// (success or pinned overload), the shed counter reconciles exactly with
/// the -32000 responses observed client-side, and nothing hangs.
#[test]
fn load_shed_is_pinned_and_counted() {
    let cfg = ServiceConfig { workers: 1, queue_depth: 2, ..ServiceConfig::default() };
    let server = Server::spawn(
        sock_path("shed"),
        Arc::new(MockBackend::with_delay(Duration::from_millis(40))),
        cfg,
    )
    .expect("spawn server");
    let path = server.socket_path().to_path_buf();

    const BURST: usize = 16;
    let workers: Vec<_> = (0..BURST)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || -> Result<bool, String> {
                let mut client = ServiceClient::connect(&path).map_err(|e| e.to_string())?;
                client.set_timeout(Duration::from_secs(20)).map_err(|e| e.to_string())?;
                match client.synthesize(&test_bits(c, 0), 24, 7) {
                    Ok(_) => Ok(false),
                    Err(ClientError::Rpc { code: -32000, .. }) => Ok(true),
                    Err(e) => Err(format!("client {c}: unexpected {e}")),
                }
            })
        })
        .collect();

    let mut sheds = 0u64;
    let mut oks = 0u64;
    for w in workers {
        if w.join().expect("thread").expect("burst client") {
            sheds += 1;
        } else {
            oks += 1;
        }
    }
    assert_eq!(oks + sheds, BURST as u64, "every burst request answered");
    assert!(sheds > 0, "a 1-worker 40 ms backend behind a depth-2 queue must shed");
    let stats = server.stats();
    assert_eq!(stats.shed(), sheds, "server shed count reconciles with -32000 responses");
    assert_eq!(stats.ok(), oks);
    server.shutdown();
}

/// A deadline shorter than the backend's service time yields the pinned
/// -32002 within (roughly) the deadline, not after the backend finishes.
#[test]
fn deadline_exceeded_is_pinned() {
    let cfg = ServiceConfig { workers: 1, queue_depth: 8, ..ServiceConfig::default() };
    let server = Server::spawn(
        sock_path("deadline"),
        Arc::new(MockBackend::with_delay(Duration::from_millis(500))),
        cfg,
    )
    .expect("spawn server");
    let mut client = ServiceClient::connect(server.socket_path()).expect("connect");
    client.set_timeout(Duration::from_secs(10)).expect("timeout");

    let bits = test_bits(0, 0);
    let params = Json::obj(vec![
        ("bits", Json::Str(proto::hex_encode(&proto::pack_bits(&bits)))),
        ("n_bits", Json::Num(bits.len() as f64)),
        ("bt_channel", Json::Num(24.0)),
        ("seed", Json::Num(7.0)),
        ("deadline_ms", Json::Num(50.0)),
    ]);
    let t0 = Instant::now();
    match client.call("synthesize", params) {
        Err(ClientError::Rpc { code, .. }) => assert_eq!(code, -32002),
        other => panic!("expected deadline error, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(400),
        "deadline response must not wait out the backend"
    );
    assert_eq!(server.stats().deadline_exceeded(), 1);
    server.shutdown();
}

// -- Protocol fault injection ----------------------------------------------

/// Malformed JSON maps to -32700 with a null id — and the connection
/// survives to serve a well-formed request afterwards.
#[test]
fn malformed_json_yields_parse_error_and_connection_survives() {
    let server = mock_server("badjson", ServiceConfig::default());
    let mut stream = UnixStream::connect(server.socket_path()).expect("connect");

    write_frame(&mut stream, b"this is not json {").expect("write");
    let resp = read_one_frame(&mut stream).expect("a response");
    assert_eq!(error_code(&resp), Some(-32700));
    assert_eq!(resp.get("id"), Some(&Json::Null), "unknowable id is null");

    // Same connection, now a valid request: the daemon resynchronized.
    write_frame(
        &mut stream,
        br#"{"jsonrpc":"2.0","id":5,"method":"stats"}"#,
    )
    .expect("write");
    let resp = read_one_frame(&mut stream).expect("a response");
    assert_eq!(resp.get("id").and_then(Json::as_f64), Some(5.0));
    assert!(resp.get("result").is_some(), "stats succeeds after the parse error");
    assert_eq!(server.stats().parse_errors(), 1);
    server.shutdown();
}

/// Envelope and parameter violations map to their pinned codes.
#[test]
fn invalid_request_method_and_params_are_pinned() {
    let server = mock_server("invalid", ServiceConfig::default());
    let mut stream = UnixStream::connect(server.socket_path()).expect("connect");

    // Missing jsonrpc version → -32600, echoing the id.
    write_frame(&mut stream, br#"{"id":1,"method":"stats"}"#).expect("write");
    let resp = read_one_frame(&mut stream).expect("resp");
    assert_eq!(error_code(&resp), Some(-32600));
    assert_eq!(resp.get("id").and_then(Json::as_f64), Some(1.0));

    // Unknown method → -32601.
    write_frame(&mut stream, br#"{"jsonrpc":"2.0","id":2,"method":"nonsuch"}"#)
        .expect("write");
    assert_eq!(error_code(&read_one_frame(&mut stream).expect("resp")), Some(-32601));

    // Parameter violations → -32602, one per class.
    for params in [
        r#"{}"#,                                                              // everything missing
        r#"{"bits":"ff","n_bits":8,"bt_channel":24,"seed":200}"#,             // seed range
        r#"{"bits":"ff","n_bits":8,"bt_channel":90,"seed":7}"#,               // channel range
        r#"{"bits":"zz","n_bits":8,"bt_channel":24,"seed":7}"#,               // bad hex
        r#"{"bits":"ff","n_bits":64,"bt_channel":24,"seed":7}"#,              // bits short
    ] {
        let req = format!(
            r#"{{"jsonrpc":"2.0","id":3,"method":"synthesize","params":{params}}}"#
        );
        write_frame(&mut stream, req.as_bytes()).expect("write");
        let resp = read_one_frame(&mut stream).expect("resp");
        assert_eq!(error_code(&resp), Some(-32602), "params {params}");
    }
    server.shutdown();
}

/// A declared frame length beyond the cap maps to -32003, then the
/// connection closes (the stream cannot be resynchronized).
#[test]
fn oversized_frame_yields_frame_too_large_then_close() {
    let cfg = ServiceConfig { max_frame_bytes: 4096, ..ServiceConfig::default() };
    let server = mock_server("oversize", cfg);
    let mut stream = UnixStream::connect(server.socket_path()).expect("connect");

    stream.write_all(&(1u32 << 20).to_be_bytes()).expect("oversized prefix");
    let resp = read_one_frame(&mut stream).expect("error response");
    assert_eq!(error_code(&resp), Some(-32003));
    assert!(read_one_frame(&mut stream).is_none(), "connection closed after -32003");
    assert_eq!(server.stats().oversized(), 1);
    server.shutdown();
}

/// A frame cut off mid-body counts as truncated and closes the
/// connection; the daemon keeps serving others.
#[test]
fn truncated_frame_is_counted_and_closes() {
    let server = mock_server("truncated", ServiceConfig::default());
    {
        let mut stream = UnixStream::connect(server.socket_path()).expect("connect");
        stream.write_all(&100u32.to_be_bytes()).expect("prefix");
        stream.write_all(b"only ten b").expect("partial body");
        // Close both halves mid-frame.
    }
    // The count lands asynchronously once the server's reader sees EOF.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().truncated() == 0 {
        assert!(Instant::now() < deadline, "truncation never counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Daemon is still healthy.
    let mut client = ServiceClient::connect(server.socket_path()).expect("connect");
    client.set_timeout(Duration::from_secs(10)).expect("timeout");
    assert!(client.synthesize(&test_bits(1, 1), 24, 7).is_ok());
    server.shutdown();
}

/// A client that half-closes (shuts down its write side) after sending
/// still receives its response.
#[test]
fn half_closed_socket_still_gets_its_response() {
    let server = mock_server("halfclose", ServiceConfig::default());
    let mut stream = UnixStream::connect(server.socket_path()).expect("connect");

    let bits = test_bits(3, 3);
    let req = Json::obj(vec![
        ("jsonrpc", Json::Str("2.0".to_string())),
        ("id", Json::Num(9.0)),
        ("method", Json::Str("synthesize".to_string())),
        (
            "params",
            Json::obj(vec![
                ("bits", Json::Str(proto::hex_encode(&proto::pack_bits(&bits)))),
                ("n_bits", Json::Num(bits.len() as f64)),
                ("bt_channel", Json::Num(24.0)),
                ("seed", Json::Num(9.0)),
            ]),
        ),
    ]);
    write_frame(&mut stream, req.render().as_bytes()).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");

    let resp = read_one_frame(&mut stream).expect("response crosses the half-close");
    assert_eq!(resp.get("id").and_then(Json::as_f64), Some(9.0));
    let psdu = resp
        .get("result")
        .and_then(|r| r.get("psdu"))
        .and_then(Json::as_str)
        .expect("psdu");
    assert_eq!(psdu, expected_psdu_hex(&bits, 24, 9));
    assert!(read_one_frame(&mut stream).is_none(), "then EOF");
    server.shutdown();
}

/// A slow reader (pipelines many requests, dawdles over the responses)
/// neither loses responses nor wedges the daemon for other clients.
#[test]
fn slow_reader_gets_everything_and_blocks_nobody() {
    let server = mock_server("slowreader", ServiceConfig::default());
    let path = server.socket_path().to_path_buf();

    // The slow reader: fire 20 pipelined requests, then read at a crawl.
    let mut slow = UnixStream::connect(&path).expect("connect");
    const PIPELINED: usize = 20;
    for i in 0..PIPELINED {
        let req = format!(
            r#"{{"jsonrpc":"2.0","id":{i},"method":"stats","params":null}}"#
        );
        write_frame(&mut slow, req.as_bytes()).expect("write");
    }

    // Meanwhile a normal client must get served promptly.
    let t0 = Instant::now();
    let mut quick = ServiceClient::connect(&path).expect("connect");
    quick.set_timeout(Duration::from_secs(10)).expect("timeout");
    assert!(quick.synthesize(&test_bits(2, 2), 24, 7).is_ok());
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "fast client served while the slow reader dawdles"
    );

    // Now crawl through the pipelined responses: all 20, in order.
    for want in 0..PIPELINED {
        std::thread::sleep(Duration::from_millis(10));
        let resp = read_one_frame(&mut slow).expect("pipelined response");
        assert_eq!(
            resp.get("id").and_then(Json::as_f64),
            Some(want as f64),
            "responses arrive in request order"
        );
    }
    server.shutdown();
}

/// Clients vanishing mid-request (connection dropped while the job is
/// queued or executing) must not panic, leak, or poison the daemon.
#[test]
fn disconnect_mid_request_is_harmless() {
    let cfg = ServiceConfig { workers: 1, queue_depth: 64, ..ServiceConfig::default() };
    let server = Server::spawn(
        sock_path("vanish"),
        Arc::new(MockBackend::with_delay(Duration::from_millis(30))),
        cfg,
    )
    .expect("spawn server");
    let path = server.socket_path().to_path_buf();

    for c in 0..10 {
        let mut stream = UnixStream::connect(&path).expect("connect");
        let bits = test_bits(c, 0);
        let req = format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"synthesize","params":{{"bits":"{}","n_bits":{},"bt_channel":24,"seed":7}}}}"#,
            proto::hex_encode(&proto::pack_bits(&bits)),
            bits.len()
        );
        write_frame(&mut stream, req.as_bytes()).expect("write");
        drop(stream); // vanish with the job in flight
    }

    // The daemon digests the mess and still serves.
    let mut client = ServiceClient::connect(&path).expect("connect");
    client.set_timeout(Duration::from_secs(20)).expect("timeout");
    let result = client.synthesize(&test_bits(99, 99), 24, 7).expect("daemon healthy");
    assert!(result.get("psdu").is_some());
    assert_eq!(server.state(), ServerState::Running);
    server.shutdown();
}

// -- Sessions & drain ------------------------------------------------------

/// Sessions carry defaults; closing one invalidates its id (-32004).
#[test]
fn sessions_supply_defaults_and_close_cleanly() {
    let server = mock_server("sessions", ServiceConfig::default());
    let mut client = ServiceClient::connect(server.socket_path()).expect("connect");
    client.set_timeout(Duration::from_secs(10)).expect("timeout");

    let opened = client
        .call(
            "session_open",
            Json::obj(vec![("seed", Json::Num(9.0)), ("bt_channel", Json::Num(10.0))]),
        )
        .expect("open");
    let sid = opened.get("session").and_then(Json::as_f64).expect("session id");
    assert_eq!(server.stats().active_sessions(), 1);

    // A job naming only the session inherits its seed and channel.
    let bits = test_bits(4, 4);
    let result = client
        .call(
            "synthesize",
            Json::obj(vec![
                ("bits", Json::Str(proto::hex_encode(&proto::pack_bits(&bits)))),
                ("n_bits", Json::Num(bits.len() as f64)),
                ("session", Json::Num(sid)),
            ]),
        )
        .expect("session synthesize");
    assert_eq!(result.get("seed").and_then(Json::as_f64), Some(9.0));
    assert_eq!(
        result.get("psdu").and_then(Json::as_str),
        Some(expected_psdu_hex(&bits, 10, 9).as_str())
    );

    let closed = client
        .call("session_close", Json::obj(vec![("session", Json::Num(sid))]))
        .expect("close");
    assert_eq!(closed.get("requests").and_then(Json::as_f64), Some(1.0));
    assert_eq!(server.stats().active_sessions(), 0);

    // The dead session id is now pinned -32004.
    match client.call(
        "synthesize",
        Json::obj(vec![
            ("bits", Json::Str("ff".to_string())),
            ("n_bits", Json::Num(8.0)),
            ("session", Json::Num(sid)),
        ]),
    ) {
        Err(ClientError::Rpc { code, .. }) => assert_eq!(code, -32004),
        other => panic!("expected unknown-session, got {other:?}"),
    }
    server.shutdown();
}

/// Graceful drain: in-flight work finishes, new work is rejected with
/// -32001, new connections are refused, and the daemon reaches Stopped.
#[test]
fn drain_finishes_in_flight_and_rejects_new_work() {
    let cfg = ServiceConfig { workers: 1, queue_depth: 8, ..ServiceConfig::default() };
    let server = Server::spawn(
        sock_path("drain"),
        Arc::new(MockBackend::with_delay(Duration::from_millis(150))),
        cfg,
    )
    .expect("spawn server");
    let path = server.socket_path().to_path_buf();

    // Client A: a request that will be mid-flight when the drain lands.
    let in_flight = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut a = ServiceClient::connect(&path).expect("connect A");
            a.set_timeout(Duration::from_secs(20)).expect("timeout");
            a.synthesize(&test_bits(0, 0), 24, 7)
        })
    };
    std::thread::sleep(Duration::from_millis(40)); // let A's job start

    // Client B initiates the drain.
    let mut b = ServiceClient::connect(&path).expect("connect B");
    b.set_timeout(Duration::from_secs(10)).expect("timeout");
    let drained = b.drain().expect("drain accepted");
    assert_eq!(drained.get("draining"), Some(&Json::Bool(true)));

    // A's in-flight job still completes.
    let a_result = in_flight.join().expect("thread").expect("in-flight finished");
    assert!(a_result.get("psdu").is_some());

    // New work on the existing connection: pinned shutting-down.
    match b.synthesize(&test_bits(1, 0), 24, 7) {
        Err(ClientError::Rpc { code, .. }) => assert_eq!(code, -32001),
        other => panic!("expected shutting-down, got {other:?}"),
    }

    // New connections are refused once the listener is gone.
    let refused = Instant::now() + Duration::from_secs(5);
    loop {
        if UnixStream::connect(&path).is_err() {
            break;
        }
        assert!(Instant::now() < refused, "listener never went away");
        std::thread::sleep(Duration::from_millis(10));
    }

    let stopped = server.shutdown();
    assert!(stopped.stats().ok() >= 1, "the drained daemon finished real work");
}

/// The `stats` endpoint reflects backend identity and server state, and
/// `reset: true` drains the process-wide telemetry section exactly once.
#[test]
fn stats_endpoint_reports_state_and_backend() {
    let server = mock_server("stats", ServiceConfig::default());
    let mut client = ServiceClient::connect(server.socket_path()).expect("connect");
    client.set_timeout(Duration::from_secs(10)).expect("timeout");

    client.synthesize(&test_bits(0, 0), 24, 7).expect("one job");
    let stats = client.stats(false).expect("stats");
    assert_eq!(stats.get("backend").and_then(Json::as_str), Some("mock"));
    assert_eq!(stats.get("state").and_then(Json::as_str), Some("running"));
    let service = stats.get("service").expect("service section");
    assert_eq!(service.get("ok").and_then(Json::as_f64), Some(1.0));
    assert!(stats.get("telemetry").and_then(|t| t.get("counters")).is_some());
    server.shutdown();
}
