//! Failure injection across the stack: noise sweeps degrade PER
//! gracefully, wrong seeds and truncation fail loudly rather than wrongly.

use bluefi::bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi::core::pipeline::BlueFi;
use bluefi::core::verify::{transmit, tuned_receiver};
use bluefi::sim::channel::{Channel, ChannelConfig};
use bluefi::wifi::ChipModel;
use bluefi::core::rng::{SeedableRng, StdRng};

fn pdu() -> AdvPdu {
    AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [9, 9, 9, 9, 9, 9],
        adv_data: (0..16).collect(),
        tx_add: false,
    }
}

#[test]
fn sync_rate_degrades_monotonically_with_noise() {
    let bits = adv_air_bits(&pdu(), 38);
    let syn = BlueFi::default().synthesize(&bits, 2.426e9, 1).unwrap();
    let ppdu = transmit(&syn, &ChipModel::ar9331(), 18.0);
    let rx = tuned_receiver(&syn);
    // 24 trials per point with a fixed per-point seed: enough statistics
    // that the middle point's sync rate is stable, and fully reproducible.
    const TRIALS: usize = 24;
    let mut rates = Vec::new();
    for (point, noise_dbm) in [-90.0, -40.0, -15.0].into_iter().enumerate() {
        let ch = Channel::new(ChannelConfig {
            distance_m: 1.5,
            noise_floor_dbm: noise_dbm,
            shadowing_sigma_db: 0.0,
            interference: None,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1000 + point as u64);
        let got = (0..TRIALS)
            .filter(|_| rx.receive_ble_adv(&ch.apply(&ppdu.iq, &mut rng), 38).rssi_dbm.is_some())
            .count();
        rates.push(got);
    }
    // Non-strict monotonicity with a small tolerance: at a finite trial
    // count the middle point may wobble by a trial or two, but the trend
    // must hold and the endpoints are deterministic.
    const TOLERANCE: usize = 2;
    assert!(
        rates[0] + TOLERANCE >= rates[1] && rates[1] + TOLERANCE >= rates[2],
        "sync rate must not increase with noise (tolerance {TOLERANCE}): {rates:?}"
    );
    assert_eq!(rates[0], TRIALS, "clean channel must always sync");
    assert_eq!(rates[2], 0, "noise above the signal must kill sync");
}

#[test]
fn truncated_psdu_does_not_decode() {
    let bits = adv_air_bits(&pdu(), 38);
    let syn = BlueFi::default().synthesize(&bits, 2.426e9, 1).unwrap();
    let chip = ChipModel::ar9331();
    // Drop the second half of the PSDU: the Bluetooth packet's tail (CRC)
    // is gone, so the decode must not produce a valid packet.
    let truncated = &syn.psdu[..syn.psdu.len() / 2];
    let ppdu = chip.transmit_with_seed(truncated, syn.mcs, 18.0, 1);
    let rx = tuned_receiver(&syn);
    assert!(!rx.receive_ble_adv(&ppdu.iq, 38).ok());
}

#[test]
fn cfo_beyond_spec_breaks_reception_gracefully() {
    let bits = adv_air_bits(&pdu(), 38);
    let syn = BlueFi::default().synthesize(&bits, 2.426e9, 1).unwrap();
    let ppdu = transmit(&syn, &ChipModel::ar9331(), 18.0);
    let rx = tuned_receiver(&syn);
    let run = |cfo: f64| {
        let ch = Channel::new(ChannelConfig {
            cfo_hz: cfo,
            shadowing_sigma_db: 0.0,
            interference: None,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        rx.receive_ble_adv(&ch.apply(&ppdu.iq, &mut rng), 38).rssi_dbm.is_some()
    };
    assert!(run(20e3), "in-spec CFO must be tolerated");
    assert!(!run(600e3), "absurd CFO must not produce a phantom packet");
}
