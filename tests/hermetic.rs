//! Guard test for the zero-dependency policy.
//!
//! The tier-1 gate (`cargo build --release --offline && cargo test -q
//! --offline`) only works because every crate in the workspace depends
//! exclusively on sibling `bluefi-*` crates. This test walks every
//! `Cargo.toml` in the workspace and fails if any dependency section names
//! a crate that is not part of the workspace, so a stray `cargo add` is
//! caught locally before it can break the offline build.

use std::fs;
use std::path::{Path, PathBuf};

/// Section headers whose entries must all be `bluefi-*` crates.
const DEP_SECTIONS: [&str; 5] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
    "target", // any `[target.'cfg(..)'.dependencies]` style table
];

fn manifest_paths() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    out
}

/// True if the `[section]` header opens a dependency table.
fn is_dep_section(header: &str) -> bool {
    DEP_SECTIONS.iter().any(|s| {
        header == *s
            || header.ends_with(&format!(".{s}"))
            || (*s == "target" && header.starts_with("target.") && header.contains("dependencies"))
    })
}

/// Extract the dependency name from a line inside a dependency table.
/// Handles `name = "1.0"`, `name = { .. }`, and `name.workspace = true`.
fn dep_name(line: &str) -> Option<&str> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
        return None;
    }
    let key = line.split('=').next()?.trim();
    // `bluefi-core.workspace = true` → take the part before the first dot.
    let name = key.split('.').next()?.trim().trim_matches('"');
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[test]
fn workspace_has_no_external_dependencies() {
    let mut violations = Vec::new();
    let manifests = manifest_paths();
    assert!(
        manifests.len() >= 9,
        "expected the workspace root + 8 crate manifests, found {}",
        manifests.len()
    );

    for manifest in &manifests {
        let text = fs::read_to_string(manifest)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                let header = trimmed.trim_matches(|c| c == '[' || c == ']');
                in_dep_section = is_dep_section(header);
                continue;
            }
            if !in_dep_section {
                continue;
            }
            if let Some(name) = dep_name(trimmed) {
                if !name.starts_with("bluefi") {
                    violations.push(format!(
                        "{}:{}: external dependency `{}`",
                        manifest.display(),
                        lineno + 1,
                        name
                    ));
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "hermetic-build policy violated — non-bluefi dependencies found:\n{}",
        violations.join("\n")
    );
}

#[test]
fn manifests_never_reference_registry_crates_by_name() {
    // Belt-and-braces: the historical external crates must not reappear
    // anywhere in any manifest, even commented-out or renamed.
    let banned = ["rand", "proptest", "criterion", "crossbeam", "parking_lot", "serde", "bytes"];
    for manifest in manifest_paths() {
        let text = fs::read_to_string(&manifest).expect("readable manifest");
        for b in banned {
            for (lineno, line) in text.lines().enumerate() {
                // Whole-word match so e.g. a crate named `bluefi-random` would
                // not false-positive but `rand = "0.8"` would be caught.
                let hit = line.split(|c: char| !(c.is_alphanumeric() || c == '_')).any(|w| w == b);
                assert!(
                    !hit,
                    "{}:{}: banned crate name `{}` in line: {}",
                    manifest.display(),
                    lineno + 1,
                    b,
                    line.trim()
                );
            }
        }
    }
}
