//! The workspace lint gate: `cargo test -q` fails if any `bluefi-analyze`
//! rule fires anywhere in the tree. This is the enforcement point for the
//! no-panic / no-unsafe / hermetic-manifest / doc-comment / no-float-eq /
//! no-hot-loop-alloc policies (the human-readable report is
//! `cargo run -p bluefi-analyze`).
//!
//! Supersedes the old `tests/hermetic.rs`, whose manifest checks now live
//! in `bluefi_analyze::manifests` as rule R3.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // The root package's manifest dir IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = bluefi_analyze::analyze_workspace(root).expect("workspace scan must succeed");
    assert!(
        report.is_clean(),
        "bluefi-analyze found violations:\n{}",
        report.render()
    );
}

#[test]
fn gate_actually_scanned_the_tree() {
    // Guard against a silently-empty pass (e.g. a broken path walk): the
    // workspace has many source files and one manifest per crate plus the
    // root's.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = bluefi_analyze::analyze_workspace(root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned >= 50,
        "only {} source files scanned — path walk broken?",
        report.files_scanned
    );
    // Exact count: nine library/app crates + bluefi-conformance + the root
    // package. A new crate must bump this, keeping R3's hermetic-manifest
    // rule covering the whole tree.
    assert_eq!(
        report.manifests_scanned, 11,
        "manifest count drifted — did a crate join or leave the workspace \
         without updating the R3 gate?"
    );
}

#[test]
fn gate_enforces_the_hot_loop_rule() {
    // R6 must be wired into the workspace scan (not just unit-tested): a
    // known-bad snippet under a hot-path virtual path must fire, and the
    // summary line must carry an R6 bucket.
    let diags = bluefi_analyze::scan_source(
        "crates/dsp/src/gate_probe.rs",
        "fn f(items: &[f64]) {\n    for x in items {\n        let v = vec![0.0; 4];\n    }\n}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == bluefi_analyze::Rule::HotLoopAlloc),
        "{diags:#?}"
    );
    let report = bluefi_analyze::Report::default();
    assert!(report.summary().contains("R6=0"), "{}", report.summary());
}
