//! The workspace lint gate: `cargo test -q` fails if any `bluefi-analyze`
//! rule fires anywhere in the tree. This is the enforcement point for the
//! no-panic / no-unsafe / hermetic-manifest / doc-comment / no-float-eq
//! policies (the human-readable report is `cargo run -p bluefi-analyze`).
//!
//! Supersedes the old `tests/hermetic.rs`, whose manifest checks now live
//! in `bluefi_analyze::manifests` as rule R3.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // The root package's manifest dir IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = bluefi_analyze::analyze_workspace(root).expect("workspace scan must succeed");
    assert!(
        report.is_clean(),
        "bluefi-analyze found violations:\n{}",
        report.render()
    );
}

#[test]
fn gate_actually_scanned_the_tree() {
    // Guard against a silently-empty pass (e.g. a broken path walk): the
    // workspace has many source files and one manifest per crate plus the
    // root's.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = bluefi_analyze::analyze_workspace(root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned >= 50,
        "only {} source files scanned — path walk broken?",
        report.files_scanned
    );
    assert!(
        report.manifests_scanned >= 10,
        "only {} manifests scanned",
        report.manifests_scanned
    );
}
