//! The workspace lint gate: `cargo test -q` fails if any `bluefi-analyze`
//! rule fires anywhere in the tree. This is the enforcement point for the
//! ten lint policies R1–R10 (the human-readable report is
//! `cargo run -p bluefi-analyze`; the machine-readable one is
//! `cargo run -p bluefi-analyze -- --json`).
//!
//! The gate consumes the `bluefi-analyze/v1` JSON document rather than the
//! rendered text: it schema-checks the report, asserts zero unhatched
//! findings per rule, and pins the exact hatch count per rule — so adding
//! an escape hatch anywhere in the tree is a visible diff here, never a
//! silent erosion of coverage.
//!
//! Supersedes the old `tests/hermetic.rs`, whose manifest checks now live
//! in `bluefi_analyze::manifests` as rule R3.

use bluefi_core::json::Json;
use std::path::Path;

fn workspace_json() -> Json {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = bluefi_analyze::analyze_workspace(root).expect("workspace scan must succeed");
    // Round-trip through render/parse so the gate exercises the same
    // serialized document an external consumer would read.
    Json::parse(&report.to_json().render()).expect("report JSON must parse")
}

#[test]
fn workspace_is_lint_clean_per_json_report() {
    let j = workspace_json();
    assert_eq!(j.get("schema").and_then(Json::as_str), Some("bluefi-analyze/v1"));
    assert_eq!(
        j.get("status").and_then(Json::as_str),
        Some("clean"),
        "bluefi-analyze found violations:\n{}",
        j.render()
    );
    assert_eq!(j.get("total").and_then(Json::as_f64), Some(0.0));
    let diags = j.get("diagnostics").and_then(Json::as_arr).expect("diagnostics array");
    assert!(diags.is_empty(), "clean report must carry no diagnostics");

    // Schema: all ten rules present, in order, each with zero findings.
    let rules = j.get("rules").and_then(Json::as_arr).expect("rules array");
    let ids: Vec<&str> =
        rules.iter().filter_map(|r| r.get("id").and_then(Json::as_str)).collect();
    assert_eq!(ids, vec!["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"]);
    for r in rules {
        assert_eq!(
            r.get("findings").and_then(Json::as_f64),
            Some(0.0),
            "unhatched findings under {:?}",
            r.get("id")
        );
        assert!(r.get("name").and_then(Json::as_str).is_some(), "every rule carries a name");
        assert!(r.get("hatched").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn hatch_counts_are_pinned_per_rule() {
    // The exact number of `// lint: allow(..) <reason>` escape hatches in
    // scope, per rule. Adding or removing a hatch anywhere in the tree must
    // update this table — silent hatch growth is how lint gates rot.
    let j = workspace_json();
    let rules = j.get("rules").and_then(Json::as_arr).expect("rules array");
    let hatched: Vec<(String, usize)> = rules
        .iter()
        .map(|r| {
            (
                r.get("id").and_then(Json::as_str).unwrap_or("?").to_string(),
                r.get("hatched").and_then(Json::as_f64).unwrap_or(-1.0) as usize,
            )
        })
        .collect();
    let expect = [
        ("R1", 16usize), // allow(panic): contracts/plan-cache/template invariants
        ("R2", 0),
        ("R3", 0),
        ("R4", 0),
        ("R5", 4), // allow(float-eq): exact sentinel comparisons in dsp/wifi
        ("R6", 0),
        ("R7", 0),
        ("R8", 0),
        ("R9", 0),
        ("R10", 7), // allow(r10): GF(2) sparse rows + one-shot plan builders
    ];
    for (id, n) in expect {
        let got = hatched.iter().find(|(i, _)| i == id).map(|(_, n)| *n);
        assert_eq!(got, Some(n), "hatch count for {id} drifted: {hatched:?}");
    }
    // The hatched diagnostics list matches the per-rule totals.
    let listed = j.get("hatched").and_then(Json::as_arr).expect("hatched array").len();
    assert_eq!(listed, expect.iter().map(|(_, n)| n).sum::<usize>());
}

#[test]
fn gate_actually_scanned_the_tree() {
    // Guard against a silently-empty pass (e.g. a broken path walk): the
    // workspace has many source files and one manifest per crate plus the
    // root's.
    let j = workspace_json();
    let files = j.get("files").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    assert!(files >= 50, "only {files} source files scanned — path walk broken?");
    // Exact count: ten library/app crates + bluefi-conformance + the root
    // package. A new crate must bump this, keeping R3's hermetic-manifest
    // rule covering the whole tree.
    assert_eq!(
        j.get("manifests").and_then(Json::as_f64),
        Some(12.0),
        "manifest count drifted — did a crate join or leave the workspace \
         without updating the R3 gate?"
    );
}

#[test]
fn analyzer_passes_its_own_rules() {
    // Self-lint: the analyzer's own sources are in scope (R1/R2/R4/R7/R8
    // all apply to `crates/analyze/src`) and must be clean. The workspace
    // pass covers them; this pins that they were actually scanned rather
    // than skipped by a scope hole.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = bluefi_analyze::analyze_workspace(root).expect("workspace scan must succeed");
    let own: Vec<&bluefi_analyze::Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.file.starts_with("crates/analyze/"))
        .collect();
    assert!(own.is_empty(), "the analyzer fails its own rules:\n{own:#?}");
    let scope = bluefi_analyze::scope_for("crates/analyze/src/rules.rs");
    assert!(
        scope.no_panics && scope.no_unsafe && scope.doc_comments && scope.adhoc_print,
        "the analyze crate must stay in scope of its own gate"
    );
}

#[test]
fn gate_enforces_the_transitive_hot_loop_rule() {
    // R6 and R10 must be wired into the full pipeline (not just
    // unit-tested): a known-bad pair of virtual files must fire both, and
    // the summary line must carry their buckets.
    let files = vec![
        (
            "crates/dsp/src/gate_probe_leaf.rs".to_string(),
            "/// Allocates.\npub fn fresh() -> Vec<f64> {\n    vec![0.0; 4]\n}\n".to_string(),
        ),
        (
            "crates/wifi/src/gate_probe_hot.rs".to_string(),
            "fn f(items: &[f64]) {\n    for _x in items {\n        \
             let v = vec![0.0; 4];\n        let w = bluefi_dsp::gate_probe_leaf::fresh();\n        \
             drop((v, w));\n    }\n}\n"
                .to_string(),
        ),
    ];
    let out = bluefi_analyze::analyze_files(&files);
    assert!(
        out.fired.iter().any(|d| d.rule == bluefi_analyze::Rule::HotLoopAlloc),
        "{:#?}",
        out.fired
    );
    let r10 = out
        .fired
        .iter()
        .find(|d| d.rule == bluefi_analyze::Rule::TransitiveAlloc)
        .expect("R10 must fire through the call graph");
    assert!(!r10.chain.is_empty(), "R10 diagnostics carry the allocation chain");
    let report = bluefi_analyze::Report::default();
    assert!(report.summary().contains("R6=0"), "{}", report.summary());
    assert!(report.summary().contains("R10=0"), "{}", report.summary());
}
