//! Facade crate re-exporting the whole BlueFi workspace.
#![forbid(unsafe_code)]
pub use bluefi_apps as apps;
pub use bluefi_bt as bt;
pub use bluefi_coding as coding;
pub use bluefi_core as core;
pub use bluefi_dsp as dsp;
pub use bluefi_sim as sim;
pub use bluefi_wifi as wifi;
