//! Property-based tests for the DSP substrate.

use bluefi_dsp::bits::{bits_to_bytes_lsb, bits_to_u64_lsb, bytes_to_bits_lsb, u64_to_bits_lsb};
use bluefi_dsp::fft::{fft, ifft};
use bluefi_dsp::phase::{accumulate_frequency, discriminate, phase_to_iq, unwrap, wrap_angle};
use bluefi_dsp::{cx, Cx};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fft_ifft_roundtrip(values in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 64)) {
        let x: Vec<Cx> = values.iter().map(|&(r, i)| cx(r, i)).collect();
        let round = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&round) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds(values in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 32)) {
        let x: Vec<Cx> = values.iter().map(|&(r, i)| cx(r, i)).collect();
        let te: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let fe: f64 = fft(&x).iter().map(|v| v.norm_sq()).sum::<f64>() / 32.0;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    #[test]
    fn bytes_bits_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
    }

    #[test]
    fn u64_bits_roundtrip(v in any::<u64>(), width in 1usize..=64) {
        let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
        prop_assert_eq!(bits_to_u64_lsb(&u64_to_bits_lsb(masked, width)), masked);
    }

    #[test]
    fn unwrap_is_continuous(phases in prop::collection::vec(-20.0f64..20.0, 2..100)) {
        let wrapped: Vec<f64> = phases.iter().map(|&p| wrap_angle(p)).collect();
        let un = unwrap(&wrapped);
        for w in un.windows(2) {
            prop_assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
    }

    #[test]
    fn discriminator_inverts_accumulation(freqs in prop::collection::vec(-0.2f64..0.2, 2..64)) {
        let phase = accumulate_frequency(&freqs, 0.3);
        let iq = phase_to_iq(&phase);
        let rec = discriminate(&iq);
        // rec[n] (n >= 1) recovers freqs[n-1] (the step into sample n).
        for n in 1..freqs.len() {
            prop_assert!((rec[n] - freqs[n - 1]).abs() < 1e-9, "n={} {} vs {}", n, rec[n], freqs[n-1]);
        }
    }

    #[test]
    fn wrap_angle_is_idempotent_and_bounded(a in -1000.0f64..1000.0) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
        // Same angle modulo 2π.
        let d = (a - w) / (2.0 * std::f64::consts::PI);
        prop_assert!((d - d.round()).abs() < 1e-9);
    }
}
