//! Randomized-property tests for the DSP substrate, driven by the
//! in-tree `bluefi_core::check` harness (hermetic replacement for
//! proptest: fixed per-property seeds, no shrinking, failing inputs are
//! printed in full).

use bluefi_core::check::{bools, check, f64s, vec_with};
use bluefi_core::rng::Rng;
use bluefi_core::{prop_assert, prop_assert_eq};
use bluefi_dsp::bits::{bits_to_bytes_lsb, bits_to_u64_lsb, bytes_to_bits_lsb, u64_to_bits_lsb};
use bluefi_dsp::fft::{fft, ifft};
use bluefi_dsp::phase::{accumulate_frequency, discriminate, phase_to_iq, unwrap, wrap_angle};
use bluefi_dsp::{cx, Cx};

#[test]
fn fft_ifft_roundtrip() {
    check(
        "fft_ifft_roundtrip",
        |rng| {
            vec_with(rng, 64..65, |r| cx(r.gen_range(-10.0..10.0), r.gen_range(-10.0..10.0)))
        },
        |x| {
            let round = ifft(&fft(x));
            for (a, b) in x.iter().zip(&round) {
                prop_assert!((*a - *b).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

#[test]
fn parseval_holds() {
    check(
        "parseval_holds",
        |rng| vec_with(rng, 32..33, |r| cx(r.gen_range(-5.0..5.0), r.gen_range(-5.0..5.0))),
        |x: &Vec<Cx>| {
            let te: f64 = x.iter().map(|v| v.norm_sq()).sum();
            let fe: f64 = fft(x).iter().map(|v| v.norm_sq()).sum::<f64>() / 32.0;
            prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
            Ok(())
        },
    );
}

#[test]
fn bytes_bits_roundtrip() {
    check(
        "bytes_bits_roundtrip",
        |rng| bluefi_core::check::bytes(rng, 0..200),
        |bytes| {
            prop_assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(bytes)), *bytes);
            Ok(())
        },
    );
}

#[test]
fn u64_bits_roundtrip() {
    check(
        "u64_bits_roundtrip",
        |rng| (rng.gen::<u64>(), rng.gen_range(1usize..65)),
        |&(v, width)| {
            let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            prop_assert_eq!(bits_to_u64_lsb(&u64_to_bits_lsb(masked, width)), masked);
            Ok(())
        },
    );
}

#[test]
fn unwrap_is_continuous() {
    check(
        "unwrap_is_continuous",
        |rng| f64s(rng, -20.0..20.0, 2..100),
        |phases| {
            let wrapped: Vec<f64> = phases.iter().map(|&p| wrap_angle(p)).collect();
            let un = unwrap(&wrapped);
            for w in un.windows(2) {
                prop_assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
            }
            Ok(())
        },
    );
}

#[test]
fn discriminator_inverts_accumulation() {
    check(
        "discriminator_inverts_accumulation",
        |rng| f64s(rng, -0.2..0.2, 2..64),
        |freqs| {
            let phase = accumulate_frequency(freqs, 0.3);
            let iq = phase_to_iq(&phase);
            let rec = discriminate(&iq);
            // rec[n] (n >= 1) recovers freqs[n-1] (the step into sample n).
            for n in 1..freqs.len() {
                prop_assert!(
                    (rec[n] - freqs[n - 1]).abs() < 1e-9,
                    "n={} {} vs {}",
                    n,
                    rec[n],
                    freqs[n - 1]
                );
            }
            Ok(())
        },
    );
}

#[test]
fn wrap_angle_is_idempotent_and_bounded() {
    check(
        "wrap_angle_is_idempotent_and_bounded",
        |rng| rng.gen_range(-1000.0..1000.0),
        |&a| {
            let w = wrap_angle(a);
            prop_assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
            prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
            // Same angle modulo 2π.
            let d = (a - w) / (2.0 * std::f64::consts::PI);
            prop_assert!((d - d.round()).abs() < 1e-9);
            Ok(())
        },
    );
}

// `bools` is exercised here so the helper keeps working for the other
// suites even if dsp stops needing bit vectors.
#[test]
fn bit_vector_roundtrip_via_bytes() {
    check(
        "bit_vector_roundtrip_via_bytes",
        |rng| bools(rng, 0..25).iter().map(|&b| b as u8).collect::<Vec<u8>>(),
        |bytes| {
            prop_assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(bytes)), *bytes);
            Ok(())
        },
    );
}
