//! Fast Fourier transforms, implemented from scratch.
//!
//! 802.11n OFDM works on 64-point blocks, so the hot path is a radix-2
//! iterative Cooley–Tukey transform with precomputed twiddles. A naive DFT
//! fallback covers non-power-of-two lengths (used only in analysis helpers).
//!
//! Conventions match the paper's usage (and NumPy/SciPy):
//!
//! * forward: `X[f] = Σ_n x[n]·e^{-j2πfn/N}` (no normalization)
//! * inverse: `x[n] = (1/N)·Σ_f X[f]·e^{+j2πfn/N}`
//!
//! so `ifft(fft(x)) == x`.

use crate::complex::Cx;
use crate::contracts;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Precomputes the bit-reversal permutation and twiddle factors once, then
/// executes transforms in-place with no allocation. One plan may be shared
/// freely (`&self` methods).
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    // Twiddles for the forward transform: e^{-j2πk/N}, k in 0..N/2.
    twiddles: Vec<Cx>,
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics when `n` is zero or not a power of two.
    pub fn new(n: usize) -> FftPlan {
        assert!(n.is_power_of_two() && n > 0, "FFT size must be a power of two, got {n}");
        let twiddles = (0..n / 2)
            .map(|k| Cx::expj(-2.0 * PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        let bitrev = if n == 1 { vec![0] } else { bitrev };
        FftPlan { n, twiddles, bitrev }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; plans have length ≥ 1.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    /// Panics when `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Cx]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        let e_in = if contracts::enabled() { contracts::energy(data) } else { 0.0 };
        self.transform(data, false);
        if contracts::enabled() {
            contracts::check_parseval(e_in, contracts::energy(data), self.n, "FftPlan::forward");
        }
    }

    /// In-place inverse FFT (including the `1/N` normalization).
    ///
    /// # Panics
    /// Panics when `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Cx]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        let e_in = if contracts::enabled() { contracts::energy(data) } else { 0.0 };
        self.transform(data, true);
        let k = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(k);
        }
        if contracts::enabled() {
            // With the 1/N normalization applied, output energy is the
            // frequency-domain input's energy divided by N (Parseval).
            contracts::check_parseval(contracts::energy(data), e_in, self.n, "FftPlan::inverse");
        }
    }

    fn transform(&self, data: &mut [Cx], inverse: bool) {
        let n = self.n;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut half = 1;
        while half < n {
            let step = n / (2 * half);
            for start in (0..n).step_by(2 * half) {
                for k in 0..half {
                    let w = {
                        let t = self.twiddles[k * step];
                        if inverse {
                            t.conj()
                        } else {
                            t
                        }
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            half *= 2;
        }
    }
}

/// Returns the shared, process-wide plan for power-of-two size `n`,
/// building it on first request. Subsequent calls for the same size are a
/// lock + hash lookup — no twiddle or bit-reversal recomputation — so hot
/// paths can call this freely instead of [`FftPlan::new`].
///
/// # Panics
/// Panics when `n` is zero or not a power of two (same contract as
/// [`FftPlan::new`]).
pub fn fft_plan(n: usize) -> Arc<FftPlan> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

/// Convenience forward FFT returning a new vector (power-of-two length).
/// Thin shim over the cached plan; prefer [`fft_plan`] + a reused buffer on
/// hot paths.
pub fn fft(input: &[Cx]) -> Vec<Cx> {
    let plan = fft_plan(input.len());
    let mut buf = input.to_vec();
    plan.forward(&mut buf);
    buf
}

/// Convenience inverse FFT returning a new vector (power-of-two length).
/// Thin shim over the cached plan; prefer [`fft_plan`] + a reused buffer on
/// hot paths.
pub fn ifft(input: &[Cx]) -> Vec<Cx> {
    let plan = fft_plan(input.len());
    let mut buf = input.to_vec();
    plan.inverse(&mut buf);
    buf
}

/// Naive DFT for arbitrary lengths. O(N²); analysis use only.
pub fn dft(input: &[Cx]) -> Vec<Cx> {
    let n = input.len();
    (0..n)
        .map(|f| {
            (0..n)
                .map(|t| input[t] * Cx::expj(-2.0 * PI * (f * t) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// Shifts the zero-frequency bin to the center of the spectrum
/// (`fftshift`): bins `[0..N)` become `[-N/2..N/2)`. One pre-sized buffer,
/// rotated in place — no intermediate copies.
pub fn fftshift(spec: &[Cx]) -> Vec<Cx> {
    let mut out = spec.to_vec();
    fftshift_inplace(&mut out);
    out
}

/// In-place [`fftshift`]: rotates the buffer so the zero-frequency bin
/// lands in the center, allocating nothing.
pub fn fftshift_inplace(spec: &mut [Cx]) {
    let half = spec.len().div_ceil(2);
    spec.rotate_left(half);
}

/// Maps a centered subcarrier index `k ∈ [-N/2, N/2)` to the FFT bin index.
#[inline]
pub fn bin_of_subcarrier(k: i32, n: usize) -> usize {
    let n = n as i32;
    debug_assert!(k >= -n / 2 && k < n / 2);
    ((k + n) % n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::cx;

    fn assert_close(a: &[Cx], b: &[Cx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Cx::ZERO; 8];
        x[0] = Cx::ONE;
        let spec = fft(&x);
        for v in &spec {
            assert!((*v - Cx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<Cx> = (0..n)
            .map(|t| Cx::expj(2.0 * PI * (k * t) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (f, v) in spec.iter().enumerate() {
            let expect = if f == k { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "bin {f}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Cx> = (0..64)
            .map(|i| cx((i as f64 * 0.37).sin(), (i as f64 * 1.7).cos()))
            .collect();
        let round = ifft(&fft(&x));
        assert_close(&x, &round, 1e-12);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Cx> = (0..32)
            .map(|i| cx((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        assert_close(&fft(&x), &dft(&x), 1e-9);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Cx> = (0..64).map(|i| cx((i as f64 * 0.1).sin(), 0.3)).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let freq_energy: f64 = fft(&x).iter().map(|v| v.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![cx(2.0, -3.0)];
        assert_close(&fft(&x), &x, 1e-15);
        assert_close(&ifft(&x), &x, 1e-15);
    }

    #[test]
    fn subcarrier_bin_mapping() {
        assert_eq!(bin_of_subcarrier(0, 64), 0);
        assert_eq!(bin_of_subcarrier(1, 64), 1);
        assert_eq!(bin_of_subcarrier(-1, 64), 63);
        assert_eq!(bin_of_subcarrier(-28, 64), 36);
        assert_eq!(bin_of_subcarrier(28, 64), 28);
    }

    #[test]
    fn fftshift_centers_dc() {
        let spec: Vec<Cx> = (0..8).map(|i| cx(i as f64, 0.0)).collect();
        let sh = fftshift(&spec);
        let re: Vec<f64> = sh.iter().map(|v| v.re).collect();
        assert_eq!(re, vec![4.0, 5.0, 6.0, 7.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        FftPlan::new(12);
    }

    #[test]
    fn plan_cache_returns_the_same_plan() {
        let a = fft_plan(64);
        let b = fft_plan(64);
        assert!(Arc::ptr_eq(&a, &b), "cache must hand out one shared plan per size");
        let c = fft_plan(128);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 128);
    }

    #[test]
    fn cached_plan_matches_fresh_plan() {
        let x: Vec<Cx> = (0..64).map(|i| cx((i as f64 * 0.4).sin(), (i as f64 * 0.9).cos())).collect();
        let mut via_cache = x.clone();
        fft_plan(64).forward(&mut via_cache);
        let mut via_new = x.clone();
        FftPlan::new(64).forward(&mut via_new);
        assert_close(&via_cache, &via_new, 1e-15);
    }

    #[test]
    fn fftshift_inplace_matches_allocating_shift() {
        for n in [1usize, 2, 7, 8, 64] {
            let spec: Vec<Cx> = (0..n).map(|i| cx(i as f64, -(i as f64))).collect();
            let shifted = fftshift(&spec);
            let mut inplace = spec.clone();
            fftshift_inplace(&mut inplace);
            assert_eq!(shifted.len(), n);
            assert_close(&shifted, &inplace, 1e-15);
        }
    }

    #[test]
    fn fftshift_odd_length_matches_numpy_convention() {
        // numpy.fft.fftshift([0,1,2,3,4]) == [3,4,0,1,2].
        let spec: Vec<Cx> = (0..5).map(|i| cx(i as f64, 0.0)).collect();
        let re: Vec<f64> = fftshift(&spec).iter().map(|v| v.re).collect();
        assert_eq!(re, vec![3.0, 4.0, 0.0, 1.0, 2.0]);
    }
}
