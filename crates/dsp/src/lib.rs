//! # bluefi-dsp
//!
//! Dependency-free digital-signal-processing substrate for the BlueFi
//! workspace: complex samples, FFTs, FIR filters, Gaussian pulse shaping,
//! phase-signal math, bit packing, and power/statistics helpers.
//!
//! Everything here is deterministic and allocation-conscious; no global
//! state, no threads, no IO — the sans-IO style the rest of the workspace
//! follows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod complex;
pub mod contracts;
pub mod fft;
pub mod fir;
pub mod gaussian;
pub mod phase;
pub mod power;

pub use complex::{cx, Cx};
pub use fft::{fft_plan, FftPlan};
pub use fir::Fir;
