//! Power, dB and simple statistics helpers shared by the receiver models and
//! the experiment harnesses.

use crate::complex::Cx;

/// Mean power of an IQ signal (linear units).
pub fn mean_power(x: &[Cx]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| v.norm_sq()).sum::<f64>() / x.len() as f64
}

/// Linear power ratio → dB.
#[inline]
pub fn to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// dB → linear power ratio.
#[inline]
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Milliwatts → dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// dBm → milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Sorts a copy of the
/// input; when reading several percentiles from one series, sort once and
/// use [`percentile_sorted`] instead.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&v, p)
}

/// Linear-interpolated percentile over an already-sorted series — the
/// allocation-free core of [`percentile`]. The caller sorts once (by
/// [`f64::total_cmp`]) and may then read any number of percentiles.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p));
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (50th percentile).
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Error-vector magnitude between a reference and a measured waveform,
/// in dB relative to reference power. Lengths must match.
pub fn evm_db(reference: &[Cx], measured: &[Cx]) -> f64 {
    assert_eq!(reference.len(), measured.len());
    let sig = mean_power(reference);
    let err = reference
        .iter()
        .zip(measured)
        .map(|(a, b)| (*a - *b).norm_sq())
        .sum::<f64>()
        / reference.len() as f64;
    to_db(err / sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::cx;

    #[test]
    fn db_roundtrip() {
        for v in [0.001, 1.0, 42.0, 1e6] {
            assert!((from_db(to_db(v)) - v).abs() / v < 1e-12);
        }
        assert!((to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((mw_to_dbm(1.0)).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn power_of_unit_phasors_is_one() {
        let x: Vec<Cx> = (0..100).map(|n| Cx::expj(n as f64 * 0.1)).collect();
        assert!((mean_power(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&v), 3.0);
        assert_eq!(median(&v), 3.0);
        assert!((std_dev(&v) - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        // Unsorted input: `percentile` sorts a copy; `percentile_sorted`
        // over a pre-sorted copy must agree at every probe point.
        let v: [f64; 5] = [5.0, 1.0, 4.0, 2.0, 3.0];
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for p in [0.0, 10.0, 25.0, 50.0, 90.0, 100.0] {
            assert_eq!(percentile_sorted(&sorted, p), percentile(&v, p));
        }
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
    }

    #[test]
    fn evm_of_identical_signals_is_minus_inf() {
        let x: Vec<Cx> = (0..10).map(|n| cx(n as f64, 1.0)).collect();
        assert!(evm_db(&x, &x) == f64::NEG_INFINITY);
    }

    #[test]
    fn evm_scales_with_error() {
        let x: Vec<Cx> = (0..64).map(|n| Cx::expj(n as f64 * 0.2)).collect();
        let y: Vec<Cx> = x.iter().map(|v| *v + cx(0.1, 0.0)).collect();
        let e = evm_db(&x, &y);
        assert!((e - 20.0 * (0.1f64).log10()).abs() < 1e-9); // -20 dB
    }
}
