//! Phase-signal helpers.
//!
//! BlueFi treats a Bluetooth packet as *only* a phase trajectory `θ[n]`
//! (constant envelope), so frequency→phase accumulation, phase unwrapping,
//! and offset modulation are the primitives everything else builds on.

use crate::complex::Cx;
use std::f64::consts::PI;

/// Integrates an instantaneous-frequency signal (cycles/sample) into a phase
/// signal (radians). `phase[n] = phase0 + 2π·Σ_{k<n} f[k]` — the phase at
/// sample `n` reflects frequency applied over samples `0..n`.
pub fn accumulate_frequency(freq_cps: &[f64], phase0: f64) -> Vec<f64> {
    let mut out = Vec::new();
    accumulate_frequency_into(freq_cps, phase0, &mut out);
    out
}

/// Scratch-buffer variant of [`accumulate_frequency`]: integrates into `out`
/// (resized to the input length), allocating only when `out` must grow.
pub fn accumulate_frequency_into(freq_cps: &[f64], phase0: f64, out: &mut Vec<f64>) {
    crate::contracts::ensure_len(out, freq_cps.len(), 0.0);
    let mut acc = phase0;
    for (slot, &f) in out.iter_mut().zip(freq_cps) {
        *slot = acc;
        acc += 2.0 * PI * f;
    }
}

/// Adds a linearly-increasing phase (a frequency shift of `offset_cps`
/// cycles/sample) to a phase signal, in place. This is the paper's
/// "modulating operation" (Sec 2.3) that recenters a Bluetooth channel onto
/// a WiFi channel's baseband; it must happen *before* CP construction.
pub fn add_frequency_offset(phase: &mut [f64], offset_cps: f64) {
    for (n, p) in phase.iter_mut().enumerate() {
        *p += 2.0 * PI * offset_cps * n as f64;
    }
}

/// Converts a phase signal to the unit-envelope IQ waveform `e^{jθ[n]}`.
pub fn phase_to_iq(phase: &[f64]) -> Vec<Cx> {
    phase.iter().map(|&p| Cx::expj(p)).collect()
}

/// Extracts the wrapped phase of an IQ waveform.
pub fn iq_to_phase(iq: &[Cx]) -> Vec<f64> {
    iq.iter().map(|v| v.arg()).collect()
}

/// Unwraps a phase signal: removes 2π jumps so the result is continuous.
pub fn unwrap(phase: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phase.len());
    let mut offset = 0.0;
    let mut prev = match phase.first() {
        Some(&p) => p,
        None => return out,
    };
    out.push(prev);
    for &p in &phase[1..] {
        let mut d = p - prev;
        while d > PI {
            d -= 2.0 * PI;
            offset -= 2.0 * PI;
        }
        while d < -PI {
            d += 2.0 * PI;
            offset += 2.0 * PI;
        }
        out.push(p + offset);
        prev = p;
    }
    out
}

/// Instantaneous frequency (cycles/sample) of an IQ waveform via the
/// conjugate-product discriminator: `f[n] = arg(x[n]·x*[n-1]) / 2π`.
/// The first output sample repeats the second so lengths match.
pub fn discriminate(iq: &[Cx]) -> Vec<f64> {
    if iq.len() < 2 {
        return vec![0.0; iq.len()];
    }
    let mut out = Vec::with_capacity(iq.len());
    out.push(0.0);
    for n in 1..iq.len() {
        out.push((iq[n] * iq[n - 1].conj()).arg() / (2.0 * PI));
    }
    out[0] = out[1];
    out
}

/// Wraps an angle to `(-π, π]`.
#[inline]
pub fn wrap_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * PI);
    if a > PI {
        a -= 2.0 * PI;
    } else if a <= -PI {
        a += 2.0 * PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_frequency_gives_linear_phase() {
        let f = vec![0.05; 10];
        let p = accumulate_frequency(&f, 0.0);
        for (n, &v) in p.iter().enumerate() {
            assert!((v - 2.0 * PI * 0.05 * n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn offset_modulation_shifts_spectrum() {
        use crate::fft::fft;
        // A DC tone shifted by 8/64 cycles/sample must land on bin 8.
        let mut phase = vec![0.0; 64];
        add_frequency_offset(&mut phase, 8.0 / 64.0);
        let spec = fft(&phase_to_iq(&phase));
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        assert_eq!(peak, 8);
    }

    #[test]
    fn unwrap_restores_linear_ramp() {
        let truth: Vec<f64> = (0..100).map(|n| 0.4 * n as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_angle(p)).collect();
        let un = unwrap(&wrapped);
        for (a, b) in truth.iter().zip(&un) {
            // Same up to a constant multiple of 2π.
            let d = (a - b) / (2.0 * PI);
            assert!((d - d.round()).abs() < 1e-9);
        }
        // And it is continuous.
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() < PI);
        }
    }

    #[test]
    fn discriminator_recovers_frequency() {
        let f = 0.03;
        let iq: Vec<Cx> = (0..50).map(|n| Cx::expj(2.0 * PI * f * n as f64)).collect();
        let d = discriminate(&iq);
        for &v in &d[1..] {
            assert!((v - f).abs() < 1e-12);
        }
    }

    #[test]
    fn discriminator_sign_tracks_fsk_bits() {
        // +deviation then -deviation.
        let mut freq = vec![0.02; 30];
        freq.extend(vec![-0.02; 30]);
        let phase = accumulate_frequency(&freq, 1.234);
        let d = discriminate(&phase_to_iq(&phase));
        assert!(d[15] > 0.0);
        assert!(d[45] < 0.0);
    }

    #[test]
    fn wrap_angle_bounds() {
        for k in -20..20 {
            let a = 0.7 + k as f64 * 2.0 * PI;
            let w = wrap_angle(a);
            assert!((-PI..=PI).contains(&w));
            assert!((w - 0.7).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_iq_roundtrip() {
        let phase: Vec<f64> = (0..32).map(|n| wrap_angle(0.3 * n as f64)).collect();
        let round = iq_to_phase(&phase_to_iq(&phase));
        for (a, b) in phase.iter().zip(&round) {
            assert!((wrap_angle(a - b)).abs() < 1e-12);
        }
    }
}
