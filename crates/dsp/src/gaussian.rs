//! Gaussian pulse shaping for GFSK.
//!
//! Bluetooth BR applies a Gaussian filter with bandwidth-time product
//! `BT = 0.5` to the rectangular frequency pulses before FM modulation.
//! The pulse here is the standard closed form: the impulse response of a
//! Gaussian low-pass with 3 dB bandwidth `B = BT / T`, sampled at `sps`
//! samples per symbol and truncated to `span` symbols.

use std::f64::consts::PI;

/// Gaussian filter taps for GFSK pulse shaping.
///
/// * `bt` — bandwidth-time product (0.5 for Bluetooth BR, 0.3 for GSM).
/// * `sps` — samples per symbol (20 at the 20 MHz WiFi sampling rate).
/// * `span` — filter length in symbols (odd lengths keep symmetry; 3 is
///   plenty for BT = 0.5).
///
/// Taps are normalized to unit sum so that a long run of identical bits
/// reaches the full ±1 frequency deviation.
pub fn gaussian_taps(bt: f64, sps: usize, span: usize) -> Vec<f64> {
    assert!(bt > 0.0, "BT product must be positive");
    assert!(sps >= 1 && span >= 1);
    let n = sps * span;
    let n = if n.is_multiple_of(2) { n + 1 } else { n };
    let mid = (n / 2) as f64;
    // alpha from the Gaussian LPF: h(t) ∝ exp(-t²·2π²B²/ln2), B = bt/T.
    let b = bt / sps as f64; // cycles per sample
    let k = 2.0 * PI * PI * b * b / (2.0f64).ln();
    let mut taps: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 - mid;
            (-k * t * t).exp()
        })
        .collect();
    let sum: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Shapes a ±1 bit sequence into a frequency pulse train.
///
/// Each bit is held for `sps` samples (NRZ) and the result is convolved with
/// the Gaussian taps. The output length is `bits.len() * sps` and is aligned
/// so that the center of bit `i` is at sample `i*sps + sps/2` (the filter's
/// group delay is removed).
pub fn shape_bits(bits: &[bool], bt: f64, sps: usize, span: usize) -> Vec<f64> {
    let taps = gaussian_taps(bt, sps, span);
    let mut out = vec![0.0; bits.len() * sps];
    shape_bits_to(bits, &taps, sps, 1.0, &mut out);
    out
}

/// Scratch-buffer core of [`shape_bits`]: convolves with caller-provided
/// `taps` (from [`gaussian_taps`]) and writes `scale`-multiplied samples into
/// `out`, which must be exactly `bits.len() * sps` long. Lets hot paths reuse
/// both the taps and the output buffer.
pub fn shape_bits_to(bits: &[bool], taps: &[f64], sps: usize, scale: f64, out: &mut [f64]) {
    let delay = taps.len() / 2;
    let n = bits.len() * sps;
    assert_eq!(out.len(), n, "output must hold bits.len()*sps samples");
    let nrz = |i: isize| -> f64 {
        if i < 0 || i as usize >= n {
            // Extend the edge bits rather than dropping to zero: real
            // transmitters idle at the carrier, and extending avoids a fake
            // frequency droop on the first/last bit.
            if bits.is_empty() {
                return 0.0;
            }
            let b = if i < 0 { bits[0] } else { bits[bits.len() - 1] };
            return if b { 1.0 } else { -1.0 };
        }
        if bits[i as usize / sps] {
            1.0
        } else {
            -1.0
        }
    };
    for (out_i, slot) in out.iter_mut().enumerate() {
        let s: f64 = taps
            .iter()
            .enumerate()
            .map(|(k, &t)| t * nrz(out_i as isize + delay as isize - k as isize))
            .sum();
        *slot = s * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_are_symmetric_and_normalized() {
        let t = gaussian_taps(0.5, 20, 3);
        let sum: f64 = t.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
        }
        // Peak at the center.
        let mid = t.len() / 2;
        assert!(t.iter().all(|&v| v <= t[mid] + 1e-15));
    }

    #[test]
    fn long_run_reaches_full_deviation() {
        let bits = vec![true; 8];
        let f = shape_bits(&bits, 0.5, 20, 3);
        // Middle of the run: frequency pulse saturates at +1.
        assert!((f[4 * 20] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn alternating_bits_never_reach_full_deviation() {
        let bits: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let f = shape_bits(&bits, 0.5, 20, 3);
        // Interior only: the first/last bit are edge-extended by design and
        // behave like a long run.
        let interior = &f[4 * 20..12 * 20];
        let peak = interior.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        // Gaussian ISI with BT=0.5 rounds off alternating bits (theory: a
        // single-bit pulse peaks at ~0.93, neighbors subtract ~0.03 each).
        assert!(peak < 0.93, "peak {peak}");
        assert!(peak > 0.5, "peak {peak}");
    }

    #[test]
    fn bit_centers_carry_the_bit_sign() {
        let bits = vec![true, false, false, true, true, false, true, false];
        let f = shape_bits(&bits, 0.5, 20, 3);
        for (i, &b) in bits.iter().enumerate() {
            let v = f[i * 20 + 10];
            assert!(
                (v > 0.0) == b,
                "bit {i} center value {v} disagrees with bit {b}"
            );
        }
    }

    #[test]
    fn output_length_is_bits_times_sps() {
        let bits = vec![true; 5];
        assert_eq!(shape_bits(&bits, 0.5, 20, 3).len(), 100);
        assert_eq!(shape_bits(&bits, 0.5, 8, 4).len(), 40);
    }

    #[test]
    fn smaller_bt_spreads_pulse_more() {
        let one_bit = vec![false, false, true, false, false];
        let tight = shape_bits(&one_bit, 0.5, 20, 5);
        let loose = shape_bits(&one_bit, 0.3, 20, 5);
        // At the neighboring bit center, the low-BT pulse leaks more energy
        // upward (closer to +1 than the BT=0.5 pulse).
        let c = 1 * 20 + 10;
        assert!(loose[c] > tight[c]);
    }
}
