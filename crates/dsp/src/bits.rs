//! Bit/byte packing helpers.
//!
//! Both standards involved here are LSB-first on the air (802.11 serializes
//! each octet least-significant bit first; Bluetooth likewise transmits LSB
//! first), so the canonical conversion in this workspace is LSB-first. The
//! MSB-first variants exist for sync words and CRC presentation order.

/// Unpacks bytes into bits, least-significant bit of each byte first
/// (the over-the-air order for both 802.11 and Bluetooth).
pub fn bytes_to_bits_lsb(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            out.push((b >> i) & 1 == 1);
        }
    }
    out
}

/// Packs bits into bytes, LSB-first; the final partial byte (if any) is
/// zero-padded in its high bits.
pub fn bits_to_bytes_lsb(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks bytes into bits, most-significant bit first.
pub fn bytes_to_bits_msb(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            out.push((b >> i) & 1 == 1);
        }
    }
    out
}

/// Packs bits into bytes, MSB-first.
pub fn bits_to_bytes_msb(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out
}

/// Extracts `width` bits of `value` as a bit vector, LSB first.
pub fn u64_to_bits_lsb(value: u64, width: usize) -> Vec<bool> {
    assert!(width <= 64);
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Packs up to 64 LSB-first bits back into an integer.
pub fn bits_to_u64_lsb(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Hamming distance between two equal-length bit slices.
pub fn hamming(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// XOR of two equal-length bit slices.
pub fn xor(a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_roundtrip() {
        let bytes = [0x0Fu8, 0xA5, 0x00, 0xFF, 0x3C];
        assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
    }

    #[test]
    fn msb_roundtrip() {
        let bytes = [0x0Fu8, 0xA5, 0x00, 0xFF, 0x3C];
        assert_eq!(bits_to_bytes_msb(&bytes_to_bits_msb(&bytes)), bytes);
    }

    #[test]
    fn lsb_order_is_lsb_first() {
        let bits = bytes_to_bits_lsb(&[0b0000_0001]);
        assert!(bits[0]);
        assert!(!bits[7]);
        let bits = bytes_to_bits_msb(&[0b0000_0001]);
        assert!(!bits[0]);
        assert!(bits[7]);
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 0xDEADBEEF, u64::MAX] {
            assert_eq!(bits_to_u64_lsb(&u64_to_bits_lsb(v, 64)), v);
        }
        assert_eq!(bits_to_u64_lsb(&u64_to_bits_lsb(0b1011, 4)), 0b1011);
    }

    #[test]
    fn hamming_and_xor() {
        let a = [true, false, true, true];
        let b = [true, true, false, true];
        assert_eq!(hamming(&a, &b), 2);
        assert_eq!(xor(&a, &b), vec![false, true, true, false]);
    }

    #[test]
    fn partial_byte_is_zero_padded() {
        let bits = [true, false, true]; // 0b101 LSB-first = 0x05
        assert_eq!(bits_to_bytes_lsb(&bits), vec![0x05]);
    }
}
