//! Runtime stage contracts: cheap invariant checks on the synthesis
//! pipeline's hot paths, compiled in behind the `contracts` cargo feature
//! (default-on) and active only in debug builds.
//!
//! [`enabled`] is a `const fn` returning
//! `cfg!(all(feature = "contracts", debug_assertions))`, so every check
//! wrapped in `if contracts::enabled() { ... }` const-folds away in release
//! builds — the contracts cost nothing on the benchmark path while every
//! `cargo test` run exercises them.
//!
//! The helpers here are the checks shared across crates (energy accounting,
//! permutation bijectivity); crate-local invariants use the [`contract!`]
//! macro directly. All numeric comparisons are tolerance-based — exact
//! float equality is itself a lint violation (R5).

use crate::complex::Cx;

/// True when contract checks are compiled in AND this is a debug build.
///
/// Const so that `if enabled() { ... }` blocks are removed entirely by
/// constant propagation when contracts are off.
#[inline]
pub const fn enabled() -> bool {
    cfg!(all(feature = "contracts", debug_assertions))
}

/// Asserts a stage contract; a no-op (with no argument evaluation beyond
/// the condition) when contracts are disabled.
#[macro_export]
macro_rules! contract {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if $crate::contracts::enabled() {
            assert!($cond $(, $($fmt)+)?);
        }
    };
}

use std::sync::atomic::{AtomicU64, Ordering};

// The allocation probe: every kernel that takes an allocating path (a
// fresh `Vec`, or a scratch buffer forced to grow its capacity) reports it
// here. The workspace forbids `unsafe`, so a `#[global_allocator]` hook is
// off the table — instead the hot-path kernels self-report through
// [`probe_alloc`] / [`ensure_len`], and `runtime_profile` reads the count
// after a warm-up pass to prove the steady state allocates nothing.
static ALLOC_PROBE: AtomicU64 = AtomicU64::new(0);

/// Records one allocation event on the hot path. Free (and uncounted) when
/// contracts are disabled or in release builds.
#[inline]
pub fn probe_alloc() {
    if enabled() {
        ALLOC_PROBE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Resets the allocation probe to zero (e.g. after warm-up).
pub fn probe_reset() {
    ALLOC_PROBE.store(0, Ordering::Relaxed);
}

/// The number of hot-path allocation events recorded since the last
/// [`probe_reset`]. Always zero when contracts are disabled.
pub fn probe_count() -> u64 {
    ALLOC_PROBE.load(Ordering::Relaxed)
}

/// Resizes a scratch buffer to exactly `n` elements (filling new slots
/// with `fill`), reporting to the allocation probe only when the buffer
/// must grow its capacity — the reuse path is probe-silent, so a warm
/// scratch arena drives the probe count to zero.
pub fn ensure_len<T: Clone>(buf: &mut Vec<T>, n: usize, fill: T) {
    if buf.capacity() < n {
        probe_alloc();
    }
    buf.clear();
    buf.resize(n, fill);
}

/// Clears `buf` and reserves capacity for at least `n` elements, reporting
/// to the allocation probe only when the buffer must grow. Use for
/// append-style scratch (e.g. a waveform assembled symbol by symbol).
pub fn ensure_capacity<T>(buf: &mut Vec<T>, n: usize) {
    if buf.capacity() < n {
        probe_alloc();
    }
    buf.clear();
    buf.reserve(n);
}

/// Total energy `Σ|x|²` of a complex buffer.
pub fn energy(data: &[Cx]) -> f64 {
    data.iter().map(|v| v.norm_sq()).sum()
}

/// Relative closeness with an absolute floor: `|a − b| ≤ tol·max(|a|, |b|, 1)`.
pub fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Parseval contract: time-domain energy equals frequency-domain energy
/// over the transform length, `e_time ≈ e_freq / n` (unnormalized-forward
/// convention). No-op when contracts are disabled.
pub fn check_parseval(e_time: f64, e_freq: f64, n: usize, what: &str) {
    if !enabled() {
        return;
    }
    let scaled = e_freq / n as f64;
    contract!(
        rel_close(e_time, scaled, 1e-9),
        "{what}: Parseval violated — time energy {e_time:.6e} vs freq energy/N {scaled:.6e}"
    );
}

/// Bijectivity contract: `perm` must map `0..len` onto `0..len` with no
/// collisions. No-op when contracts are disabled.
pub fn check_permutation_bijective(len: usize, mut perm: impl FnMut(usize) -> usize, what: &str) {
    if !enabled() {
        return;
    }
    let mut seen = vec![false; len];
    for k in 0..len {
        let j = perm(k);
        contract!(j < len, "{what}: index {k} maps to {j}, outside 0..{len}");
        contract!(!seen[j], "{what}: output {j} hit twice — not a permutation");
        seen[j] = true;
    }
}

/// Unit-mean-energy contract: the mean `|p|²` over `points` is 1 within
/// `tol`. No-op when contracts are disabled.
pub fn check_unit_mean_energy(points: &[Cx], tol: f64, what: &str) {
    if !enabled() {
        return;
    }
    contract!(!points.is_empty(), "{what}: empty point set");
    let avg = energy(points) / points.len() as f64;
    contract!(
        (avg - 1.0).abs() <= tol,
        "{what}: mean point energy {avg:.9} is not 1"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::cx;

    #[test]
    fn enabled_in_test_builds() {
        // Tests always run with debug_assertions and the default feature
        // set, so the contract machinery itself must be live here.
        assert!(enabled());
    }

    #[test]
    fn rel_close_has_absolute_floor() {
        assert!(rel_close(0.0, 1e-12, 1e-9));
        assert!(rel_close(1e9, 1e9 + 0.1, 1e-9));
        assert!(!rel_close(1.0, 2.0, 1e-9));
    }

    #[test]
    fn parseval_accepts_matching_energies() {
        check_parseval(2.0, 128.0, 64, "test");
    }

    #[test]
    #[should_panic(expected = "Parseval")]
    fn parseval_rejects_mismatched_energies() {
        check_parseval(2.0, 130.0, 64, "test");
    }

    #[test]
    fn identity_is_a_permutation() {
        check_permutation_bijective(16, |k| k, "identity");
        check_permutation_bijective(16, |k| 15 - k, "reversal");
    }

    #[test]
    #[should_panic(expected = "hit twice")]
    fn constant_map_is_not_a_permutation() {
        check_permutation_bijective(4, |_| 0, "constant");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_map_is_rejected() {
        check_permutation_bijective(4, |k| k + 1, "shift");
    }

    #[test]
    fn unit_circle_points_have_unit_energy() {
        let pts: Vec<Cx> = (0..8).map(|i| Cx::expj(i as f64)).collect();
        check_unit_mean_energy(&pts, 1e-12, "circle");
    }

    #[test]
    #[should_panic(expected = "mean point energy")]
    fn scaled_points_fail_unit_energy() {
        let pts = vec![cx(2.0, 0.0); 4];
        check_unit_mean_energy(&pts, 1e-12, "scaled");
    }

    #[test]
    fn alloc_probe_counts_and_resets() {
        // Other tests in this binary may hit the probe concurrently, so
        // assert only monotone lower bounds, never exact totals.
        let before = probe_count();
        probe_alloc();
        probe_alloc();
        assert!(probe_count() >= before + 2, "probe failed to count");
        probe_reset();
        // After a reset the count restarts from (near) zero; a fresh grow
        // must register again.
        let mut buf: Vec<f64> = Vec::new();
        let base = probe_count();
        ensure_len(&mut buf, 64, 0.0);
        assert_eq!(buf.len(), 64);
        assert!(probe_count() >= base + 1, "growing a buffer must hit the probe");
    }

    #[test]
    fn ensure_len_reuses_capacity() {
        let mut buf: Vec<f64> = Vec::with_capacity(128);
        ensure_len(&mut buf, 100, 1.5);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&v| (v - 1.5).abs() < 1e-15));
        // Shrinking and re-filling must not reallocate.
        let cap = buf.capacity();
        ensure_len(&mut buf, 32, 2.5);
        assert_eq!(buf.len(), 32);
        assert_eq!(buf.capacity(), cap, "reuse path must keep the allocation");
    }

    #[test]
    fn contract_macro_passes_and_formats() {
        contract!(1 + 1 == 2);
        contract!(true, "with message {}", 42);
    }

    #[test]
    #[should_panic(expected = "boom 7")]
    fn contract_macro_fires() {
        contract!(false, "boom {}", 7);
    }
}
