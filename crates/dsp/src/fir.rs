//! FIR filter design and application.
//!
//! Bluetooth receivers channel-select with a band-pass of roughly ±650 kHz;
//! we build those filters here with windowed-sinc design (Hamming window by
//! default, Kaiser when an explicit stop-band attenuation is requested).
//! Everything is real-coefficient; complex signals are filtered per
//! component, so a low-pass prototype applied at complex baseband acts as a
//! band-pass around the (frequency-shifted) carrier.

use crate::complex::Cx;
use std::f64::consts::PI;

/// A real-coefficient FIR filter.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Wraps raw taps.
    pub fn from_taps(taps: Vec<f64>) -> Fir {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        Fir { taps }
    }

    /// Windowed-sinc low-pass. `cutoff` is the -6 dB edge as a fraction of
    /// the sample rate (`0 < cutoff < 0.5`); `ntaps` should be odd for a
    /// symmetric (linear-phase) filter and is bumped to odd if it isn't.
    pub fn lowpass(cutoff: f64, ntaps: usize) -> Fir {
        assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5), got {cutoff}");
        let ntaps = if ntaps.is_multiple_of(2) { ntaps + 1 } else { ntaps };
        let mid = (ntaps / 2) as isize;
        let mut taps: Vec<f64> = (0..ntaps as isize)
            .map(|i| {
                let n = (i - mid) as f64;
                // lint: allow(float-eq) n is an exact integer cast; 0.0 is the removable singularity
                let sinc = if n == 0.0 {
                    2.0 * cutoff
                } else {
                    (2.0 * PI * cutoff * n).sin() / (PI * n)
                };
                // Hamming window.
                let w = 0.54 - 0.46 * (2.0 * PI * i as f64 / (ntaps - 1) as f64).cos();
                sinc * w
            })
            .collect();
        // Normalize to unity DC gain.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Fir { taps }
    }

    /// The filter's taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (exact for the symmetric designs built here).
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Filters a real signal; output has the same length as the input and is
    /// advanced by the group delay so filtered samples line up with the
    /// originals (edges are zero-padded). Thin shim over
    /// [`Fir::filter_real_into`].
    pub fn filter_real(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.filter_real_into(x, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Fir::filter_real`]: writes the filtered
    /// signal into `out` (resized to `x.len()`), allocating only when `out`
    /// must grow.
    pub fn filter_real_into(&self, x: &[f64], out: &mut Vec<f64>) {
        crate::contracts::ensure_len(out, x.len(), 0.0);
        let d = self.group_delay() as isize;
        for n in 0..x.len() as isize {
            let mut acc = 0.0;
            for (k, &t) in self.taps.iter().enumerate() {
                let idx = n + d - k as isize;
                if idx >= 0 && (idx as usize) < x.len() {
                    acc += t * x[idx as usize];
                }
            }
            out[n as usize] = acc;
        }
    }

    /// Filters a complex signal (each component through the same taps),
    /// compensated for group delay like [`Fir::filter_real`]. Thin shim
    /// over [`Fir::filter_cx_into`].
    pub fn filter_cx(&self, x: &[Cx]) -> Vec<Cx> {
        let mut out = Vec::new();
        self.filter_cx_into(x, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Fir::filter_cx`]: writes the filtered
    /// signal into `out` (resized to `x.len()`), allocating only when `out`
    /// must grow.
    pub fn filter_cx_into(&self, x: &[Cx], out: &mut Vec<Cx>) {
        crate::contracts::ensure_len(out, x.len(), Cx::ZERO);
        let d = self.group_delay() as isize;
        for n in 0..x.len() as isize {
            let mut acc = Cx::ZERO;
            for (k, &t) in self.taps.iter().enumerate() {
                let idx = n + d - k as isize;
                if idx >= 0 && (idx as usize) < x.len() {
                    acc += x[idx as usize] * t;
                }
            }
            out[n as usize] = acc;
        }
    }

    /// Magnitude response at a normalized frequency `f` (cycles/sample).
    pub fn response_at(&self, f: f64) -> f64 {
        let h: Cx = self
            .taps
            .iter()
            .enumerate()
            .map(|(n, &t)| Cx::expj(-2.0 * PI * f * n as f64) * t)
            .sum();
        h.abs()
    }
}

/// Moving-average smoother used by RSSI estimators; window length `w`.
pub fn moving_average(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1);
    let mut out = Vec::with_capacity(x.len());
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i];
        if i >= w {
            acc -= x[i - w];
        }
        let n = (i + 1).min(w);
        out.push(acc / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::cx;

    #[test]
    fn lowpass_passes_dc_and_blocks_high() {
        let f = Fir::lowpass(0.1, 101);
        assert!((f.response_at(0.0) - 1.0).abs() < 1e-9);
        assert!(f.response_at(0.05) > 0.9);
        assert!(f.response_at(0.25) < 0.01);
        assert!(f.response_at(0.45) < 0.01);
    }

    #[test]
    fn even_tap_count_is_bumped_to_odd() {
        let f = Fir::lowpass(0.2, 10);
        assert_eq!(f.taps().len() % 2, 1);
    }

    #[test]
    fn group_delay_compensation_aligns_tone() {
        // A slow tone should come through nearly unchanged and aligned.
        let f = Fir::lowpass(0.1, 63);
        let x: Vec<f64> = (0..400).map(|i| (2.0 * PI * 0.02 * i as f64).sin()).collect();
        let y = f.filter_real(&x);
        // Compare away from the edges.
        for i in 100..300 {
            assert!((x[i] - y[i]).abs() < 0.02, "sample {i}: {} vs {}", x[i], y[i]);
        }
    }

    #[test]
    fn complex_filtering_matches_componentwise() {
        let f = Fir::lowpass(0.15, 31);
        let x: Vec<Cx> = (0..100)
            .map(|i| cx((i as f64 * 0.1).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let y = f.filter_cx(&x);
        let re: Vec<f64> = x.iter().map(|v| v.re).collect();
        let im: Vec<f64> = x.iter().map(|v| v.im).collect();
        let yre = f.filter_real(&re);
        let yim = f.filter_real(&im);
        for i in 0..x.len() {
            assert!((y[i].re - yre[i]).abs() < 1e-12);
            assert!((y[i].im - yim[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let x = vec![3.0; 50];
        let y = moving_average(&x, 8);
        for v in y {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_smooths_step() {
        let mut x = vec![0.0; 20];
        x.extend(vec![1.0; 20]);
        let y = moving_average(&x, 4);
        assert!(y[19] < 0.01);
        assert!((y[23] - 1.0).abs() < 1e-12);
        assert!(y[21] > 0.4 && y[21] < 0.8);
    }
}
