//! A small complex-number type.
//!
//! The whole workspace operates on baseband IQ samples, so a dedicated,
//! dependency-free complex type keeps every crate self-contained. The layout
//! is `{ re, im }` in `f64`; all arithmetic is `#[inline]` and the type is
//! `Copy`, so the optimizer treats it like a pair of scalars.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number (an IQ sample): `re + j*im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cx {
    /// In-phase (real) component.
    pub re: f64,
    /// Quadrature (imaginary) component.
    pub im: f64,
}

/// Shorthand constructor: `cx(re, im)`.
#[inline]
pub fn cx(re: f64, im: f64) -> Cx {
    Cx { re, im }
}

impl Cx {
    /// The additive identity.
    pub const ZERO: Cx = Cx { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Cx = Cx { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Cx = Cx { re: 0.0, im: 1.0 };

    /// Creates a complex number from a real value (imaginary part zero).
    #[inline]
    pub fn from_re(re: f64) -> Cx {
        Cx { re, im: 0.0 }
    }

    /// `e^{jθ}` — the unit phasor at angle `theta` (radians).
    #[inline]
    pub fn expj(theta: f64) -> Cx {
        let (s, c) = theta.sin_cos();
        Cx { re: c, im: s }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(mag: f64, theta: f64) -> Cx {
        let (s, c) = theta.sin_cos();
        Cx {
            re: mag * c,
            im: mag * s,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Cx {
        Cx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` — cheaper than [`Cx::abs`], use for power.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Cx {
        Cx {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Rotates by angle `theta` (multiplies by `e^{jθ}`).
    #[inline]
    pub fn rotate(self, theta: f64) -> Cx {
        self * Cx::expj(theta)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Cx {
    type Output = Cx;
    #[inline]
    fn add(self, rhs: Cx) -> Cx {
        cx(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cx {
    #[inline]
    fn add_assign(&mut self, rhs: Cx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cx {
    type Output = Cx;
    #[inline]
    fn sub(self, rhs: Cx) -> Cx {
        cx(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cx {
    #[inline]
    fn sub_assign(&mut self, rhs: Cx) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Cx {
    type Output = Cx;
    #[inline]
    fn mul(self, rhs: Cx) -> Cx {
        cx(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cx {
    #[inline]
    fn mul_assign(&mut self, rhs: Cx) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Cx {
    type Output = Cx;
    #[inline]
    fn mul(self, rhs: f64) -> Cx {
        self.scale(rhs)
    }
}

impl Mul<Cx> for f64 {
    type Output = Cx;
    #[inline]
    fn mul(self, rhs: Cx) -> Cx {
        rhs.scale(self)
    }
}

impl Div<f64> for Cx {
    type Output = Cx;
    #[inline]
    fn div(self, rhs: f64) -> Cx {
        self.scale(1.0 / rhs)
    }
}

impl Div for Cx {
    type Output = Cx;
    #[inline]
    fn div(self, rhs: Cx) -> Cx {
        let d = rhs.norm_sq();
        cx(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Cx {
    type Output = Cx;
    #[inline]
    fn neg(self) -> Cx {
        cx(-self.re, -self.im)
    }
}

impl Sum for Cx {
    fn sum<I: Iterator<Item = Cx>>(iter: I) -> Cx {
        iter.fold(Cx::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Cx, b: Cx) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn expj_quadrants() {
        assert!(close(Cx::expj(0.0), Cx::ONE));
        assert!(close(Cx::expj(FRAC_PI_2), Cx::J));
        assert!(close(Cx::expj(PI), -Cx::ONE));
        assert!(close(Cx::expj(-FRAC_PI_2), -Cx::J));
    }

    #[test]
    fn mul_matches_polar() {
        let a = Cx::from_polar(2.0, 0.3);
        let b = Cx::from_polar(0.5, 1.1);
        let p = a * b;
        assert!((p.abs() - 1.0).abs() < 1e-12);
        assert!((p.arg() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = cx(3.0, -4.0);
        let b = cx(-1.5, 0.25);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conj_and_norm() {
        let z = cx(3.0, 4.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), cx(25.0, 0.0)));
    }

    #[test]
    fn rotate_by_pi_negates() {
        let z = cx(1.0, 2.0);
        assert!(close(z.rotate(PI), -z));
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // The four quarter-turn phasors sum to zero.
        let s: Cx = (0..4).map(|k| Cx::expj(k as f64 * FRAC_PI_2)).sum();
        assert!(s.abs() < 1e-12);
    }
}
