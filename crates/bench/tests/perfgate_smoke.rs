//! Smoke test for the perf-regression gate: against the committed
//! baseline the gate passes; against a synthetically regressed report it
//! exits nonzero and names the offending metrics; a gated metric missing
//! from the fresh report fails too (schema erosion is a regression).

use bluefi_core::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

struct Gate {
    status: std::process::ExitStatus,
    stdout: String,
}

fn run_gate(baseline: &std::path::Path, fresh: &std::path::Path) -> Gate {
    let out = Command::new(env!("CARGO_BIN_EXE_perfgate"))
        .arg("--baseline")
        .arg(baseline)
        .arg("--fresh")
        .arg(fresh)
        .output()
        .expect("perfgate must launch");
    Gate { status: out.status, stdout: String::from_utf8_lossy(&out.stdout).into_owned() }
}

/// Multiplies the number at a dotted `path` of object keys in place.
fn scale_num(doc: &mut Json, path: &[&str], factor: f64) {
    let mut cur = doc;
    for (i, key) in path.iter().enumerate() {
        let Json::Obj(fields) = cur else { panic!("{key}: not an object") };
        let slot = fields
            .iter_mut()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing key {key}"));
        if i == path.len() - 1 {
            let Json::Num(n) = &mut slot.1 else { panic!("{key}: not a number") };
            *n *= factor;
            return;
        }
        cur = &mut slot.1;
    }
}

/// Drops a top-level section from the report.
fn remove_key(doc: &mut Json, key: &str) {
    let Json::Obj(fields) = doc else { panic!("not an object") };
    fields.retain(|(k, _)| k != key);
}

fn committed_baseline() -> (PathBuf, Json) {
    let path = repo_root().join("BENCH_baseline.json");
    let doc = Json::parse(&std::fs::read_to_string(&path).expect("committed BENCH_baseline.json"))
        .expect("baseline parses");
    (path, doc)
}

#[test]
fn gate_passes_on_committed_baseline() {
    let (baseline, _) = committed_baseline();
    let fresh = repo_root().join("BENCH_runtime.json");
    let gate = run_gate(&baseline, &fresh);
    assert!(
        gate.status.success(),
        "gate must pass on the committed reports:\n{}",
        gate.stdout
    );
    assert!(gate.stdout.contains("perfgate: PASS"), "{}", gate.stdout);
}

#[test]
fn gate_fails_on_synthetic_regression_and_names_the_metric() {
    let (baseline, mut doc) = committed_baseline();
    // A 2× mean latency regression blows through the mean bound
    // (×1.6 + 25 µs) for any baseline above ~60 µs; packet synthesis is
    // milliseconds, so the margin is enormous.
    scale_num(&mut doc, &["single_packet", "mean_us"], 2.0);
    scale_num(&mut doc, &["beacon_fleet", "patch_p99_us"], 4.0);
    let regressed = std::env::temp_dir().join("bluefi_perfgate_regressed.json");
    std::fs::write(&regressed, doc.render()).expect("write regressed report");
    let gate = run_gate(&baseline, &regressed);
    let _ = std::fs::remove_file(&regressed);
    assert_eq!(gate.status.code(), Some(1), "regression must exit 1:\n{}", gate.stdout);
    assert!(gate.stdout.contains("perfgate: FAIL"), "{}", gate.stdout);
    for metric in ["single_packet.mean_us", "beacon_fleet.patch_p99_us"] {
        assert!(
            gate.stdout.contains(&format!("{metric}:")),
            "failure report must name {metric}:\n{}",
            gate.stdout
        );
    }
}

#[test]
fn gate_fails_when_a_gated_metric_disappears() {
    let (baseline, mut doc) = committed_baseline();
    remove_key(&mut doc, "beacon_fleet");
    let eroded = std::env::temp_dir().join("bluefi_perfgate_eroded.json");
    std::fs::write(&eroded, doc.render()).expect("write eroded report");
    let gate = run_gate(&baseline, &eroded);
    let _ = std::fs::remove_file(&eroded);
    assert_eq!(gate.status.code(), Some(1), "missing metric must exit 1:\n{}", gate.stdout);
    assert!(
        gate.stdout.contains("beacon_fleet.patch_mean_us: missing from fresh report"),
        "{}",
        gate.stdout
    );
}

#[test]
fn gate_exits_2_on_unreadable_input() {
    let gate = run_gate(
        &repo_root().join("BENCH_baseline.json"),
        &std::env::temp_dir().join("bluefi_perfgate_does_not_exist.json"),
    );
    assert_eq!(gate.status.code(), Some(2), "{}", gate.stdout);
}
