//! Smoke test: the runtime profile binary runs, emits schema-valid JSON —
//! including the per-stage telemetry breakdown — and, since tests build
//! with debug assertions and the default `contracts` feature, proves the
//! zero-allocation steady state (telemetry recording on *and* off) and
//! the parallel/sequential bit-exactness on a tiny workload.

use bluefi_core::json::Json;
use std::process::Command;

/// The pipeline phases the breakdown must report, in order.
const PHASES: [&str; 5] =
    ["gfsk_modulate", "cp_compat", "qam_quantize_demap", "fec_reversal", "descramble_extract"];

fn run_profile(out_name: &str, level: &str) -> Json {
    let out_path = std::env::temp_dir().join(out_name);
    let status = Command::new(env!("CARGO_BIN_EXE_runtime_profile"))
        .args(["--trials", "2", "--out"])
        .arg(&out_path)
        .env("BLUEFI_TELEMETRY", level)
        .status()
        .expect("runtime_profile must launch");
    assert!(status.success(), "runtime_profile exited with {status}");
    let text = std::fs::read_to_string(&out_path).expect("report file must exist");
    let _ = std::fs::remove_file(&out_path);
    Json::parse(&text).expect("report must be valid JSON")
}

#[test]
fn runtime_profile_emits_valid_report() {
    let report = run_profile("bluefi_runtime_profile_smoke.json", "spans");

    // Top-level schema.
    assert_eq!(report.get("trials").and_then(Json::as_f64), Some(2.0));
    assert!(report.get("host_cpus").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
    let single = report.get("single_packet").expect("single_packet section");
    for key in ["mean_us", "median_us", "p10_us", "p90_us"] {
        let v = single.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite() && v > 0.0, "{key} = {v}");
    }
    // Cold trials must cycle distinct payloads (the decode memo would
    // otherwise turn the latency loop into a memo benchmark).
    assert!(
        single.get("distinct_payloads").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0,
        "latency loop must cycle distinct payloads"
    );

    // The memoized repeat-packet path is measured separately, and with an
    // unchanged payload every trial must hit the memo.
    let repeat = report.get("repeat_packet").expect("repeat_packet section");
    let rep_mean = repeat.get("mean_us").and_then(Json::as_f64).expect("mean_us");
    assert!(rep_mean.is_finite() && rep_mean > 0.0);
    assert_eq!(
        repeat.get("memo_hits").and_then(Json::as_f64),
        Some(2.0),
        "every repeat trial must be served from the decode memo"
    );

    // This test binary is a debug+contracts build, so the probe must be
    // live and the steady state must be allocation-free.
    assert_eq!(report.get("contracts_enabled").and_then(Json::as_bool), Some(true));
    let allocs = report.get("allocs_per_packet").expect("allocs section");
    assert_eq!(allocs.get("measured").and_then(Json::as_bool), Some(true));
    assert_eq!(
        allocs.get("steady_state").and_then(Json::as_f64),
        Some(0.0),
        "hot path must not allocate after warm-up"
    );
    assert!(allocs.get("warmup").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);

    // Batch section: every thread config reports a finite throughput, the
    // ladder carries no duplicate rungs (clamping is recorded, not
    // silently re-benched), and the parallel results matched the
    // sequential reference bit-for-bit.
    let batch = report.get("batch").expect("batch section");
    assert_eq!(batch.get("bit_exact").and_then(Json::as_bool), Some(true));
    assert!(batch.get("ladder_clamped").and_then(Json::as_bool).is_some());
    let threads = batch.get("threads").and_then(Json::as_arr).expect("threads array");
    assert!(!threads.is_empty());
    let mut seen_workers = Vec::new();
    for t in threads {
        let w = t.get("workers").and_then(Json::as_f64).unwrap_or(0.0);
        assert!(w >= 1.0);
        assert!(!seen_workers.contains(&(w as u64)), "duplicate ladder rung at {w} workers");
        seen_workers.push(w as u64);
        let pps = t.get("packets_per_s").and_then(Json::as_f64).expect("packets_per_s");
        assert!(pps.is_finite() && pps > 0.0);
    }

    // Per-stage breakdown: the enclosing synthesize span lives in its own
    // `total` field (NOT inside per_stage — summing per_stage shares must
    // not double-count the parent), every child phase covers exactly the
    // timed trials, and the child shares sum to ≤100%.
    let per_stage = report.get("per_stage").expect("per_stage section");
    assert!(
        per_stage.get("synthesize").is_none(),
        "parent span must not sit inside per_stage"
    );
    let total = report.get("total").expect("total section");
    let total_ms = total.get("total_ms").and_then(Json::as_f64).expect("synthesize total");
    assert_eq!(total.get("count").and_then(Json::as_f64), Some(2.0));
    let mut share_sum = 0.0;
    for stage in PHASES {
        let s = per_stage.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
        assert_eq!(s.get("count").and_then(Json::as_f64), Some(2.0), "{stage}");
        for key in ["mean_us", "p50_us", "p90_us", "total_ms", "share_pct"] {
            let v = s.get(key).and_then(Json::as_f64).expect(key);
            assert!(v.is_finite() && v >= 0.0, "{stage}.{key} = {v}");
        }
        let share = s.get("share_pct").and_then(Json::as_f64).expect("share");
        assert!(share <= 100.0 + 1e-9, "{stage} share {share}");
        share_sum += share;
        assert!(
            s.get("total_ms").and_then(Json::as_f64).expect("total") <= total_ms + 1e-9,
            "{stage} exceeds the end-to-end total"
        );
        // The percentile fix: interpolated p50 can no longer exceed the
        // bucket ceiling artifactually; it must stay within the envelope
        // implied by mean and p90.
        let p50 = s.get("p50_us").and_then(Json::as_f64).expect("p50");
        let p90 = s.get("p90_us").and_then(Json::as_f64).expect("p90");
        assert!(p50 <= p90 + 1e-9, "{stage}: p50 {p50} > p90 {p90}");
    }
    assert!(
        share_sum <= 100.0 + 1e-6,
        "child stage shares sum to {share_sum}% (> 100%)"
    );

    // Service soak section: the daemon round-trip ran, every request
    // succeeded (nothing shed, nothing lost) and the gated throughput
    // metric is a real number.
    let soak = report.get("service_soak").expect("service_soak section");
    assert_eq!(soak.get("backend").and_then(Json::as_str), Some("mock"));
    let soak_requests = soak.get("requests").and_then(Json::as_f64).expect("requests");
    assert!(soak_requests > 0.0);
    assert_eq!(soak.get("ok").and_then(Json::as_f64), Some(soak_requests));
    assert_eq!(soak.get("server_ok").and_then(Json::as_f64), Some(soak_requests));
    assert_eq!(soak.get("shed").and_then(Json::as_f64), Some(0.0));
    let rps = soak.get("requests_per_s").and_then(Json::as_f64).expect("requests_per_s");
    assert!(rps.is_finite() && rps > 0.0);

    // Telemetry section: recording was live and allocation-free both ways.
    let tel = report.get("telemetry").expect("telemetry section");
    assert_eq!(tel.get("level").and_then(Json::as_str), Some("spans"));
    assert_eq!(tel.get("allocs_per_packet_enabled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(tel.get("allocs_per_packet_disabled").and_then(Json::as_f64), Some(0.0));
    assert!(tel.get("span_events_captured").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
    let counters = tel.get("counters").expect("counters object");
    assert_eq!(counters.get("packets_synthesized").and_then(Json::as_f64), Some(2.0));
}

/// `--trace-out` must emit a valid Chrome `trace_event` document with
/// parent-linked per-packet spans across all five phases and at least two
/// batch workers (the profiler runs an untimed 2-worker demo batch when
/// tracing so worker attribution is exercised even on a 1-CPU host).
#[test]
fn runtime_profile_trace_out_emits_chrome_trace() {
    let out_path = std::env::temp_dir().join("bluefi_rt_trace_report.json");
    let trace_path = std::env::temp_dir().join("bluefi_rt_trace_out.json");
    let status = Command::new(env!("CARGO_BIN_EXE_runtime_profile"))
        .args(["--trials", "2", "--out"])
        .arg(&out_path)
        .arg("--trace-out")
        .arg(&trace_path)
        .env("BLUEFI_TELEMETRY", "spans")
        .status()
        .expect("runtime_profile must launch");
    assert!(status.success(), "runtime_profile exited with {status}");
    let report =
        Json::parse(&std::fs::read_to_string(&out_path).expect("report")).expect("report JSON");
    let doc = Json::parse(&std::fs::read_to_string(&trace_path).expect("trace file"))
        .expect("trace output must be valid JSON");
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&trace_path);

    // --trace-out forces the trace level regardless of BLUEFI_TELEMETRY,
    // and a valid env value leaves no warnings behind.
    let tel = report.get("telemetry").expect("telemetry section");
    assert_eq!(tel.get("level").and_then(Json::as_str), Some("trace"));
    assert_eq!(
        tel.get("warnings").and_then(Json::as_arr).map(|w| w.len()),
        Some(0),
        "valid env value must not warn"
    );

    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ns"));
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    let xs: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(xs.len() > PHASES.len(), "got {} duration events", xs.len());
    // A parentless synthesize root with all five phases linked under it.
    let root = xs
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("synthesize")
                && e.get("args").and_then(|a| a.get("parent_id")) == Some(&Json::Null)
        })
        .expect("parentless synthesize root");
    let root_args = root.get("args").expect("args");
    let trace_id = root_args.get("trace_id").and_then(Json::as_f64).expect("trace_id");
    let span_id = root_args.get("span_id").and_then(Json::as_f64).expect("span_id");
    for phase in PHASES {
        assert!(
            xs.iter().any(|e| {
                let a = e.get("args").expect("args");
                e.get("name").and_then(Json::as_str) == Some(phase)
                    && a.get("trace_id").and_then(Json::as_f64) == Some(trace_id)
                    && a.get("parent_id").and_then(Json::as_f64) == Some(span_id)
            }),
            "phase {phase} parent-linked to the synthesize root"
        );
    }
    // Worker attribution: the 2-worker demo batch guarantees spans from at
    // least two distinct spawned workers (tid ≥ 1) besides main (tid 0).
    let worker_tids: std::collections::BTreeSet<u64> = xs
        .iter()
        .filter_map(|e| e.get("tid").and_then(Json::as_f64))
        .filter(|&t| t >= 1.0)
        .map(|t| t as u64)
        .collect();
    assert!(worker_tids.len() >= 2, "batch worker tids {worker_tids:?}");
    let other = doc.get("otherData").expect("otherData");
    for field in ["dropped_events", "truncated_spans", "exemplar_packets"] {
        assert!(other.get(field).and_then(Json::as_f64).is_some(), "otherData.{field}");
    }
}

/// An invalid `BLUEFI_TELEMETRY` value must not silently disable
/// telemetry: the run proceeds at the default level and the report's
/// `telemetry.warnings` names the rejected value.
#[test]
fn runtime_profile_warns_on_invalid_telemetry_env() {
    let out_path = std::env::temp_dir().join("bluefi_rt_bogus_env.json");
    let status = Command::new(env!("CARGO_BIN_EXE_runtime_profile"))
        .args(["--trials", "2", "--out"])
        .arg(&out_path)
        .env("BLUEFI_TELEMETRY", "bogus")
        .status()
        .expect("runtime_profile must launch");
    assert!(status.success(), "runtime_profile exited with {status}");
    let report =
        Json::parse(&std::fs::read_to_string(&out_path).expect("report")).expect("report JSON");
    let _ = std::fs::remove_file(&out_path);
    let tel = report.get("telemetry").expect("telemetry section");
    // The profiler falls back to its default (spans), not off.
    assert_eq!(tel.get("level").and_then(Json::as_str), Some("spans"));
    let warnings = tel.get("warnings").and_then(Json::as_arr).expect("warnings array");
    assert!(
        warnings.iter().any(|w| {
            w.as_str().is_some_and(|s| s.contains("BLUEFI_TELEMETRY") && s.contains("bogus"))
        }),
        "warnings must name the rejected value: {warnings:?}"
    );
}

#[test]
fn runtime_profile_with_telemetry_off_reports_zero_telemetry_allocs() {
    let report = run_profile("bluefi_runtime_profile_smoke_off.json", "off");
    // A disabled recorder leaves no per-stage data behind...
    let per_stage = report.get("per_stage").expect("per_stage section");
    for stage in PHASES {
        assert!(per_stage.get(stage).is_none(), "{stage} recorded while off");
    }
    // ...and the telemetry section still proves the zero-allocation claim
    // for the disabled configuration.
    let tel = report.get("telemetry").expect("telemetry section");
    assert_eq!(tel.get("level").and_then(Json::as_str), Some("off"));
    assert_eq!(tel.get("allocs_per_packet_enabled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(tel.get("allocs_per_packet_disabled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(tel.get("span_events_captured").and_then(Json::as_f64), Some(0.0));
    // The hot path itself stays allocation-free either way.
    let allocs = report.get("allocs_per_packet").expect("allocs section");
    assert_eq!(allocs.get("steady_state").and_then(Json::as_f64), Some(0.0));
}
