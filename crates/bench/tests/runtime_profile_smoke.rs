//! Smoke test: the runtime profile binary runs, emits schema-valid JSON —
//! including the per-stage telemetry breakdown — and, since tests build
//! with debug assertions and the default `contracts` feature, proves the
//! zero-allocation steady state (telemetry recording on *and* off) and
//! the parallel/sequential bit-exactness on a tiny workload.

use bluefi_core::json::Json;
use std::process::Command;

/// The pipeline phases the breakdown must report, in order.
const PHASES: [&str; 5] =
    ["gfsk_modulate", "cp_compat", "qam_quantize_demap", "fec_reversal", "descramble_extract"];

fn run_profile(out_name: &str, level: &str) -> Json {
    let out_path = std::env::temp_dir().join(out_name);
    let status = Command::new(env!("CARGO_BIN_EXE_runtime_profile"))
        .args(["--trials", "2", "--out"])
        .arg(&out_path)
        .env("BLUEFI_TELEMETRY", level)
        .status()
        .expect("runtime_profile must launch");
    assert!(status.success(), "runtime_profile exited with {status}");
    let text = std::fs::read_to_string(&out_path).expect("report file must exist");
    let _ = std::fs::remove_file(&out_path);
    Json::parse(&text).expect("report must be valid JSON")
}

#[test]
fn runtime_profile_emits_valid_report() {
    let report = run_profile("bluefi_runtime_profile_smoke.json", "spans");

    // Top-level schema.
    assert_eq!(report.get("trials").and_then(Json::as_f64), Some(2.0));
    assert!(report.get("host_cpus").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
    let single = report.get("single_packet").expect("single_packet section");
    for key in ["mean_us", "median_us", "p10_us", "p90_us"] {
        let v = single.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite() && v > 0.0, "{key} = {v}");
    }

    // This test binary is a debug+contracts build, so the probe must be
    // live and the steady state must be allocation-free.
    assert_eq!(report.get("contracts_enabled").and_then(Json::as_bool), Some(true));
    let allocs = report.get("allocs_per_packet").expect("allocs section");
    assert_eq!(allocs.get("measured").and_then(Json::as_bool), Some(true));
    assert_eq!(
        allocs.get("steady_state").and_then(Json::as_f64),
        Some(0.0),
        "hot path must not allocate after warm-up"
    );
    assert!(allocs.get("warmup").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);

    // Batch section: every thread config reports a finite throughput, and
    // the parallel results matched the sequential reference bit-for-bit.
    let batch = report.get("batch").expect("batch section");
    assert_eq!(batch.get("bit_exact").and_then(Json::as_bool), Some(true));
    let threads = batch.get("threads").and_then(Json::as_arr).expect("threads array");
    assert!(!threads.is_empty());
    for t in threads {
        assert!(t.get("workers").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
        let pps = t.get("packets_per_s").and_then(Json::as_f64).expect("packets_per_s");
        assert!(pps.is_finite() && pps > 0.0);
    }

    // Per-stage breakdown: every pipeline phase plus the end-to-end total,
    // each covering exactly the timed trials, with a sane share of wall
    // time; the phase totals cannot exceed the end-to-end total.
    let per_stage = report.get("per_stage").expect("per_stage section");
    let total_ms = per_stage
        .get("synthesize")
        .and_then(|s| s.get("total_ms"))
        .and_then(Json::as_f64)
        .expect("synthesize total");
    for stage in PHASES.iter().chain(["synthesize"].iter()) {
        let s = per_stage.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
        assert_eq!(s.get("count").and_then(Json::as_f64), Some(2.0), "{stage}");
        for key in ["mean_us", "p50_us", "p90_us", "total_ms", "share_pct"] {
            let v = s.get(key).and_then(Json::as_f64).expect(key);
            assert!(v.is_finite() && v >= 0.0, "{stage}.{key} = {v}");
        }
        let share = s.get("share_pct").and_then(Json::as_f64).expect("share");
        assert!(share <= 100.0 + 1e-9, "{stage} share {share}");
        assert!(
            s.get("total_ms").and_then(Json::as_f64).expect("total") <= total_ms + 1e-9,
            "{stage} exceeds the end-to-end total"
        );
    }

    // Telemetry section: recording was live and allocation-free both ways.
    let tel = report.get("telemetry").expect("telemetry section");
    assert_eq!(tel.get("level").and_then(Json::as_str), Some("spans"));
    assert_eq!(tel.get("allocs_per_packet_enabled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(tel.get("allocs_per_packet_disabled").and_then(Json::as_f64), Some(0.0));
    assert!(tel.get("span_events_captured").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
    let counters = tel.get("counters").expect("counters object");
    assert_eq!(counters.get("packets_synthesized").and_then(Json::as_f64), Some(2.0));
}

#[test]
fn runtime_profile_with_telemetry_off_reports_zero_telemetry_allocs() {
    let report = run_profile("bluefi_runtime_profile_smoke_off.json", "off");
    // A disabled recorder leaves no per-stage data behind...
    let per_stage = report.get("per_stage").expect("per_stage section");
    for stage in PHASES {
        assert!(per_stage.get(stage).is_none(), "{stage} recorded while off");
    }
    // ...and the telemetry section still proves the zero-allocation claim
    // for the disabled configuration.
    let tel = report.get("telemetry").expect("telemetry section");
    assert_eq!(tel.get("level").and_then(Json::as_str), Some("off"));
    assert_eq!(tel.get("allocs_per_packet_enabled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(tel.get("allocs_per_packet_disabled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(tel.get("span_events_captured").and_then(Json::as_f64), Some(0.0));
    // The hot path itself stays allocation-free either way.
    let allocs = report.get("allocs_per_packet").expect("allocs section");
    assert_eq!(allocs.get("steady_state").and_then(Json::as_f64), Some(0.0));
}
