//! Smoke test: the runtime profile binary runs, emits schema-valid JSON,
//! and — since tests build with debug assertions and the default
//! `contracts` feature — proves the zero-allocation steady state and the
//! parallel/sequential bit-exactness on a tiny workload.

use bluefi_core::json::Json;
use std::process::Command;

#[test]
fn runtime_profile_emits_valid_report() {
    let out_path = std::env::temp_dir().join("bluefi_runtime_profile_smoke.json");
    let status = Command::new(env!("CARGO_BIN_EXE_runtime_profile"))
        .args(["--trials", "2", "--out"])
        .arg(&out_path)
        .status()
        .expect("runtime_profile must launch");
    assert!(status.success(), "runtime_profile exited with {status}");

    let text = std::fs::read_to_string(&out_path).expect("report file must exist");
    let report = Json::parse(&text).expect("report must be valid JSON");

    // Top-level schema.
    assert_eq!(report.get("trials").and_then(Json::as_f64), Some(2.0));
    assert!(report.get("host_cpus").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
    let single = report.get("single_packet").expect("single_packet section");
    for key in ["mean_us", "median_us", "p10_us", "p90_us"] {
        let v = single.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite() && v > 0.0, "{key} = {v}");
    }

    // This test binary is a debug+contracts build, so the probe must be
    // live and the steady state must be allocation-free.
    assert_eq!(report.get("contracts_enabled").and_then(Json::as_bool), Some(true));
    let allocs = report.get("allocs_per_packet").expect("allocs section");
    assert_eq!(allocs.get("measured").and_then(Json::as_bool), Some(true));
    assert_eq!(
        allocs.get("steady_state").and_then(Json::as_f64),
        Some(0.0),
        "hot path must not allocate after warm-up"
    );
    assert!(allocs.get("warmup").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);

    // Batch section: every thread config reports a finite throughput, and
    // the parallel results matched the sequential reference bit-for-bit.
    let batch = report.get("batch").expect("batch section");
    assert_eq!(batch.get("bit_exact").and_then(Json::as_bool), Some(true));
    let threads = batch.get("threads").and_then(Json::as_arr).expect("threads array");
    assert!(!threads.is_empty());
    for t in threads {
        assert!(t.get("workers").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
        let pps = t.get("packets_per_s").and_then(Json::as_f64).expect("packets_per_s");
        assert!(pps.is_finite() && pps > 0.0);
    }

    let _ = std::fs::remove_file(&out_path);
}
