//! Figure 7c: BlueFi RSSI traces while the WiFi channel is saturated with
//! background traffic (heavy co-channel interference bursts).
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig7c_background [--duration 120]`

use bluefi_bench::{arg_f64, summarize, Reporter};
use bluefi_sim::devices::DeviceModel;
use bluefi_sim::experiments::{run_beacon_sessions, SessionConfig, SessionTrial, TxKind};
use bluefi_wifi::ChipModel;

fn main() {
    let duration = arg_f64("--duration", 120.0);
    // One independent saturated-channel session per phone — batched.
    let devices = DeviceModel::all_phones();
    let trials: Vec<SessionTrial> = devices
        .iter()
        .map(|device| {
            let mut cfg = SessionConfig::office(device.clone(), 1.5);
            cfg.duration_s = duration;
            // Saturated channel: almost every packet overlaps a strong burst.
            cfg.channel.interference = Some((0.9, 20.0));
            SessionTrial {
                kind: TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 },
                cfg,
                seed: 0x7C,
            }
        })
        .collect();
    let rows: Vec<Vec<String>> = devices
        .iter()
        .zip(run_beacon_sessions(&trials))
        .map(|(device, trace)| {
            let rssi: Vec<f64> = trace.iter().map(|s| s.rssi_dbm).collect();
            vec![device.name.to_string(), summarize(&rssi), format!("{}", trace.len())]
        })
        .collect();
    let mut rep = Reporter::from_args();
    rep.table(
        "Fig 7c — RSSI under saturated background WiFi traffic",
        &["device", "rssi dBm", "reports"],
        rows,
    );
    rep.note(
        "\npaper shape: all phones keep receiving; only small RSSI \
         fluctuation; iPhone trace still truncates near 110 s.",
    );
    rep.finish();
}
