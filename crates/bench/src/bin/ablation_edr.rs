//! Extension (paper Sec 5.3 future work): EDR modulation over BlueFi.
//! π/4-DQPSK (2 Mbps) and 8DPSK (3 Mbps) are constant-envelope, so the
//! phase-generic pipeline carries them; this bench measures the payload BER
//! through the full chain per scheme.
//!
//! Run: `cargo run --release -p bluefi-bench --bin ablation_edr`

use bluefi_bench::Reporter;
use bluefi_bt::edr::{edr_demodulate, edr_modulate_phase, EdrScheme};
use bluefi_core::par::par_map;
use bluefi_bt::gfsk::{modulate_phase, GfskParams};
use bluefi_bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi_core::pipeline::BlueFi;
use bluefi_core::qam::Quantizer;
use bluefi_core::reversal::{coded_stream, extract_psdu, reverse_fec};
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi_wifi::ChipModel;

fn pattern(n: usize, k: usize) -> Vec<bool> {
    (0..n).map(|i| (i * k + 1) % 5 < 2).collect()
}

/// Pushes a phase trajectory through the full pipeline and returns the
/// chip-transmitted PPDU.
fn through_pipeline(phase: Vec<f64>, offset_hz: f64) -> bluefi_wifi::Ppdu {
    let bf = BlueFi::default();
    let p = GfskParams::default();
    let theta = bf.cp.make_compatible(&phase, offset_hz / p.sample_rate_hz);
    let bodies = bf.cp.strip_cp(&theta);
    let quant = Quantizer::new(bluefi_wifi::Modulation::Qam64, bf.scale);
    let symbols: Vec<_> = bodies.iter().map(|b| quant.quantize_body(b)).collect();
    let (coded, weights) = coded_stream(&symbols, bf.strategy.mcs(), 13.0, &bf.weights);
    let mut rev = reverse_fec(&coded, &weights, bf.strategy, 13.0);
    let (psdu, _) = extract_psdu(&mut rev.scrambled, 71);
    ChipModel::ar9331().transmit_with_seed(&psdu, bf.strategy.mcs(), 18.0, 71)
}

fn main() {
    let p = GfskParams::default();
    let offset_hz = 13.0 * SUBCARRIER_SPACING_HZ;
    let _plan = ChannelPlan::pinned(3, 13.0);
    let mut rows = Vec::new();

    // GFSK baseline (1 Mbps) for context, using the packetized receiver.
    {
        let bits = pattern(120, 5);
        let phase = modulate_phase(&bits, &p, offset_hz);
        let ppdu = through_pipeline(phase, offset_hz);
        let rx = GfskReceiver::new(ReceiverConfig {
            channel_offset_hz: offset_hz,
            ..Default::default()
        });
        let demod = rx.demodulate(&ppdu.iq);
        // Slice at the nominal start (no sync pattern in this raw stream).
        let nominal = 720 + p.guard_bits * p.sps();
        let mut best = usize::MAX;
        for start in nominal - 10..nominal + 10 {
            let errs = (0..bits.len())
                .filter(|&i| {
                    let s0 = start + i * p.sps();
                    let acc: f64 = demod.freq[s0..s0 + p.sps()].iter().sum();
                    (acc > 0.0) != bits[i]
                })
                .count();
            best = best.min(errs);
        }
        rows.push(vec![
            "GFSK (1 Mbps)".into(),
            format!("{best}/{}", bits.len()),
            format!("{:.2}%", 100.0 * best as f64 / bits.len() as f64),
        ]);
    }

    // The two EDR schemes are independent full-pipeline trials — fan them
    // out; rows come back in scheme order.
    let schemes = [
        ("π/4-DQPSK (2 Mbps)", EdrScheme::Dqpsk2),
        ("8DPSK (3 Mbps)", EdrScheme::Dpsk8),
    ];
    rows.extend(par_map(&schemes, |_, &(name, scheme)| {
        let bits = pattern(scheme.bits_per_symbol() * 120, 7);
        let phase = edr_modulate_phase(&bits, scheme, &p, offset_hz);
        let ppdu = through_pipeline(phase, offset_hz);
        let rx = GfskReceiver::new(ReceiverConfig {
            channel_offset_hz: offset_hz,
            filter_halfwidth_hz: 750e3,
            ..Default::default()
        });
        let demod = rx.demodulate(&ppdu.iq);
        let nominal = 720 + p.guard_bits * p.sps();
        let n_sym = bits.len() / scheme.bits_per_symbol();
        let mut best = usize::MAX;
        for start in nominal - 10..nominal + 10 {
            let got = edr_demodulate(&demod.filtered, scheme, p.sps(), start, n_sym);
            best = best.min(got.iter().zip(&bits).filter(|(a, b)| a != b).count());
        }
        vec![
            name.into(),
            format!("{best}/{}", bits.len()),
            format!("{:.2}%", 100.0 * best as f64 / bits.len() as f64),
        ]
    }));
    let mut rep = Reporter::from_args();
    rep.table(
        "Extension — EDR modulation over BlueFi (loopback payload BER)",
        &["scheme", "bit errors", "BER"],
        rows,
    );
    rep.note(
        "\npaper Sec 5.3: \"Some Bluetooth chips are capable of supporting \
         optional modulation modes other than GFSK, and thus increase \
         throughput by up to 3x\" — left as future work there, working here.",
    );
    rep.finish();
}
