//! Figure 7a: dedicated Bluetooth hardware baseline — Pixel/S6 transmitting
//! to the other phones, same conditions as Fig 6.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig7a_dedicated [--duration 30]`

use bluefi_bench::{arg_f64, summarize, Reporter};
use bluefi_sim::devices::{BtTransmitter, DeviceModel};
use bluefi_sim::experiments::{run_beacon_sessions, SessionConfig, SessionTrial, TxKind};
use bluefi_wifi::ChipModel;

fn main() {
    let duration = arg_f64("--duration", 30.0);
    let pairs: [(&str, DeviceModel); 4] = [
        ("Pixel->S6", DeviceModel::s6()),
        ("Pixel->iPhone", DeviceModel::iphone()),
        ("S6->Pixel", DeviceModel::pixel()),
        ("S6->iPhone", DeviceModel::iphone()),
    ];
    // Four dedicated-radio links plus the BlueFi comparability point: all
    // independent sessions, batched together.
    let mut labels: Vec<String> = Vec::new();
    let mut trials: Vec<SessionTrial> = Vec::new();
    for (label, rx_dev) in pairs {
        let tx_name: &'static str = if label.starts_with("Pixel") { "Pixel" } else { "S6" };
        let mut cfg = SessionConfig::office(rx_dev, 1.5);
        cfg.duration_s = duration;
        labels.push(label.to_string());
        trials.push(SessionTrial {
            kind: TxKind::Dedicated(BtTransmitter::phone(tx_name)),
            cfg,
            seed: 0x7A,
        });
    }
    // BlueFi at 8 dBm for the comparability claim.
    let mut cfg = SessionConfig::office(DeviceModel::pixel(), 1.5);
    cfg.duration_s = duration;
    labels.push("BlueFi@8dBm->Pixel".into());
    trials.push(SessionTrial {
        kind: TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 8.0 },
        cfg,
        seed: 0x7A,
    });
    let rows: Vec<Vec<String>> = labels
        .into_iter()
        .zip(run_beacon_sessions(&trials))
        .map(|(label, trace)| {
            let rssi: Vec<f64> = trace.iter().map(|s| s.rssi_dbm).collect();
            vec![label, summarize(&rssi)]
        })
        .collect();
    let mut rep = Reporter::from_args();
    rep.table(
        "Fig 7a — dedicated Bluetooth hardware (high TX power, 1.5 m)",
        &["link", "rssi dBm"],
        rows,
    );
    rep.note(
        "\npaper shape: BlueFi at 8 dBm comparable to dedicated BT chips; \
         at the default 18 dBm BlueFi is expected to do better.",
    );
    rep.finish();
}
