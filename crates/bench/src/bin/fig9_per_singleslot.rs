//! Figure 9: PER of single-slot packets across the Bluetooth channels
//! under one WiFi channel, with FTS4BT-style CRC/Header/NoError buckets —
//! channels adjacent to WiFi pilots suffer.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig9_per_singleslot
//!       [--packets 60] [--distance 1.5]`

use bluefi_apps::audio::{sniff_channel, AudioConfig};
use bluefi_bench::{arg_f64, arg_usize, Reporter};
use bluefi_bt::br::PacketType;
use bluefi_core::par::par_map;
use bluefi_wifi::channels::{bt_channel_freq_hz, subcarrier_in_channel, distance_to_pilot_or_null};

fn main() {
    let n = arg_usize("--packets", 60);
    let distance = arg_f64("--distance", 1.5);
    let cfg = AudioConfig::default();
    // The paper transmits on 10 channels within the WiFi channel; take the
    // even-indexed usable channels (half the channels, as the paper notes).
    let channels: Vec<u8> = bluefi_wifi::channels::usable_bt_channels_in_wifi(cfg.wifi_channel)
        .into_iter()
        .step_by(2)
        .take(10)
        .collect();
    // Each channel sweep is an independent trial with its own seed — fan
    // them out over the batch engine; rows come back in channel order.
    let rows: Vec<Vec<String>> = par_map(&channels, |_, &ch| {
        let counts = sniff_channel(&cfg, ch, PacketType::Dm1, n, distance, 0xF9 + ch as u64);
        let sc = subcarrier_in_channel(bt_channel_freq_hz(ch), cfg.wifi_channel);
        vec![
            format!("{ch}"),
            format!("{sc:+.1}"),
            format!("{:.1}", distance_to_pilot_or_null(sc)),
            format!("{}", counts.no_error),
            format!("{}", counts.crc_error),
            format!("{}", counts.header_error),
            format!("{:.1}%", counts.per() * 100.0),
        ]
    });
    let mut rep = Reporter::from_args();
    rep.table(
        "Fig 9 — single-slot PER by Bluetooth channel (WiFi channel 3)",
        &["bt ch", "subcarrier", "pilot clearance", "no error", "crc err", "hdr err", "PER"],
        rows,
    );
    rep.note(
        "\npaper shape: PER as low as 1.9% on clear channels; much higher \
         adjacent to the pilots (±7, ±21) and the DC null.",
    );
    rep.note(
        "note: DM1 (FEC-protected single-slot) packets — the simulated \
         receiver's residual BER maps DM packets onto the paper's PER range.",
    );
    rep.finish();
}
