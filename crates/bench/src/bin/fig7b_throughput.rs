//! Figure 7b: WiFi iPerf3 throughput under four scenarios — no Bluetooth,
//! BlueFi on the same AP, and dedicated BT on Pixel/S6.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig7b_throughput [--duration 120]`

use bluefi_bench::{arg_usize, Reporter};
use bluefi_dsp::power::{percentile, std_dev};
use bluefi_sim::mac::fig7b_scenarios;
use bluefi_core::rng::{SeedableRng, StdRng};

fn main() {
    let duration = arg_usize("--duration", 120);
    let mut rng = StdRng::seed_from_u64(0x7B);
    let rows: Vec<Vec<String>> = fig7b_scenarios(duration, &mut rng)
        .into_iter()
        .map(|(name, run)| {
            vec![
                name.to_string(),
                format!("{:.1}", run.mean_mbps()),
                format!("{:.1}", run.median_mbps()),
                format!(
                    "[{:.1} .. {:.1}]",
                    percentile(&run.per_second_mbps, 10.0),
                    percentile(&run.per_second_mbps, 90.0)
                ),
                format!("{:.2}", std_dev(&run.per_second_mbps)),
            ]
        })
        .collect();
    let mut rep = Reporter::from_args();
    rep.table(
        "Fig 7b — throughput with concurrent Bluetooth activity (Mbps)",
        &["scenario", "mean", "median", "p10..p90", "sd"],
        rows,
    );
    rep.note("\npaper: baseline 48.8, BlueFi 47.8 (~1 Mbps cost), Pixel 48.6, S6 48.4.");
    rep.finish();
}
