//! Figure 10: PER with 5-slot (DH5) audio packets on the 3 best channels,
//! plus the upper-layer throughput/goodput estimate of Sec 4.7.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig10_per_audio
//!       [--packets 25] [--distance 1.5]`

use bluefi_apps::audio::{ranked_channels, sniff_channel, AudioConfig};
use bluefi_bench::{arg_f64, arg_usize, Reporter};
use bluefi_bt::br::PacketType;
use bluefi_core::par::par_map;

fn main() {
    let n = arg_usize("--packets", 25);
    let distance = arg_f64("--distance", 1.5);
    let cfg = AudioConfig::default();
    let channels: Vec<u8> = ranked_channels(cfg.wifi_channel).into_iter().take(3).collect();
    // Independent per-channel sweeps, fanned out over the batch engine.
    let per_channel = par_map(&channels, |_, &ch| {
        (ch, sniff_channel(&cfg, ch, PacketType::Dm5, n, distance, 0xF10 + ch as u64))
    });
    let mut rows = Vec::new();
    let mut total_ok = 0usize;
    let mut total = 0usize;
    for (ch, counts) in &per_channel {
        total_ok += counts.no_error;
        total += counts.total();
        rows.push(vec![
            format!("{ch}"),
            format!("{}", counts.no_error),
            format!("{}", counts.crc_error),
            format!("{}", counts.header_error),
            format!("{:.1}%", counts.per() * 100.0),
        ]);
    }
    let mut rep = Reporter::from_args();
    rep.table(
        "Fig 10 — 5-slot (DM5) audio-packet PER on the 3 best channels",
        &["bt ch", "no error", "crc err", "hdr err", "PER"],
        rows,
    );
    // Throughput: audio slots = DH5 every 6 slots when the hop matches one
    // of 3 channels out of ~17 -> effective packets/s; goodput applies PER.
    let usable = bluefi_wifi::channels::usable_bt_channels_in_wifi(cfg.wifi_channel).len();
    let hit_rate = channels.len() as f64 / usable as f64;
    let packets_per_s = 1.0e6 / (6.0 * 625.0) * hit_rate;
    let payload_bits = (PacketType::Dm5.max_payload() * 8) as f64;
    let throughput = packets_per_s * payload_bits;
    let goodput = throughput * total_ok as f64 / total.max(1) as f64;
    rep.note(format!(
        "\nupper-layer estimate: throughput {:.1} kbps, goodput {:.1} kbps, overall PER {:.1}%",
        throughput / 1e3,
        goodput / 1e3,
        (1.0 - total_ok as f64 / total.max(1) as f64) * 100.0
    ));
    rep.note("paper: overall PER 23%, throughput 122.5 kbps, goodput 93.4 kbps.");
    rep.finish();
}
