//! Ablation (paper Sec 5.1): why BlueFi requires 802.11n's short guard
//! interval — with 802.11g-style long GI (16-sample CP) the boundary
//! glitches double and performance turns "spotty".
//!
//! Run: `cargo run --release -p bluefi-bench --bin ablation_80211g`

use bluefi_bench::Reporter;
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi_core::cp::CpCompat;
use bluefi_core::par::par_map;
use bluefi_core::pipeline::BlueFi;
use bluefi_core::stages::{waveform_at_stage, Stage};
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;

fn main() {
    let plan = ChannelPlan::pinned(3, 13.0);
    let rx = GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: plan.subcarrier * SUBCARRIER_SPACING_HZ,
        ..Default::default()
    });
    let aa = bluefi_dsp::bits::u64_to_bits_lsb(bluefi_bt::ble::ADV_ACCESS_ADDRESS as u64, 32);
    let mut rows = Vec::new();
    for (name, cp) in [("SGI (802.11n, 8-sample CP)", CpCompat::sgi()), ("LGI (802.11g-style, 16-sample CP)", CpCompat::lgi())] {
        let bf = BlueFi { cp, ..Default::default() };
        // The 6 payload loopbacks are independent — fan them out.
        let payloads: Vec<u8> = (0..6).collect();
        let per_payload = par_map(&payloads, |_, &v| {
            let pdu = AdvPdu {
                pdu_type: AdvPduType::AdvNonconnInd,
                adv_address: [v, 1, 2, 3, 4, 5],
                adv_data: (0..20).map(|i| i ^ v).collect(),
                tx_add: false,
            };
            let air = adv_air_bits(&pdu, 38);
            // The CP-stage waveform isolates the guard-interval effect.
            let wave = waveform_at_stage(&bf, &air, plan, 71, Stage::Cp);
            let demod = rx.demodulate(&wave);
            match rx.synchronize(&demod, &aa, air.len()) {
                None => (150, 150),
                Some(hit) => {
                    let truth = &air[40..];
                    let n = truth.len().min(hit.bits.len());
                    ((0..n).filter(|&i| truth[i] != hit.bits[i]).count(), n)
                }
            }
        });
        let (errs, total) =
            per_payload.into_iter().fold((0usize, 0usize), |(e, t), (de, dt)| (e + de, t + dt));
        rows.push(vec![
            name.to_string(),
            format!("{errs}/{total}"),
            format!("{:.2}%", 100.0 * errs as f64 / total as f64),
        ]);
    }
    let mut rep = Reporter::from_args();
    rep.table(
        "Ablation — guard interval length (CP-stage loopback BER, 6 payloads)",
        &["mode", "bit errors", "BER"],
        rows,
    );
    rep.note(
        "\npaper Sec 2.1.2/5.1: SGI halves the CP corruption; with the long \
         guard interval (802.11a/g) \"the signal can be picked up … but the \
         performance is spotty\", so 802.11g support was dropped.",
    );
    rep.finish();
}
