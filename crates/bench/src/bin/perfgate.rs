//! Performance-regression gate: diffs a fresh `BENCH_runtime.json`
//! against the committed baseline with noise-aware, per-metric-class
//! thresholds, and exits nonzero with a per-metric report when any gated
//! metric regresses. This is what keeps the repo's perf claims (bit-packed
//! FEC reversal, cached beacon patching, zero steady-state allocations)
//! from eroding silently PR over PR.
//!
//! ## Threshold policy
//!
//! Single-CPU CI hosts show large run-to-run variance, so the bounds are
//! relative with an absolute slack floor, per metric class:
//!
//! * **means** — fail above `baseline × 1.6 + 25 µs`
//! * **tails (p90/p99)** — fail above `baseline × 2.0 + 50 µs` (tails are
//!   noisier than means)
//! * **allocations/packet** — any growth fails (the claim is exactly zero)
//! * **speedups / throughput** (higher is better) — fail below
//!   `baseline × 0.6`
//!
//! A gated metric missing from the fresh report fails the gate (schema
//! erosion is a regression too); one missing from the baseline is noted
//! and skipped, so new metrics can be introduced before their baseline.
//!
//! Exit codes: 0 pass, 1 regression, 2 usage/parse error.
//!
//! Run: `cargo run --release -p bluefi-bench --bin perfgate
//!       [--baseline BENCH_baseline.json] [--fresh BENCH_runtime.json]`

use bluefi_bench::{arg_str, Reporter};
use bluefi_core::json::Json;

/// How a metric is judged (see the module docs for the exact bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Latency mean in µs: lower is better, moderate noise.
    MeanUs,
    /// Latency tail (p90/p99) in µs: lower is better, high noise.
    TailUs,
    /// Allocations per packet: must not grow at all.
    Alloc,
    /// Ratio or rate where higher is better (speedups, packets/s).
    HigherBetter,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::MeanUs => "mean",
            Class::TailUs => "tail",
            Class::Alloc => "alloc",
            Class::HigherBetter => "rate",
        }
    }

    /// The worst fresh value the baseline tolerates (floor for
    /// higher-is-better classes, ceiling otherwise).
    fn bound(self, base: f64) -> f64 {
        match self {
            Class::MeanUs => base * 1.6 + 25.0,
            Class::TailUs => base * 2.0 + 50.0,
            Class::Alloc => base,
            Class::HigherBetter => base * 0.6,
        }
    }

    fn regressed(self, base: f64, fresh: f64) -> bool {
        match self {
            Class::HigherBetter => fresh < self.bound(base),
            _ => fresh > self.bound(base),
        }
    }
}

/// The gated metrics: every hard-won performance claim in the repo, by
/// dotted path into the report (`seg[key=value]` selects an array row).
const METRICS: &[(&str, Class)] = &[
    ("single_packet.mean_us", Class::MeanUs),
    ("single_packet.p90_us", Class::TailUs),
    ("repeat_packet.mean_us", Class::MeanUs),
    ("total.mean_us", Class::MeanUs),
    ("per_stage.fec_reversal.mean_us", Class::MeanUs),
    ("per_stage.gfsk_modulate.mean_us", Class::MeanUs),
    ("beacon_fleet.patch_mean_us", Class::MeanUs),
    ("beacon_fleet.patch_p99_us", Class::TailUs),
    ("beacon_fleet.speedup_vs_fleet_cold", Class::HigherBetter),
    ("batch.threads[workers=1].packets_per_s", Class::HigherBetter),
    ("service_soak.requests_per_s", Class::HigherBetter),
    ("allocs_per_packet.steady_state", Class::Alloc),
    ("telemetry.allocs_per_packet_enabled", Class::Alloc),
    ("telemetry.allocs_per_packet_disabled", Class::Alloc),
];

/// Resolves a dotted metric path. A segment `name[key=value]` descends
/// into the array at `name` and picks the first element whose `key`
/// equals `value` (numerically).
fn resolve(doc: &Json, path: &str) -> Option<f64> {
    let mut cur = doc;
    for seg in path.split('.') {
        match seg.split_once('[') {
            Some((name, rest)) => {
                let cond = rest.strip_suffix(']')?;
                let (key, val) = cond.split_once('=')?;
                let want: f64 = val.parse().ok()?;
                let arr = cur.get(name).and_then(Json::as_arr)?;
                cur = arr.iter().find(|e| {
                    e.get(key).and_then(Json::as_f64).is_some_and(|v| v == want)
                })?;
            }
            None => cur = cur.get(seg)?,
        }
    }
    cur.as_f64()
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e:?}"))
}

fn main() {
    let baseline_path = arg_str("--baseline", "BENCH_baseline.json");
    let fresh_path = arg_str("--fresh", "BENCH_runtime.json");
    let mut rep = Reporter::from_args();
    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("perfgate: {err}");
            }
            std::process::exit(2);
        }
    };
    let base_contracts =
        baseline.get("contracts_enabled").and_then(Json::as_bool).unwrap_or(false);
    let fresh_contracts =
        fresh.get("contracts_enabled").and_then(Json::as_bool).unwrap_or(false);

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for &(path, class) in METRICS {
        let base = resolve(&baseline, path);
        let fresh_v = resolve(&fresh, path);
        let (base, fresh_v, verdict) = match (base, fresh_v) {
            (Some(b), Some(f)) => {
                // Alloc counts are only meaningful when both runs probed
                // them (debug + contracts builds); a release run reports 0
                // unmeasured, which must not mask or fake a regression.
                if class == Class::Alloc && !(base_contracts && fresh_contracts) {
                    notes.push(format!("{path}: skipped (allocation probe not enabled in both runs)"));
                    continue;
                }
                let bad = class.regressed(b, f);
                if bad {
                    failures.push(format!(
                        "{path}: {f:.2} vs baseline {b:.2} (bound {:.2})",
                        class.bound(b)
                    ));
                }
                (b, f, if bad { "FAIL" } else { "ok" })
            }
            (Some(_), None) => {
                failures.push(format!("{path}: missing from fresh report"));
                rows.push(vec![
                    path.to_string(),
                    class.label().to_string(),
                    "-".to_string(),
                    "MISSING".to_string(),
                    "-".to_string(),
                    "FAIL".to_string(),
                ]);
                continue;
            }
            (None, _) => {
                notes.push(format!("{path}: no baseline value (skipped)"));
                continue;
            }
        };
        rows.push(vec![
            path.to_string(),
            class.label().to_string(),
            format!("{base:.2}"),
            format!("{fresh_v:.2}"),
            format!("{:.2}", class.bound(base)),
            verdict.to_string(),
        ]);
    }

    rep.table(
        &format!("perfgate — {fresh_path} vs {baseline_path}"),
        &["metric", "class", "baseline", "fresh", "bound", "verdict"],
        rows,
    );
    for n in &notes {
        rep.note(format!("note: {n}"));
    }
    if failures.is_empty() {
        rep.note("\nperfgate: PASS — no gated metric regressed");
        rep.finish();
    } else {
        rep.note(format!(
            "\nperfgate: FAIL — {} metric(s) regressed:",
            failures.len()
        ));
        for f in &failures {
            rep.note(format!("  {f}"));
        }
        rep.finish();
        std::process::exit(1);
    }
}
