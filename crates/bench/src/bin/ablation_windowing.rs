//! Ablation (paper Sec 2.4): CP-pocket construction variants — the paper's
//! split construction vs a geodesic-midpoint alternative we tried and
//! rejected — and the effect of integer-subcarrier carrier snapping (this
//! implementation's addition). Aggregate loopback BER over 8 payloads.
//!
//! Run: `cargo run --release -p bluefi-bench --bin ablation_windowing`

use bluefi_bench::Reporter;
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_core::cp::CpCompat;
use bluefi_core::par::SynthesisBatch;
use bluefi_core::pipeline::BlueFi;
use bluefi_core::verify::transmit;
use bluefi_bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi_wifi::ChipModel;

fn aggregate_ber(bf: &BlueFi, plan: ChannelPlan) -> (usize, usize) {
    let rx = GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: plan.subcarrier * SUBCARRIER_SPACING_HZ,
        ..Default::default()
    });
    let aa = bluefi_dsp::bits::u64_to_bits_lsb(bluefi_bt::ble::ADV_ACCESS_ADDRESS as u64, 32);
    // The 8 payload loopbacks are independent: fan them out with one
    // synthesis scratch per worker (allocation-free after the warm-up).
    let payloads: Vec<u8> = (0..8).collect();
    let per_payload = SynthesisBatch::new(bf).run(&payloads, |bf, scratch, _, &v| {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [v, 2, 3, 4, 5, 6],
            adv_data: (0..24).map(|i| (i * 3) ^ v).collect(),
            tx_add: false,
        };
        let air = adv_air_bits(&pdu, 38);
        let syn = bf.synthesize_at_with(&air, plan, 71, scratch);
        let ppdu = transmit(syn, &ChipModel::ar9331(), 18.0);
        let demod = rx.demodulate(&ppdu.iq);
        match rx.synchronize(&demod, &aa, air.len()) {
            None => (200, 200),
            Some(hit) => {
                let truth = &air[40..];
                let n = truth.len().min(hit.bits.len());
                ((0..n).filter(|&i| truth[i] != hit.bits[i]).count(), n)
            }
        }
    });
    per_payload.into_iter().fold((0, 0), |(e, t), (de, dt)| (e + de, t + dt))
}

fn main() {
    let mut rows = Vec::new();
    for (name, cp, sc) in [
        ("paper split, snapped sc 13", CpCompat::sgi(), 13.0),
        ("paper split, fractional sc 12.8", CpCompat::sgi(), 12.8),
        ("midpoint pockets, snapped sc 13", CpCompat::sgi_midpoint(), 13.0),
        ("midpoint pockets, fractional 12.8", CpCompat::sgi_midpoint(), 12.8),
    ] {
        let bf = BlueFi { cp, ..Default::default() };
        let (errs, total) = aggregate_ber(&bf, ChannelPlan::pinned(3, sc));
        rows.push(vec![
            name.to_string(),
            format!("{errs}/{total}"),
            format!("{:.2}%", 100.0 * errs as f64 / total as f64),
        ]);
    }
    let mut rep = Reporter::from_args();
    rep.table(
        "Ablation — CP pocket construction and carrier snapping (loopback BER, 8 payloads)",
        &["variant", "bit errors", "BER"],
        rows,
    );
    rep.note(
        "\nfindings: the paper's split construction beats midpoint pockets \
         (short full-offset glitches cancel inside the channel filter better \
         than long half-offset ones), and integer-subcarrier snapping \
         (≤62.5 kHz, inside the ±75 kHz Bluetooth carrier tolerance) \
         removes the carrier-phase component of the pocket offset.",
    );
    rep.finish();
}
