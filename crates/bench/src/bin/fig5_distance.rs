//! Figure 5b/5c: RSSI vs time for {AR9331, RTL8811AU} x {Pixel, S6, iPhone}
//! x {near 0.2 m, close 1.5 m, far 4.5 m}, 2-minute sessions at the default
//! 18 dBm.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig5_distance
//!       [--duration 120] [--rate 1]`

use bluefi_bench::{arg_f64, summarize, Reporter};
use bluefi_sim::devices::DeviceModel;
use bluefi_sim::experiments::{run_beacon_sessions, SessionConfig, SessionTrial, TxKind};
use bluefi_wifi::ChipModel;

fn main() {
    let duration = arg_f64("--duration", 120.0);
    let rate = arg_f64("--rate", 1.0);
    let mut rep = Reporter::from_args();
    for chip in [ChipModel::ar9331(), ChipModel::rtl8811au()] {
        // All 9 device x distance sessions are independent: batch them.
        let mut trials = Vec::new();
        let mut labels = Vec::new();
        for device in DeviceModel::all_phones() {
            for (label, dist) in [("near 0.2m", 0.2), ("close 1.5m", 1.5), ("far 4.5m", 4.5)] {
                let mut cfg = SessionConfig::office(device.clone(), dist);
                cfg.duration_s = duration;
                cfg.reports_hz = rate;
                labels.push((device.name.to_string(), label));
                trials.push(SessionTrial {
                    kind: TxKind::BlueFi { chip: chip.clone(), tx_dbm: 18.0 },
                    cfg,
                    seed: 0xF15B + dist as u64,
                });
            }
        }
        let mut rows = Vec::new();
        for ((device, label), trace) in labels.iter().zip(run_beacon_sessions(&trials)) {
            let rssi: Vec<f64> = trace.iter().map(|s| s.rssi_dbm).collect();
            let last_t = trace.last().map(|s| s.t_s).unwrap_or(0.0);
            rows.push(vec![
                device.clone(),
                label.to_string(),
                summarize(&rssi),
                format!("{last_t:.0} s"),
            ]);
        }
        rep.table(
            &format!("Fig 5 ({}) — RSSI dBm: mean/median [p10..p90], trace end", chip.name),
            &["device", "distance", "rssi", "trace ends"],
            rows,
        );
    }
    rep.note(
        "\npaper shape: consistent reception at all distances; S6 6-10 dB \
         below peers; iPhone traces end ~110 s; RTL8811AU noisier than AR9331.",
    );
    rep.finish();
}
