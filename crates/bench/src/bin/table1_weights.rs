//! Table 1: the interleaver's coded-bit -> (subcarrier, bit) mapping and
//! the Viterbi weight classes, regenerated from the implementation.
//!
//! Run: `cargo run --release -p bluefi-bench --bin table1_weights`

use bluefi_bench::Reporter;
use bluefi_core::reversal::WeightProfile;
use bluefi_wifi::{Interleaver, Modulation};

fn main() {
    let il = Interleaver::new(Modulation::Qam64);
    let profile = WeightProfile::default();
    // The paper's example: the Bluetooth spectrum on subcarriers 9..16.
    let bt_center = 12.5;
    let rows: Vec<Vec<String>> = (0..=12)
        .map(|k| {
            let (sc, bit) = il.mapped_location(k);
            vec![
                format!("{k}"),
                format!("subcarrier {sc}, bit {bit}"),
                format!("{}", profile.weight_at(sc, bt_center)),
            ]
        })
        .collect();
    let mut rep = Reporter::from_args();
    rep.table(
        "Table 1 — weight assignment for the modified Viterbi (BT on subcarriers 9..16)",
        &["coded bit", "mapped location", "weight"],
        rows,
    );
    rep.note("\npaper: bit0 -> sc -28 b5 w1 ... bit8 -> sc 8 b4 w100, bit9 -> sc 12 b5 w1000,");
    rep.note("       bit10 -> sc 16 b3 w1000, bit11 -> sc 20 b4 w100, bit12 -> sc 25 b5 w1.");
    rep.finish();
}
