//! Figure 8: the effect of each impairment, applied cumulatively —
//! Baseline, +CP, +QAM, +Pilot/Null, +FEC, +Header — transmitted by the
//! USRP model at equal power and received by each phone.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig8_impairments [--duration 20]`

use bluefi_bench::{arg_f64, summarize, Reporter};
use bluefi_core::stages::Stage;
use bluefi_sim::devices::DeviceModel;
use bluefi_sim::experiments::{run_beacon_sessions, SessionConfig, SessionTrial, TxKind};

fn main() {
    let duration = arg_f64("--duration", 20.0);
    let mut rep = Reporter::from_args();
    for device in DeviceModel::all_phones() {
        // One independent USRP session per stage — batched; the baseline
        // delta is computed after the fan-in (stage order is preserved).
        let stages = Stage::all();
        let trials: Vec<SessionTrial> = stages
            .iter()
            .map(|&stage| {
                let mut cfg = SessionConfig::office(device.clone(), 1.5);
                cfg.duration_s = duration;
                SessionTrial { kind: TxKind::UsrpStage { stage, tx_dbm: 10.0 }, cfg, seed: 0xF8 }
            })
            .collect();
        let mut rows = Vec::new();
        let mut baseline_mean = None;
        for (&stage, trace) in stages.iter().zip(run_beacon_sessions(&trials)) {
            let rssi: Vec<f64> = trace.iter().map(|s| s.rssi_dbm).collect();
            let m = bluefi_dsp::power::mean(&rssi);
            if stage == Stage::Baseline {
                baseline_mean = Some(m);
            }
            let delta = baseline_mean.map(|b| m - b).unwrap_or(0.0);
            rows.push(vec![
                stage.label().to_string(),
                summarize(&rssi),
                format!("{delta:+.1}"),
            ]);
        }
        rep.table(
            &format!("Fig 8 ({}) — cumulative impairments at equal TX power", device.name),
            &["stage", "rssi dBm", "Δ vs baseline"],
            rows,
        );
    }
    rep.note(
        "\npaper shape: ~1 dB degradation per stage, ~2 dB overall; +FEC \
         and +Header may slightly improve over the previous stage.",
    );
    rep.finish();
}
