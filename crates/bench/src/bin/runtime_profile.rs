//! Runtime profile of the synthesis hot path (paper Sec 4.8): single-packet
//! latency through a warm scratch, a per-stage timing breakdown from the
//! telemetry recorder, steady-state allocations per packet with telemetry
//! both enabled and disabled (via the self-reporting probe in
//! `bluefi_dsp::contracts` — debug/contracts builds only), and batch
//! throughput at a host-clamped worker ladder on the Fig 9 workload.
//!
//! Telemetry runs at the `spans` level unless `BLUEFI_TELEMETRY` overrides
//! it (or `--trace-out` forces `trace`); the worker ladder is clamped to
//! the host CPU count unless `BLUEFI_THREADS` overrides (oversubscribed
//! rows only measure scheduler churn).
//!
//! The recorder is reset at every section boundary (and per sweep point),
//! so each reported section's counters and spans cover only that section
//! — never cumulative totals from earlier ones.
//!
//! `--trace-out PATH` additionally captures causal per-packet traces and
//! writes them as Chrome `trace_event` JSON (open in Perfetto or
//! `chrome://tracing`): every synthesis is a parent-linked span tree with
//! a trace ID, worker attribution and the five pipeline phases (or the
//! patch-path stages) as children.
//!
//! Writes a machine-readable report next to the repo root by default.
//!
//! Run: `BLUEFI_TELEMETRY=spans cargo run --release -p bluefi-bench
//!       --bin runtime_profile [--trials 100] [--out BENCH_runtime.json]
//!       [--trace-out BENCH_trace.json]`

use bluefi_bench::{arg_str, arg_usize, Reporter};
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_core::json::Json;
use bluefi_core::par::{clamped_workers, host_cpus, worker_count, BatchJob, SynthesisBatch};
use bluefi_core::pipeline::{BlueFi, PhaseMode, SynthesisScratch};
use bluefi_core::reversal::DecodeStrategy;
use bluefi_core::telemetry::{self, Level, SpanKind};
use bluefi_core::template::{CachedEngine, CachedScratch};
use bluefi_dsp::contracts;
use bluefi_dsp::power::{mean, percentile_sorted};
use bluefi_wifi::channels::{bt_channel_freq_hz, plan_channel, usable_bt_channels_in_wifi};
use std::time::Instant;

fn beacon_bits(variant: u8) -> Vec<bool> {
    let pdu = AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [variant, 0x0E, 0xF1, 0x00, 0x00, 0x01],
        adv_data: (0..30).map(|i| (i * 5 + 1) as u8 ^ variant).collect(),
        tx_add: false,
    };
    adv_air_bits(&pdu, 38)
}

/// Steady-state allocations per packet at the current telemetry level.
/// Cycles distinct payloads so the claim covers cold decodes, not just the
/// memoized repeat path.
fn steady_allocs_per_packet(
    bf: &BlueFi,
    variants: &[Vec<bool>],
    plan: bluefi_wifi::channels::ChannelPlan,
    trials: usize,
) -> (f64, u64) {
    let mut cold = SynthesisScratch::new();
    contracts::probe_reset();
    bf.synthesize_at_with(&variants[0], plan, 71, &mut cold);
    let warmup = contracts::probe_count();
    for b in variants {
        bf.synthesize_at_with(b, plan, 71, &mut cold); // settle capacities
    }
    contracts::probe_reset();
    for i in 0..trials {
        bf.synthesize_at_with(&variants[i % variants.len()], plan, 71, &mut cold);
    }
    (contracts::probe_count() as f64 / trials as f64, warmup)
}

fn main() {
    let trials = arg_usize("--trials", 100).max(1);
    let out_path = arg_str("--out", "BENCH_runtime.json");
    let trace_out = arg_str("--trace-out", "");
    let tracing = !trace_out.is_empty();
    let mut rep = Reporter::from_args();
    // The profile defaults to full span recording (this binary exists to
    // look inside the pipeline); BLUEFI_TELEMETRY still overrides, and
    // --trace-out forces the trace level (the export needs trace events).
    let env = telemetry::env_level();
    let level = if tracing { Level::Trace } else { env.unwrap_or(Level::Spans) };
    telemetry::set_level(level);
    for w in telemetry::warnings() {
        rep.note(format!("telemetry warning: {w}"));
    }
    // Per-section causal-trace captures, merged into one export at the end
    // (each section boundary resets the recorder, so each capture must
    // happen first).
    let mut trace_sections: Vec<telemetry::trace::TraceSnapshot> = Vec::new();
    let bf = BlueFi::default();
    // lint: allow(panic) channel 38 = 2426 MHz is plannable by construction
    let plan = plan_channel(2.426e9).expect("advertising channel must be plannable");
    // Distinct payload variants so consecutive trials never repeat a coded
    // target: the FEC-reversal scratch memoizes repeat decodes, and a
    // single-payload loop would time the memo, not the engine. Cold-path
    // latency cycles the variants; the memoized path is measured
    // separately below as `repeat_packet`.
    let variants: Vec<Vec<bool>> = (0..8u8).map(beacon_bits).collect();
    let bits = variants[0].clone();

    // -- Single-packet latency through a warm scratch ---------------------
    let mut scratch = SynthesisScratch::new();
    bf.synthesize_at_with(&bits, plan, 71, &mut scratch); // warm-up
    telemetry::reset(); // per-stage stats cover only the timed trials
    let lat_us: Vec<f64> = (0..trials)
        .map(|i| {
            // Offset by one so trial 0 does not repeat the warm-up payload.
            let b = &variants[(i + 1) % variants.len()];
            let t0 = Instant::now();
            std::hint::black_box(bf.synthesize_at_with(b, plan, 71, &mut scratch));
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();

    // -- Per-stage breakdown from the telemetry recorder ------------------
    // The enclosing `synthesize` span is the denominator, not a stage: it
    // is reported as a separate `total` object so the child shares sum to
    // ≤100% (the old schema put it inside `per_stage` at share 100, and
    // naive consumers summing shares read ~200%).
    let snap = telemetry::snapshot();
    let total_ns: u64 = snap
        .span_stat(SpanKind::Synthesize)
        .map(|s| s.hist.sum)
        .unwrap_or(0);
    let mut stage_rows = Vec::new();
    let mut per_stage_json = Vec::new();
    let mut total_json = Json::Null;
    let mut phases: Vec<SpanKind> = SpanKind::pipeline_phases().to_vec();
    phases.push(SpanKind::Synthesize);
    for kind in phases {
        let Some(stat) = snap.span_stat(kind) else { continue };
        let h = &stat.hist;
        let us = |v: Option<u64>| v.map(|n| n as f64 / 1e3).unwrap_or(0.0);
        let is_total = kind == SpanKind::Synthesize;
        let share = if total_ns > 0 { 100.0 * h.sum as f64 / total_ns as f64 } else { 0.0 };
        stage_rows.push(vec![
            if is_total { format!("{} (total)", kind.name()) } else { kind.name().to_string() },
            format!("{}", h.count),
            format!("{:.1}", h.mean().map(|m| m / 1e3).unwrap_or(0.0)),
            format!("{:.1}", us(h.percentile(50.0))),
            format!("{:.1}", us(h.percentile(90.0))),
            format!("{:.3}", h.sum as f64 / 1e6),
            format!("{share:.1}%"),
        ]);
        let mut fields = vec![
            ("count", Json::Num(h.count as f64)),
            ("mean_us", Json::Num(h.mean().map(|m| m / 1e3).unwrap_or(0.0))),
            ("p50_us", Json::Num(us(h.percentile(50.0)))),
            ("p90_us", Json::Num(us(h.percentile(90.0)))),
            ("total_ms", Json::Num(h.sum as f64 / 1e6)),
        ];
        if is_total {
            total_json = Json::obj(fields);
        } else {
            fields.push(("share_pct", Json::Num(share)));
            per_stage_json.push((kind.name(), Json::obj(fields)));
        }
    }

    // -- Repeat-packet latency (decode memo) ------------------------------
    // Re-synthesizing an unchanged payload — the beacon retransmission
    // case — is served from the FEC-reversal memo; measure it separately
    // so the cold numbers above stay honest.
    let counter_value = |snap: &telemetry::Snapshot, name: &str| -> u64 {
        snap.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v).unwrap_or(0)
    };
    bf.synthesize_at_with(&bits, plan, 71, &mut scratch); // prime the memo
    let memo_before = counter_value(&telemetry::snapshot(), "viterbi_memo_hits");
    let rep_us: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(bf.synthesize_at_with(&bits, plan, 71, &mut scratch));
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();

    // Section boundary: latency/per-stage/repeat numbers are final; drain
    // so the next section starts from zero. Traces are captured first —
    // the reset inside `drain_section` clears the trace rings too.
    if tracing {
        trace_sections.push(telemetry::trace::snapshot());
    }
    let repeat_section = telemetry::drain_section();
    let memo_hits = counter_value(&repeat_section, "viterbi_memo_hits") - memo_before;

    // -- Steady-state allocations per packet ------------------------------
    // The probe only counts in contracts+debug builds; release builds
    // report the probe as unmeasured rather than a misleading zero. The
    // zero-alloc claim must hold with telemetry recording AND without.
    let measured = contracts::enabled();
    let (steady_enabled, warmup_allocs) = steady_allocs_per_packet(&bf, &variants, plan, trials);
    telemetry::set_level(Level::Off);
    let (steady_disabled, _) = steady_allocs_per_packet(&bf, &variants, plan, trials);
    telemetry::set_level(level);

    // Section boundary after the allocation probes.
    if tracing {
        trace_sections.push(telemetry::trace::snapshot());
    }
    telemetry::drain_section();

    // -- Batch throughput on the Fig 9 workload ---------------------------
    // One beacon per usable even-indexed Bluetooth channel, repeated until
    // the batch is large enough to time. The ladder is clamped to the host
    // CPU count (BLUEFI_THREADS overrides): oversubscribed rows measured
    // scheduler churn, not the engine (the old 0.92x "speedups").
    let channels: Vec<u8> = usable_bt_channels_in_wifi(3).into_iter().step_by(2).take(10).collect();
    let n_jobs = (trials * 2).max(8);
    let jobs: Vec<BatchJob> = (0..n_jobs)
        .map(|k| {
            let ch = channels[k % channels.len()];
            // lint: allow(panic) usable channels are plannable by construction
            let plan = plan_channel(bt_channel_freq_hz(ch)).expect("usable channel plans");
            BatchJob { bits: beacon_bits((k % 251) as u8), plan, seed: 71 }
        })
        .collect();
    let requested = vec![1usize, 2, 4, worker_count()];
    let mut thread_counts: Vec<usize> = requested.iter().map(|&w| clamped_workers(w)).collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let clamped = {
        let mut r = requested.clone();
        r.sort_unstable();
        r.dedup();
        r != thread_counts
    };
    let mut batch_rows = Vec::new();
    let mut batch_json = Vec::new();
    let mut t1_s = 0.0f64;
    let mut reference = None;
    let mut bit_exact = true;
    for &w in &thread_counts {
        let batch = SynthesisBatch::with_workers(&bf, w);
        batch.synthesize(&jobs[..jobs.len().min(w * 2)]); // warm per-thread state
        let t0 = Instant::now();
        let results = batch.synthesize(&jobs);
        let dt = t0.elapsed().as_secs_f64();
        if w == 1 {
            t1_s = dt;
            reference = Some(results.iter().map(|s| s.psdu.clone()).collect::<Vec<_>>());
        } else if let Some(r) = &reference {
            bit_exact &= results.len() == r.len()
                && results.iter().zip(r).all(|(s, p)| &s.psdu == p);
        }
        let speedup = if dt > 0.0 && t1_s > 0.0 { t1_s / dt } else { 1.0 };
        batch_rows.push(vec![
            format!("{w}"),
            format!("{:.3}", dt),
            format!("{:.1}", n_jobs as f64 / dt),
            format!("{speedup:.2}x"),
        ]);
        batch_json.push(Json::obj(vec![
            ("workers", Json::Num(w as f64)),
            ("seconds", Json::Num(dt)),
            ("packets_per_s", Json::Num(n_jobs as f64 / dt)),
            ("speedup_vs_1", Json::Num(speedup)),
        ]));
    }
    if tracing {
        // The timed ladder above is host-clamped (often to one worker), so
        // force a small two-worker fan-out here — untimed — so the trace
        // export always demonstrates cross-worker attribution.
        let demo = SynthesisBatch::with_workers(&bf, 2);
        std::hint::black_box(demo.synthesize(&jobs[..jobs.len().min(8)]));
    }

    // Section boundary after batch throughput.
    if tracing {
        trace_sections.push(telemetry::trace::snapshot());
    }
    telemetry::drain_section();

    // -- Beacon-fleet template cache --------------------------------------
    // The production beacon-fleet shape: one payload class per key, with a
    // rotating counter in the trailing byte. The first synthesis caches a
    // template; every later packet takes the GF(2) delta-patch path
    // (`core::template`), which must be an order of magnitude faster than
    // cold synthesis while staying bit-exact (conformance pins exactness).
    let fleet_bf = BlueFi {
        strategy: DecodeStrategy::Realtime,
        phase: PhaseMode::Anchored,
        ..BlueFi::default()
    };
    let n_fleet = trials.clamp(20, 120);
    let fleet_base = bits.clone();
    let fleet_packet = |counter: usize| -> Vec<bool> {
        let mut b = fleet_base.clone();
        let n = b.len();
        let c = (counter % 256) as u8;
        for bit in 0..8 {
            b[n - 8 + bit] ^= c >> bit & 1 == 1;
        }
        b
    };
    let fleet_payloads: Vec<Vec<bool>> = (0..n_fleet).map(fleet_packet).collect();

    // Cold baseline: the identical anchored real-time pipeline, no cache.
    let mut fleet_cold_scratch = SynthesisScratch::new();
    fleet_bf.synthesize_at_with(&fleet_payloads[0], plan, 71, &mut fleet_cold_scratch);
    let fleet_cold_us: Vec<f64> = fleet_payloads
        .iter()
        .map(|b| {
            let t0 = Instant::now();
            std::hint::black_box(fleet_bf.synthesize_at_with(b, plan, 71, &mut fleet_cold_scratch));
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();

    // Patch latency: prime the template and warm every buffer on the same
    // mutation set, then time each cache-hit packet individually.
    let fleet_engine = CachedEngine::new(fleet_bf.clone());
    let mut fleet_scratch = CachedScratch::new();
    for b in &fleet_payloads {
        fleet_engine.synthesize_at_with(b, plan, 71, &mut fleet_scratch);
    }
    let fleet_before = telemetry::snapshot();
    let patch_us: Vec<f64> = fleet_payloads
        .iter()
        .map(|b| {
            let t0 = Instant::now();
            std::hint::black_box(fleet_engine.synthesize_at_with(b, plan, 71, &mut fleet_scratch));
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    // Section boundary after the fleet cold/patch comparison (the drained
    // snapshot doubles as the section's counter readout); each sweep point
    // below then drains again so its counters are per-point.
    if tracing {
        trace_sections.push(telemetry::trace::snapshot());
    }
    let fleet_after = telemetry::drain_section();
    let fleet_hits =
        counter_value(&fleet_after, "template_hit") - counter_value(&fleet_before, "template_hit");

    // Hit-rate sweep: round-robin K distinct scrambler seeds (K distinct
    // templates) over the stream so the first use of each key misses and
    // the rest hit — K = N(1 − target) sets the steady hit rate.
    let sweep_targets = [0.0f64, 50.0, 95.0, 100.0];
    let mut sweep_rows = Vec::new();
    let mut sweep_json = Vec::new();
    for &target in &sweep_targets {
        let k = (((n_fleet as f64) * (1.0 - target / 100.0)).round().max(1.0) as usize)
            .min(n_fleet)
            .min(126);
        let seeds: Vec<u8> = (0..k).map(|i| (i % 126 + 1) as u8).collect();
        let engine = CachedEngine::new(fleet_bf.clone());
        let mut scratch = CachedScratch::new();
        let t0 = Instant::now();
        for (i, b) in fleet_payloads.iter().enumerate() {
            std::hint::black_box(engine.synthesize_at_with(b, plan, seeds[i % k], &mut scratch));
        }
        let dt = t0.elapsed().as_secs_f64();
        // Per-point boundary: the drained snapshot is this point's counter
        // readout, and the reset means the next point (and the next
        // section) starts from zero. The preceding section boundary
        // guarantees the first point starts clean too.
        if tracing {
            trace_sections.push(telemetry::trace::snapshot());
        }
        let point = telemetry::drain_section();
        let hits = counter_value(&point, "template_hit");
        let misses = counter_value(&point, "template_miss");
        let observed = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
        let pps = n_fleet as f64 / dt;
        sweep_rows.push(vec![
            format!("{target:.0}%"),
            format!("{observed:.0}%"),
            format!("{k}"),
            format!("{:.0}", pps),
        ]);
        sweep_json.push(Json::obj(vec![
            ("target_hit_pct", Json::Num(target)),
            ("observed_hit_pct", Json::Num(observed)),
            ("distinct_keys", Json::Num(k as f64)),
            ("packets_per_s", Json::Num(pps)),
        ]));
    }

    // -- Service soak (daemon transport overhead) -------------------------
    // The full `bluefi-service` stack — unix socket, frame codec, bounded
    // queue, worker pool — over the deterministic mock backend, so the
    // requests/s number isolates transport cost from synthesis cost.
    let soak_clients = 16usize;
    let soak_reqs = 25usize;
    let soak_path = std::env::temp_dir().join(format!("bluefi-profile-{}.sock", std::process::id()));
    let soak_path = soak_path.to_string_lossy().to_string();
    let soak_server = bluefi_service::Server::spawn(
        &soak_path,
        std::sync::Arc::new(bluefi_service::MockBackend::new()),
        bluefi_service::ServiceConfig::default(),
    )
    // lint: allow(panic) a fresh socket in the temp dir must bind
    .expect("bind soak socket");
    let soak_bits = &variants[0];
    let soak_ok = std::sync::atomic::AtomicU64::new(0);
    let soak_t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..soak_clients {
            let path = &soak_path;
            let ok = &soak_ok;
            s.spawn(move || {
                let Ok(mut client) = bluefi_service::ServiceClient::connect(path) else {
                    return;
                };
                let _ = client.set_timeout(std::time::Duration::from_secs(10));
                let channel = [10u8, 24, 50][c % 3];
                for _ in 0..soak_reqs {
                    if client.synthesize(soak_bits, channel, 71).is_ok() {
                        ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let soak_dt = soak_t0.elapsed().as_secs_f64();
    let soak_total = (soak_clients * soak_reqs) as u64;
    let soak_ok = soak_ok.into_inner();
    let soak_rps = soak_ok as f64 / soak_dt.max(1e-9);
    soak_server.drain();
    let soak_stopped = soak_server.shutdown();
    let soak_stats = soak_stopped.stats();

    // Section boundary after the soak (the service spans/counters feed the
    // same recorder).
    if tracing {
        trace_sections.push(telemetry::trace::snapshot());
    }
    let soak_section = telemetry::drain_section();
    let soak_shed = counter_value(&soak_section, "service_shed");

    // -- Report -----------------------------------------------------------
    // Sort the latency series once; all percentiles read from it.
    let mut lat_sorted = lat_us.clone();
    lat_sorted.sort_by(|a, b| a.total_cmp(b));
    let mut rep_sorted = rep_us.clone();
    rep_sorted.sort_by(|a, b| a.total_cmp(b));
    rep.table(
        "Runtime profile — single-packet synthesis latency (warm scratch)",
        &["payload", "mean µs", "median µs", "p10 µs", "p90 µs", "trials"],
        vec![
            vec![
                format!("cold ({} variants)", variants.len()),
                format!("{:.1}", mean(&lat_us)),
                format!("{:.1}", percentile_sorted(&lat_sorted, 50.0)),
                format!("{:.1}", percentile_sorted(&lat_sorted, 10.0)),
                format!("{:.1}", percentile_sorted(&lat_sorted, 90.0)),
                format!("{trials}"),
            ],
            vec![
                format!("repeated (memo, {memo_hits} hits)"),
                format!("{:.1}", mean(&rep_us)),
                format!("{:.1}", percentile_sorted(&rep_sorted, 50.0)),
                format!("{:.1}", percentile_sorted(&rep_sorted, 10.0)),
                format!("{:.1}", percentile_sorted(&rep_sorted, 90.0)),
                format!("{trials}"),
            ],
        ],
    );
    if !stage_rows.is_empty() {
        rep.table(
            &format!("Runtime profile — per-stage breakdown (telemetry level: {})", level.name()),
            &["stage", "count", "mean µs", "p50 µs", "p90 µs", "total ms", "share"],
            stage_rows,
        );
    } else {
        rep.note(format!(
            "\nper-stage breakdown unavailable (telemetry level: {}; set \
             BLUEFI_TELEMETRY=counters or spans)",
            level.name()
        ));
    }
    if measured {
        rep.note(format!(
            "\nallocations/packet: {steady_enabled:.2} steady-state with telemetry {}, \
             {steady_disabled:.2} with telemetry off ({warmup_allocs} during warm-up) \
             over {trials} packets",
            level.name()
        ));
    } else {
        rep.note(
            "\nallocations/packet: not measured (probe requires a debug build \
             with the `contracts` feature; run without --release)",
        );
    }
    let mut patch_sorted = patch_us.clone();
    patch_sorted.sort_by(|a, b| a.total_cmp(b));
    let mut fleet_cold_sorted = fleet_cold_us.clone();
    fleet_cold_sorted.sort_by(|a, b| a.total_cmp(b));
    let patch_mean = mean(&patch_us);
    let fleet_cold_mean = mean(&fleet_cold_us);
    rep.table(
        &format!(
            "Runtime profile — beacon fleet, template cache ({n_fleet} packets, \
             counter mutations)"
        ),
        &["path", "mean µs", "p50 µs", "p90 µs", "p99 µs", "packets/s"],
        vec![
            vec![
                "cold (anchored realtime)".to_string(),
                format!("{fleet_cold_mean:.1}"),
                format!("{:.1}", percentile_sorted(&fleet_cold_sorted, 50.0)),
                format!("{:.1}", percentile_sorted(&fleet_cold_sorted, 90.0)),
                format!("{:.1}", percentile_sorted(&fleet_cold_sorted, 99.0)),
                format!("{:.0}", 1e6 / fleet_cold_mean.max(1e-9)),
            ],
            vec![
                format!("cached patch ({fleet_hits} hits)"),
                format!("{patch_mean:.1}"),
                format!("{:.1}", percentile_sorted(&patch_sorted, 50.0)),
                format!("{:.1}", percentile_sorted(&patch_sorted, 90.0)),
                format!("{:.1}", percentile_sorted(&patch_sorted, 99.0)),
                format!("{:.0}", 1e6 / patch_mean.max(1e-9)),
            ],
        ],
    );
    rep.note(format!(
        "\ncache-hit patch speedup: {:.1}x vs the cold single-packet mean \
         ({:.1} µs), {:.1}x vs the anchored real-time cold path ({:.1} µs)",
        mean(&lat_us) / patch_mean.max(1e-9),
        mean(&lat_us),
        fleet_cold_mean / patch_mean.max(1e-9),
        fleet_cold_mean,
    ));
    rep.table(
        "Runtime profile — beacon fleet, hit-rate sweep",
        &["target hit", "observed", "keys", "packets/s"],
        sweep_rows,
    );
    rep.table(
        &format!("Runtime profile — batch throughput, {n_jobs} packets (Fig 9 workload)"),
        &["workers", "seconds", "packets/s", "speedup"],
        batch_rows,
    );
    rep.note(format!(
        "\nparallel output bit-exact with sequential: {}",
        if bit_exact { "yes" } else { "NO — determinism violated" }
    ));
    rep.table(
        "Runtime profile — service soak (mock backend, transport overhead)",
        &["clients", "requests", "ok", "shed", "seconds", "requests/s"],
        vec![vec![
            format!("{soak_clients}"),
            format!("{soak_total}"),
            format!("{soak_ok}"),
            format!("{soak_shed}"),
            format!("{soak_dt:.3}"),
            format!("{soak_rps:.0}"),
        ]],
    );
    let cpus = host_cpus();
    if clamped {
        rep.note(format!(
            "note: worker ladder clamped to the {cpus}-CPU host (set \
             BLUEFI_THREADS to force oversubscription)"
        ));
    }
    if cpus < 2 {
        rep.note(format!(
            "note: this host exposes {cpus} CPU — thread speedup is bounded \
             at 1x here; rerun on a multi-core host for the scaling numbers"
        ));
    }

    let report = Json::obj(vec![
        ("trials", Json::Num(trials as f64)),
        ("host_cpus", Json::Num(cpus as f64)),
        ("contracts_enabled", Json::Bool(measured)),
        (
            "single_packet",
            Json::obj(vec![
                ("mean_us", Json::Num(mean(&lat_us))),
                ("median_us", Json::Num(percentile_sorted(&lat_sorted, 50.0))),
                ("p10_us", Json::Num(percentile_sorted(&lat_sorted, 10.0))),
                ("p90_us", Json::Num(percentile_sorted(&lat_sorted, 90.0))),
                ("distinct_payloads", Json::Num(variants.len() as f64)),
            ]),
        ),
        (
            "repeat_packet",
            Json::obj(vec![
                ("mean_us", Json::Num(mean(&rep_us))),
                ("median_us", Json::Num(percentile_sorted(&rep_sorted, 50.0))),
                ("memo_hits", Json::Num(memo_hits as f64)),
            ]),
        ),
        (
            "per_stage",
            Json::Obj(
                per_stage_json
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        ("total", total_json),
        (
            "allocs_per_packet",
            Json::obj(vec![
                ("measured", Json::Bool(measured)),
                ("steady_state", Json::Num(steady_enabled)),
                ("warmup", Json::Num(warmup_allocs as f64)),
            ]),
        ),
        (
            "telemetry",
            Json::obj(vec![
                ("level", Json::Str(level.name().to_string())),
                ("allocs_per_packet_enabled", Json::Num(steady_enabled)),
                ("allocs_per_packet_disabled", Json::Num(steady_disabled)),
                ("span_events_captured", Json::Num(snap.events.len() as f64)),
                ("dropped_events", Json::Num(snap.dropped_events as f64)),
                (
                    "warnings",
                    Json::Arr(snap.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
                ),
                ("counters", {
                    let pairs: Vec<(String, Json)> = snap
                        .counters
                        .iter()
                        .filter(|(_, v)| *v > 0)
                        .map(|&(n, v)| (n.to_string(), Json::Num(v as f64)))
                        .collect();
                    Json::Obj(pairs)
                }),
            ]),
        ),
        (
            "batch",
            Json::obj(vec![
                ("jobs", Json::Num(n_jobs as f64)),
                ("threads", Json::Arr(batch_json)),
                ("ladder_clamped", Json::Bool(clamped)),
                ("bit_exact", Json::Bool(bit_exact)),
            ]),
        ),
        (
            "beacon_fleet",
            Json::obj(vec![
                ("packets", Json::Num(n_fleet as f64)),
                ("cold_mean_us", Json::Num(fleet_cold_mean)),
                ("cold_p50_us", Json::Num(percentile_sorted(&fleet_cold_sorted, 50.0))),
                ("patch_mean_us", Json::Num(patch_mean)),
                ("patch_p50_us", Json::Num(percentile_sorted(&patch_sorted, 50.0))),
                ("patch_p90_us", Json::Num(percentile_sorted(&patch_sorted, 90.0))),
                ("patch_p99_us", Json::Num(percentile_sorted(&patch_sorted, 99.0))),
                (
                    "speedup_vs_cold_single_packet",
                    Json::Num(mean(&lat_us) / patch_mean.max(1e-9)),
                ),
                (
                    "speedup_vs_fleet_cold",
                    Json::Num(fleet_cold_mean / patch_mean.max(1e-9)),
                ),
                ("hit_rate_sweep", Json::Arr(sweep_json)),
                ("template_counters", {
                    let names = [
                        "template_hit",
                        "template_miss",
                        "template_evict",
                        "template_bypass",
                    ];
                    let mut pairs: Vec<(String, Json)> = names
                        .iter()
                        .map(|&n| {
                            (n.to_string(), Json::Num(counter_value(&fleet_after, n) as f64))
                        })
                        .collect();
                    pairs.push((
                        "template_bytes_resident".to_string(),
                        Json::Num(fleet_engine.store().bytes_resident() as f64),
                    ));
                    Json::Obj(pairs)
                }),
            ]),
        ),
        (
            "service_soak",
            Json::obj(vec![
                ("backend", Json::Str("mock".to_string())),
                ("clients", Json::Num(soak_clients as f64)),
                ("requests", Json::Num(soak_total as f64)),
                ("ok", Json::Num(soak_ok as f64)),
                ("shed", Json::Num(soak_shed as f64)),
                ("server_ok", Json::Num(soak_stats.ok() as f64)),
                ("seconds", Json::Num(soak_dt)),
                ("requests_per_s", Json::Num(soak_rps)),
            ]),
        ),
    ]);
    // lint: allow(panic) a report the caller asked for must be writable
    std::fs::write(&out_path, report.render() + "\n").expect("write runtime report");
    rep.note(format!("wrote {out_path}"));
    if tracing {
        let chrome = telemetry::trace::chrome_trace(&trace_sections);
        let n_events = chrome
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(|a| a.len())
            .unwrap_or(0);
        // lint: allow(panic) a trace the caller asked for must be writable
        std::fs::write(&trace_out, chrome.render() + "\n").expect("write trace output");
        rep.note(format!(
            "wrote {trace_out} ({n_events} trace events from {} sections; \
             open in Perfetto or chrome://tracing)",
            trace_sections.len()
        ));
    }
    rep.finish();
}
