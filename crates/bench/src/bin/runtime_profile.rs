//! Runtime profile of the synthesis hot path (paper Sec 4.8): single-packet
//! latency through a warm scratch, steady-state allocations per packet (via
//! the self-reporting probe in `bluefi_dsp::contracts` — debug/contracts
//! builds only), and batch throughput/speedup at 1/2/4/N workers on the
//! Fig 9 workload (one DM1-sized beacon per Bluetooth channel sweep).
//!
//! Writes a machine-readable report next to the repo root by default.
//!
//! Run: `cargo run --release -p bluefi-bench --bin runtime_profile
//!       [--trials 100] [--out BENCH_runtime.json]`

use bluefi_bench::{arg_str, arg_usize, print_table};
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_core::json::Json;
use bluefi_core::par::{worker_count, BatchJob, SynthesisBatch};
use bluefi_core::pipeline::{BlueFi, SynthesisScratch};
use bluefi_dsp::contracts;
use bluefi_dsp::power::{mean, percentile_sorted};
use bluefi_wifi::channels::{bt_channel_freq_hz, plan_channel, usable_bt_channels_in_wifi};
use std::time::Instant;

fn beacon_bits(variant: u8) -> Vec<bool> {
    let pdu = AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [variant, 0x0E, 0xF1, 0x00, 0x00, 0x01],
        adv_data: (0..30).map(|i| (i * 5 + 1) as u8 ^ variant).collect(),
        tx_add: false,
    };
    adv_air_bits(&pdu, 38)
}

fn main() {
    let trials = arg_usize("--trials", 100).max(1);
    let out_path = arg_str("--out", "BENCH_runtime.json");
    let bf = BlueFi::default();
    // lint: allow(panic) channel 38 = 2426 MHz is plannable by construction
    let plan = plan_channel(2.426e9).expect("advertising channel must be plannable");
    let bits = beacon_bits(0);

    // -- Single-packet latency through a warm scratch ---------------------
    let mut scratch = SynthesisScratch::new();
    bf.synthesize_at_with(&bits, plan, 71, &mut scratch); // warm-up
    let lat_us: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(bf.synthesize_at_with(&bits, plan, 71, &mut scratch));
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();

    // -- Steady-state allocations per packet ------------------------------
    // The probe only counts in contracts+debug builds; release builds
    // report the probe as unmeasured rather than a misleading zero.
    let measured = contracts::enabled();
    contracts::probe_reset();
    let mut cold = SynthesisScratch::new();
    bf.synthesize_at_with(&bits, plan, 71, &mut cold);
    let warmup_allocs = contracts::probe_count();
    bf.synthesize_at_with(&bits, plan, 71, &mut cold); // settle capacities
    contracts::probe_reset();
    for _ in 0..trials {
        bf.synthesize_at_with(&bits, plan, 71, &mut cold);
    }
    let steady_allocs = contracts::probe_count() as f64 / trials as f64;

    // -- Batch throughput on the Fig 9 workload ---------------------------
    // One beacon per usable even-indexed Bluetooth channel, repeated until
    // the batch is large enough to time.
    let channels: Vec<u8> = usable_bt_channels_in_wifi(3).into_iter().step_by(2).take(10).collect();
    let n_jobs = (trials * 2).max(8);
    let jobs: Vec<BatchJob> = (0..n_jobs)
        .map(|k| {
            let ch = channels[k % channels.len()];
            // lint: allow(panic) usable channels are plannable by construction
            let plan = plan_channel(bt_channel_freq_hz(ch)).expect("usable channel plans");
            BatchJob { bits: beacon_bits((k % 251) as u8), plan, seed: 71 }
        })
        .collect();
    let mut thread_counts = vec![1usize, 2, 4, worker_count()];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut batch_rows = Vec::new();
    let mut batch_json = Vec::new();
    let mut t1_s = 0.0f64;
    let mut reference = None;
    let mut bit_exact = true;
    for &w in &thread_counts {
        let batch = SynthesisBatch::with_workers(&bf, w);
        batch.synthesize(&jobs[..jobs.len().min(w * 2)]); // warm per-thread state
        let t0 = Instant::now();
        let results = batch.synthesize(&jobs);
        let dt = t0.elapsed().as_secs_f64();
        if w == 1 {
            t1_s = dt;
            reference = Some(results.iter().map(|s| s.psdu.clone()).collect::<Vec<_>>());
        } else if let Some(r) = &reference {
            bit_exact &= results.len() == r.len()
                && results.iter().zip(r).all(|(s, p)| &s.psdu == p);
        }
        let speedup = if dt > 0.0 && t1_s > 0.0 { t1_s / dt } else { 1.0 };
        batch_rows.push(vec![
            format!("{w}"),
            format!("{:.3}", dt),
            format!("{:.1}", n_jobs as f64 / dt),
            format!("{speedup:.2}x"),
        ]);
        batch_json.push(Json::obj(vec![
            ("workers", Json::Num(w as f64)),
            ("seconds", Json::Num(dt)),
            ("packets_per_s", Json::Num(n_jobs as f64 / dt)),
            ("speedup_vs_1", Json::Num(speedup)),
        ]));
    }

    // -- Report -----------------------------------------------------------
    // Sort the latency series once; all percentiles read from it.
    let mut lat_sorted = lat_us.clone();
    lat_sorted.sort_by(|a, b| a.total_cmp(b));
    print_table(
        "Runtime profile — single-packet synthesis latency (warm scratch)",
        &["mean µs", "median µs", "p10 µs", "p90 µs", "trials"],
        &[vec![
            format!("{:.1}", mean(&lat_us)),
            format!("{:.1}", percentile_sorted(&lat_sorted, 50.0)),
            format!("{:.1}", percentile_sorted(&lat_sorted, 10.0)),
            format!("{:.1}", percentile_sorted(&lat_sorted, 90.0)),
            format!("{trials}"),
        ]],
    );
    if measured {
        println!(
            "\nallocations/packet: {steady_allocs:.2} steady-state \
             ({warmup_allocs} during warm-up) over {trials} packets"
        );
    } else {
        println!(
            "\nallocations/packet: not measured (probe requires a debug build \
             with the `contracts` feature; run without --release)"
        );
    }
    print_table(
        &format!("Runtime profile — batch throughput, {n_jobs} packets (Fig 9 workload)"),
        &["workers", "seconds", "packets/s", "speedup"],
        &batch_rows,
    );
    println!(
        "\nparallel output bit-exact with sequential: {}",
        if bit_exact { "yes" } else { "NO — determinism violated" }
    );
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cpus < 2 {
        println!(
            "note: this host exposes {cpus} CPU — thread speedup is bounded \
             at 1x here; rerun on a multi-core host for the scaling numbers"
        );
    }

    let report = Json::obj(vec![
        ("trials", Json::Num(trials as f64)),
        ("host_cpus", Json::Num(cpus as f64)),
        ("contracts_enabled", Json::Bool(measured)),
        (
            "single_packet",
            Json::obj(vec![
                ("mean_us", Json::Num(mean(&lat_us))),
                ("median_us", Json::Num(percentile_sorted(&lat_sorted, 50.0))),
                ("p10_us", Json::Num(percentile_sorted(&lat_sorted, 10.0))),
                ("p90_us", Json::Num(percentile_sorted(&lat_sorted, 90.0))),
            ]),
        ),
        (
            "allocs_per_packet",
            Json::obj(vec![
                ("measured", Json::Bool(measured)),
                ("steady_state", Json::Num(steady_allocs)),
                ("warmup", Json::Num(warmup_allocs as f64)),
            ]),
        ),
        (
            "batch",
            Json::obj(vec![
                ("jobs", Json::Num(n_jobs as f64)),
                ("threads", Json::Arr(batch_json)),
                ("bit_exact", Json::Bool(bit_exact)),
            ]),
        ),
    ]);
    // lint: allow(panic) a report the caller asked for must be writable
    std::fs::write(&out_path, report.render() + "\n").expect("write runtime report");
    println!("wrote {out_path}");
}
