//! Ablation (paper Sec 2.5): fixed vs per-symbol dynamic scale factor —
//! the paper found the difference negligible and the cost high.
//!
//! Run: `cargo run --release -p bluefi-bench --bin ablation_scale_factor`

use bluefi_bench::Reporter;
use bluefi_bt::gfsk::{modulate_phase, GfskParams};
use bluefi_core::cp::CpCompat;
use bluefi_core::qam::{Quantizer, ScaleMode, DEFAULT_SCALE};
use bluefi_wifi::Modulation;
use std::time::Instant;

fn main() {
    let gfsk = GfskParams::default();
    let bits: Vec<bool> = (0..400).map(|i| (i * 1103515245usize) % 89 < 44).collect();
    let offset_hz = 13.0 * bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
    let phase = modulate_phase(&bits, &gfsk, offset_hz);
    let cp = CpCompat::sgi();
    let theta = cp.make_compatible(&phase, offset_hz / gfsk.sample_rate_hz);
    let bodies = cp.strip_cp(&theta);
    let mut rows = Vec::new();
    for (name, mode) in [
        ("fixed A=0.2", ScaleMode::Fixed(DEFAULT_SCALE)),
        ("dynamic", ScaleMode::Dynamic),
    ] {
        let q = Quantizer::new(Modulation::Qam64, mode);
        let t0 = Instant::now();
        let errs: Vec<f64> = bodies
            .iter()
            .map(|b| q.quantize_body(b).in_band_error_db(13.0, 4.0))
            .collect();
        let dt = t0.elapsed();
        rows.push(vec![
            name.to_string(),
            format!("{:6.2} dB", bluefi_dsp::power::mean(&errs)),
            format!("{:.2?}", dt),
        ]);
    }
    let mut rep = Reporter::from_args();
    rep.table(
        "Ablation — fixed vs dynamic QAM scale factor",
        &["mode", "mean in-band error", "time"],
        rows,
    );
    rep.note(
        "\npaper: \"the performance difference is negligible but the \
         complexity is significantly higher\".",
    );
    rep.finish();
}
