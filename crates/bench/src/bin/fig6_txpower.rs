//! Figure 6: RSSI vs WiFi transmit power (0..20 dBm) at 1.5 m, per phone.
//!
//! Run: `cargo run --release -p bluefi-bench --bin fig6_txpower [--duration 30]`

use bluefi_bench::{arg_f64, summarize, Reporter};
use bluefi_sim::devices::DeviceModel;
use bluefi_sim::experiments::{run_beacon_sessions, SessionConfig, SessionTrial, TxKind};
use bluefi_wifi::ChipModel;

fn main() {
    let duration = arg_f64("--duration", 30.0);
    let powers = [0.0, 4.0, 5.0, 7.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];
    let mut rep = Reporter::from_args();
    for device in DeviceModel::all_phones() {
        // One independent session per power level — batch the sweep.
        let trials: Vec<SessionTrial> = powers
            .iter()
            .map(|&p| {
                let mut cfg = SessionConfig::office(device.clone(), 1.5);
                cfg.duration_s = duration;
                SessionTrial {
                    kind: TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: p },
                    cfg,
                    seed: 0x600D + p as u64,
                }
            })
            .collect();
        let rows: Vec<Vec<String>> = powers
            .iter()
            .zip(run_beacon_sessions(&trials))
            .map(|(&p, trace)| {
                let rssi: Vec<f64> = trace.iter().map(|s| s.rssi_dbm).collect();
                vec![format!("{p:>2.0} dBm"), summarize(&rssi)]
            })
            .collect();
        rep.table(
            &format!("Fig 6 ({}) — RSSI vs TX power at 1.5 m", device.name),
            &["tx power", "rssi dBm"],
            rows,
        );
    }
    rep.note(
        "\npaper shape: RSSI tracks TX power ~dB-for-dB on Pixel; still \
         well above -90 dBm at 0 dBm TX; iPhone fluctuates; S6 offset low.",
    );
    rep.finish();
}
