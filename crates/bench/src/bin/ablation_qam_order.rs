//! Ablation (paper Sec 5.1): quantization error vs modulation order —
//! 64-QAM (802.11n) vs 256-QAM (11ac) vs 1024-QAM (11ax).
//!
//! Run: `cargo run --release -p bluefi-bench --bin ablation_qam_order`

use bluefi_bench::Reporter;
use bluefi_bt::gfsk::{modulate_phase, GfskParams};
use bluefi_core::cp::CpCompat;
use bluefi_core::par::par_map;
use bluefi_core::qam::{Quantizer, ScaleMode, DEFAULT_SCALE};
use bluefi_wifi::Modulation;

fn main() {
    let gfsk = GfskParams::default();
    let bits: Vec<bool> = (0..200).map(|i| (i * 2654435761usize) % 97 < 48).collect();
    let offset_hz = 13.0 * bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
    let phase = modulate_phase(&bits, &gfsk, offset_hz);
    let cp = CpCompat::sgi();
    let theta = cp.make_compatible(&phase, offset_hz / gfsk.sample_rate_hz);
    let bodies = cp.strip_cp(&theta);
    let mut rows = Vec::new();
    for m in [Modulation::Qam16, Modulation::Qam64, Modulation::Qam256, Modulation::Qam1024] {
        let a = DEFAULT_SCALE * m.max_level() as f64 / 7.0;
        let q = Quantizer::new(m, ScaleMode::Fixed(a));
        // Per-symbol quantization is independent — fan the bodies out.
        let errs: Vec<f64> =
            par_map(&bodies, |_, b| q.quantize_body(b).in_band_error_db(13.0, 4.0));
        rows.push(vec![format!("{m:?}"), format!("{:6.1} dB", bluefi_dsp::power::mean(&errs))]);
    }
    let mut rep = Reporter::from_args();
    rep.table(
        "Ablation — in-band quantization error vs modulation order",
        &["modulation", "mean in-band error"],
        rows,
    );
    rep.note(
        "\npaper Sec 5.1: higher-order modulation means less quantization \
         error; 1024-QAM is mandatory in 802.11ax.",
    );
    rep.finish();
}
