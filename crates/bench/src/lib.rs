//! # bluefi-bench
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index), plus criterion benches for the Sec 4.8 runtime table.
//! Every binary prints the rows/series the paper reports; EXPERIMENTS.md
//! records paper-vs-measured.

#![warn(missing_docs)]

use bluefi_dsp::power::{mean, median, percentile};

/// Prints a simple aligned table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Summary statistics string `mean/median [p10..p90]` for a series.
pub fn summarize(series: &[f64]) -> String {
    if series.is_empty() {
        return "(no data)".into();
    }
    format!(
        "{:6.1} / {:6.1}  [{:6.1} .. {:6.1}]  n={}",
        mean(series),
        median(series),
        percentile(series, 10.0),
        percentile(series, 90.0),
        series.len()
    )
}

/// Parses `--key value` style CLI overrides (tiny, no clap dependency).
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Integer variant of [`arg_f64`].
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_f64(name, default as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_formats() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!(s.contains("n=3"));
        assert_eq!(summarize(&[]), "(no data)");
    }
}
