//! # bluefi-bench
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index), plus `Instant`-based benches for the Sec 4.8 runtime
//! table.
//! Every binary prints the rows/series the paper reports; EXPERIMENTS.md
//! records paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bluefi_core::json::{Json, ToJson};
use bluefi_core::telemetry::{self, Level, Table};
use bluefi_dsp::power::{mean, median, percentile_sorted};

/// The structured output sink every bench binary reports through.
///
/// In text mode (the default) tables and notes stream to stdout as they
/// are added, exactly like the old ad-hoc `println!` helpers. With
/// `--json` (see [`Reporter::from_args`]) nothing prints until
/// [`Reporter::finish`], which emits one machine-readable JSON document:
/// `{"tables": [...], "notes": [...]}` plus a `"telemetry"` snapshot when
/// `BLUEFI_TELEMETRY` recording is on.
#[derive(Debug)]
pub struct Reporter {
    json: bool,
    tables: Vec<Table>,
    notes: Vec<String>,
}

impl Reporter {
    /// A reporter in JSON mode iff the process was invoked with `--json`.
    pub fn from_args() -> Reporter {
        Reporter::new(arg_flag("--json"))
    }

    /// A reporter with the output mode pinned.
    pub fn new(json: bool) -> Reporter {
        Reporter { json, tables: Vec::new(), notes: Vec::new() }
    }

    /// True when this reporter emits JSON instead of text.
    pub fn is_json(&self) -> bool {
        self.json
    }

    /// Adds (and, in text mode, prints) one aligned table.
    pub fn table(&mut self, title: &str, header: &[&str], rows: Vec<Vec<String>>) {
        let mut t = Table::new(title, header);
        for r in rows {
            t.row(r);
        }
        if !self.json {
            print!("{}", t.render());
        }
        self.tables.push(t);
    }

    /// Adds (and, in text mode, prints) one free-form note line.
    pub fn note(&mut self, text: impl Into<String>) {
        let text = text.into();
        if !self.json {
            println!("{text}");
        }
        self.notes.push(text);
    }

    /// Flushes the report: a no-op in text mode (everything already
    /// streamed), the single JSON document in `--json` mode.
    pub fn finish(self) {
        if !self.json {
            return;
        }
        let mut fields = vec![
            ("tables", Json::Arr(self.tables.iter().map(ToJson::to_json).collect())),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ];
        if telemetry::level() > Level::Off {
            fields.push(("telemetry", telemetry::snapshot().to_json()));
        }
        println!("{}", Json::obj(fields).render());
    }
}

/// Summary statistics string `mean/median [p10..p90]` for a series.
/// Sorts the series once and reads all three percentiles from it, rather
/// than paying a clone + sort per percentile.
pub fn summarize(series: &[f64]) -> String {
    if series.is_empty() {
        return "(no data)".into();
    }
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    format!(
        "{:6.1} / {:6.1}  [{:6.1} .. {:6.1}]  n={}",
        mean(series),
        percentile_sorted(&sorted, 50.0),
        percentile_sorted(&sorted, 10.0),
        percentile_sorted(&sorted, 90.0),
        series.len()
    )
}

/// Parses `--key value` style CLI overrides (tiny, no clap dependency).
pub fn arg_f64(name: &str, default: f64) -> f64 {
    arg_value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Integer variant of [`arg_f64`].
///
/// Parses the value as an integer directly (no `f64` round trip, so
/// values above 2^53 survive exactly); scientific notation like `1e3` is
/// accepted when it denotes an integer that fits without loss.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_value(name).and_then(|v| parse_usize(&v)).unwrap_or(default)
}

/// String variant of [`arg_f64`].
pub fn arg_str(name: &str, default: &str) -> String {
    arg_value(name).unwrap_or_else(|| default.to_string())
}

/// True when the process was invoked with the bare flag `name`
/// (e.g. `--json`).
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn parse_usize(text: &str) -> Option<usize> {
    if let Ok(v) = text.parse::<usize>() {
        return Some(v);
    }
    // `1e3`-style input: accept only when the float is an exactly
    // representable non-negative integer (|v| <= 2^53).
    let f = text.parse::<f64>().ok()?;
    if f.is_finite() && f >= 0.0 && f == f.trunc() && f <= (1u64 << 53) as f64 {
        Some(f as usize)
    } else {
        None
    }
}

/// One timed benchmark result from [`bench_fn`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Per-iteration wall time, milliseconds, one entry per sample.
    pub samples_ms: Vec<f64>,
}

impl BenchResult {
    /// Median per-iteration time, ms.
    pub fn median_ms(&self) -> f64 {
        median(&self.samples_ms)
    }

    /// Mean per-iteration time, ms.
    pub fn mean_ms(&self) -> f64 {
        mean(&self.samples_ms)
    }
}

/// Times `f` with a warm-up pass and `samples` timed samples — the
/// hermetic stand-in for criterion's `bench_function` (std `Instant`
/// only; no registry dependency).
pub fn bench_fn<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> BenchResult {
    use std::time::Instant;
    // Warm-up: one untimed call, then calibrate iterations so each sample
    // runs long enough for the clock (≥ ~2 ms per sample).
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_secs_f64();
    let iters = (2e-3 / once.max(1e-9)).ceil().clamp(1.0, 10_000.0) as usize;
    let samples_ms = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t.elapsed().as_secs_f64() * 1e3 / iters as f64
        })
        .collect();
    BenchResult { name: name.to_string(), samples_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reporter_collects_tables_and_notes() {
        let mut rep = Reporter::new(true);
        rep.table("demo", &["k", "v"], vec![vec!["a".into(), "1".into()]]);
        rep.note("paper: shape matches");
        assert!(rep.is_json());
        assert_eq!(rep.tables.len(), 1);
        assert_eq!(rep.tables[0].rows.len(), 1);
        assert_eq!(rep.notes, vec!["paper: shape matches".to_string()]);
        rep.finish();
    }

    #[test]
    fn summarize_formats() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!(s.contains("n=3"));
        assert_eq!(summarize(&[]), "(no data)");
    }

    #[test]
    fn parse_usize_is_exact_and_accepts_scientific() {
        // Above 2^53: a float round trip would corrupt this.
        assert_eq!(parse_usize("9007199254740993"), Some(9_007_199_254_740_993));
        assert_eq!(parse_usize("18446744073709551615"), Some(usize::MAX));
        assert_eq!(parse_usize("0"), Some(0));
        // Scientific notation denoting exact integers.
        assert_eq!(parse_usize("1e3"), Some(1000));
        assert_eq!(parse_usize("2.5e1"), Some(25));
        // Lossy or invalid inputs are rejected, not silently truncated.
        assert_eq!(parse_usize("1.5"), None);
        assert_eq!(parse_usize("-4"), None);
        assert_eq!(parse_usize("1e300"), None);
        assert_eq!(parse_usize("NaN"), None);
        assert_eq!(parse_usize("ten"), None);
    }

    #[test]
    fn bench_fn_produces_positive_samples() {
        let r = bench_fn("spin", 3, || (0..1000).sum::<u64>());
        assert_eq!(r.samples_ms.len(), 3);
        assert!(r.median_ms() >= 0.0);
        assert!(r.mean_ms() < 1e3);
    }
}
