//! Sec 4.8 — execution time and complexity: per-stage timing of packet
//! generation (IQ generation, FFT+QAM, FEC reversal, scrambler), comparing
//! the weighted Viterbi against the real-time O(T) decoder.
//!
//! The paper: Python 2.60 s/packet (FEC 2.39 s), C 46.88 ms, real-time
//! decoder + FFTW ≈ 0.954 ms — a ~50x decoder speedup with FEC dominating
//! everywhere. Absolute numbers differ here; the *ratios* are the result.
//!
//! Run: `cargo bench -p bluefi-bench` (the harness is a plain
//! `std::time::Instant` loop — `harness = false` — so the hermetic build
//! needs no criterion).

use std::hint::black_box;

use bluefi_bench::{bench_fn, BenchResult, Reporter};
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_bt::gfsk::{modulate_phase, GfskParams};
use bluefi_coding::lfsr::scramble;
use bluefi_core::cp::CpCompat;
use bluefi_core::pipeline::BlueFi;
use bluefi_core::qam::{Quantizer, ScaleMode, DEFAULT_SCALE};
use bluefi_core::reversal::{coded_stream, reverse_fec, DecodeStrategy, WeightProfile};
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::Modulation;

const SAMPLES: usize = 10;

fn beacon_bits() -> Vec<bool> {
    let pdu = AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [1, 2, 3, 4, 5, 6],
        adv_data: (0..30).collect(),
        tx_add: false,
    };
    adv_air_bits(&pdu, 38)
}

fn main() {
    let gfsk = GfskParams::default();
    let bits = beacon_bits();
    let offset_hz = 13.0 * bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
    let cp = CpCompat::sgi();
    let mut results: Vec<BenchResult> = Vec::new();

    results.push(bench_fn("stage1_iq_generation", SAMPLES, || {
        let phase = modulate_phase(black_box(&bits), &gfsk, offset_hz);
        black_box(cp.make_compatible(&phase, offset_hz / gfsk.sample_rate_hz))
    }));

    let phase = modulate_phase(&bits, &gfsk, offset_hz);
    let theta = cp.make_compatible(&phase, offset_hz / gfsk.sample_rate_hz);
    let bodies = cp.strip_cp(&theta);
    let quant = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE));
    results.push(bench_fn("stage2_fft_qam", SAMPLES, || {
        for body in &bodies {
            black_box(quant.quantize_body(black_box(body)));
        }
    }));

    // FEC reversal, both ways, on realistic symbol counts.
    let mk_coded = |strategy: DecodeStrategy| {
        let mcs = strategy.mcs();
        let q = Quantizer::new(mcs.modulation, ScaleMode::Fixed(DEFAULT_SCALE));
        let symbols: Vec<_> = bodies.iter().map(|b| q.quantize_body(b)).collect();
        coded_stream(&symbols, mcs, 13.0, &WeightProfile::default())
    };
    let (coded56, weights56) = mk_coded(DecodeStrategy::WeightedViterbi);
    results.push(bench_fn("stage3_fec_weighted_viterbi", SAMPLES, || {
        black_box(reverse_fec(
            black_box(&coded56),
            &weights56,
            DecodeStrategy::WeightedViterbi,
            13.0,
        ))
    }));
    let (coded23, weights23) = mk_coded(DecodeStrategy::Realtime);
    results.push(bench_fn("stage3_fec_realtime", SAMPLES, || {
        black_box(reverse_fec(
            black_box(&coded23),
            &weights23,
            DecodeStrategy::Realtime,
            13.0,
        ))
    }));

    let data: Vec<bool> = (0..coded56.len() * 5 / 6).map(|i| i % 3 == 0).collect();
    results.push(bench_fn("stage4_scrambler", SAMPLES, || {
        black_box(scramble(71, black_box(&data)))
    }));

    // End to end, both strategies.
    let plan = ChannelPlan::pinned(3, 13.0);
    for (name, strategy) in [
        ("end_to_end_viterbi", DecodeStrategy::WeightedViterbi),
        ("end_to_end_realtime", DecodeStrategy::Realtime),
    ] {
        let bf = BlueFi { strategy, ..Default::default() };
        results.push(bench_fn(name, SAMPLES, || {
            black_box(bf.synthesize_at(black_box(&bits), plan, 71))
        }));
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.4}", r.median_ms()),
                format!("{:.4}", r.mean_ms()),
                format!("{}", r.samples_ms.len()),
            ]
        })
        .collect();
    let mut rep = Reporter::from_args();
    rep.table(
        "Sec 4.8 — per-stage runtime (ms/iter)",
        &["stage", "median", "mean", "samples"],
        rows,
    );

    // The paper's headline ratio: the real-time decoder is far cheaper
    // than the weighted Viterbi.
    let med = |name: &str| {
        results.iter().find(|r| r.name == name).map(|r| r.median_ms()).unwrap_or(f64::NAN)
    };
    let speedup = med("stage3_fec_weighted_viterbi") / med("stage3_fec_realtime");
    rep.note(format!(
        "\nFEC reversal speedup (weighted Viterbi / real-time): {speedup:.1}x"
    ));
    rep.note("paper: ~50x decoder speedup; FEC dominates every pipeline.");
    rep.finish();
}
