//! Randomized-property tests for the application-layer framing, on the
//! in-tree `bluefi_core::check` harness.

use bluefi_apps::l2cap::{fragment, l2cap_frame, parse_l2cap, MediaHeader};
use bluefi_core::check::{bytes, check};
use bluefi_core::rng::Rng;
use bluefi_core::{prop_assert, prop_assert_eq};

#[test]
fn l2cap_roundtrip_any_payload() {
    check(
        "l2cap_roundtrip_any_payload",
        |rng| (rng.gen::<u16>(), bytes(rng, 0..600)),
        |(cid, payload)| {
            let f = l2cap_frame(*cid, payload);
            prop_assert_eq!(f.len(), 4 + payload.len());
            let (got_cid, got) = parse_l2cap(&f).ok_or("parse failed")?;
            prop_assert_eq!(got_cid, *cid);
            prop_assert_eq!(got, &payload[..]);
            Ok(())
        },
    );
}

#[test]
fn l2cap_rejects_any_truncation_or_padding() {
    check(
        "l2cap_rejects_any_truncation_or_padding",
        |rng| (bytes(rng, 1..100), rng.gen_range(0usize..2)),
        |(payload, pad)| {
            let mut f = l2cap_frame(0x40, payload);
            if *pad == 1 {
                f.push(0xFF);
            } else {
                f.pop();
            }
            prop_assert!(parse_l2cap(&f).is_none());
            Ok(())
        },
    );
}

#[test]
fn media_header_roundtrip_any_fields() {
    check(
        "media_header_roundtrip_any_fields",
        |rng| {
            let h = MediaHeader {
                sequence: rng.gen(),
                timestamp: rng.gen(),
                ssrc: rng.gen(),
                n_frames: rng.gen_range(1u8..16),
            };
            (h, bytes(rng, 0..300))
        },
        |(h, sbc)| {
            let pkt = h.packetize(sbc);
            let (got, body) = MediaHeader::parse(&pkt).ok_or("parse failed")?;
            prop_assert_eq!(got, *h);
            prop_assert_eq!(body, &sbc[..]);
            Ok(())
        },
    );
}

#[test]
fn fragmentation_reassembles_exactly() {
    check(
        "fragmentation_reassembles_exactly",
        |rng| (bytes(rng, 0..700), rng.gen_range(1usize..200)),
        |(data, max_chunk)| {
            let chunks = fragment(data, *max_chunk);
            for c in &chunks {
                prop_assert!(!c.is_empty() && c.len() <= *max_chunk);
            }
            prop_assert_eq!(chunks.concat(), *data);
            Ok(())
        },
    );
}
