//! Beacon ranging: turning RSSI reports into distance estimates — the
//! function beacons exist for ("way-finding, navigation, proximity
//! marketing", paper Sec 1).
//!
//! iBeacon and Eddystone both carry a calibrated reference power (RSSI at
//! 1 m / 0 m); receivers invert the log-distance path-loss model to rank
//! proximity. This module implements the estimator plus the smoothing
//! scanner apps apply, and is exercised end-to-end against the channel
//! model in tests.

use bluefi_sim::experiments::RssiSample;

/// Log-distance ranging parameters.
#[derive(Debug, Clone, Copy)]
pub struct RangingModel {
    /// Calibrated RSSI at 1 m, dBm (iBeacon `measured_power`).
    pub rssi_at_1m_dbm: f64,
    /// Path-loss exponent assumed by the estimator (2.0 free space,
    /// 2.0–3.0 indoors; scanner apps commonly assume ~2.0–2.5).
    pub path_loss_exponent: f64,
}

impl RangingModel {
    /// A typical indoor configuration.
    pub fn indoor(rssi_at_1m_dbm: f64) -> RangingModel {
        RangingModel { rssi_at_1m_dbm, path_loss_exponent: 2.2 }
    }

    /// Point estimate of distance (meters) from one RSSI report.
    pub fn distance_m(&self, rssi_dbm: f64) -> f64 {
        10f64.powf((self.rssi_at_1m_dbm - rssi_dbm) / (10.0 * self.path_loss_exponent))
    }

    /// Distance estimate from a trace, median-smoothed the way scanner
    /// apps do (the median resists the iPhone-style report jitter).
    pub fn estimate_from_trace(&self, trace: &[RssiSample]) -> Option<f64> {
        if trace.is_empty() {
            return None;
        }
        let rssi: Vec<f64> = trace.iter().map(|s| s.rssi_dbm).collect();
        Some(self.distance_m(bluefi_dsp::power::median(&rssi)))
    }

    /// The proximity zone labels iOS exposes.
    pub fn zone(&self, distance_m: f64) -> &'static str {
        if distance_m < 0.5 {
            "immediate"
        } else if distance_m < 3.0 {
            "near"
        } else {
            "far"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_sim::devices::DeviceModel;
    use bluefi_sim::experiments::{run_beacon_session, SessionConfig, TxKind};
    use bluefi_wifi::ChipModel;

    #[test]
    fn inversion_is_exact_on_the_model() {
        let m = RangingModel { rssi_at_1m_dbm: -59.0, path_loss_exponent: 2.0 };
        assert!((m.distance_m(-59.0) - 1.0).abs() < 1e-9);
        assert!((m.distance_m(-79.0) - 10.0).abs() < 1e-9);
        assert!((m.distance_m(-39.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zones() {
        let m = RangingModel::indoor(-59.0);
        assert_eq!(m.zone(0.2), "immediate");
        assert_eq!(m.zone(1.5), "near");
        assert_eq!(m.zone(6.0), "far");
    }

    #[test]
    fn end_to_end_ranging_orders_distances() {
        // A BlueFi beacon at three true distances: the estimator must rank
        // them correctly and land within a factor ~2 (the accuracy class of
        // real RSSI ranging).
        let kind = TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 };
        // Calibrate the 1 m reference from the simulation itself.
        let calibrate = {
            let mut cfg = SessionConfig::office(DeviceModel::pixel(), 1.0);
            cfg.duration_s = 10.0;
            let t = run_beacon_session(&kind, &cfg, 0xCA1);
            let rssi: Vec<f64> = t.iter().map(|s| s.rssi_dbm).collect();
            bluefi_dsp::power::median(&rssi)
        };
        let model = RangingModel::indoor(calibrate);
        let estimate = |d: f64| {
            let mut cfg = SessionConfig::office(DeviceModel::pixel(), d);
            cfg.duration_s = 10.0;
            let t = run_beacon_session(&kind, &cfg, 0xD1 + d as u64);
            model.estimate_from_trace(&t).expect("reports")
        };
        let e_near = estimate(0.5);
        let e_mid = estimate(2.0);
        let e_far = estimate(5.0);
        assert!(e_near < e_mid && e_mid < e_far, "{e_near} {e_mid} {e_far}");
        for (est, truth) in [(e_near, 0.5), (e_mid, 2.0), (e_far, 5.0)] {
            assert!(
                est > truth / 2.0 && est < truth * 2.0,
                "estimated {est} m for true {truth} m"
            );
        }
    }
}
