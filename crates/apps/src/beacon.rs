//! Bluetooth beacon formats and the AP-side beacon service (the paper's
//! first end-to-end app: "an 802.11n-compliant AP is transformed into a
//! Bluetooth beacon", controllable remotely).

use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_core::pipeline::{BlueFi, Synthesis};
use serde::{Deserialize, Serialize};

/// The beacon payload formats in common deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BeaconFormat {
    /// Apple iBeacon: 16-byte proximity UUID + major/minor + calibrated TX
    /// power.
    IBeacon {
        /// Proximity UUID.
        uuid: [u8; 16],
        /// Major group id.
        major: u16,
        /// Minor id.
        minor: u16,
        /// Calibrated RSSI at 1 m (two's complement dBm).
        measured_power: i8,
    },
    /// Google Eddystone-UID: 10-byte namespace + 6-byte instance.
    EddystoneUid {
        /// Calibrated TX power at 0 m.
        tx_power: i8,
        /// Namespace id.
        namespace: [u8; 10],
        /// Instance id.
        instance: [u8; 6],
    },
    /// Eddystone-URL with the spec's scheme/TLD compression.
    EddystoneUrl {
        /// Calibrated TX power at 0 m.
        tx_power: i8,
        /// URL scheme byte (0x00 = http://www., 0x01 = https://www.,
        /// 0x02 = http://, 0x03 = https://).
        scheme: u8,
        /// Compressed URL body.
        body: Vec<u8>,
    },
    /// AltBeacon (the open format).
    AltBeacon {
        /// Manufacturer id (little endian on air).
        mfg_id: u16,
        /// 20-byte beacon id.
        beacon_id: [u8; 20],
        /// Reference RSSI.
        reference_rssi: i8,
    },
}

impl BeaconFormat {
    /// Serializes the format's AD structures (the AdvData payload).
    pub fn ad_structures(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(31);
        // Flags AD: LE General Discoverable, BR/EDR not supported.
        out.extend_from_slice(&[0x02, 0x01, 0x06]);
        match self {
            BeaconFormat::IBeacon { uuid, major, minor, measured_power } => {
                out.extend_from_slice(&[0x1A, 0xFF, 0x4C, 0x00, 0x02, 0x15]);
                out.extend_from_slice(uuid);
                out.extend_from_slice(&major.to_be_bytes());
                out.extend_from_slice(&minor.to_be_bytes());
                out.push(*measured_power as u8);
            }
            BeaconFormat::EddystoneUid { tx_power, namespace, instance } => {
                // Service UUID 0xFEAA + service data.
                out.extend_from_slice(&[0x03, 0x03, 0xAA, 0xFE]);
                out.extend_from_slice(&[0x17, 0x16, 0xAA, 0xFE, 0x00]);
                out.push(*tx_power as u8);
                out.extend_from_slice(namespace);
                out.extend_from_slice(instance);
                out.extend_from_slice(&[0x00, 0x00]); // RFU
            }
            BeaconFormat::EddystoneUrl { tx_power, scheme, body } => {
                assert!(body.len() <= 17, "compressed URL too long");
                out.extend_from_slice(&[0x03, 0x03, 0xAA, 0xFE]);
                out.push((5 + body.len()) as u8);
                out.extend_from_slice(&[0x16, 0xAA, 0xFE, 0x10]);
                out.push(*tx_power as u8);
                out.push(*scheme);
                out.extend_from_slice(body);
            }
            BeaconFormat::AltBeacon { mfg_id, beacon_id, reference_rssi } => {
                out.push(0x1B);
                out.push(0xFF);
                out.extend_from_slice(&mfg_id.to_le_bytes());
                out.extend_from_slice(&[0xBE, 0xAC]);
                out.extend_from_slice(beacon_id);
                out.push(*reference_rssi as u8);
                out.push(0x00); // mfg reserved
            }
        }
        assert!(out.len() <= 31, "AdvData is at most 31 bytes ({})", out.len());
        out
    }

    /// Builds the advertising PDU for this beacon.
    pub fn to_pdu(&self, adv_address: [u8; 6]) -> AdvPdu {
        AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address,
            adv_data: self.ad_structures(),
            tx_add: true,
        }
    }
}

/// Remotely-configurable beacon service state (the paper controls BlueFi
/// over SSH "from either the Internet … local Ethernet or WiFi" — this is
/// the serializable config such a control plane would push).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BeaconConfig {
    /// Beacon payload.
    pub format: BeaconFormat,
    /// Advertiser address.
    pub adv_address: [u8; 6],
    /// Broadcast rate, Hz.
    pub rate_hz: f64,
    /// Advertising channels to broadcast on (the transmitter may use 1, 2
    /// or 3 of them; 2402 MHz is not coverable by WiFi, see DESIGN.md).
    pub channels: Vec<u8>,
    /// Running?
    pub enabled: bool,
}

impl Default for BeaconConfig {
    fn default() -> BeaconConfig {
        BeaconConfig {
            format: BeaconFormat::IBeacon {
                uuid: [0xB1; 16],
                major: 1,
                minor: 2,
                measured_power: -59,
            },
            adv_address: [0xB1, 0x0E, 0xF1, 0x00, 0x00, 0x01],
            rate_hz: 10.0,
            channels: vec![38, 39],
            enabled: true,
        }
    }
}

/// A beacon transmission ready for the WiFi driver: per advertising
/// channel, the synthesized PSDU.
#[derive(Debug)]
pub struct BeaconPackets {
    /// (advertising channel, synthesis) pairs; channels no WiFi channel
    /// covers are skipped (BLE 37 / 2402 MHz).
    pub per_channel: Vec<(u8, Synthesis)>,
}

/// Synthesizes the configured beacon for every requested advertising
/// channel. `seed` is the scrambler seed the chip will apply.
pub fn build_beacon(cfg: &BeaconConfig, bf: &BlueFi, seed: u8) -> BeaconPackets {
    let pdu = cfg.format.to_pdu(cfg.adv_address);
    let mut per_channel = Vec::new();
    for &ch in &cfg.channels {
        let freq = match ch {
            37 => 2.402e9,
            38 => 2.426e9,
            39 => 2.480e9,
            other => panic!("advertising channel 37..=39, got {other}"),
        };
        let bits = adv_air_bits(&pdu, ch);
        if let Some(syn) = bf.synthesize(&bits, freq, seed) {
            per_channel.push((ch, syn));
        }
    }
    BeaconPackets { per_channel }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibeacon_layout() {
        let b = BeaconFormat::IBeacon {
            uuid: [0xAB; 16],
            major: 0x0102,
            minor: 0x0304,
            measured_power: -59,
        };
        let ad = b.ad_structures();
        assert_eq!(ad.len(), 3 + 27);
        // Apple company id + iBeacon type/length.
        assert_eq!(&ad[3..9], &[0x1A, 0xFF, 0x4C, 0x00, 0x02, 0x15]);
        assert_eq!(&ad[9..25], &[0xAB; 16]);
        assert_eq!(&ad[25..29], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(ad[29] as i8, -59);
    }

    #[test]
    fn eddystone_uid_layout() {
        let b = BeaconFormat::EddystoneUid {
            tx_power: -10,
            namespace: [1; 10],
            instance: [2; 6],
        };
        let ad = b.ad_structures();
        assert!(ad.len() <= 31);
        // Service-data AD for 0xFEAA, frame type 0x00.
        assert_eq!(&ad[7..12], &[0x17, 0x16, 0xAA, 0xFE, 0x00]);
    }

    #[test]
    fn eddystone_url_respects_length() {
        let b = BeaconFormat::EddystoneUrl {
            tx_power: -20,
            scheme: 0x03,
            body: b"example.com".to_vec(),
        };
        let ad = b.ad_structures();
        assert!(ad.len() <= 31, "{}", ad.len());
    }

    #[test]
    fn altbeacon_layout() {
        let b = BeaconFormat::AltBeacon {
            mfg_id: 0x0118,
            beacon_id: [7; 20],
            reference_rssi: -65,
        };
        let ad = b.ad_structures();
        assert_eq!(ad[4], 0xFF);
        assert_eq!(&ad[7..9], &[0xBE, 0xAC]);
    }

    #[test]
    fn every_format_fits_a_pdu() {
        let formats = [
            BeaconFormat::IBeacon { uuid: [0; 16], major: 0, minor: 0, measured_power: 0 },
            BeaconFormat::EddystoneUid { tx_power: 0, namespace: [0; 10], instance: [0; 6] },
            BeaconFormat::EddystoneUrl { tx_power: 0, scheme: 1, body: b"a.io".to_vec() },
            BeaconFormat::AltBeacon { mfg_id: 1, beacon_id: [0; 20], reference_rssi: 0 },
        ];
        for f in formats {
            let pdu = f.to_pdu([1, 2, 3, 4, 5, 6]);
            let bytes = pdu.to_bytes();
            assert!(bytes.len() <= 2 + 6 + 31);
            assert_eq!(AdvPdu::from_bytes(&bytes), Some(pdu));
        }
    }

    #[test]
    fn build_beacon_skips_uncoverable_channels() {
        let mut cfg = BeaconConfig::default();
        cfg.channels = vec![37, 38, 39];
        let packets = build_beacon(&cfg, &BlueFi::default(), 71);
        let chans: Vec<u8> = packets.per_channel.iter().map(|(c, _)| *c).collect();
        // 37 (2402 MHz) cannot be planned; 38 and 39 can.
        assert_eq!(chans, vec![38, 39]);
    }

    #[test]
    fn config_roundtrips_through_serde_json_like() {
        // serde is wired for the remote-control plane; spot-check Debug/
        // clone semantics and field defaults.
        let cfg = BeaconConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.channels, vec![38, 39]);
        let cloned = cfg.clone();
        assert_eq!(format!("{:?}", cfg.format), format!("{:?}", cloned.format));
    }
}
