//! Bluetooth beacon formats and the AP-side beacon service (the paper's
//! first end-to-end app: "an 802.11n-compliant AP is transformed into a
//! Bluetooth beacon", controllable remotely).

use bluefi_bt::ble::{adv_air_bits, AdvChannel, AdvChannelError, AdvPdu, AdvPduType};
use bluefi_core::json::{Json, JsonError, ToJson};
use bluefi_core::pipeline::{BlueFi, Synthesis};

/// The beacon payload formats in common deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeaconFormat {
    /// Apple iBeacon: 16-byte proximity UUID + major/minor + calibrated TX
    /// power.
    IBeacon {
        /// Proximity UUID.
        uuid: [u8; 16],
        /// Major group id.
        major: u16,
        /// Minor id.
        minor: u16,
        /// Calibrated RSSI at 1 m (two's complement dBm).
        measured_power: i8,
    },
    /// Google Eddystone-UID: 10-byte namespace + 6-byte instance.
    EddystoneUid {
        /// Calibrated TX power at 0 m.
        tx_power: i8,
        /// Namespace id.
        namespace: [u8; 10],
        /// Instance id.
        instance: [u8; 6],
    },
    /// Eddystone-URL with the spec's scheme/TLD compression.
    EddystoneUrl {
        /// Calibrated TX power at 0 m.
        tx_power: i8,
        /// URL scheme byte (0x00 = http://www., 0x01 = https://www.,
        /// 0x02 = http://, 0x03 = https://).
        scheme: u8,
        /// Compressed URL body.
        body: Vec<u8>,
    },
    /// AltBeacon (the open format).
    AltBeacon {
        /// Manufacturer id (little endian on air).
        mfg_id: u16,
        /// 20-byte beacon id.
        beacon_id: [u8; 20],
        /// Reference RSSI.
        reference_rssi: i8,
    },
}

impl BeaconFormat {
    /// Serializes the format's AD structures (the AdvData payload).
    pub fn ad_structures(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(31);
        // Flags AD: LE General Discoverable, BR/EDR not supported.
        out.extend_from_slice(&[0x02, 0x01, 0x06]);
        match self {
            BeaconFormat::IBeacon { uuid, major, minor, measured_power } => {
                out.extend_from_slice(&[0x1A, 0xFF, 0x4C, 0x00, 0x02, 0x15]);
                out.extend_from_slice(uuid);
                out.extend_from_slice(&major.to_be_bytes());
                out.extend_from_slice(&minor.to_be_bytes());
                out.push(*measured_power as u8);
            }
            BeaconFormat::EddystoneUid { tx_power, namespace, instance } => {
                // Service UUID 0xFEAA + service data.
                out.extend_from_slice(&[0x03, 0x03, 0xAA, 0xFE]);
                out.extend_from_slice(&[0x17, 0x16, 0xAA, 0xFE, 0x00]);
                out.push(*tx_power as u8);
                out.extend_from_slice(namespace);
                out.extend_from_slice(instance);
                out.extend_from_slice(&[0x00, 0x00]); // RFU
            }
            BeaconFormat::EddystoneUrl { tx_power, scheme, body } => {
                assert!(body.len() <= 17, "compressed URL too long");
                out.extend_from_slice(&[0x03, 0x03, 0xAA, 0xFE]);
                out.push((5 + body.len()) as u8);
                out.extend_from_slice(&[0x16, 0xAA, 0xFE, 0x10]);
                out.push(*tx_power as u8);
                out.push(*scheme);
                out.extend_from_slice(body);
            }
            BeaconFormat::AltBeacon { mfg_id, beacon_id, reference_rssi } => {
                out.push(0x1B);
                out.push(0xFF);
                out.extend_from_slice(&mfg_id.to_le_bytes());
                out.extend_from_slice(&[0xBE, 0xAC]);
                out.extend_from_slice(beacon_id);
                out.push(*reference_rssi as u8);
                out.push(0x00); // mfg reserved
            }
        }
        assert!(out.len() <= 31, "AdvData is at most 31 bytes ({})", out.len());
        out
    }

    /// Builds the advertising PDU for this beacon.
    pub fn to_pdu(&self, adv_address: [u8; 6]) -> AdvPdu {
        AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address,
            adv_data: self.ad_structures(),
            tx_add: true,
        }
    }

    /// Parses a format back out of its [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Result<BeaconFormat, JsonError> {
        let kind = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("missing type"))?;
        match kind {
            "ibeacon" => Ok(BeaconFormat::IBeacon {
                uuid: byte_array(v, "uuid")?,
                major: num(v, "major")? as u16,
                minor: num(v, "minor")? as u16,
                measured_power: num(v, "measured_power")? as i8,
            }),
            "eddystone_uid" => Ok(BeaconFormat::EddystoneUid {
                tx_power: num(v, "tx_power")? as i8,
                namespace: byte_array(v, "namespace")?,
                instance: byte_array(v, "instance")?,
            }),
            "eddystone_url" => Ok(BeaconFormat::EddystoneUrl {
                tx_power: num(v, "tx_power")? as i8,
                scheme: num(v, "scheme")? as u8,
                body: byte_vec(v, "body")?,
            }),
            "altbeacon" => Ok(BeaconFormat::AltBeacon {
                mfg_id: num(v, "mfg_id")? as u16,
                beacon_id: byte_array(v, "beacon_id")?,
                reference_rssi: num(v, "reference_rssi")? as i8,
            }),
            other => Err(bad(&format!("unknown beacon format '{other}'"))),
        }
    }
}

fn bad(message: &str) -> JsonError {
    JsonError { message: message.to_string(), offset: 0 }
}

fn num(v: &Json, key: &str) -> Result<f64, JsonError> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| bad(&format!("missing number '{key}'")))
}

fn byte_vec(v: &Json, key: &str) -> Result<Vec<u8>, JsonError> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(&format!("missing array '{key}'")))?
        .iter()
        .map(|e| e.as_f64().map(|n| n as u8).ok_or_else(|| bad("non-numeric byte")))
        .collect()
}

fn byte_array<const N: usize>(v: &Json, key: &str) -> Result<[u8; N], JsonError> {
    let bytes = byte_vec(v, key)?;
    bytes
        .try_into()
        .map_err(|_| bad(&format!("'{key}' must hold exactly {N} bytes")))
}

fn json_bytes(bytes: &[u8]) -> Json {
    Json::Arr(bytes.iter().map(|&b| Json::Num(b as f64)).collect())
}

impl ToJson for BeaconFormat {
    fn to_json(&self) -> Json {
        match self {
            BeaconFormat::IBeacon { uuid, major, minor, measured_power } => Json::obj(vec![
                ("type", Json::Str("ibeacon".into())),
                ("uuid", json_bytes(uuid)),
                ("major", Json::Num(*major as f64)),
                ("minor", Json::Num(*minor as f64)),
                ("measured_power", Json::Num(*measured_power as f64)),
            ]),
            BeaconFormat::EddystoneUid { tx_power, namespace, instance } => Json::obj(vec![
                ("type", Json::Str("eddystone_uid".into())),
                ("tx_power", Json::Num(*tx_power as f64)),
                ("namespace", json_bytes(namespace)),
                ("instance", json_bytes(instance)),
            ]),
            BeaconFormat::EddystoneUrl { tx_power, scheme, body } => Json::obj(vec![
                ("type", Json::Str("eddystone_url".into())),
                ("tx_power", Json::Num(*tx_power as f64)),
                ("scheme", Json::Num(*scheme as f64)),
                ("body", json_bytes(body)),
            ]),
            BeaconFormat::AltBeacon { mfg_id, beacon_id, reference_rssi } => Json::obj(vec![
                ("type", Json::Str("altbeacon".into())),
                ("mfg_id", Json::Num(*mfg_id as f64)),
                ("beacon_id", json_bytes(beacon_id)),
                ("reference_rssi", Json::Num(*reference_rssi as f64)),
            ]),
        }
    }
}

/// Remotely-configurable beacon service state (the paper controls BlueFi
/// over SSH "from either the Internet … local Ethernet or WiFi" — this is
/// the serializable config such a control plane would push).
#[derive(Debug, Clone, PartialEq)]
pub struct BeaconConfig {
    /// Beacon payload.
    pub format: BeaconFormat,
    /// Advertiser address.
    pub adv_address: [u8; 6],
    /// Broadcast rate, Hz.
    pub rate_hz: f64,
    /// Advertising channels to broadcast on (the transmitter may use 1, 2
    /// or 3 of them; 2402 MHz is not coverable by WiFi, see DESIGN.md).
    pub channels: Vec<u8>,
    /// Running?
    pub enabled: bool,
}

impl ToJson for BeaconConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format", self.format.to_json()),
            ("adv_address", json_bytes(&self.adv_address)),
            ("rate_hz", Json::Num(self.rate_hz)),
            ("channels", json_bytes(&self.channels)),
            ("enabled", Json::Bool(self.enabled)),
        ])
    }
}

impl BeaconConfig {
    /// Parses the config a control plane pushed as JSON text.
    pub fn from_json_text(text: &str) -> Result<BeaconConfig, JsonError> {
        let v = Json::parse(text)?;
        Ok(BeaconConfig {
            format: BeaconFormat::from_json(
                v.get("format").ok_or_else(|| bad("missing format"))?,
            )?,
            adv_address: byte_array(&v, "adv_address")?,
            rate_hz: num(&v, "rate_hz")?,
            channels: byte_vec(&v, "channels")?,
            enabled: v
                .get("enabled")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing enabled"))?,
        })
    }
}

impl Default for BeaconConfig {
    fn default() -> BeaconConfig {
        BeaconConfig {
            format: BeaconFormat::IBeacon {
                uuid: [0xB1; 16],
                major: 1,
                minor: 2,
                measured_power: -59,
            },
            adv_address: [0xB1, 0x0E, 0xF1, 0x00, 0x00, 0x01],
            rate_hz: 10.0,
            channels: vec![38, 39],
            enabled: true,
        }
    }
}

/// A beacon transmission ready for the WiFi driver: per advertising
/// channel, the synthesized PSDU.
#[derive(Debug)]
pub struct BeaconPackets {
    /// (advertising channel, synthesis) pairs; channels no WiFi channel
    /// covers are skipped (BLE 37 / 2402 MHz).
    pub per_channel: Vec<(u8, Synthesis)>,
}

/// Synthesizes the configured beacon for every requested advertising
/// channel. `seed` is the scrambler seed the chip will apply.
///
/// Channels outside 37..=39 are rejected (a control plane pushing configs
/// over the network must not be able to panic the AP); valid channels no
/// WiFi channel covers (BLE 37 / 2402 MHz) are silently skipped.
pub fn build_beacon(
    cfg: &BeaconConfig,
    bf: &BlueFi,
    seed: u8,
) -> Result<BeaconPackets, AdvChannelError> {
    let pdu = cfg.format.to_pdu(cfg.adv_address);
    let mut per_channel = Vec::new();
    for &ch in &cfg.channels {
        let adv = AdvChannel::new(ch)?;
        let bits = adv_air_bits(&pdu, adv.index());
        if let Some(syn) = bf.synthesize(&bits, adv.freq_hz(), seed) {
            per_channel.push((adv.index(), syn));
        }
    }
    Ok(BeaconPackets { per_channel })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibeacon_layout() {
        let b = BeaconFormat::IBeacon {
            uuid: [0xAB; 16],
            major: 0x0102,
            minor: 0x0304,
            measured_power: -59,
        };
        let ad = b.ad_structures();
        assert_eq!(ad.len(), 3 + 27);
        // Apple company id + iBeacon type/length.
        assert_eq!(&ad[3..9], &[0x1A, 0xFF, 0x4C, 0x00, 0x02, 0x15]);
        assert_eq!(&ad[9..25], &[0xAB; 16]);
        assert_eq!(&ad[25..29], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(ad[29] as i8, -59);
    }

    #[test]
    fn eddystone_uid_layout() {
        let b = BeaconFormat::EddystoneUid {
            tx_power: -10,
            namespace: [1; 10],
            instance: [2; 6],
        };
        let ad = b.ad_structures();
        assert!(ad.len() <= 31);
        // Service-data AD for 0xFEAA, frame type 0x00.
        assert_eq!(&ad[7..12], &[0x17, 0x16, 0xAA, 0xFE, 0x00]);
    }

    #[test]
    fn eddystone_url_respects_length() {
        let b = BeaconFormat::EddystoneUrl {
            tx_power: -20,
            scheme: 0x03,
            body: b"example.com".to_vec(),
        };
        let ad = b.ad_structures();
        assert!(ad.len() <= 31, "{}", ad.len());
    }

    #[test]
    fn altbeacon_layout() {
        let b = BeaconFormat::AltBeacon {
            mfg_id: 0x0118,
            beacon_id: [7; 20],
            reference_rssi: -65,
        };
        let ad = b.ad_structures();
        assert_eq!(ad[4], 0xFF);
        assert_eq!(&ad[7..9], &[0xBE, 0xAC]);
    }

    #[test]
    fn every_format_fits_a_pdu() {
        let formats = [
            BeaconFormat::IBeacon { uuid: [0; 16], major: 0, minor: 0, measured_power: 0 },
            BeaconFormat::EddystoneUid { tx_power: 0, namespace: [0; 10], instance: [0; 6] },
            BeaconFormat::EddystoneUrl { tx_power: 0, scheme: 1, body: b"a.io".to_vec() },
            BeaconFormat::AltBeacon { mfg_id: 1, beacon_id: [0; 20], reference_rssi: 0 },
        ];
        for f in formats {
            let pdu = f.to_pdu([1, 2, 3, 4, 5, 6]);
            let bytes = pdu.to_bytes();
            assert!(bytes.len() <= 2 + 6 + 31);
            assert_eq!(AdvPdu::from_bytes(&bytes), Some(pdu));
        }
    }

    #[test]
    fn build_beacon_skips_uncoverable_channels() {
        let mut cfg = BeaconConfig::default();
        cfg.channels = vec![37, 38, 39];
        let packets = build_beacon(&cfg, &BlueFi::default(), 71).unwrap();
        let chans: Vec<u8> = packets.per_channel.iter().map(|(c, _)| *c).collect();
        // 37 (2402 MHz) cannot be planned; 38 and 39 can.
        assert_eq!(chans, vec![38, 39]);
    }

    #[test]
    fn build_beacon_rejects_out_of_range_channels() {
        let mut cfg = BeaconConfig::default();
        cfg.channels = vec![38, 40];
        let err = build_beacon(&cfg, &BlueFi::default(), 71).unwrap_err();
        assert_eq!(err, bluefi_bt::ble::AdvChannelError(40));
    }

    #[test]
    fn config_roundtrips_through_json() {
        // The remote-control plane pushes configs as JSON text; every
        // format must survive the render → parse round trip.
        let formats = [
            BeaconFormat::IBeacon { uuid: [7; 16], major: 700, minor: 7, measured_power: -59 },
            BeaconFormat::EddystoneUid { tx_power: -4, namespace: [3; 10], instance: [9; 6] },
            BeaconFormat::EddystoneUrl { tx_power: 0, scheme: 1, body: b"bluefi.io".to_vec() },
            BeaconFormat::AltBeacon { mfg_id: 0x0118, beacon_id: [5; 20], reference_rssi: -65 },
        ];
        for format in formats {
            let cfg = BeaconConfig { format, ..Default::default() };
            let text = cfg.to_json().render();
            let back = BeaconConfig::from_json_text(&text).unwrap();
            assert_eq!(back, cfg, "{text}");
        }
        assert!(BeaconConfig::from_json_text("{}").is_err());
        assert!(BeaconConfig::from_json_text("not json").is_err());
    }
}
