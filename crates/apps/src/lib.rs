//! # bluefi-apps
//!
//! The paper's two end-to-end applications built on the BlueFi core:
//!
//! * [`beacon`] — iBeacon/Eddystone/AltBeacon payloads and the remotely
//!   configurable AP beacon service (Sec 4.2–4.4).
//! * [`audio`] — real-time A2DP streaming: the [`sbc`] subband codec,
//!   [`l2cap`] framing, AFH-confined hopping and the slot scheduler
//!   (Sec 4.7), plus the FTS4BT-style sniffer classification behind
//!   Figs 9 and 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audio;
pub mod beacon;
pub mod l2cap;
pub mod ranging;
pub mod sbc;

pub use audio::{A2dpStreamer, AudioConfig, SnifferCounts};
pub use beacon::{BeaconConfig, BeaconFormat};
pub use sbc::{SbcCodec, SbcParams};
