//! The A2DP audio application (paper Sec 4.7): PCM → SBC frames →
//! RTP/L2CAP media packets → slot-scheduled BR packets synthesized by
//! BlueFi on a single WiFi channel with AFH-restricted hopping.
//!
//! The paper's strategies, all implemented here:
//!
//! * hopping is confined by AFH to the Bluetooth channels under one WiFi
//!   channel (frequency hopping happens across *subcarriers*, not WiFi
//!   channels);
//! * for multi-slot audio, the 3 best channels carry DH5 packets; slots
//!   whose hop lands elsewhere stay idle;
//! * packets are generated against the clock value of the slot they will
//!   be transmitted in (the whitening seed depends on it) — the real-time
//!   decoder exists to make this feasible at 1.25 ms pacing.

use crate::l2cap::{fragment, l2cap_frame, MediaHeader, A2DP_STREAM_CID};
use crate::sbc::{SbcCodec, SbcParams};
use bluefi_bt::br::{br_air_bits, BrDecode, BrHeader, BtAddress, PacketType};
use bluefi_bt::hopping::{ChannelMap, HopSelector, SlotClock};
use bluefi_bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi_core::pipeline::{BlueFi, Synthesis, SynthesisScratch};
use bluefi_core::reversal::DecodeStrategy;
use bluefi_sim::channel::Channel;
use bluefi_wifi::channels::{
    bt_channel_freq_hz, subcarrier_in_channel, usable_bt_channels_in_wifi, ChannelPlan,
};
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi_core::json::{Json, ToJson};
use bluefi_core::rng::{SeedableRng, StdRng};

/// Audio-session configuration.
#[derive(Debug, Clone)]
pub struct AudioConfig {
    /// Master device address.
    pub addr: BtAddress,
    /// WiFi channel everything rides on.
    pub wifi_channel: u8,
    /// How many "best" Bluetooth channels carry audio (the paper uses 3).
    pub n_audio_channels: usize,
    /// Packet type for audio (5-slot; DM5's rate-2/3 FEC suits the
    /// simulated receiver's residual BER — see EXPERIMENTS.md).
    pub ptype: PacketType,
    /// Codec parameters.
    pub sbc: SbcParams,
}

impl Default for AudioConfig {
    fn default() -> AudioConfig {
        AudioConfig {
            addr: BtAddress { lap: 0x2A5F17, uap: 0x63, nap: 0x0001 },
            wifi_channel: 3,
            n_audio_channels: 3,
            ptype: PacketType::Dm5,
            sbc: SbcParams::default(),
        }
    }
}

/// Ranks the usable Bluetooth channels under a WiFi channel by pilot/null
/// clearance, best first — the paper's "select 3 best channels".
pub fn ranked_channels(wifi_channel: u8) -> Vec<u8> {
    let mut chans = usable_bt_channels_in_wifi(wifi_channel);
    chans.sort_by(|&a, &b| {
        let ca = ChannelPlan::pinned(
            wifi_channel,
            subcarrier_in_channel(bt_channel_freq_hz(a), wifi_channel),
        )
        .clearance;
        let cb = ChannelPlan::pinned(
            wifi_channel,
            subcarrier_in_channel(bt_channel_freq_hz(b), wifi_channel),
        )
        .clearance;
        cb.total_cmp(&ca)
    });
    chans
}

/// A scheduled transmission.
#[derive(Debug)]
pub struct ScheduledPacket {
    /// Starting slot.
    pub slot: u32,
    /// Bluetooth channel it flies on.
    pub bt_channel: u8,
    /// The synthesized WiFi PSDU.
    pub synthesis: Synthesis,
    /// The BR payload carried.
    pub payload: Vec<u8>,
    /// Whitening clock bits used.
    pub clk6_1: u8,
}

/// The streamer: builds the schedule and the per-slot packets for a PCM
/// stream.
pub struct A2dpStreamer {
    cfg: AudioConfig,
    codec: SbcCodec,
    bf: BlueFi,
    hop: HopSelector,
    map: ChannelMap,
    audio_channels: Vec<u8>,
    sequence: u16,
    timestamp: u32,
}

impl A2dpStreamer {
    /// Creates a streamer.
    pub fn new(cfg: AudioConfig) -> A2dpStreamer {
        let audio_channels: Vec<u8> =
            ranked_channels(cfg.wifi_channel).into_iter().take(cfg.n_audio_channels).collect();
        let map = ChannelMap::from_channels(usable_bt_channels_in_wifi(cfg.wifi_channel));
        let hop = HopSelector::new(cfg.addr.lap, cfg.addr.uap);
        let codec = SbcCodec::new(cfg.sbc);
        // Real-time generation: the paper's O(T) decoder at MCS 5.
        let bf = BlueFi { strategy: DecodeStrategy::Realtime, ..Default::default() };
        A2dpStreamer { cfg, codec, bf, hop, map, audio_channels, sequence: 0, timestamp: 0 }
    }

    /// The channels carrying audio (best-first).
    pub fn audio_channels(&self) -> &[u8] {
        &self.audio_channels
    }

    /// Encodes PCM into media packets (L2CAP frames ready for the
    /// baseband).
    pub fn media_packets(&mut self, pcm: &[f64]) -> Vec<Vec<u8>> {
        let spf = self.cfg.sbc.samples_per_frame();
        let mut out = Vec::new();
        for chunk in pcm.chunks_exact(spf) {
            let frame = self.codec.encode_frame(chunk);
            let hdr = MediaHeader {
                sequence: self.sequence,
                timestamp: self.timestamp,
                ssrc: 0xB1DEF1,
                n_frames: 1,
            };
            self.sequence = self.sequence.wrapping_add(1);
            self.timestamp = self.timestamp.wrapping_add(spf as u32);
            let media = hdr.packetize(&frame);
            out.push(l2cap_frame(A2DP_STREAM_CID, &media));
        }
        out
    }

    /// Schedules and synthesizes packets for `l2cap_frames` starting at
    /// `start_slot`. Each packet waits for a master TX slot whose hop lands
    /// on one of the audio channels, then occupies the packet's slots.
    pub fn schedule(&self, l2cap_frames: &[Vec<u8>], start_slot: u32) -> Vec<ScheduledPacket> {
        let chunk_size = self.cfg.ptype.max_payload();
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        for f in l2cap_frames {
            chunks.extend(fragment(f, chunk_size));
        }
        let mut out = Vec::new();
        let mut slot = if start_slot.is_multiple_of(2) { start_slot } else { start_slot + 1 };
        // Kernel buffers are shared across packets; only the retained
        // Synthesis clones below allocate per packet.
        let mut scratch = SynthesisScratch::new();
        for chunk in chunks {
            // Hunt for a slot whose hop channel is one of ours.
            let (tx_slot, ch) = loop {
                let clk = SlotClock::at_slot(slot);
                let ch = self.hop.channel(clk.clk, &self.map);
                if self.audio_channels.contains(&ch) {
                    break (slot, ch);
                }
                slot += 2; // next master TX slot
            };
            let clk = SlotClock::at_slot(tx_slot);
            let header = BrHeader {
                lt_addr: 1,
                ptype: self.cfg.ptype,
                flow: true,
                arqn: false,
                seqn: tx_slot % 4 == 0,
            };
            let bits = br_air_bits(self.cfg.addr, &header, &chunk, clk.clk6_1());
            let sc = subcarrier_in_channel(bt_channel_freq_hz(ch), self.cfg.wifi_channel);
            // Snap within the BT carrier tolerance like the planner does.
            let sc = if (sc.round() - sc).abs() <= bluefi_wifi::channels::MAX_SNAP_SUBCARRIERS
            {
                sc.round()
            } else {
                sc
            };
            let plan = ChannelPlan {
                wifi_channel: self.cfg.wifi_channel,
                subcarrier: subcarrier_in_channel(
                    bt_channel_freq_hz(ch),
                    self.cfg.wifi_channel,
                ),
                tx_subcarrier: sc,
                clearance: bluefi_wifi::channels::distance_to_pilot_or_null(sc),
            };
            let synthesis = self.bf.synthesize_at_with(&bits, plan, 71, &mut scratch).clone();
            out.push(ScheduledPacket {
                slot: tx_slot,
                bt_channel: ch,
                synthesis,
                payload: chunk,
                clk6_1: clk.clk6_1(),
            });
            // A packet occupies `slots()` slots; the next master TX slot is
            // the next even slot after it ends.
            slot = tx_slot + self.cfg.ptype.slots() as u32 + 1;
            if slot % 2 == 1 {
                slot += 1;
            }
        }
        out
    }
}

/// FTS4BT-style packet classification (Figs 9 and 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnifferCounts {
    /// Decoded with valid CRC.
    pub no_error: usize,
    /// Header valid, payload CRC failed.
    pub crc_error: usize,
    /// Access code found but header unrecoverable — or nothing at all.
    pub header_error: usize,
}

impl SnifferCounts {
    /// Total packets observed.
    pub fn total(&self) -> usize {
        self.no_error + self.crc_error + self.header_error
    }

    /// Packet error rate (everything but clean packets).
    pub fn per(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.no_error as f64 / self.total() as f64
    }
}

impl ToJson for SnifferCounts {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("no_error", Json::Num(self.no_error as f64)),
            ("crc_error", Json::Num(self.crc_error as f64)),
            ("header_error", Json::Num(self.header_error as f64)),
            ("per", Json::Num(self.per())),
        ])
    }
}

/// Runs `n` packets of `ptype` on one Bluetooth channel through the office
/// channel and classifies them like the FTS4BT sniffer (Fig 9 is this with
/// single-slot packets, channel by channel).
pub fn sniff_channel(
    cfg: &AudioConfig,
    bt_channel: u8,
    ptype: PacketType,
    n: usize,
    distance_m: f64,
    seed: u64,
) -> SnifferCounts {
    let bf = BlueFi { strategy: DecodeStrategy::Realtime, ..Default::default() };
    let sc_true = subcarrier_in_channel(bt_channel_freq_hz(bt_channel), cfg.wifi_channel);
    let sc_tx = if (sc_true.round() - sc_true).abs()
        <= bluefi_wifi::channels::MAX_SNAP_SUBCARRIERS
    {
        sc_true.round()
    } else {
        sc_true
    };
    let plan = ChannelPlan {
        wifi_channel: cfg.wifi_channel,
        subcarrier: sc_true,
        tx_subcarrier: sc_tx,
        clearance: bluefi_wifi::channels::distance_to_pilot_or_null(sc_tx),
    };
    let chip = bluefi_wifi::ChipModel::rtl8811au();
    let channel = Channel::new(bluefi_sim::channel::ChannelConfig::office(distance_m));
    let rx = GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: sc_true * SUBCARRIER_SPACING_HZ,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = SnifferCounts::default();
    // One scratch across the whole sweep: every synthesis after the first
    // runs allocation-free in the kernels.
    let mut scratch = SynthesisScratch::new();
    for k in 0..n {
        let clk6_1 = (k % 64) as u8;
        let header = BrHeader {
            lt_addr: 1,
            ptype,
            flow: true,
            arqn: false,
            seqn: k % 2 == 0,
        };
        let payload: Vec<u8> =
            (0..ptype.max_payload()).map(|i| ((i + k) % 251) as u8).collect();
        let bits = br_air_bits(cfg.addr, &header, &payload, clk6_1);
        let syn = bf.synthesize_at_with(&bits, plan, 71, &mut scratch);
        let ppdu = chip.transmit_with_seed(&syn.psdu, syn.mcs, 18.0, 71);
        let rx_wave = channel.apply(&ppdu.iq, &mut rng);
        match rx.receive_br(&rx_wave, cfg.addr.lap, cfg.addr.uap, clk6_1).decode {
            Some(BrDecode::Ok { payload: p, .. }) if p == payload => counts.no_error += 1,
            Some(BrDecode::Ok { .. }) | Some(BrDecode::CrcError { .. }) => {
                counts.crc_error += 1
            }
            Some(BrDecode::HeaderError) | None => counts.header_error += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_channels_prefer_clearance() {
        let chans = ranked_channels(3);
        assert!(chans.len() >= 16);
        let clearance = |c: u8| {
            bluefi_wifi::channels::distance_to_pilot_or_null(subcarrier_in_channel(
                bt_channel_freq_hz(c),
                3,
            ))
        };
        // Best-ranked beats worst-ranked.
        assert!(clearance(chans[0]) > clearance(*chans.last().unwrap()));
    }

    #[test]
    fn media_packets_wrap_sbc_frames() {
        let mut s = A2dpStreamer::new(AudioConfig::default());
        let pcm: Vec<f64> = (0..128 * 3).map(|i| (i as f64 * 0.05).sin() * 0.3).collect();
        let pkts = s.media_packets(&pcm);
        assert_eq!(pkts.len(), 3);
        for p in &pkts {
            let (cid, media) = crate::l2cap::parse_l2cap(p).unwrap();
            assert_eq!(cid, A2DP_STREAM_CID);
            let (hdr, sbc) = MediaHeader::parse(media).unwrap();
            assert_eq!(hdr.n_frames, 1);
            assert_eq!(sbc[0], 0x9C);
        }
    }

    #[test]
    fn schedule_uses_only_audio_channels_and_master_slots() {
        let s = A2dpStreamer::new(AudioConfig::default());
        let frames: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 200]).collect();
        let sched = s.schedule(&frames, 100);
        assert!(!sched.is_empty());
        for p in &sched {
            assert!(s.audio_channels().contains(&p.bt_channel), "{}", p.bt_channel);
            assert_eq!(p.slot % 2, 0, "master TX slots are even");
        }
        // Packets do not overlap.
        for w in sched.windows(2) {
            assert!(w[1].slot >= w[0].slot + 5, "{} then {}", w[0].slot, w[1].slot);
        }
    }

    #[test]
    fn scheduled_packets_use_realtime_mcs() {
        let s = A2dpStreamer::new(AudioConfig::default());
        let sched = s.schedule(&[vec![1u8; 150]], 0);
        assert_eq!(sched[0].synthesis.mcs.index, 5);
    }

    #[test]
    fn sniffer_counts_math() {
        let c = SnifferCounts { no_error: 75, crc_error: 20, header_error: 5 };
        assert_eq!(c.total(), 100);
        assert!((c.per() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn good_channel_beats_pilot_adjacent_channel() {
        // The Fig 9 mechanism: a Bluetooth channel near a pilot suffers.
        let cfg = AudioConfig::default();
        // WiFi channel 3 (2422 MHz): pilot +7 ≈ 2424.19 MHz -> BT channel 22
        // sits ~0.6 subcarriers from it; BT channel 24 (2426 MHz) snaps to
        // subcarrier 13, clearance 6.
        let good = sniff_channel(&cfg, 24, PacketType::Dh1, 12, 1.5, 5);
        let bad = sniff_channel(&cfg, 22, PacketType::Dh1, 12, 1.5, 5);
        assert!(
            good.no_error > bad.no_error,
            "good {good:?} vs bad {bad:?}"
        );
    }
}
