//! An SBC-framed subband audio codec.
//!
//! A2DP's mandatory codec is SBC: a cosine-modulated filterbank (4 or 8
//! subbands), block-adaptive PCM quantization driven by per-subband scale
//! factors, and a compact frame format (syncword 0x9C). This module
//! implements that architecture with the same frame structure, parameters
//! and rates.
//!
//! **Substitution note (DESIGN.md):** the analysis/synthesis prototype
//! filter is a Kaiser-windowed design rather than the SBC specification's
//! tabulated `proto_8_80` coefficients, and the bit allocator is a
//! simplified loudness allocator. Frames are therefore not bit-exact with
//! reference SBC, but sizes, rates and audio quality behaviour match —
//! which is what the PHY evaluation (slot occupancy, Fig 10) depends on.

use std::f64::consts::PI;

/// Codec parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbcParams {
    /// Number of subbands (4 or 8).
    pub subbands: usize,
    /// Blocks per frame (4, 8, 12 or 16).
    pub blocks: usize,
    /// Bit pool (controls quality/bitrate).
    pub bitpool: usize,
    /// Sampling rate, Hz (16000/32000/44100/48000).
    pub sample_rate_hz: u32,
}

impl Default for SbcParams {
    fn default() -> SbcParams {
        // The common A2DP "high quality" mono configuration.
        SbcParams { subbands: 8, blocks: 16, bitpool: 35, sample_rate_hz: 44_100 }
    }
}

impl SbcParams {
    /// PCM samples consumed per frame.
    pub fn samples_per_frame(&self) -> usize {
        self.subbands * self.blocks
    }

    /// Encoded frame length in bytes (header + scale factors + payload).
    pub fn frame_bytes(&self) -> usize {
        let sf_bits = 4 * self.subbands;
        let payload_bits = self.blocks * self.bitpool;
        4 + sf_bits.div_ceil(8) + payload_bits.div_ceil(8)
    }

    /// Encoded bitrate, bits/s.
    pub fn bitrate_bps(&self) -> f64 {
        self.frame_bytes() as f64 * 8.0 * self.sample_rate_hz as f64
            / self.samples_per_frame() as f64
    }
}

/// The codec (mono; A2DP stereo runs two instances or joint coding).
///
/// Encoder and decoder are stateful: the analysis filterbank keeps a
/// history window across frames and the synthesis side overlap-adds filter
/// tails, exactly like real SBC — reset state with [`SbcCodec::reset`] when
/// starting a new stream. End-to-end latency is roughly the prototype
/// length (`10·subbands` samples).
#[derive(Debug, Clone)]
pub struct SbcCodec {
    params: SbcParams,
    /// Per-subband analysis filters, `proto_len` taps each.
    filters: Vec<Vec<f64>>,
    /// Per-subband synthesis filters (pseudo-QMF: the −π/4 phase pair of
    /// the analysis bank, which is what cancels adjacent-band aliasing).
    synth_filters: Vec<Vec<f64>>,
    /// Encoder history: the last `taps` input samples.
    enc_hist: Vec<f64>,
    /// Decoder overlap-add tail.
    dec_tail: Vec<f64>,
    /// Cascade gain correction measured at construction.
    gain: f64,
}

/// Kaiser-windowed cosine-modulated filterbank prototype.
fn prototype(subbands: usize) -> Vec<f64> {
    let len = subbands * 10;
    let beta = 8.0;
    let cutoff = 1.0 / (2.0 * subbands as f64);
    let mid = (len - 1) as f64 / 2.0;
    let i0 = |x: f64| {
        // Modified Bessel I0 by series.
        let mut sum = 1.0;
        let mut term = 1.0;
        for k in 1..25 {
            term *= (x / (2.0 * k as f64)) * (x / (2.0 * k as f64));
            sum += term;
        }
        sum
    };
    let denom = i0(beta);
    (0..len)
        .map(|n| {
            let t = n as f64 - mid;
            let sinc = if t == 0.0 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * t).sin() / (PI * t)
            };
            let r = 2.0 * n as f64 / (len - 1) as f64 - 1.0;
            sinc * i0(beta * (1.0 - r * r).sqrt()) / denom
        })
        .collect()
}

impl SbcCodec {
    /// Builds a codec.
    pub fn new(params: SbcParams) -> SbcCodec {
        assert!(params.subbands == 4 || params.subbands == 8);
        assert!(matches!(params.blocks, 4 | 8 | 12 | 16));
        assert!((2..=250).contains(&params.bitpool));
        let m = params.subbands;
        let proto = prototype(m);
        let taps = m * 10;
        // Pseudo-QMF modulation: analysis uses phase +(−1)^k·π/4,
        // synthesis −(−1)^k·π/4, both centered on the prototype's midpoint.
        // The opposite phases make adjacent-band aliasing cancel in the
        // cascade — a generic (Kaiser) prototype reconstructs cleanly.
        let d = (taps - 1) as f64 / 2.0;
        let bank = |sign: f64| -> Vec<Vec<f64>> {
            (0..m)
                .map(|k| {
                    let phi = if k % 2 == 0 { PI / 4.0 } else { -PI / 4.0 } * sign;
                    proto
                        .iter()
                        .enumerate()
                        .map(|(n, &h)| {
                            h * 2.0
                                * ((2 * k + 1) as f64 * PI / (2.0 * m as f64)
                                    * (n as f64 - d)
                                    + phi)
                                    .cos()
                        })
                        .collect()
                })
                .collect()
        };
        let filters = bank(1.0);
        let synth_filters = bank(-1.0);
        let mut codec = SbcCodec {
            params,
            filters,
            synth_filters,
            enc_hist: vec![0.0; taps],
            dec_tail: vec![0.0; taps],
            gain: 1.0,
        };
        // Calibrate the cascade gain with an in-band tone (quantization
        // bypassed): Kaiser prototypes are near- but not perfectly
        // power-complementary.
        let n = params.samples_per_frame() * 4;
        let tone: Vec<f64> =
            (0..n).map(|i| (2.0 * PI * i as f64 / (4.0 * m as f64)).sin()).collect();
        let bands = codec.analyze_stateless(&tone);
        let rec = codec.synthesize_stateless(&bands);
        let d = taps - 1;
        let mid = n / 2..n * 3 / 4;
        let e_ref: f64 = mid.clone().map(|i| tone[i] * tone[i]).sum();
        let e_rec: f64 = mid.map(|i| rec[i + d] * rec[i + d]).sum();
        if e_rec > 1e-12 {
            codec.gain = (e_ref / e_rec).sqrt();
        }
        codec
    }

    /// Parameters.
    pub fn params(&self) -> &SbcParams {
        &self.params
    }

    /// Clears encoder/decoder filter state (start of a new stream).
    pub fn reset(&mut self) {
        for v in self.enc_hist.iter_mut() {
            *v = 0.0;
        }
        for v in self.dec_tail.iter_mut() {
            *v = 0.0;
        }
    }

    /// One-shot analysis over a standalone buffer (calibration/tests).
    fn analyze_stateless(&self, pcm: &[f64]) -> Vec<Vec<f64>> {
        let m = self.params.subbands;
        let taps = m * 10;
        let mut full = vec![0.0; taps];
        full.extend_from_slice(pcm);
        self.analyze_window(&full, pcm.len() / m)
    }

    fn synthesize_stateless(&self, bands: &[Vec<f64>]) -> Vec<f64> {
        let m = self.params.subbands;
        let taps = m * 10;
        let n_out = bands[0].len() * m + taps;
        let mut pcm = vec![0.0; n_out];
        self.synth_into(bands, &mut pcm);
        pcm
    }

    /// Analysis over `full = history ++ fresh`: output t consumes the M
    /// fresh samples ending at `full[taps + (t+1)·M − 1]`.
    fn analyze_window(&self, full: &[f64], n_out: usize) -> Vec<Vec<f64>> {
        let m = self.params.subbands;
        let taps = m * 10;
        (0..m)
            .map(|k| {
                (0..n_out)
                    .map(|t| {
                        let newest = taps + (t + 1) * m - 1;
                        let mut acc = 0.0;
                        for (j, &h) in self.filters[k].iter().enumerate() {
                            acc += h * full[newest - j];
                        }
                        acc
                    })
                    .collect()
            })
            .collect()
    }

    /// Adds each subband sample's upsampled filter contribution into `out`
    /// (length ≥ blocks·M + taps).
    fn synth_into(&self, bands: &[Vec<f64>], out: &mut [f64]) {
        let m = self.params.subbands;
        for (k, band) in bands.iter().enumerate() {
            for (t, &v) in band.iter().enumerate() {
                let base = t * m;
                let g = v * m as f64 * self.gain;
                for (j, &h) in self.synth_filters[k].iter().enumerate() {
                    out[base + j] += h * g;
                }
            }
        }
    }

    /// Encodes exactly one frame's worth of PCM (`samples_per_frame()`
    /// mono samples in ±1.0). Stateful: continues the analysis filterbank
    /// from the previous frame.
    pub fn encode_frame(&mut self, pcm: &[f64]) -> Vec<u8> {
        let p = self.params;
        assert_eq!(pcm.len(), p.samples_per_frame());
        let taps = p.subbands * 10;
        let mut full = self.enc_hist.clone();
        full.extend_from_slice(pcm);
        let bands = self.analyze_window(&full, p.blocks);
        self.enc_hist = full[full.len() - taps..].to_vec();

        // Scale factors: 4-bit exponents so samples fit in (−2^sf, 2^sf).
        let sfs: Vec<u8> = bands
            .iter()
            .map(|b| {
                let peak = b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
                let mut sf = 0u8;
                while (1 << sf) as f64 * 1e-4 < peak && sf < 15 {
                    sf += 1;
                }
                sf
            })
            .collect();
        let alloc = self.allocate_bits(&sfs);

        let mut bits = BitWriter::new();
        bits.byte(0x9C);
        bits.byte(config_byte(&p));
        bits.byte(p.bitpool as u8);
        bits.byte(0); // reserved/CRC placeholder (not bit-exact SBC)
        for &sf in &sfs {
            bits.put(sf as u32, 4);
        }
        bits.align();
        #[allow(clippy::needless_range_loop)]
        for t in 0..p.blocks {
            for k in 0..p.subbands {
                let b = alloc[k];
                if b == 0 {
                    continue;
                }
                let scale = (1u32 << sfs[k]) as f64 * 1e-4;
                let v = (bands[k][t] / scale).clamp(-1.0, 1.0);
                let q = (((v + 1.0) / 2.0) * ((1u32 << b) - 1) as f64).round() as u32;
                bits.put(q, b);
            }
        }
        bits.align();
        let mut out = bits.into_bytes();
        // Frames are fixed-size: pad to the declared length so the stream
        // framing never depends on the allocator's leftovers.
        out.resize(p.frame_bytes(), 0);
        out
    }

    /// Decodes one frame back to PCM (stateful overlap-add; output is
    /// delayed by roughly the prototype length). Returns `None` on a bad
    /// syncword or config mismatch.
    pub fn decode_frame(&mut self, frame: &[u8]) -> Option<Vec<f64>> {
        let p = self.params;
        if frame.len() < 4 || frame[0] != 0x9C || frame[1] != config_byte(&p) {
            return None;
        }
        if frame[2] as usize != p.bitpool {
            return None;
        }
        let mut bits = BitReader::new(&frame[4..]);
        let sfs: Vec<u8> = (0..p.subbands).map(|_| bits.take(4) as u8).collect();
        bits.align();
        let alloc = self.allocate_bits(&sfs);
        let mut bands: Vec<Vec<f64>> = vec![vec![0.0; p.blocks]; p.subbands];
        #[allow(clippy::needless_range_loop)]
        for t in 0..p.blocks {
            for k in 0..p.subbands {
                let b = alloc[k];
                if b == 0 {
                    continue;
                }
                let q = bits.take(b);
                let scale = (1u32 << sfs[k]) as f64 * 1e-4;
                let v = (q as f64 / ((1u32 << b) - 1) as f64) * 2.0 - 1.0;
                bands[k][t] = v * scale;
            }
        }
        // Overlap-add with the previous frame's tail.
        let m = p.subbands;
        let taps = m * 10;
        let n_fresh = p.blocks * m;
        let mut out = self.dec_tail.clone();
        out.resize(n_fresh + taps, 0.0);
        self.synth_into(&bands, &mut out);
        self.dec_tail = out[n_fresh..].to_vec();
        out.truncate(n_fresh);
        Some(out)
    }

    /// Simplified loudness allocation: distribute the bitpool
    /// proportionally to scale factors, ≥ 2 bits for active bands, ≤ 16.
    fn allocate_bits(&self, sfs: &[u8]) -> Vec<u32> {
        let p = &self.params;
        let total: u32 = sfs.iter().map(|&s| s as u32 + 1).sum();
        let mut alloc: Vec<u32> = sfs
            .iter()
            .map(|&s| {
                let share = (p.bitpool as u32 * (s as u32 + 1)) / total.max(1);
                share.clamp(if s == 0 { 0 } else { 2 }, 16)
            })
            .collect();
        // Trim/pad to exactly fit blocks*bitpool? The frame reserves
        // blocks·bitpool bits; keep Σ alloc ≤ bitpool.
        let mut sum: u32 = alloc.iter().sum();
        let mut k = 0;
        while sum > p.bitpool as u32 {
            if alloc[k] > 2 {
                alloc[k] -= 1;
                sum -= 1;
            }
            k = (k + 1) % alloc.len();
        }
        alloc
    }
}

fn config_byte(p: &SbcParams) -> u8 {
    let sb = if p.subbands == 8 { 1 } else { 0 };
    let bl = match p.blocks {
        4 => 0u8,
        8 => 1,
        12 => 2,
        _ => 3,
    };
    let sr = match p.sample_rate_hz {
        16_000 => 0u8,
        32_000 => 1,
        44_100 => 2,
        _ => 3,
    };
    (sr << 6) | (bl << 4) | sb
}

struct BitWriter {
    bytes: Vec<u8>,
    nbits: usize,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter { bytes: Vec::new(), nbits: 0 }
    }
    fn byte(&mut self, b: u8) {
        assert_eq!(self.nbits % 8, 0);
        self.bytes.push(b);
        self.nbits += 8;
    }
    fn put(&mut self, v: u32, width: u32) {
        for i in (0..width).rev() {
            if self.nbits.is_multiple_of(8) {
                self.bytes.push(0);
            }
            let bit = (v >> i) & 1;
            let idx = self.bytes.len() - 1;
            self.bytes[idx] |= (bit as u8) << (7 - (self.nbits % 8));
            self.nbits += 1;
        }
    }
    fn align(&mut self) {
        while !self.nbits.is_multiple_of(8) {
            self.nbits += 1;
        }
    }
    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }
    fn take(&mut self, width: u32) -> u32 {
        let mut v = 0u32;
        for _ in 0..width {
            let byte = self.bytes.get(self.pos / 8).copied().unwrap_or(0);
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        v
    }
    fn align(&mut self) {
        while !self.pos.is_multiple_of(8) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, freq: f64, rate: f64) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * freq * i as f64 / rate).sin() * 0.5).collect()
    }

    #[test]
    fn frame_geometry_matches_sbc() {
        let p = SbcParams::default();
        assert_eq!(p.samples_per_frame(), 128);
        // 4 header + 4 scalefactor bytes + 70 payload bytes.
        assert_eq!(p.frame_bytes(), 4 + 4 + 70);
        // ≈ 215 kbps mono at 44.1 kHz — SBC's mono high-quality ballpark.
        assert!((p.bitrate_bps() - 215e3).abs() < 15e3, "{}", p.bitrate_bps());
    }

    #[test]
    fn encode_produces_frames_of_the_declared_size() {
        let mut c = SbcCodec::new(SbcParams::default());
        let pcm = sine(128, 1000.0, 44_100.0);
        let f = c.encode_frame(&pcm);
        assert_eq!(f.len(), c.params().frame_bytes());
        assert_eq!(f[0], 0x9C);
    }

    #[test]
    fn roundtrip_reconstructs_a_tone() {
        let mut c = SbcCodec::new(SbcParams::default());
        let rate = 44_100.0;
        let pcm = sine(128 * 8, 1000.0, rate);
        let mut out = Vec::new();
        for chunk in pcm.chunks_exact(128) {
            let frame = c.encode_frame(chunk);
            out.extend(c.decode_frame(&frame).expect("decode"));
        }
        // The cascade has a fixed latency of roughly the prototype length;
        // find the best alignment and measure mid-stream SNR there.
        let mut best_snr = f64::MIN;
        for lag in 0..240usize {
            if 256 + lag + 512 > out.len() {
                break;
            }
            let num: f64 = (0..512)
                .map(|i| (out[256 + lag + i] - pcm[256 + i]).powi(2))
                .sum();
            let den: f64 = (0..512).map(|i| pcm[256 + i].powi(2)).sum();
            best_snr = best_snr.max(-10.0 * (num / den).log10());
        }
        assert!(best_snr > 8.0, "roundtrip SNR {best_snr} dB");
    }

    #[test]
    fn silence_is_compact_noise_free() {
        let mut c = SbcCodec::new(SbcParams::default());
        let frame = c.encode_frame(&vec![0.0; 128]);
        let out = c.decode_frame(&frame).unwrap();
        let peak = out.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!(peak < 0.02, "silence decoded to {peak}");
    }

    #[test]
    fn bad_frames_are_rejected() {
        let mut c = SbcCodec::new(SbcParams::default());
        let pcm = sine(128, 500.0, 44_100.0);
        let mut f = c.encode_frame(&pcm);
        f[0] = 0x00;
        assert!(c.decode_frame(&f).is_none());
        let mut g = c.encode_frame(&pcm);
        g[2] = 99; // wrong bitpool
        assert!(c.decode_frame(&g).is_none());
    }

    #[test]
    fn four_subband_mode_works() {
        let p = SbcParams { subbands: 4, blocks: 8, bitpool: 20, sample_rate_hz: 32_000 };
        let mut c = SbcCodec::new(p);
        let pcm = sine(p.samples_per_frame(), 800.0, 32_000.0);
        let f = c.encode_frame(&pcm);
        assert_eq!(f.len(), p.frame_bytes());
        assert!(c.decode_frame(&f).is_some());
    }

    #[test]
    fn bit_allocation_respects_the_pool() {
        let c = SbcCodec::new(SbcParams::default());
        let alloc = c.allocate_bits(&[10, 8, 6, 4, 3, 2, 1, 0]);
        let sum: u32 = alloc.iter().sum();
        assert!(sum <= 35, "allocated {sum} of 35");
        assert_eq!(alloc[7], 0, "silent band gets nothing");
    }

    #[test]
    fn bitwriter_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0x3FF, 10);
        w.put(1, 1);
        w.align();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.take(3), 0b101);
        assert_eq!(r.take(10), 0x3FF);
        assert_eq!(r.take(1), 1);
    }
}
