//! Minimal L2CAP + AVDTP/RTP media framing — the "standard L2CAP stream"
//! the paper feeds BlueFi from PulseAudio (Sec 4.7). Only the pieces the
//! audio path exercises: basic-mode B-frames and the RTP-style media packet
//! header AVDTP wraps SBC frames in.

/// The dynamic CID an A2DP stream channel typically lands on.
pub const A2DP_STREAM_CID: u16 = 0x0041;

/// Builds an L2CAP basic-information frame.
pub fn l2cap_frame(cid: u16, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + payload.len());
    b.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    b.extend_from_slice(&cid.to_le_bytes());
    b.extend_from_slice(payload);
    b
}

/// Parses an L2CAP frame; returns `(cid, payload)` when the length field is
/// consistent.
pub fn parse_l2cap(frame: &[u8]) -> Option<(u16, &[u8])> {
    if frame.len() < 4 {
        return None;
    }
    let len = u16::from_le_bytes([frame[0], frame[1]]) as usize;
    let cid = u16::from_le_bytes([frame[2], frame[3]]);
    if frame.len() != 4 + len {
        return None;
    }
    Some((cid, &frame[4..]))
}

/// An AVDTP media-packet header (RTP-compatible, 12 bytes) plus the SBC
/// payload header (frame count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaHeader {
    /// RTP sequence number.
    pub sequence: u16,
    /// RTP timestamp (audio samples).
    pub timestamp: u32,
    /// Synchronization source id.
    pub ssrc: u32,
    /// Number of SBC frames in the packet (1..=15).
    pub n_frames: u8,
}

impl MediaHeader {
    /// Serializes header + payload into the media packet.
    pub fn packetize(&self, sbc_frames: &[u8]) -> Vec<u8> {
        assert!((1..=15).contains(&self.n_frames));
        let mut b = Vec::with_capacity(13 + sbc_frames.len());
        b.push(0x80); // V=2
        b.push(96); // dynamic payload type
        b.extend_from_slice(&self.sequence.to_be_bytes());
        b.extend_from_slice(&self.timestamp.to_be_bytes());
        b.extend_from_slice(&self.ssrc.to_be_bytes());
        b.push(self.n_frames & 0x0F);
        b.extend_from_slice(sbc_frames);
        b
    }

    /// Parses a media packet back into header + SBC bytes.
    pub fn parse(pkt: &[u8]) -> Option<(MediaHeader, &[u8])> {
        if pkt.len() < 13 || pkt[0] != 0x80 {
            return None;
        }
        Some((
            MediaHeader {
                sequence: u16::from_be_bytes([pkt[2], pkt[3]]),
                timestamp: u32::from_be_bytes([pkt[4], pkt[5], pkt[6], pkt[7]]),
                ssrc: u32::from_be_bytes([pkt[8], pkt[9], pkt[10], pkt[11]]),
                n_frames: pkt[12] & 0x0F,
            },
            &pkt[13..],
        ))
    }
}

/// Splits an L2CAP frame into baseband-payload chunks of at most
/// `max_chunk` bytes (continuation handling is the LLID bit the baseband
/// payload header carries; the scheduler tracks chunk order).
pub fn fragment(l2cap: &[u8], max_chunk: usize) -> Vec<Vec<u8>> {
    assert!(max_chunk > 0);
    l2cap.chunks(max_chunk).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2cap_roundtrip() {
        let payload: Vec<u8> = (0..100).collect();
        let f = l2cap_frame(A2DP_STREAM_CID, &payload);
        let (cid, got) = parse_l2cap(&f).unwrap();
        assert_eq!(cid, A2DP_STREAM_CID);
        assert_eq!(got, &payload[..]);
    }

    #[test]
    fn l2cap_length_mismatch_rejected() {
        let mut f = l2cap_frame(0x40, &[1, 2, 3]);
        f.push(0xFF); // extra byte
        assert!(parse_l2cap(&f).is_none());
        assert!(parse_l2cap(&f[..2]).is_none());
    }

    #[test]
    fn media_header_roundtrip() {
        let h = MediaHeader { sequence: 777, timestamp: 123456, ssrc: 0xDEAD, n_frames: 3 };
        let sbc = vec![0x9C, 1, 2, 3];
        let pkt = h.packetize(&sbc);
        let (got, body) = MediaHeader::parse(&pkt).unwrap();
        assert_eq!(got, h);
        assert_eq!(body, &sbc[..]);
    }

    #[test]
    fn fragmentation_covers_everything() {
        let data: Vec<u8> = (0..=255).collect();
        let chunks = fragment(&data, 100);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 100);
        assert_eq!(chunks[2].len(), 56);
        let rejoined: Vec<u8> = chunks.concat();
        assert_eq!(rejoined, data);
    }
}
