//! # bluefi-service
//!
//! BlueFi as a service: the paper's end state is commodity WiFi hardware
//! serving *live* Bluetooth traffic, which makes the synthesis pipeline a
//! long-running daemon, not a one-shot library call. This crate is that
//! daemon — hermetic, std-only, no registry crates:
//!
//! * [`proto`] — length-prefixed JSON-RPC 2.0 framing over `core::json`
//!   and the pinned error taxonomy.
//! * [`backend`] — the [`backend::ServiceBackend`] seam with a
//!   deterministic mock and real engines for the scratch, `core::par`
//!   batch and template-cache paths.
//! * [`server`] — `UnixListener` accept loop, bounded request queue with
//!   load-shed, fixed worker pool, per-request deadlines and graceful
//!   drain (`Running → Draining → Stopped`).
//! * [`client`] — the blocking reference client.
//!
//! Endpoints: `synthesize`, `batch_synthesize`, `session_open`,
//! `session_close`, `stats`, `drain`. Operational visibility flows
//! through `core::telemetry` (`service_accepted` / `service_shed`
//! counters, session and queue-depth gauges, a per-request span feeding
//! the causal trace layer) plus per-server [`server::ServiceStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod proto;
pub mod server;

pub use backend::{BatchBackend, CachedBackend, MockBackend, ScratchBackend, ServiceBackend};
pub use client::{ClientError, ServiceClient};
pub use proto::{ErrorCode, FrameEvent, FrameReader, RpcError};
pub use server::{Server, ServerState, ServiceConfig, ServiceStats};
