//! Wire protocol: length-prefixed JSON-RPC 2.0 framing and the service's
//! strict error taxonomy.
//!
//! ## Framing
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The length prefix makes truncation and oversize detectable *before*
//! parsing, so a hostile or broken peer maps to a precise protocol error
//! instead of a parser guess. [`FrameReader`] is an incremental state
//! machine: it tolerates arbitrarily fragmented reads (slow writers, read
//! timeouts used as liveness ticks) and never blocks the caller beyond a
//! single `read`.
//!
//! ## Error taxonomy
//!
//! [`ErrorCode`] pins every failure class to a JSON-RPC error code. The
//! standard codes (`-32700`, `-32600`, `-32601`, `-32602`) follow the
//! spec; the implementation-defined range carries the service's
//! operational states (overload, drain, deadline, frame policy). Tests
//! assert on the numeric codes, so they are part of the public contract.

use bluefi_core::json::Json;
use bluefi_core::pipeline::Synthesis;
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::mcs::Mcs;
use std::io::{self, Read, Write};

/// Default cap on a single frame's payload, in bytes (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// The service's pinned JSON-RPC 2.0 error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// `-32700`: the frame payload was not valid JSON.
    ParseError,
    /// `-32600`: valid JSON but not a JSON-RPC 2.0 request.
    InvalidRequest,
    /// `-32601`: the request named an unknown method.
    MethodNotFound,
    /// `-32602`: the method's parameters were missing or out of range.
    InvalidParams,
    /// `-32000`: the bounded request queue was full — load was shed.
    Overloaded,
    /// `-32001`: the daemon is draining and rejects new work.
    ShuttingDown,
    /// `-32002`: the request's deadline elapsed before synthesis finished.
    DeadlineExceeded,
    /// `-32003`: the declared frame length exceeded the frame cap.
    FrameTooLarge,
    /// `-32004`: the request named a session that is not open.
    UnknownSession,
    /// `-32005`: the backend failed to synthesize (internal).
    Backend,
}

impl ErrorCode {
    /// The numeric JSON-RPC error code.
    pub fn code(self) -> i64 {
        match self {
            ErrorCode::ParseError => -32700,
            ErrorCode::InvalidRequest => -32600,
            ErrorCode::MethodNotFound => -32601,
            ErrorCode::InvalidParams => -32602,
            ErrorCode::Overloaded => -32000,
            ErrorCode::ShuttingDown => -32001,
            ErrorCode::DeadlineExceeded => -32002,
            ErrorCode::FrameTooLarge => -32003,
            ErrorCode::UnknownSession => -32004,
            ErrorCode::Backend => -32005,
        }
    }

    /// The canonical human-readable message for the code.
    pub fn message(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse error",
            ErrorCode::InvalidRequest => "invalid request",
            ErrorCode::MethodNotFound => "method not found",
            ErrorCode::InvalidParams => "invalid params",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::FrameTooLarge => "frame too large",
            ErrorCode::UnknownSession => "unknown session",
            ErrorCode::Backend => "backend error",
        }
    }
}

/// A structured RPC error: a pinned code plus optional detail appended to
/// the canonical message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcError {
    /// The failure class.
    pub code: ErrorCode,
    /// Extra context (empty for the bare canonical message).
    pub detail: String,
}

impl RpcError {
    /// An error carrying only the canonical message.
    pub fn new(code: ErrorCode) -> RpcError {
        RpcError { code, detail: String::new() }
    }

    /// An error with extra context appended after the canonical message.
    pub fn with_detail(code: ErrorCode, detail: impl Into<String>) -> RpcError {
        RpcError { code, detail: detail.into() }
    }

    /// The full message (`canonical` or `canonical: detail`).
    pub fn message(&self) -> String {
        if self.detail.is_empty() {
            self.code.message().to_string()
        } else {
            format!("{}: {}", self.code.message(), self.detail)
        }
    }
}

// -- Framing ---------------------------------------------------------------

/// Writes one frame (4-byte big-endian length + payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// One observable outcome of a [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly on a frame boundary.
    Eof,
    /// The peer closed mid-frame (length or body incomplete).
    TruncatedEof,
    /// No bytes available right now (the read timed out or would block);
    /// poll again after the caller's liveness checks.
    WouldBlock,
    /// The declared payload length exceeded the reader's cap. The
    /// connection cannot be resynchronized and must be closed after the
    /// [`ErrorCode::FrameTooLarge`] response.
    TooLarge(usize),
}

/// Incremental frame decoder: feed it a `Read` repeatedly; partial reads
/// (including timeout-interrupted ones) accumulate across calls.
#[derive(Debug)]
pub struct FrameReader {
    max_frame: usize,
    len_buf: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_need: usize,
    in_body: bool,
}

impl FrameReader {
    /// A reader that rejects frames larger than `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader {
            max_frame,
            len_buf: [0; 4],
            len_got: 0,
            body: Vec::new(),
            body_need: 0,
            in_body: false,
        }
    }

    /// True when a frame is partially received (EOF now would truncate).
    pub fn mid_frame(&self) -> bool {
        self.len_got > 0 || self.in_body
    }

    /// Advances the state machine with whatever `r` can supply right now.
    pub fn poll(&mut self, r: &mut impl Read) -> io::Result<FrameEvent> {
        loop {
            if !self.in_body {
                // Reading the 4-byte length prefix.
                match r.read(&mut self.len_buf[self.len_got..]) {
                    Ok(0) => {
                        return Ok(if self.len_got == 0 {
                            FrameEvent::Eof
                        } else {
                            FrameEvent::TruncatedEof
                        });
                    }
                    Ok(n) => {
                        self.len_got += n;
                        if self.len_got < 4 {
                            continue;
                        }
                        let len = u32::from_be_bytes(self.len_buf) as usize;
                        self.len_got = 0;
                        if len > self.max_frame {
                            return Ok(FrameEvent::TooLarge(len));
                        }
                        self.in_body = true;
                        self.body_need = len;
                        self.body.clear();
                        self.body.resize(len, 0);
                    }
                    Err(e) => return Self::map_err(e),
                }
            } else {
                // Reading the payload.
                let have = self.body.len() - self.body_need;
                if self.body_need == 0 {
                    self.in_body = false;
                    return Ok(FrameEvent::Frame(std::mem::take(&mut self.body)));
                }
                match r.read(&mut self.body[have..]) {
                    Ok(0) => return Ok(FrameEvent::TruncatedEof),
                    Ok(n) => {
                        self.body_need -= n;
                        if self.body_need == 0 {
                            self.in_body = false;
                            return Ok(FrameEvent::Frame(std::mem::take(&mut self.body)));
                        }
                    }
                    Err(e) => return Self::map_err(e),
                }
            }
        }
    }

    fn map_err(e: io::Error) -> io::Result<FrameEvent> {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Ok(FrameEvent::WouldBlock),
            io::ErrorKind::Interrupted => Ok(FrameEvent::WouldBlock),
            _ => Err(e),
        }
    }
}

// -- JSON-RPC envelopes ----------------------------------------------------

/// Renders a JSON-RPC 2.0 success response.
pub fn response_ok(id: &Json, result: Json) -> Json {
    Json::obj(vec![
        ("jsonrpc", Json::Str("2.0".to_string())),
        ("id", id.clone()),
        ("result", result),
    ])
}

/// Renders a JSON-RPC 2.0 error response (`id` is `Null` when the request
/// id never became known, per the spec).
pub fn response_err(id: &Json, err: &RpcError) -> Json {
    Json::obj(vec![
        ("jsonrpc", Json::Str("2.0".to_string())),
        ("id", id.clone()),
        (
            "error",
            Json::obj(vec![
                ("code", Json::Num(err.code.code() as f64)),
                ("message", Json::Str(err.message())),
            ]),
        ),
    ])
}

/// A parsed JSON-RPC request envelope.
#[derive(Debug, Clone)]
pub struct RpcRequest {
    /// The request id, echoed verbatim into the response.
    pub id: Json,
    /// The method name.
    pub method: String,
    /// The `params` member (`Null` when absent).
    pub params: Json,
}

/// Validates a parsed JSON document as a JSON-RPC 2.0 request. On failure
/// returns the best-effort id (for the error response) and the error.
pub fn parse_request(doc: &Json) -> Result<RpcRequest, (Json, RpcError)> {
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let version = doc.get("jsonrpc").and_then(Json::as_str);
    if version != Some("2.0") {
        return Err((
            id,
            RpcError::with_detail(ErrorCode::InvalidRequest, "jsonrpc must be \"2.0\""),
        ));
    }
    let Some(method) = doc.get("method").and_then(Json::as_str) else {
        return Err((
            id,
            RpcError::with_detail(ErrorCode::InvalidRequest, "missing method"),
        ));
    };
    let params = doc.get("params").cloned().unwrap_or(Json::Null);
    Ok(RpcRequest { id, method: method.to_string(), params })
}

// -- Payload codecs --------------------------------------------------------

/// Lowercase hex encoding of `bytes`.
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Decodes lowercase/uppercase hex; `None` on odd length or bad digits.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// Packs bits LSB-first into bytes (bit `i` lands in byte `i / 8`, bit
/// position `i % 8`).
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks `n` LSB-first bits from `bytes`; `None` when `bytes` is short.
pub fn unpack_bits(bytes: &[u8], n: usize) -> Option<Vec<bool>> {
    if bytes.len() * 8 < n {
        return None;
    }
    Some((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
}

/// Exact `f64` transport: the IEEE-754 bit pattern as 16 hex digits. JSON
/// numbers round-trip almost always, but the bit pattern *provably*
/// round-trips (including `-0.0`), which the conformance axis relies on.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_to_hex`].
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Serializes a [`Synthesis`] into the wire result object. Floating-point
/// fields travel both as readable JSON numbers and as exact bit patterns.
pub fn synthesis_to_json(syn: &Synthesis) -> Json {
    Json::obj(vec![
        ("psdu", Json::Str(hex_encode(&syn.psdu))),
        ("n_symbols", Json::Num(syn.n_symbols as f64)),
        (
            "flips",
            Json::Arr(syn.flips.iter().map(|&f| Json::Num(f as f64)).collect()),
        ),
        ("forced_bits", Json::Num(syn.forced_bits as f64)),
        ("mcs_index", Json::Num(syn.mcs.index as f64)),
        ("seed", Json::Num(syn.seed as f64)),
        ("mean_quant_error_db", Json::Num(syn.mean_quant_error_db)),
        ("mean_quant_error_db_bits", Json::Str(f64_to_hex(syn.mean_quant_error_db))),
        ("wifi_channel", Json::Num(syn.plan.wifi_channel as f64)),
        ("subcarrier_bits", Json::Str(f64_to_hex(syn.plan.subcarrier))),
        ("tx_subcarrier_bits", Json::Str(f64_to_hex(syn.plan.tx_subcarrier))),
        ("clearance_bits", Json::Str(f64_to_hex(syn.plan.clearance))),
    ])
}

/// Reconstructs a [`Synthesis`] from a wire result object, bit-exact for
/// every field (floats come from their hex bit patterns). `None` when the
/// object is missing fields or carries out-of-range values.
pub fn synthesis_from_json(j: &Json) -> Option<Synthesis> {
    let field_usize = |k: &str| j.get(k).and_then(Json::as_f64).map(|v| v as usize);
    let field_f64_bits = |k: &str| j.get(k).and_then(Json::as_str).and_then(f64_from_hex);
    let psdu = hex_decode(j.get("psdu").and_then(Json::as_str)?)?;
    let flips = j
        .get("flips")
        .and_then(Json::as_arr)?
        .iter()
        .map(|v| v.as_f64().map(|f| f as usize))
        .collect::<Option<Vec<usize>>>()?;
    let mcs = Mcs::try_from_index(field_usize("mcs_index")? as u8)?;
    let plan = ChannelPlan {
        wifi_channel: field_usize("wifi_channel")? as u8,
        subcarrier: field_f64_bits("subcarrier_bits")?,
        tx_subcarrier: field_f64_bits("tx_subcarrier_bits")?,
        clearance: field_f64_bits("clearance_bits")?,
    };
    Some(Synthesis {
        psdu,
        plan,
        mcs,
        seed: field_usize("seed")? as u8,
        n_symbols: field_usize("n_symbols")?,
        flips,
        forced_bits: field_usize("forced_bits")?,
        mean_quant_error_db: field_f64_bits("mean_quant_error_db_bits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_pinned() {
        assert_eq!(ErrorCode::ParseError.code(), -32700);
        assert_eq!(ErrorCode::InvalidRequest.code(), -32600);
        assert_eq!(ErrorCode::MethodNotFound.code(), -32601);
        assert_eq!(ErrorCode::InvalidParams.code(), -32602);
        assert_eq!(ErrorCode::Overloaded.code(), -32000);
        assert_eq!(ErrorCode::ShuttingDown.code(), -32001);
        assert_eq!(ErrorCode::DeadlineExceeded.code(), -32002);
        assert_eq!(ErrorCode::FrameTooLarge.code(), -32003);
        assert_eq!(ErrorCode::UnknownSession.code(), -32004);
        assert_eq!(ErrorCode::Backend.code(), -32005);
    }

    #[test]
    fn frame_roundtrip_across_fragmented_reads() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"a\":1}").expect("write");
        write_frame(&mut wire, b"xy").expect("write");
        // Deliver one byte at a time: the reader must reassemble exactly.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut r = OneByte(&wire);
        let mut fr = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut frames = Vec::new();
        loop {
            match fr.poll(&mut r).expect("poll") {
                FrameEvent::Frame(f) => frames.push(f),
                FrameEvent::Eof => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(frames, vec![b"{\"a\":1}".to_vec(), b"xy".to_vec()]);
    }

    #[test]
    fn truncated_and_oversized_frames_are_distinguished() {
        // EOF mid-length.
        let mut fr = FrameReader::new(64);
        let mut cut: &[u8] = &[0, 0];
        assert!(matches!(fr.poll(&mut cut).expect("poll"), FrameEvent::TruncatedEof));
        // EOF mid-body.
        let mut fr = FrameReader::new(64);
        let mut cut: &[u8] = &[0, 0, 0, 9, b'x'];
        assert!(matches!(fr.poll(&mut cut).expect("poll"), FrameEvent::TruncatedEof));
        assert!(fr.mid_frame());
        // Declared length beyond the cap.
        let mut fr = FrameReader::new(64);
        let mut big: &[u8] = &[0, 1, 0, 0];
        assert!(matches!(fr.poll(&mut big).expect("poll"), FrameEvent::TooLarge(65536)));
    }

    #[test]
    fn bit_packing_roundtrip() {
        let bits: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let packed = pack_bits(&bits);
        assert_eq!(packed.len(), 5);
        assert_eq!(unpack_bits(&packed, 37).expect("unpack"), bits);
        assert_eq!(unpack_bits(&packed, 41), None, "short buffer refused");
    }

    #[test]
    fn f64_hex_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, -13.25, f64::MIN_POSITIVE, 1e300, -2.2250738585072014e-308] {
            let back = f64_from_hex(&f64_to_hex(v)).expect("roundtrip");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        assert_eq!(f64_from_hex("abc"), None);
    }

    #[test]
    fn request_parse_validates_envelope() {
        let ok = Json::parse(r#"{"jsonrpc":"2.0","id":7,"method":"stats"}"#).expect("json");
        let req = parse_request(&ok).expect("valid");
        assert_eq!(req.method, "stats");
        assert_eq!(req.id.as_f64(), Some(7.0));
        assert_eq!(req.params, Json::Null);

        let bad = Json::parse(r#"{"id":7,"method":"stats"}"#).expect("json");
        let (id, err) = parse_request(&bad).expect_err("no version");
        assert_eq!(id.as_f64(), Some(7.0));
        assert_eq!(err.code, ErrorCode::InvalidRequest);

        let no_method = Json::parse(r#"{"jsonrpc":"2.0","id":1}"#).expect("json");
        let (_, err) = parse_request(&no_method).expect_err("no method");
        assert_eq!(err.code, ErrorCode::InvalidRequest);
    }
}
