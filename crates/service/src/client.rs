//! A small blocking client for the daemon — the reference implementation
//! of the wire protocol, used by the test harness, the conformance
//! matrix's `service` axis and the soak bench.

use crate::proto::{self, write_frame, FrameEvent, FrameReader};
use bluefi_core::json::Json;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Client-side failure classes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-response).
    Io(io::Error),
    /// The server answered with a JSON-RPC error.
    Rpc {
        /// The numeric JSON-RPC error code.
        code: i64,
        /// The server's message.
        message: String,
    },
    /// The server's bytes violated the protocol (bad frame, bad JSON,
    /// mismatched id).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Rpc { code, message } => write!(f, "rpc {code}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected blocking client. One in-flight request at a time (the
/// protocol itself allows pipelining; the soak harness exercises that
/// directly on raw sockets).
#[derive(Debug)]
pub struct ServiceClient {
    stream: UnixStream,
    reader: FrameReader,
    next_id: u64,
}

impl ServiceClient {
    /// Connects to a daemon socket.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<ServiceClient> {
        let stream = UnixStream::connect(path)?;
        Ok(ServiceClient {
            stream,
            reader: FrameReader::new(proto::DEFAULT_MAX_FRAME),
            next_id: 0,
        })
    }

    /// Bounds every call: a response not arriving within `timeout` fails
    /// with an [`ClientError::Io`] timeout instead of hanging.
    pub fn set_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends `method` with `params` and returns the `result` member, or
    /// the server's error.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("id", Json::Num(id as f64)),
            ("method", Json::Str(method.to_string())),
            ("params", params),
        ]);
        write_frame(&mut self.stream, req.render().as_bytes())?;
        let resp = self.read_response()?;
        let got_id = resp.get("id").and_then(Json::as_f64);
        if got_id != Some(id as f64) {
            return Err(ClientError::Protocol(format!(
                "response id {got_id:?} does not match request id {id}"
            )));
        }
        if let Some(err) = resp.get("error") {
            return Err(ClientError::Rpc {
                code: err.get("code").and_then(Json::as_f64).unwrap_or(0.0) as i64,
                message: err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        resp.get("result")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("response carries neither result nor error".into()))
    }

    /// Reads one complete response frame and parses it.
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        loop {
            match self.reader.poll(&mut self.stream)? {
                FrameEvent::Frame(payload) => {
                    let text = std::str::from_utf8(&payload)
                        .map_err(|e| ClientError::Protocol(format!("non-UTF-8 frame: {e}")))?;
                    return Json::parse(text)
                        .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e:?}")));
                }
                FrameEvent::Eof | FrameEvent::TruncatedEof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                FrameEvent::WouldBlock => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out waiting for the response",
                    )));
                }
                FrameEvent::TooLarge(n) => {
                    return Err(ClientError::Protocol(format!("oversized response frame ({n} B)")));
                }
            }
        }
    }

    /// Convenience `synthesize`: packs `bits` and fills the job fields.
    pub fn synthesize(
        &mut self,
        bits: &[bool],
        bt_channel: u8,
        seed: u8,
    ) -> Result<Json, ClientError> {
        let params = Json::obj(vec![
            ("bits", Json::Str(proto::hex_encode(&proto::pack_bits(bits)))),
            ("n_bits", Json::Num(bits.len() as f64)),
            ("bt_channel", Json::Num(bt_channel as f64)),
            ("seed", Json::Num(seed as f64)),
        ]);
        self.call("synthesize", params)
    }

    /// Convenience `stats`.
    pub fn stats(&mut self, reset: bool) -> Result<Json, ClientError> {
        self.call("stats", Json::obj(vec![("reset", Json::Bool(reset))]))
    }

    /// Convenience `drain`.
    pub fn drain(&mut self) -> Result<Json, ClientError> {
        self.call("drain", Json::Null)
    }
}
