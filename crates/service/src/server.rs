//! The daemon: a `UnixListener` accept loop, a bounded request queue
//! feeding a fixed worker pool, per-request deadlines, and graceful
//! drain.
//!
//! ## Threading model
//!
//! ```text
//!  accept thread ──► connection thread (one per client)
//!                        │  parse frame → validate → classify
//!                        │  control methods answered inline
//!                        ▼
//!                  bounded queue (load-shed when full)
//!                        │
//!                        ▼
//!                  worker pool (width from core::par policy)
//!                        │  backend.synthesize / synthesize_batch
//!                        ▼
//!                  per-request channel → connection thread → socket
//! ```
//!
//! The connection thread owns the response write, so every request gets
//! **exactly one** response: a shed, an expired deadline and a normal
//! completion are mutually exclusive outcomes of the same wait.
//!
//! ## Server state machine
//!
//! `Running → Draining → Stopped`, one-way. `Draining` (entered by the
//! `drain` endpoint or [`Server::shutdown`]) closes the listener and
//! unlinks the socket (new connections are refused at connect time),
//! answers new work with [`ErrorCode::ShuttingDown`], and lets queued and
//! executing work finish. When the queue is empty and no worker is busy
//! the state advances to `Stopped` and every thread unwinds.
//!
//! ## Liveness
//!
//! Blocking reads use a short read timeout as a tick, so connection
//! threads observe drain promptly even on idle sockets; writes carry a
//! timeout so a dead slow reader cannot wedge a thread forever. Workers
//! wake on a condvar with the same tick. Nothing in the daemon waits
//! unboundedly on a peer.

use crate::backend::ServiceBackend;
use crate::proto::{
    self, parse_request, response_err, response_ok, ErrorCode, FrameEvent, FrameReader,
    RpcError, RpcRequest,
};
use bluefi_core::json::{Json, ToJson};
use bluefi_core::telemetry::{self, Counter, Gauge, SpanKind};
use bluefi_core::{clamped_workers, worker_count, BatchJob};
use bluefi_wifi::channels::{bt_channel_freq_hz, plan_channel};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server lifecycle states (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Accepting connections and work.
    Running,
    /// Rejecting new connections and new work; finishing what's in flight.
    Draining,
    /// Fully stopped; every thread has unwound or is unwinding.
    Stopped,
}

impl ServerState {
    /// The state's wire spelling (the `stats` endpoint's `state` field).
    pub fn name(self) -> &'static str {
        match self {
            ServerState::Running => "running",
            ServerState::Draining => "draining",
            ServerState::Stopped => "stopped",
        }
    }
}

/// Daemon configuration. `Default` gives conservative production-ish
/// bounds; tests tighten them to provoke shed and deadline paths.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker-pool width; 0 means the `core::par` policy
    /// (`clamped_workers(worker_count())`).
    pub workers: usize,
    /// Bound on the request queue; an arriving job beyond this is shed.
    pub queue_depth: usize,
    /// Cap on a single frame's payload bytes.
    pub max_frame_bytes: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Duration,
    /// Liveness tick for socket reads and worker waits.
    pub tick: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_depth: 256,
            max_frame_bytes: proto::DEFAULT_MAX_FRAME,
            default_deadline: Duration::from_secs(10),
            tick: Duration::from_millis(25),
        }
    }
}

/// Monotonic operational counters, readable while the daemon runs. These
/// are server-local (each [`Server`] owns one set) so concurrent servers
/// in one process — the test harness spins up several — never cross-talk;
/// the accepted/shed/session signals are additionally mirrored into the
/// process-wide `core::telemetry` recorder.
#[derive(Debug, Default)]
pub struct ServiceStats {
    accepted: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    parse_errors: AtomicU64,
    truncated: AtomicU64,
    oversized: AtomicU64,
    deadline_exceeded: AtomicU64,
    queue_highwater: AtomicU64,
    active_connections: AtomicU64,
    active_sessions: AtomicU64,
    executing: AtomicU64,
}

macro_rules! stat_getters {
    ($($(#[$doc:meta])* $name:ident,)+) => {
        $(
            $(#[$doc])*
            pub fn $name(&self) -> u64 {
                self.$name.load(Ordering::Relaxed)
            }
        )+
    };
}

impl ServiceStats {
    stat_getters! {
        /// Connections accepted.
        accepted,
        /// Requests parsed (any method).
        requests,
        /// Success responses written.
        ok,
        /// Error responses written (all classes, including sheds).
        errors,
        /// Jobs shed because the queue was full.
        shed,
        /// Frames whose payload failed to parse as JSON.
        parse_errors,
        /// Connections dropped mid-frame by the peer.
        truncated,
        /// Frames rejected for exceeding the size cap.
        oversized,
        /// Requests answered with `deadline exceeded`.
        deadline_exceeded,
        /// High-water mark of the request queue depth.
        queue_highwater,
        /// Connections currently open.
        active_connections,
        /// Sessions currently open.
        active_sessions,
        /// Jobs currently executing on workers.
        executing,
    }

    /// Serializes every counter for the `stats` endpoint.
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::obj(vec![
            ("accepted", n(self.accepted())),
            ("requests", n(self.requests())),
            ("ok", n(self.ok())),
            ("errors", n(self.errors())),
            ("shed", n(self.shed())),
            ("parse_errors", n(self.parse_errors())),
            ("truncated", n(self.truncated())),
            ("oversized", n(self.oversized())),
            ("deadline_exceeded", n(self.deadline_exceeded())),
            ("queue_highwater", n(self.queue_highwater())),
            ("active_connections", n(self.active_connections())),
            ("active_sessions", n(self.active_sessions())),
            ("executing", n(self.executing())),
        ])
    }
}

/// Per-session defaults and bookkeeping.
#[derive(Debug, Clone)]
struct Session {
    seed: u8,
    bt_channel: u8,
    requests: u64,
}

/// One queued unit of work.
struct Work {
    payload: WorkPayload,
    reply: mpsc::Sender<WorkDone>,
    cancelled: Arc<AtomicBool>,
}

enum WorkPayload {
    One(BatchJob),
    Many(Vec<BatchJob>),
}

enum WorkDone {
    One(Box<bluefi_core::Synthesis>),
    Many(Vec<bluefi_core::Synthesis>),
}

struct Inner {
    cfg: ServiceConfig,
    socket_path: PathBuf,
    backend: Arc<dyn ServiceBackend>,
    state: AtomicU8,
    stats: ServiceStats,
    queue: Mutex<VecDeque<Work>>,
    queue_cv: Condvar,
    sessions: Mutex<HashMap<u64, Session>>,
    next_session: AtomicU64,
}

impl Inner {
    fn state(&self) -> ServerState {
        match self.state.load(Ordering::Acquire) {
            0 => ServerState::Running,
            1 => ServerState::Draining,
            _ => ServerState::Stopped,
        }
    }

    fn begin_drain(&self) {
        // One-way Running → Draining; harmless if already past it.
        let _ = self.state.compare_exchange(0, 1, Ordering::Release, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Work>> {
        // Poisoning only means a panicking thread elsewhere; the deque is
        // structurally sound, so recover rather than propagate.
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Session>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A running daemon: owns the accept thread and the worker pool. Spawn
/// with [`Server::spawn`], stop with [`Server::shutdown`] (or the `drain`
/// endpoint followed by [`Server::join`]).
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `socket_path` (replacing a stale socket file) and spawns the
    /// accept loop and worker pool.
    pub fn spawn(
        socket_path: impl Into<PathBuf>,
        backend: Arc<dyn ServiceBackend>,
        cfg: ServiceConfig,
    ) -> std::io::Result<Server> {
        let socket_path = socket_path.into();
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let workers_n = if cfg.workers == 0 {
            clamped_workers(worker_count())
        } else {
            cfg.workers
        };
        let inner = Arc::new(Inner {
            cfg,
            socket_path,
            backend,
            state: AtomicU8::new(0),
            stats: ServiceStats::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        });
        let workers = (0..workers_n)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, listener))
        };
        Ok(Server { inner, accept: Some(accept), workers })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.inner.socket_path
    }

    /// The daemon's operational counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.stats
    }

    /// The current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.inner.state()
    }

    /// Initiates a graceful drain (equivalent to the `drain` endpoint).
    pub fn drain(&self) {
        self.inner.begin_drain();
    }

    /// Initiates drain (if not already draining), waits for in-flight
    /// work to finish and joins every thread. Returns a post-shutdown
    /// view whose final stats survive the join.
    pub fn shutdown(mut self) -> StoppedServer {
        self.inner.begin_drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connection threads are detached; wait (bounded) for them to
        // observe Stopped and unwind.
        let gone = Instant::now() + Duration::from_secs(5);
        while self.inner.stats.active_connections() > 0 && Instant::now() < gone {
            std::thread::sleep(self.inner.cfg.tick);
        }
        StoppedServer { inner: Arc::clone(&self.inner) }
    }
}

/// Post-shutdown view of a daemon: its final stats survive the join.
pub struct StoppedServer {
    inner: Arc<Inner>,
}

impl StoppedServer {
    /// The final operational counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.stats
    }
}

// -- Accept loop -----------------------------------------------------------

fn accept_loop(inner: &Arc<Inner>, listener: UnixListener) {
    loop {
        if inner.state() != ServerState::Running {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                telemetry::incr(Counter::ServiceAccepted);
                inner.stats.active_connections.fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(inner);
                std::thread::spawn(move || {
                    connection_loop(&inner, stream);
                    inner.stats.active_connections.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    // Refuse new connections at connect time.
    drop(listener);
    let _ = std::fs::remove_file(&inner.socket_path);
    // Drain: wait for queued + executing work to finish, then stop. The
    // executing count is read under the queue lock — workers bump it at
    // pop time inside the same critical section, so "empty and idle"
    // here cannot race a job that is popped but not yet counted.
    loop {
        let idle = {
            let q = inner.lock_queue();
            q.is_empty() && inner.stats.executing() == 0
        };
        if idle {
            break;
        }
        std::thread::sleep(inner.cfg.tick);
    }
    inner.state.store(2, Ordering::Release);
    inner.queue_cv.notify_all();
}

// -- Worker pool -----------------------------------------------------------

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let work = {
            let mut q = inner.lock_queue();
            loop {
                if let Some(w) = q.pop_front() {
                    // Counted as executing before the lock drops, so the
                    // drain monitor never sees "empty and idle" while a
                    // popped job is still in a worker's hands.
                    inner.stats.executing.fetch_add(1, Ordering::Relaxed);
                    break w;
                }
                if inner.state() == ServerState::Stopped {
                    return;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, inner.cfg.tick)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        if work.cancelled.load(Ordering::Acquire) {
            // The requester's deadline already fired; it answered the
            // client itself, so executing the job would be pure waste.
            inner.stats.executing.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let done = match &work.payload {
            WorkPayload::One(job) => WorkDone::One(Box::new(inner.backend.synthesize(job))),
            WorkPayload::Many(jobs) => WorkDone::Many(inner.backend.synthesize_batch(jobs)),
        };
        inner.stats.executing.fetch_sub(1, Ordering::Relaxed);
        // A failed send only means the requester gave up (deadline or
        // disconnect); the response contract is theirs, not ours.
        let _ = work.reply.send(done);
    }
}

// -- Connection handling ---------------------------------------------------

fn connection_loop(inner: &Arc<Inner>, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(inner.cfg.tick));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = FrameReader::new(inner.cfg.max_frame_bytes);
    loop {
        match reader.poll(&mut stream) {
            Ok(FrameEvent::WouldBlock) => {
                if inner.state() == ServerState::Stopped {
                    break;
                }
            }
            Ok(FrameEvent::Eof) => break,
            Ok(FrameEvent::TruncatedEof) => {
                inner.stats.truncated.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Ok(FrameEvent::TooLarge(n)) => {
                inner.stats.oversized.fetch_add(1, Ordering::Relaxed);
                let err = RpcError::with_detail(
                    ErrorCode::FrameTooLarge,
                    format!("{n} bytes exceeds cap {}", inner.cfg.max_frame_bytes),
                );
                let _ = write_response(inner, &mut stream, &response_err(&Json::Null, &err));
                // The stream cannot be resynchronized past an unread body.
                break;
            }
            Ok(FrameEvent::Frame(payload)) => {
                if !handle_frame(inner, &mut stream, &payload) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Handles one frame; returns `false` when the connection must close.
fn handle_frame(inner: &Arc<Inner>, stream: &mut UnixStream, payload: &[u8]) -> bool {
    let _sp = telemetry::span(SpanKind::ServiceRequest);
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    let doc = match std::str::from_utf8(payload).ok().and_then(|s| Json::parse(s).ok()) {
        Some(doc) => doc,
        None => {
            inner.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
            let err = RpcError::new(ErrorCode::ParseError);
            return write_response(inner, stream, &response_err(&Json::Null, &err));
        }
    };
    let req = match parse_request(&doc) {
        Ok(req) => req,
        Err((id, err)) => return write_response(inner, stream, &response_err(&id, &err)),
    };
    let resp = dispatch(inner, &req);
    write_response(inner, stream, &resp)
}

/// Writes one response frame, bumping the ok/error stats. Returns `false`
/// on a write failure (peer gone — the connection closes).
fn write_response(inner: &Arc<Inner>, stream: &mut UnixStream, resp: &Json) -> bool {
    if resp.get("error").is_some() {
        inner.stats.errors.fetch_add(1, Ordering::Relaxed);
    } else {
        inner.stats.ok.fetch_add(1, Ordering::Relaxed);
    }
    let rendered = resp.render();
    write_frame_blocking(stream, rendered.as_bytes())
}

/// Writes a frame against a send buffer that may momentarily fill (slow
/// readers): short write-timeouts retry until the 5 s cap, then give up.
fn write_frame_blocking(stream: &mut UnixStream, payload: &[u8]) -> bool {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut off = 0;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return false,
        }
    }
    stream.flush().is_ok()
}

// -- Dispatch --------------------------------------------------------------

fn dispatch(inner: &Arc<Inner>, req: &RpcRequest) -> Json {
    let draining = inner.state() != ServerState::Running;
    match req.method.as_str() {
        "synthesize" => {
            if draining {
                return response_err(&req.id, &RpcError::new(ErrorCode::ShuttingDown));
            }
            match parse_job(inner, &req.params) {
                Ok(job) => run_work(inner, req, WorkPayload::One(job)),
                Err(err) => response_err(&req.id, &err),
            }
        }
        "batch_synthesize" => {
            if draining {
                return response_err(&req.id, &RpcError::new(ErrorCode::ShuttingDown));
            }
            match parse_batch(inner, &req.params) {
                Ok(jobs) => run_work(inner, req, WorkPayload::Many(jobs)),
                Err(err) => response_err(&req.id, &err),
            }
        }
        "session_open" => {
            if draining {
                return response_err(&req.id, &RpcError::new(ErrorCode::ShuttingDown));
            }
            session_open(inner, req)
        }
        "session_close" => session_close(inner, req),
        "stats" => stats_endpoint(inner, req),
        "drain" => {
            inner.begin_drain();
            let queued = inner.lock_queue().len();
            response_ok(
                &req.id,
                Json::obj(vec![
                    ("draining", Json::Bool(true)),
                    ("queued", Json::Num(queued as f64)),
                    ("executing", Json::Num(inner.stats.executing() as f64)),
                ]),
            )
        }
        other => response_err(
            &req.id,
            &RpcError::with_detail(ErrorCode::MethodNotFound, other.to_string()),
        ),
    }
}

/// Enqueues work (or sheds it), waits for completion under the request's
/// deadline, and renders the single response.
fn run_work(inner: &Arc<Inner>, req: &RpcRequest, payload: WorkPayload) -> Json {
    let deadline = req
        .params
        .get("deadline_ms")
        .and_then(Json::as_f64)
        .filter(|&ms| ms > 0.0)
        .map(|ms| Duration::from_millis(ms as u64))
        .unwrap_or(inner.cfg.default_deadline);
    let (tx, rx) = mpsc::channel();
    let cancelled = Arc::new(AtomicBool::new(false));
    let work = Work { payload, reply: tx, cancelled: Arc::clone(&cancelled) };
    {
        let mut q = inner.lock_queue();
        if q.len() >= inner.cfg.queue_depth {
            drop(q);
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            telemetry::incr(Counter::ServiceShed);
            return response_err(&req.id, &RpcError::new(ErrorCode::Overloaded));
        }
        q.push_back(work);
        let depth = q.len() as u64;
        drop(q);
        inner.stats.queue_highwater.fetch_max(depth, Ordering::Relaxed);
        telemetry::gauge_max(Gauge::ServiceQueueDepth, depth);
        inner.queue_cv.notify_one();
    }
    match rx.recv_timeout(deadline) {
        Ok(WorkDone::One(syn)) => response_ok(&req.id, proto::synthesis_to_json(&syn)),
        Ok(WorkDone::Many(syns)) => response_ok(
            &req.id,
            Json::obj(vec![(
                "results",
                Json::Arr(syns.iter().map(proto::synthesis_to_json).collect()),
            )]),
        ),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            cancelled.store(true, Ordering::Release);
            inner.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            response_err(&req.id, &RpcError::new(ErrorCode::DeadlineExceeded))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // Worker pool gone mid-request (only possible during teardown).
            response_err(&req.id, &RpcError::new(ErrorCode::ShuttingDown))
        }
    }
}

/// Parses one synthesize job from `params`, applying session defaults.
fn parse_job(inner: &Arc<Inner>, params: &Json) -> Result<BatchJob, RpcError> {
    let session = match params.get("session").and_then(Json::as_f64) {
        Some(id) => {
            let mut sessions = inner.lock_sessions();
            let Some(s) = sessions.get_mut(&(id as u64)) else {
                return Err(RpcError::with_detail(
                    ErrorCode::UnknownSession,
                    format!("session {}", id as u64),
                ));
            };
            s.requests += 1;
            Some(s.clone())
        }
        None => None,
    };
    let seed = match params.get("seed").and_then(Json::as_f64) {
        Some(s) if (0.0..=127.0).contains(&s) => s as u8,
        Some(s) => {
            return Err(RpcError::with_detail(
                ErrorCode::InvalidParams,
                format!("seed {s} outside 0..=127"),
            ))
        }
        None => match &session {
            Some(s) => s.seed,
            None => {
                return Err(RpcError::with_detail(
                    ErrorCode::InvalidParams,
                    "missing seed",
                ))
            }
        },
    };
    let bt_channel = match params.get("bt_channel").and_then(Json::as_f64) {
        Some(c) if (0.0..=78.0).contains(&c) => c as u8,
        Some(c) => {
            return Err(RpcError::with_detail(
                ErrorCode::InvalidParams,
                format!("bt_channel {c} outside 0..=78"),
            ))
        }
        None => match &session {
            Some(s) => s.bt_channel,
            None => {
                return Err(RpcError::with_detail(
                    ErrorCode::InvalidParams,
                    "missing bt_channel",
                ))
            }
        },
    };
    let Some(plan) = plan_channel(bt_channel_freq_hz(bt_channel)) else {
        return Err(RpcError::with_detail(
            ErrorCode::InvalidParams,
            format!("bt_channel {bt_channel} has no WiFi plan"),
        ));
    };
    let n_bits = params
        .get("n_bits")
        .and_then(Json::as_f64)
        .map(|v| v as usize)
        .ok_or_else(|| RpcError::with_detail(ErrorCode::InvalidParams, "missing n_bits"))?;
    if n_bits == 0 || n_bits > 8 * 4096 {
        return Err(RpcError::with_detail(
            ErrorCode::InvalidParams,
            format!("n_bits {n_bits} outside 1..=32768"),
        ));
    }
    let packed = params
        .get("bits")
        .and_then(Json::as_str)
        .and_then(proto::hex_decode)
        .ok_or_else(|| {
            RpcError::with_detail(ErrorCode::InvalidParams, "bits must be a hex string")
        })?;
    let bits = proto::unpack_bits(&packed, n_bits).ok_or_else(|| {
        RpcError::with_detail(ErrorCode::InvalidParams, "bits shorter than n_bits")
    })?;
    Ok(BatchJob { bits, plan, seed })
}

/// Parses a `batch_synthesize` job list.
fn parse_batch(inner: &Arc<Inner>, params: &Json) -> Result<Vec<BatchJob>, RpcError> {
    let jobs = params
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or_else(|| RpcError::with_detail(ErrorCode::InvalidParams, "missing jobs array"))?;
    if jobs.is_empty() || jobs.len() > 4096 {
        return Err(RpcError::with_detail(
            ErrorCode::InvalidParams,
            format!("jobs length {} outside 1..=4096", jobs.len()),
        ));
    }
    jobs.iter().map(|j| parse_job(inner, j)).collect()
}

fn session_open(inner: &Arc<Inner>, req: &RpcRequest) -> Json {
    let seed = req.params.get("seed").and_then(Json::as_f64).unwrap_or(7.0);
    let bt_channel = req.params.get("bt_channel").and_then(Json::as_f64).unwrap_or(24.0);
    if !(0.0..=127.0).contains(&seed) || !(0.0..=78.0).contains(&bt_channel) {
        return response_err(
            &req.id,
            &RpcError::with_detail(ErrorCode::InvalidParams, "session defaults out of range"),
        );
    }
    let id = inner.next_session.fetch_add(1, Ordering::Relaxed);
    let n = {
        let mut sessions = inner.lock_sessions();
        sessions.insert(
            id,
            Session { seed: seed as u8, bt_channel: bt_channel as u8, requests: 0 },
        );
        sessions.len() as u64
    };
    inner.stats.active_sessions.store(n, Ordering::Relaxed);
    telemetry::gauge_set(Gauge::ServiceActiveSessions, n);
    response_ok(&req.id, Json::obj(vec![("session", Json::Num(id as f64))]))
}

fn session_close(inner: &Arc<Inner>, req: &RpcRequest) -> Json {
    let Some(id) = req.params.get("session").and_then(Json::as_f64) else {
        return response_err(
            &req.id,
            &RpcError::with_detail(ErrorCode::InvalidParams, "missing session"),
        );
    };
    let (removed, n) = {
        let mut sessions = inner.lock_sessions();
        let removed = sessions.remove(&(id as u64));
        (removed, sessions.len() as u64)
    };
    inner.stats.active_sessions.store(n, Ordering::Relaxed);
    telemetry::gauge_set(Gauge::ServiceActiveSessions, n);
    match removed {
        Some(s) => response_ok(
            &req.id,
            Json::obj(vec![
                ("closed", Json::Bool(true)),
                ("requests", Json::Num(s.requests as f64)),
            ]),
        ),
        None => response_err(
            &req.id,
            &RpcError::with_detail(ErrorCode::UnknownSession, format!("session {}", id as u64)),
        ),
    }
}

/// The `stats` endpoint. With `{"reset": true}` the embedded telemetry
/// section comes from `telemetry::drain_section()` — the same
/// snapshot-then-reset helper `runtime_profile` uses at its section
/// boundaries, so the two views of a "section" can never drift.
fn stats_endpoint(inner: &Arc<Inner>, req: &RpcRequest) -> Json {
    let reset = req.params.get("reset").and_then(Json::as_bool).unwrap_or(false);
    let snap = if reset { telemetry::drain_section() } else { telemetry::snapshot() };
    response_ok(
        &req.id,
        Json::obj(vec![
            ("backend", Json::Str(inner.backend.name().to_string())),
            ("state", Json::Str(inner.state().name().to_string())),
            ("service", inner.stats.to_json()),
            ("telemetry", snap.to_json()),
        ]),
    )
}
