//! The BlueFi synthesis daemon.
//!
//! ```text
//! bluefi-serviced --socket /tmp/bluefi.sock [--backend mock|scratch|batch|cached]
//!                 [--workers N] [--queue N]
//! ```
//!
//! Runs until a client calls `drain` (or the process is killed), then
//! finishes in-flight work and exits.

use bluefi_core::pipeline::BlueFi;
use bluefi_core::template::CachedEngine;
use bluefi_service::{
    BatchBackend, CachedBackend, MockBackend, ScratchBackend, ServerState, ServiceBackend,
    ServiceConfig,
};
use std::sync::Arc;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let socket = arg(&args, "--socket").unwrap_or_else(|| "/tmp/bluefi.sock".to_string());
    let backend_name = arg(&args, "--backend").unwrap_or_else(|| "scratch".to_string());
    let workers: usize = arg(&args, "--workers").and_then(|v| v.parse().ok()).unwrap_or(0);
    let queue: usize = arg(&args, "--queue").and_then(|v| v.parse().ok()).unwrap_or(256);

    let backend: Arc<dyn ServiceBackend> = match backend_name.as_str() {
        "mock" => Arc::new(MockBackend::new()),
        "scratch" => Arc::new(ScratchBackend::new(BlueFi::default())),
        "batch" => Arc::new(BatchBackend::new(BlueFi::default(), workers)),
        "cached" => Arc::new(CachedBackend::new(CachedEngine::new(BlueFi::default()), workers)),
        other => {
            eprintln!("unknown backend {other:?}: expected mock|scratch|batch|cached");
            std::process::exit(2);
        }
    };

    let cfg = ServiceConfig { workers, queue_depth: queue, ..ServiceConfig::default() };
    let server = match bluefi_service::Server::spawn(&socket, backend, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {socket}: {e}");
            std::process::exit(2);
        }
    };
    println!("bluefi-serviced: {backend_name} backend listening on {socket}");
    while server.state() == ServerState::Running {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stopped = server.shutdown();
    let stats = stopped.stats();
    println!(
        "bluefi-serviced: drained ({} requests, {} ok, {} shed)",
        stats.requests(),
        stats.ok(),
        stats.shed()
    );
}
