//! Synthesis backends: the engine-facing half of the daemon.
//!
//! [`ServiceBackend`] is the seam between transport and synthesis,
//! mirroring the backend-trait pattern of commissioning daemons: the
//! protocol layer never names an engine, so the same server, tests and
//! clients run against [`MockBackend`] (deterministic, instant, no DSP)
//! or the real pipeline in any of its three shapes — per-request scratch
//! ([`ScratchBackend`]), `core::par` batch fan-out ([`BatchBackend`]),
//! or the template cache ([`CachedBackend`]).

use bluefi_core::pipeline::{BlueFi, Synthesis, SynthesisScratch};
use bluefi_core::template::{CachedEngine, CachedScratch};
use bluefi_core::{BatchJob, SynthesisBatch};
use bluefi_wifi::mcs::Mcs;
use std::sync::Mutex;
use std::time::Duration;

/// A synthesis engine the daemon can front. Implementations must be
/// callable from any worker thread concurrently.
pub trait ServiceBackend: Send + Sync {
    /// Short backend name, reported by the `stats` endpoint.
    fn name(&self) -> &'static str;

    /// Synthesizes one job.
    fn synthesize(&self, job: &BatchJob) -> Synthesis;

    /// Synthesizes a batch, results in job order. The default loops over
    /// [`ServiceBackend::synthesize`]; engine backends override to fan out
    /// through `core::par`.
    fn synthesize_batch(&self, jobs: &[BatchJob]) -> Vec<Synthesis> {
        jobs.iter().map(|j| self.synthesize(j)).collect()
    }
}

/// FNV-1a 64-bit step.
fn fnv1a(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
}

/// A deterministic, DSP-free backend for protocol and load testing: the
/// "synthesis" is an FNV-1a keystream over the request, so any two
/// transports delivering the same job must produce byte-identical
/// responses — exactly the property the soak harness asserts. An optional
/// per-request delay simulates real synthesis cost for shed and deadline
/// tests.
#[derive(Debug, Default)]
pub struct MockBackend {
    delay: Option<Duration>,
}

impl MockBackend {
    /// An instant mock.
    pub fn new() -> MockBackend {
        MockBackend::default()
    }

    /// A mock that sleeps `delay` per job before answering — makes queue
    /// pressure and deadline expiry reproducible on any host.
    pub fn with_delay(delay: Duration) -> MockBackend {
        MockBackend { delay: Some(delay) }
    }
}

impl ServiceBackend for MockBackend {
    fn name(&self) -> &'static str {
        "mock"
    }

    fn synthesize(&self, job: &BatchJob) -> Synthesis {
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &bit in &job.bits {
            h = fnv1a(h, bit as u8);
        }
        h = fnv1a(h, job.plan.wifi_channel);
        h = fnv1a(h, job.seed);
        // A compact keystream PSDU: enough bytes to make duplication or
        // cross-wiring of responses detectable, cheap enough for 200
        // concurrent clients on one core.
        let mut psdu = Vec::with_capacity(24);
        let mut k = h;
        for _ in 0..24 {
            k = k.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            psdu.push((k >> 32) as u8);
        }
        let mcs = Mcs::bluefi_realtime();
        Synthesis {
            psdu,
            plan: job.plan,
            mcs,
            seed: job.seed,
            n_symbols: job.bits.len().div_ceil(52).max(1),
            flips: vec![(h % 97) as usize],
            forced_bits: 16,
            mean_quant_error_db: -((h % 4000) as f64) / 100.0,
        }
    }
}

/// The per-request scratch path: one cold pipeline run per job, scratch
/// buffers pooled across requests so steady state reuses allocations.
#[derive(Debug)]
pub struct ScratchBackend {
    bf: BlueFi,
    pool: Mutex<Vec<SynthesisScratch>>,
}

impl ScratchBackend {
    /// A backend running `bf`'s cold pipeline per request.
    pub fn new(bf: BlueFi) -> ScratchBackend {
        ScratchBackend { bf, pool: Mutex::new(Vec::new()) }
    }

    fn take_scratch(&self) -> SynthesisScratch {
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        pool.pop().unwrap_or_default()
    }

    fn put_scratch(&self, s: SynthesisScratch) {
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < 16 {
            pool.push(s);
        }
    }
}

impl ServiceBackend for ScratchBackend {
    fn name(&self) -> &'static str {
        "scratch"
    }

    fn synthesize(&self, job: &BatchJob) -> Synthesis {
        let mut s = self.take_scratch();
        let out = self.bf.synthesize_at_with(&job.bits, job.plan, job.seed, &mut s).clone();
        self.put_scratch(s);
        out
    }
}

/// The batch path: single jobs run the scratch pipeline, batches fan out
/// over `core::par` with a pinned worker count.
#[derive(Debug)]
pub struct BatchBackend {
    inner: ScratchBackend,
    workers: usize,
}

impl BatchBackend {
    /// A backend fanning batches out over `workers` `core::par` workers
    /// (0 means the ambient `worker_count`).
    pub fn new(bf: BlueFi, workers: usize) -> BatchBackend {
        let workers = if workers == 0 { bluefi_core::worker_count() } else { workers };
        BatchBackend { inner: ScratchBackend::new(bf), workers }
    }
}

impl ServiceBackend for BatchBackend {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn synthesize(&self, job: &BatchJob) -> Synthesis {
        self.inner.synthesize(job)
    }

    fn synthesize_batch(&self, jobs: &[BatchJob]) -> Vec<Synthesis> {
        SynthesisBatch::with_workers(&self.inner.bf, self.workers).synthesize(jobs)
    }
}

/// The template-cache path: cache-eligible jobs patch templates, batches
/// fan out through `core::par` sharing the engine's store.
#[derive(Debug)]
pub struct CachedBackend {
    engine: CachedEngine,
    workers: usize,
    pool: Mutex<Vec<CachedScratch>>,
}

impl CachedBackend {
    /// A backend over `engine` fanning batches out over `workers` workers
    /// (0 means the ambient `worker_count`).
    pub fn new(engine: CachedEngine, workers: usize) -> CachedBackend {
        let workers = if workers == 0 { bluefi_core::worker_count() } else { workers };
        CachedBackend { engine, workers, pool: Mutex::new(Vec::new()) }
    }

    /// The underlying engine (store stats, capacity).
    pub fn engine(&self) -> &CachedEngine {
        &self.engine
    }
}

impl ServiceBackend for CachedBackend {
    fn name(&self) -> &'static str {
        "cached"
    }

    fn synthesize(&self, job: &BatchJob) -> Synthesis {
        let mut s = {
            let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
            pool.pop().unwrap_or_default()
        };
        let out = self.engine.synthesize_at_with(&job.bits, job.plan, job.seed, &mut s).clone();
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < 16 {
            pool.push(s);
        }
        out
    }

    fn synthesize_batch(&self, jobs: &[BatchJob]) -> Vec<Synthesis> {
        SynthesisBatch::with_workers(self.engine.config(), self.workers)
            .synthesize_cached(&self.engine, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_wifi::channels::ChannelPlan;

    fn job(seed: u8) -> BatchJob {
        BatchJob {
            bits: (0..64).map(|i| (i * 7 + seed as usize) % 3 == 0).collect(),
            plan: ChannelPlan::pinned(1, 10.0),
            seed,
        }
    }

    #[test]
    fn mock_is_deterministic_and_input_sensitive() {
        let m = MockBackend::new();
        let a = m.synthesize(&job(7));
        let b = m.synthesize(&job(7));
        assert_eq!(a.psdu, b.psdu, "same job, same bytes");
        assert_eq!(a.flips, b.flips);
        let c = m.synthesize(&job(8));
        assert_ne!(a.psdu, c.psdu, "seed must perturb the keystream");
    }

    #[test]
    fn mock_batch_matches_singles() {
        let m = MockBackend::new();
        let jobs: Vec<BatchJob> = (0..5).map(job).collect();
        let batch = m.synthesize_batch(&jobs);
        for (j, s) in jobs.iter().zip(&batch) {
            assert_eq!(s.psdu, m.synthesize(j).psdu);
            assert_eq!(s.seed, j.seed);
        }
    }
}
