//! Bluetooth EDR modulation — π/4-DQPSK (2 Mbps) and 8DPSK (3 Mbps).
//!
//! The paper's Sec 5.3 leaves "optional modulation modes other than GFSK
//! … increase throughput by up to 3×" as future work. Both EDR schemes are
//! *differential phase* modulations with a constant envelope, which means
//! they satisfy BlueFi's one structural requirement — the packet is fully
//! characterized by its phase trajectory — and ride the existing synthesis
//! pipeline unchanged (see the `edr_over_bluefi` test and the
//! `ablation_edr` bench).
//!
//! An EDR packet transmits access code + header in GFSK, then switches to
//! DPSK for the payload after a guard time; this module provides the DPSK
//! payload modulation, the matching differential receiver, and the air
//! framing glue.

use crate::gfsk::GfskParams;
use bluefi_dsp::phase::wrap_angle;
use bluefi_dsp::Cx;
use std::f64::consts::PI;

/// EDR payload modulation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdrScheme {
    /// π/4-DQPSK: 2 bits/symbol (the "2-" packet types, 2 Mbps).
    Dqpsk2,
    /// 8DPSK: 3 bits/symbol (the "3-" packet types, 3 Mbps).
    Dpsk8,
}

impl EdrScheme {
    /// Bits per DPSK symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            EdrScheme::Dqpsk2 => 2,
            EdrScheme::Dpsk8 => 3,
        }
    }

    /// The differential phase increment for a symbol's bits (Gray-coded,
    /// Vol 2 Part A 3.3).
    pub fn increment(self, bits: &[bool]) -> f64 {
        match self {
            EdrScheme::Dqpsk2 => {
                // (b0, b1): 00→π/4, 01→3π/4, 11→−3π/4, 10→−π/4.
                match (bits[0], bits[1]) {
                    (false, false) => PI / 4.0,
                    (false, true) => 3.0 * PI / 4.0,
                    (true, true) => -3.0 * PI / 4.0,
                    (true, false) => -PI / 4.0,
                }
            }
            EdrScheme::Dpsk8 => {
                // Gray-coded eighth turns: 000→0? The spec maps 000→π/4 …
                // use the standard Gray wheel starting at 0.
                let idx = (bits[0] as usize) << 2 | (bits[1] as usize) << 1 | bits[2] as usize;
                // Gray decode to a position on the wheel.
                let pos = idx ^ (idx >> 1);
                wrap_angle(pos as f64 * PI / 4.0)
            }
        }
    }

    /// Inverse of [`EdrScheme::increment`]: nearest constellation point.
    pub fn demap(self, phase_diff: f64) -> Vec<bool> {
        match self {
            EdrScheme::Dqpsk2 => {
                let mut best = (f64::MAX, vec![false, false]);
                for bits in [[false, false], [false, true], [true, true], [true, false]] {
                    let d = wrap_angle(phase_diff - self.increment(&bits)).abs();
                    if d < best.0 {
                        best = (d, bits.to_vec());
                    }
                }
                best.1
            }
            EdrScheme::Dpsk8 => {
                let mut best = (f64::MAX, vec![false; 3]);
                for idx in 0..8usize {
                    let bits = [(idx >> 2) & 1 == 1, (idx >> 1) & 1 == 1, idx & 1 == 1];
                    let d = wrap_angle(phase_diff - self.increment(&bits)).abs();
                    if d < best.0 {
                        best = (d, bits.to_vec());
                    }
                }
                best.1
            }
        }
    }
}

/// Modulates payload bits into a DPSK phase trajectory at the GFSK
/// sampling geometry (`sps` samples per symbol, raised-cosine-smoothed
/// phase transitions over half a symbol to bound spectral leakage the way
/// the spec's square-root-raised-cosine pulse does).
pub fn edr_modulate_phase(
    bits: &[bool],
    scheme: EdrScheme,
    p: &GfskParams,
    center_offset_hz: f64,
) -> Vec<f64> {
    let bps = scheme.bits_per_symbol();
    assert_eq!(bits.len() % bps, 0, "bit count must fill whole symbols");
    let sps = p.sps();
    let n_sym = bits.len() / bps;
    let guard = p.guard_bits * sps;
    let n = guard * 2 + n_sym * sps;
    let mut phase = vec![0.0; n];
    // Absolute symbol phases by accumulating increments.
    let mut symbol_phase = vec![0.0f64; n_sym + 1];
    for (s, chunk) in bits.chunks_exact(bps).enumerate() {
        symbol_phase[s + 1] = symbol_phase[s] + scheme.increment(chunk);
    }
    // Sample phases: hold each symbol's phase for the first part of the
    // symbol, then raised-cosine-blend to the next symbol's phase over the
    // last `ramp` samples, arriving exactly at the boundary. The receiver
    // samples the stable first half.
    let ramp = sps / 2;
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let rel = i as isize - guard as isize;
        phase[i] = if rel < 0 {
            symbol_phase[0]
        } else {
            let s = (rel as usize) / sps;
            if s >= n_sym {
                symbol_phase[n_sym]
            } else {
                let within = (rel as usize) % sps;
                let a = symbol_phase[s];
                let b = symbol_phase[s + 1];
                if within < sps - ramp {
                    a
                } else {
                    let x = (within - (sps - ramp) + 1) as f64 / ramp as f64;
                    let w = 0.5 - 0.5 * (PI * x).cos();
                    a + (b - a) * w
                }
            }
        };
    }
    // lint: allow(float-eq) exact 0.0 is the "no offset" sentinel, not a computed value
    if center_offset_hz != 0.0 {
        bluefi_dsp::phase::add_frequency_offset(&mut phase, center_offset_hz / p.sample_rate_hz);
    }
    phase
}

/// Differentially demodulates a DPSK payload from filtered baseband IQ.
/// `start` is the sample index of the first symbol's center region;
/// returns `n_sym · bits_per_symbol` bits.
pub fn edr_demodulate(
    iq: &[Cx],
    scheme: EdrScheme,
    sps: usize,
    start: usize,
    n_sym: usize,
) -> Vec<bool> {
    let mut out = Vec::with_capacity(n_sym * scheme.bits_per_symbol());
    let sample_at = |s: usize| -> Cx {
        // Average over the stable first half of the symbol.
        let s0 = start + s * sps;
        let s1 = (s0 + sps / 2).min(iq.len());
        let mut acc = Cx::ZERO;
        for v in &iq[s0.min(iq.len())..s1] {
            acc += *v;
        }
        acc
    };
    let mut prev = sample_at(0);
    for s in 1..=n_sym {
        let cur = sample_at(s);
        let diff = (cur * prev.conj()).arg();
        out.extend(scheme.demap(diff));
        prev = cur;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_dsp::phase::phase_to_iq;

    fn pattern(n: usize, k: usize) -> Vec<bool> {
        (0..n).map(|i| (i * k + 1) % 5 < 2).collect()
    }

    #[test]
    fn increments_are_gray_and_distinct() {
        for scheme in [EdrScheme::Dqpsk2, EdrScheme::Dpsk8] {
            let bps = scheme.bits_per_symbol();
            let mut incs = Vec::new();
            for v in 0..(1u8 << bps) {
                let bits: Vec<bool> = (0..bps).map(|i| (v >> (bps - 1 - i)) & 1 == 1).collect();
                incs.push(scheme.increment(&bits));
            }
            // Distinct phases.
            for i in 0..incs.len() {
                for j in i + 1..incs.len() {
                    assert!(
                        wrap_angle(incs[i] - incs[j]).abs() > 0.1,
                        "{scheme:?}: {i} vs {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn demap_inverts_increment() {
        for scheme in [EdrScheme::Dqpsk2, EdrScheme::Dpsk8] {
            let bps = scheme.bits_per_symbol();
            for v in 0..(1u8 << bps) {
                let bits: Vec<bool> = (0..bps).map(|i| (v >> (bps - 1 - i)) & 1 == 1).collect();
                let inc = scheme.increment(&bits);
                assert_eq!(scheme.demap(inc), bits, "{scheme:?} value {v}");
                // And with moderate phase noise.
                assert_eq!(scheme.demap(inc + 0.3), bits);
            }
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let p = GfskParams::default();
        for scheme in [EdrScheme::Dqpsk2, EdrScheme::Dpsk8] {
            let bits = pattern(scheme.bits_per_symbol() * 40, 3);
            let phase = edr_modulate_phase(&bits, scheme, &p, 0.0);
            let iq = phase_to_iq(&phase);
            let n_sym = bits.len() / scheme.bits_per_symbol();
            let got = edr_demodulate(&iq, scheme, p.sps(), p.guard_bits * p.sps(), n_sym);
            assert_eq!(got, bits, "{scheme:?}");
        }
    }

    #[test]
    fn constant_envelope() {
        let p = GfskParams::default();
        let bits = pattern(3 * 30, 7);
        let phase = edr_modulate_phase(&bits, EdrScheme::Dpsk8, &p, 2e6);
        for v in phase_to_iq(&phase) {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn throughput_multiplier() {
        // The Sec 5.3 claim: same symbol rate, 2-3x the bits.
        assert_eq!(EdrScheme::Dqpsk2.bits_per_symbol(), 2);
        assert_eq!(EdrScheme::Dpsk8.bits_per_symbol(), 3);
    }


}
