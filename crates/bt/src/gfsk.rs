//! GFSK modulation (Bluetooth BR basic rate, Vol 2 Part A 3.1).
//!
//! Bits are shaped with a Gaussian filter (BT = 0.5) and frequency-modulated
//! with deviation `±f_d` (spec: modulation index 0.28–0.35, i.e.
//! `f_d = h/2 · 1 Mb/s` ≈ 140–175 kHz; we default to 160 kHz, h = 0.32).
//! At the 20 MHz WiFi sampling rate each 1 µs bit spans 20 samples — the
//! ratio BlueFi's "one OFDM symbol ≈ 4 Bluetooth bits" bookkeeping comes
//! from.

use bluefi_dsp::gaussian::{gaussian_taps, shape_bits, shape_bits_to};
use bluefi_dsp::phase::{
    accumulate_frequency, accumulate_frequency_into, add_frequency_offset, phase_to_iq,
};
use bluefi_dsp::Cx;

/// Gaussian filter span in symbols used by the modulator (plenty for
/// BT = 0.5).
const FILTER_SPAN: usize = 3;

/// GFSK modulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GfskParams {
    /// Sample rate in Hz (20 MHz to match WiFi hardware).
    pub sample_rate_hz: f64,
    /// Symbol rate in Hz (1 MHz for BR/BLE-1M).
    pub symbol_rate_hz: f64,
    /// Frequency deviation in Hz (positive for bit 1).
    pub deviation_hz: f64,
    /// Gaussian bandwidth-time product.
    pub bt: f64,
    /// Zero-frequency guard bits prepended/appended (paper Sec 2.3:
    /// "we insert 0's to the front and to the back of the frequency
    /// signal since we observed such a pattern on commercial chips").
    pub guard_bits: usize,
}

impl Default for GfskParams {
    fn default() -> GfskParams {
        GfskParams {
            sample_rate_hz: 20e6,
            symbol_rate_hz: 1e6,
            deviation_hz: 160e3,
            bt: 0.5,
            guard_bits: 4,
        }
    }
}

impl GfskParams {
    /// Samples per symbol (must divide evenly; 20 at the defaults).
    pub fn sps(&self) -> usize {
        let sps = self.sample_rate_hz / self.symbol_rate_hz;
        assert!(
            (sps - sps.round()).abs() < 1e-9 && sps >= 1.0,
            "sample rate must be an integer multiple of the symbol rate"
        );
        sps as usize
    }

    /// Modulation index h = 2·f_d / symbol rate.
    pub fn modulation_index(&self) -> f64 {
        2.0 * self.deviation_hz / self.symbol_rate_hz
    }
}

/// The instantaneous-frequency pulse train (cycles/sample) for a packet's
/// bits, including guard bits of zero frequency on both ends.
pub fn frequency_signal(bits: &[bool], p: &GfskParams) -> Vec<f64> {
    let sps = p.sps();
    let dev = p.deviation_hz / p.sample_rate_hz; // cycles/sample at full deviation
    let shaped = shape_bits(bits, p.bt, sps, FILTER_SPAN);
    let guard = p.guard_bits * sps;
    let mut out = vec![0.0; guard];
    out.extend(shaped.iter().map(|&v| v * dev));
    out.extend(std::iter::repeat_n(0.0, guard));
    out
}

/// Reusable state for allocation-free GFSK modulation: the Gaussian taps
/// (cached per parameter set) and the intermediate frequency buffer. One
/// scratch per worker thread; after the first packet of a given length,
/// modulation through the same scratch is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct GfskScratch {
    // (bt bit-pattern, sps) the cached taps were built for.
    taps_key: Option<(u64, usize)>,
    taps: Vec<f64>,
    freq: Vec<f64>,
}

impl GfskScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> GfskScratch {
        GfskScratch::default()
    }

    /// Scratch-buffer variant of [`frequency_signal`].
    pub fn frequency_signal_into(&mut self, bits: &[bool], p: &GfskParams, out: &mut Vec<f64>) {
        let sps = p.sps();
        let dev = p.deviation_hz / p.sample_rate_hz;
        let key = (p.bt.to_bits(), sps);
        if self.taps_key != Some(key) {
            self.taps = gaussian_taps(p.bt, sps, FILTER_SPAN);
            self.taps_key = Some(key);
            bluefi_dsp::contracts::probe_alloc();
        }
        let guard = p.guard_bits * sps;
        let n = bits.len() * sps;
        bluefi_dsp::contracts::ensure_len(out, guard + n + guard, 0.0);
        out[..guard].fill(0.0);
        out[guard + n..].fill(0.0);
        shape_bits_to(bits, &self.taps, sps, dev, &mut out[guard..guard + n]);
    }

    /// Scratch-buffer variant of [`modulate_phase`].
    pub fn modulate_phase_into(
        &mut self,
        bits: &[bool],
        p: &GfskParams,
        center_offset_hz: f64,
        out: &mut Vec<f64>,
    ) {
        let mut freq = std::mem::take(&mut self.freq);
        self.frequency_signal_into(bits, p, &mut freq);
        accumulate_frequency_into(&freq, 0.0, out);
        self.freq = freq;
        // lint: allow(float-eq) exact 0.0 is the "no offset" sentinel, not a computed value
        if center_offset_hz != 0.0 {
            add_frequency_offset(out, center_offset_hz / p.sample_rate_hz);
        }
    }
}

/// Full GFSK modulation: packet bits → phase signal (radians) at baseband,
/// optionally offset by `center_offset_hz` (the Bluetooth channel's position
/// relative to the WiFi channel center — paper Sec 2.3's "modulating
/// operation", which must precede CP construction).
pub fn modulate_phase(bits: &[bool], p: &GfskParams, center_offset_hz: f64) -> Vec<f64> {
    let freq = frequency_signal(bits, p);
    let mut phase = accumulate_frequency(&freq, 0.0);
    // lint: allow(float-eq) exact 0.0 is the "no offset" sentinel, not a computed value
    if center_offset_hz != 0.0 {
        add_frequency_offset(&mut phase, center_offset_hz / p.sample_rate_hz);
    }
    phase
}

/// GFSK modulation to a unit-envelope IQ waveform.
pub fn modulate_iq(bits: &[bool], p: &GfskParams, center_offset_hz: f64) -> Vec<Cx> {
    phase_to_iq(&modulate_phase(bits, p, center_offset_hz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_dsp::phase::discriminate;

    #[test]
    fn defaults_are_bluetooth_br() {
        let p = GfskParams::default();
        assert_eq!(p.sps(), 20);
        assert!((p.modulation_index() - 0.32).abs() < 1e-12);
        assert!(
            p.modulation_index() >= 0.28 && p.modulation_index() <= 0.35,
            "spec range"
        );
    }

    #[test]
    fn waveform_length_includes_guards() {
        let p = GfskParams::default();
        let bits = vec![true; 10];
        let iq = modulate_iq(&bits, &p, 0.0);
        assert_eq!(iq.len(), (10 + 2 * p.guard_bits) * 20);
    }

    #[test]
    fn envelope_is_constant() {
        let p = GfskParams::default();
        let bits: Vec<bool> = (0..32).map(|i| i % 3 != 0).collect();
        for v in modulate_iq(&bits, &p, 1e6) {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn discriminator_recovers_bits() {
        let p = GfskParams::default();
        let bits: Vec<bool> = (0..64).map(|i| (i * 7) % 5 < 2).collect();
        let iq = modulate_iq(&bits, &p, 0.0);
        let f = discriminate(&iq);
        let guard = p.guard_bits * 20;
        for (i, &b) in bits.iter().enumerate() {
            let center = guard + i * 20 + 10;
            assert_eq!(f[center] > 0.0, b, "bit {i}");
        }
    }

    #[test]
    fn center_offset_shifts_spectrum() {
        use bluefi_dsp::fft::fft;
        let p = GfskParams::default();
        let bits: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        // Offset +4 MHz = subcarrier 12.8: spectral peak in the upper half.
        let iq = modulate_iq(&bits, &p, 4e6);
        let n = 512;
        let spec = fft(&iq[..n]);
        let peak_bin = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        // 4 MHz / 20 MHz * 512 = 102.4.
        assert!(
            (90..=115).contains(&peak_bin),
            "peak at bin {peak_bin}, expected ≈102"
        );
    }

    #[test]
    fn long_runs_hit_full_deviation() {
        let p = GfskParams::default();
        let bits = vec![true; 12];
        let iq = modulate_iq(&bits, &p, 0.0);
        let f = discriminate(&iq);
        let mid = (p.guard_bits + 6) * 20;
        let dev_cps = p.deviation_hz / p.sample_rate_hz;
        assert!((f[mid] - dev_cps).abs() < dev_cps * 0.01);
    }

    #[test]
    fn scratch_modulation_matches_allocating_path() {
        let p = GfskParams::default();
        let mut scratch = GfskScratch::new();
        let mut out = Vec::new();
        for (len, offset) in [(16usize, 0.0f64), (48, 1e6), (16, -2.5e6), (80, 4e6)] {
            let bits: Vec<bool> = (0..len).map(|i| (i * 11) % 5 < 2).collect();
            scratch.modulate_phase_into(&bits, &p, offset, &mut out);
            let fresh = modulate_phase(&bits, &p, offset);
            assert_eq!(out, fresh, "len {len} offset {offset}");
        }
    }

    #[test]
    fn guard_bits_are_at_carrier_frequency() {
        let p = GfskParams::default();
        let bits = vec![true; 8];
        let f = frequency_signal(&bits, &p);
        // First couple of guard bits are ~zero frequency (the Gaussian tail
        // of the first data bit bleeds into the last guard bit).
        for &v in &f[..2 * 20] {
            assert!(v.abs() < 1e-6, "{v}");
        }
    }
}
