//! Frequency hopping and AFH (adaptive frequency hopping).
//!
//! Connected Bluetooth devices hop pseudo-randomly across the 79 BR
//! channels every 625 µs slot, with multi-slot packets freezing the
//! frequency for their duration. AFH (Vol 2 Part B 8.6.3) lets the master
//! restrict hopping to a channel map; hops landing on a disallowed channel
//! are remapped onto the allowed set — which is exactly how BlueFi confines
//! the sequence to the ~20 channels under one WiFi channel (paper Sec 4.7).
//!
//! **Substitution note (see DESIGN.md):** the hop *kernel* here is a
//! deterministic pseudo-random generator seeded by (address, clock) rather
//! than the spec's exact PERM5 network. Every property the paper (and the
//! experiments) rely on — determinism, near-uniform channel usage, AFH
//! remapping, same-channel multi-slot packets — holds identically.

/// Number of BR channels.
pub const NUM_CHANNELS: u8 = 79;
/// Slot duration in microseconds.
pub const SLOT_US: u64 = 625;

/// A deterministic hop-sequence generator for the connection state.
#[derive(Debug, Clone, Copy)]
pub struct HopSelector {
    /// ULAP-style seed (derived from the master's address).
    seed: u64,
}

impl HopSelector {
    /// Creates a selector for a master address (LAP+UAP, as the spec's
    /// kernel uses).
    pub fn new(lap: u32, uap: u8) -> HopSelector {
        HopSelector { seed: ((uap as u64) << 24) | lap as u64 }
    }

    /// The basic (un-remapped) hop channel for clock `clk` (CLK₂₇…CLK₁;
    /// hops occur on even slots, i.e. bit 1 increments per slot pair).
    pub fn basic_channel(&self, clk: u32) -> u8 {
        // SplitMix64 over (seed, slot index): high-quality deterministic
        // mixing, uniform over 0..79.
        let slot = (clk >> 1) as u64;
        let mut z = self.seed ^ slot.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z % NUM_CHANNELS as u64) as u8
    }

    /// The AFH-remapped channel for clock `clk` under `map`.
    pub fn channel(&self, clk: u32, map: &ChannelMap) -> u8 {
        let basic = self.basic_channel(clk);
        map.remap(basic, clk)
    }
}

/// An AFH channel map: the set of used channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMap {
    used: Vec<u8>,
    mask: [bool; NUM_CHANNELS as usize],
}

impl ChannelMap {
    /// All 79 channels used (no AFH).
    pub fn all() -> ChannelMap {
        ChannelMap::from_channels((0..NUM_CHANNELS).collect())
    }

    /// A map from an explicit channel list.
    ///
    /// # Panics
    /// Panics when empty or out of range (the spec requires ≥ 20 used
    /// channels; we only require ≥ 1 so experiments can stress smaller
    /// sets).
    pub fn from_channels(mut channels: Vec<u8>) -> ChannelMap {
        assert!(!channels.is_empty(), "channel map cannot be empty");
        channels.sort_unstable();
        channels.dedup();
        assert!(channels.iter().all(|&c| c < NUM_CHANNELS), "channel index out of range");
        let mut mask = [false; NUM_CHANNELS as usize];
        for &c in &channels {
            mask[c as usize] = true;
        }
        ChannelMap { used: channels, mask }
    }

    /// Number of used channels.
    pub fn n_used(&self) -> usize {
        self.used.len()
    }

    /// The used channels, ascending.
    pub fn used(&self) -> &[u8] {
        &self.used
    }

    /// Whether `ch` is in the map.
    pub fn contains(&self, ch: u8) -> bool {
        self.mask[ch as usize]
    }

    /// AFH remapping: allowed channels pass through; disallowed ones are
    /// remapped pseudo-uniformly onto the used set (spec 8.6.3 style:
    /// index = basic mod N_used).
    pub fn remap(&self, basic: u8, _clk: u32) -> u8 {
        if self.contains(basic) {
            basic
        } else {
            self.used[basic as usize % self.used.len()]
        }
    }
}

/// Slot/clock arithmetic for scheduling (the Bluetooth clock ticks at
/// 3.2 kHz; CLK₁ flips every 312.5 µs, a slot is CLK₁..=CLK₂).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotClock {
    /// The native Bluetooth clock (bit 0 = CLK₀, 312.5 µs half-slots).
    pub clk: u32,
}

impl SlotClock {
    /// The clock at slot index `slot` (one slot = 2 clock ticks of CLK₁).
    pub fn at_slot(slot: u32) -> SlotClock {
        SlotClock { clk: slot << 1 }
    }

    /// Slot index.
    pub fn slot(&self) -> u32 {
        self.clk >> 1
    }

    /// Whether a master transmission may start here (even slots).
    pub fn is_master_tx_slot(&self) -> bool {
        self.slot().is_multiple_of(2)
    }

    /// CLK₆…CLK₁ (the whitening seed bits).
    pub fn clk6_1(&self) -> u8 {
        ((self.clk >> 1) & 0x3F) as u8
    }

    /// Microseconds since clock zero.
    pub fn micros(&self) -> u64 {
        self.slot() as u64 * SLOT_US
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_cover_channels_nearly_uniformly() {
        let h = HopSelector::new(0x9E8B33, 0x47);
        let mut counts = [0usize; 79];
        let n = 79 * 200;
        for slot in 0..n {
            counts[h.basic_channel((slot as u32) << 1) as usize] += 1;
        }
        let expect = n / 79;
        for (ch, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "channel {ch}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn hopping_is_deterministic_in_clock() {
        let h = HopSelector::new(0x123456, 0xAB);
        for clk in [0u32, 2, 100, 1 << 20] {
            assert_eq!(h.basic_channel(clk), h.basic_channel(clk));
            // CLK bit 0 of our reduced clock (CLK1) does not change the hop.
            assert_eq!(h.basic_channel(clk), h.basic_channel(clk | 1));
        }
    }

    #[test]
    fn different_addresses_hop_differently() {
        let a = HopSelector::new(0x111111, 1);
        let b = HopSelector::new(0x222222, 1);
        let same = (0..100u32)
            .filter(|&s| a.basic_channel(s << 1) == b.basic_channel(s << 1))
            .count();
        assert!(same < 20, "{same} collisions of 100");
    }

    #[test]
    fn afh_confines_to_map() {
        let map = ChannelMap::from_channels((11..=29).collect());
        let h = HopSelector::new(0x9E8B33, 0x47);
        for slot in 0..2000u32 {
            let ch = h.channel(slot << 1, &map);
            assert!(map.contains(ch), "slot {slot} landed on {ch}");
        }
    }

    #[test]
    fn afh_preserves_allowed_hops() {
        let map = ChannelMap::from_channels((0..NUM_CHANNELS).collect());
        let h = HopSelector::new(0x9E8B33, 0x47);
        for slot in 0..200u32 {
            assert_eq!(h.channel(slot << 1, &map), h.basic_channel(slot << 1));
        }
    }

    #[test]
    fn afh_remap_is_roughly_uniform_over_used() {
        let map = ChannelMap::from_channels(vec![11, 12, 13, 20, 21, 22]);
        let h = HopSelector::new(0x42, 0x42);
        let mut counts = std::collections::HashMap::new();
        for slot in 0..6000u32 {
            *counts.entry(h.channel(slot << 1, &map)).or_insert(0usize) += 1;
        }
        for &ch in map.used() {
            let c = counts.get(&ch).copied().unwrap_or(0);
            assert!(c > 500, "channel {ch}: {c}");
        }
    }

    #[test]
    fn slot_clock_arithmetic() {
        let s = SlotClock::at_slot(7);
        assert_eq!(s.slot(), 7);
        assert!(!s.is_master_tx_slot());
        assert!(SlotClock::at_slot(8).is_master_tx_slot());
        assert_eq!(s.micros(), 7 * 625);
        assert_eq!(SlotClock::at_slot(0x7F).clk6_1(), 0x3F);
    }
}
