//! The FHS (Frequency Hop Synchronization) packet — the special control
//! packet a BR device answers inquiries and pages with (Vol 2 Part B 6.5.1.4).
//!
//! BlueFi-as-a-beacon is the headline app, but a WiFi AP that can *answer
//! inquiry scans* is the BR-side equivalent: the FHS payload carries the
//! responder's address parts, class of device and clock, everything a peer
//! needs to page it. The payload is a fixed 144-bit field set protected by
//! the rate-2/3 FEC and a CRC — i.e. exactly a DM-style single-slot payload
//! that the existing BlueFi pipeline can transmit.

use crate::br::{br_air_bits_raw, BrHeader, BtAddress, PacketType};
use bluefi_dsp::bits::{bits_to_u64_lsb, u64_to_bits_lsb};

/// Parsed FHS payload fields (the subset meaningful to discovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhsPayload {
    /// Responder's address.
    pub addr: BtAddress,
    /// Class of device (24 bits).
    pub class_of_device: u32,
    /// The LT_ADDR the responder assigns the paging device.
    pub lt_addr: u8,
    /// Native clock bits CLK₂₇…CLK₂ at transmission.
    pub clk27_2: u32,
    /// Page scan mode (3 bits).
    pub page_scan_mode: u8,
}

impl FhsPayload {
    /// Serializes to the 144-bit FHS field layout:
    /// parity-placeholder(34) ‖ LAP(24) ‖ undefined(2) ‖ SR(2) ‖ SP(2) ‖
    /// UAP(8) ‖ NAP(16) ‖ CoD(24) ‖ LT_ADDR(3) ‖ CLK(26) ‖ PSM(3).
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(144);
        // The first 34 bits of a real FHS carry the sync-word parity of the
        // responder's access code; regenerate from the LAP.
        let sw = bluefi_coding::bch::sync_word(self.addr.lap);
        bits.extend(u64_to_bits_lsb(sw & ((1 << 34) - 1), 34));
        bits.extend(u64_to_bits_lsb(self.addr.lap as u64, 24));
        bits.extend(u64_to_bits_lsb(0b00, 2)); // undefined
        bits.extend(u64_to_bits_lsb(0b01, 2)); // SR
        bits.extend(u64_to_bits_lsb(0b00, 2)); // SP (reserved)
        bits.extend(u64_to_bits_lsb(self.addr.uap as u64, 8));
        bits.extend(u64_to_bits_lsb(self.addr.nap as u64, 16));
        bits.extend(u64_to_bits_lsb(self.class_of_device as u64 & 0xFF_FFFF, 24));
        bits.extend(u64_to_bits_lsb(self.lt_addr as u64 & 0x7, 3));
        bits.extend(u64_to_bits_lsb(self.clk27_2 as u64 & 0x3FF_FFFF, 26));
        bits.extend(u64_to_bits_lsb(self.page_scan_mode as u64 & 0x7, 3));
        debug_assert_eq!(bits.len(), 144);
        bits
    }

    /// Parses a 144-bit FHS field.
    pub fn from_bits(bits: &[bool]) -> Option<FhsPayload> {
        if bits.len() != 144 {
            return None;
        }
        let take = |start: usize, width: usize| bits_to_u64_lsb(&bits[start..start + width]);
        Some(FhsPayload {
            addr: BtAddress {
                lap: take(34, 24) as u32,
                uap: take(64, 8) as u8,
                nap: take(72, 16) as u16,
            },
            class_of_device: take(88, 24) as u32,
            lt_addr: take(112, 3) as u8,
            clk27_2: take(115, 26) as u32,
            page_scan_mode: take(141, 3) as u8,
        })
    }

    /// Builds the complete FHS air bits: 144-bit field ‖ CRC-16, whitened,
    /// rate-2/3 FEC — 72 + 54 + 240 = 366 bits, exactly one slot.
    pub fn air_bits(&self, clk6_1: u8) -> Vec<bool> {
        let header = BrHeader {
            lt_addr: 0, // FHS is sent before an LT_ADDR is active
            ptype: PacketType::Dm1, // TYPE shares DM1's single-slot shape here
            flow: true,
            arqn: false,
            seqn: false,
        };
        br_air_bits_raw(self.addr, &header, &self.to_bits(), clk6_1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fhs() -> FhsPayload {
        FhsPayload {
            addr: BtAddress { lap: 0x2A5F17, uap: 0x63, nap: 0xBEEF },
            class_of_device: 0x5A020C, // smartphone
            lt_addr: 1,
            clk27_2: 0x123_4567,
            page_scan_mode: 0,
        }
    }

    #[test]
    fn field_roundtrip() {
        let f = fhs();
        assert_eq!(FhsPayload::from_bits(&f.to_bits()), Some(f));
    }

    #[test]
    fn parity_matches_the_access_code() {
        let f = fhs();
        let bits = f.to_bits();
        let sw = bluefi_coding::bch::sync_word(f.addr.lap);
        assert_eq!(bits_to_u64_lsb(&bits[..34]), sw & ((1 << 34) - 1));
    }

    #[test]
    fn fhs_packet_survives_the_baseband() {
        let f = fhs();
        let bits = f.air_bits(0x15);
        assert_eq!(bits.len(), 366, "FHS fills exactly one slot's budget");
        let field = crate::br::br_decode_raw(&bits[72..], f.addr.uap, 0x15, 144)
            .expect("header + CRC valid");
        assert_eq!(FhsPayload::from_bits(&field), Some(f));
    }

    #[test]
    fn corrupted_fhs_is_rejected() {
        let f = fhs();
        let mut bits = f.air_bits(0x15);
        // Two errors in one FEC block defeat the (15,10) correction.
        bits[130] = !bits[130];
        bits[131] = !bits[131];
        assert_eq!(crate::br::br_decode_raw(&bits[72..], f.addr.uap, 0x15, 144), None);
    }

    #[test]
    fn bad_length_rejected() {
        assert_eq!(FhsPayload::from_bits(&[false; 100]), None);
    }
}
