//! A non-coherent GFSK receiver, modeled on what COTS Bluetooth silicon
//! does: channel-select filtering, limiter/FM discrimination, symbol-timing
//! search, correlation against the access code, and hard slicing.
//!
//! This is the "unmodified Bluetooth device" of the paper — the evaluation
//! sends BlueFi waveforms through a channel model into this receiver and
//! reports RSSI/PER exactly as the phones and the FTS4BT sniffer did.
//! The band-pass (±650 kHz here) is also what makes BlueFi work at all:
//! the CP/windowing corruption appears as ~4 MHz components the filter
//! removes (paper Sec 2.4).

use crate::ble::{adv_decode, AdvDecode, ADV_ACCESS_ADDRESS};
use crate::br::{access_code_bits, br_decode, BrDecode};
use crate::gfsk::GfskParams;
use bluefi_dsp::bits::u64_to_bits_lsb;
use bluefi_dsp::phase::discriminate;
use bluefi_dsp::power::{mean_power, mw_to_dbm};
use bluefi_dsp::{Cx, Fir};

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Bluetooth channel center relative to the incoming IQ baseband, Hz.
    pub channel_offset_hz: f64,
    /// Channel-select filter half-width in Hz (≈650 kHz on real parts).
    pub filter_halfwidth_hz: f64,
    /// Filter length in taps.
    pub filter_taps: usize,
    /// Modulation parameters (symbol rate, deviation).
    pub gfsk: GfskParams,
    /// Maximum bit errors tolerated in the sync-word correlator
    /// (real baseband controllers allow a small slack).
    pub max_sync_errors: usize,
}

impl Default for ReceiverConfig {
    fn default() -> ReceiverConfig {
        ReceiverConfig {
            channel_offset_hz: 0.0,
            filter_halfwidth_hz: 650e3,
            filter_taps: 129,
            gfsk: GfskParams::default(),
            max_sync_errors: 2,
        }
    }
}

/// Demodulated capture: filtered baseband, discriminator output, RSSI.
#[derive(Debug, Clone)]
pub struct Demod {
    /// Channel-filtered IQ.
    pub filtered: Vec<Cx>,
    /// Instantaneous frequency (cycles/sample) after the limiter.
    pub freq: Vec<f64>,
    /// In-band received signal strength over the capture, dBm
    /// (1.0 sample power ≡ 1 mW, the convention the chip models use).
    pub rssi_dbm: f64,
}

/// A synchronized packet candidate.
#[derive(Debug, Clone)]
pub struct SyncHit {
    /// Sample index of the first bit of the matched pattern.
    pub sample_offset: usize,
    /// Bit errors in the matched pattern.
    pub pattern_errors: usize,
    /// Hard bits from the end of the pattern onward.
    pub bits: Vec<bool>,
    /// RSSI measured over the packet extent, dBm.
    pub rssi_dbm: f64,
}

/// The receiver.
#[derive(Debug, Clone)]
pub struct GfskReceiver {
    cfg: ReceiverConfig,
    fir: Fir,
    /// Partial-response model of the whole TX+RX chain: the integrated
    /// per-bit discriminator output is ≈ `alpha·s₀ + beta·(s₋₁ + s₊₁)` with
    /// `s ∈ {−1, +1}`. Self-calibrated at construction by passing a
    /// reference GFSK burst through this receiver's own filter — the ISI
    /// model a real baseband bakes into its sequence detector.
    isi_alpha: f64,
    isi_beta: f64,
}

impl GfskReceiver {
    /// Builds a receiver for `cfg`.
    pub fn new(cfg: ReceiverConfig) -> GfskReceiver {
        let cutoff = cfg.filter_halfwidth_hz / cfg.gfsk.sample_rate_hz;
        let fir = Fir::lowpass(cutoff, cfg.filter_taps);
        let (isi_alpha, isi_beta) = calibrate_isi(&cfg, &fir);
        GfskReceiver { cfg, fir, isi_alpha, isi_beta }
    }

    /// The self-calibrated partial-response coefficients `(alpha, beta)` in
    /// cycles/sample.
    pub fn isi_model(&self) -> (f64, f64) {
        (self.isi_alpha, self.isi_beta)
    }

    /// Receiver configuration.
    pub fn config(&self) -> &ReceiverConfig {
        &self.cfg
    }

    /// Mixes the capture down by the channel offset, channel-filters it and
    /// runs the FM discriminator.
    pub fn demodulate(&self, iq: &[Cx]) -> Demod {
        let w = -2.0 * std::f64::consts::PI * self.cfg.channel_offset_hz
            / self.cfg.gfsk.sample_rate_hz;
        let mixed: Vec<Cx> = iq
            .iter()
            .enumerate()
            .map(|(n, &v)| v * Cx::expj(w * n as f64))
            .collect();
        let filtered = self.fir.filter_cx(&mixed);
        let freq = discriminate(&filtered);
        let rssi_dbm = mw_to_dbm(mean_power(&filtered).max(1e-30));
        Demod { filtered, freq, rssi_dbm }
    }

    /// Slices hard bits at every sample phase and hunts for `pattern`
    /// (LSB-of-stream-first bits), returning the best hit.
    ///
    /// `packet_bits` bounds the packet length after the pattern (for RSSI
    /// measurement and bit extraction).
    pub fn synchronize(&self, demod: &Demod, pattern: &[bool], packet_bits: usize) -> Option<SyncHit> {
        let sps = self.cfg.gfsk.sps();
        let n = demod.freq.len();
        if n < pattern.len() * sps {
            return None;
        }
        // DC/CFO estimate: the midpoint between the two FSK rails over the
        // high-power region (insensitive to the packet's 1/0 balance, unlike
        // a median — real slicers track the same midpoint from the
        // preamble).
        let dc = rail_midpoint(demod);
        let mut best: Option<SyncHit> = None;
        for phase in 0..sps {
            let nbits = (n - phase) / sps;
            if nbits < pattern.len() {
                continue;
            }
            // Integrate-and-dump over the whole symbol — the matched filter
            // for rectangular-ish FSK, and it cancels the paired ±
            // discriminator impulses that phase glitches (e.g. BlueFi's CP
            // boundaries) produce within one symbol.
            let mut accs = Vec::with_capacity(nbits);
            let mut envs = Vec::with_capacity(nbits);
            for b in 0..nbits {
                let start = phase + b * sps;
                let stop = (start + sps).min(n);
                let acc: f64 = demod.freq[start..stop].iter().sum();
                accs.push(acc / (stop - start) as f64 - dc);
                let e: f64 = demod.filtered[start..stop].iter().map(|v| v.norm_sq()).sum();
                envs.push(e / (stop - start) as f64);
            }
            // Observation confidence: bits whose envelope dips (FM clicks,
            // antiphase CP pockets) are demoted toward erasures; the MLSE's
            // ISI coupling then infers them from their neighbours'
            // observations — what an SNR-weighted sequence detector does.
            let med_env = {
                let mut v = envs.clone();
                v.sort_by(|a, b| a.total_cmp(b));
                v[v.len() / 2].max(1e-30)
            };
            let weights: Vec<f64> = envs
                .iter()
                .map(|&e| (e / med_env).min(1.0))
                .collect();
            // Partial-response MLSE over the per-bit observations: resolves
            // the ISI that collapses isolated bits through the sharp channel
            // filter (what real basebands' sequence detectors do).
            let bits = mlse_slice(&accs, &weights, self.isi_alpha, self.isi_beta);
            // Sliding correlation.
            for start in 0..nbits.saturating_sub(pattern.len()) {
                let errs = pattern
                    .iter()
                    .zip(&bits[start..])
                    .filter(|(a, b)| a != b)
                    .count();
                if errs <= self.cfg.max_sync_errors
                    && best.as_ref().is_none_or(|b| errs < b.pattern_errors)
                {
                    let body_start = start + pattern.len();
                    let body_end = (body_start + packet_bits).min(bits.len());
                    let s0 = phase + start * sps;
                    let s1 = (phase + body_end * sps).min(n);
                    let rssi =
                        mw_to_dbm(mean_power(&demod.filtered[s0..s1]).max(1e-30));
                    best = Some(SyncHit {
                        sample_offset: s0,
                        pattern_errors: errs,
                        bits: bits[body_start..body_end].to_vec(),
                        rssi_dbm: rssi,
                    });
                    if errs == 0 {
                        return best;
                    }
                }
            }
        }
        best
    }

    /// End-to-end BLE advertising reception on RF channel `channel`.
    pub fn receive_ble_adv(&self, iq: &[Cx], channel: u8) -> BleRx {
        let demod = self.demodulate(iq);
        let aa = u64_to_bits_lsb(ADV_ACCESS_ADDRESS as u64, 32);
        match self.synchronize(&demod, &aa, (2 + 37 + 3) * 8) {
            Some(hit) => {
                let decode = adv_decode(&hit.bits, channel);
                BleRx { rssi_dbm: Some(hit.rssi_dbm), decode: Some(decode) }
            }
            None => BleRx { rssi_dbm: None, decode: None },
        }
    }

    /// End-to-end BR reception: sync on the access code for `lap`, then
    /// decode header and payload.
    pub fn receive_br(&self, iq: &[Cx], lap: u32, uap: u8, clk6_1: u8) -> BrRx {
        let demod = self.demodulate(iq);
        let ac = access_code_bits(lap);
        match self.synchronize(&demod, &ac, crate::br::max_air_bits(5) - 72) {
            Some(hit) => {
                let decode = br_decode(&hit.bits, uap, clk6_1);
                BrRx { rssi_dbm: Some(hit.rssi_dbm), decode: Some(decode) }
            }
            None => BrRx { rssi_dbm: None, decode: None },
        }
    }
}

/// Self-calibrates the partial-response ISI model: modulate a pseudo-random
/// reference burst, run it through this receiver's own filter chain, and
/// least-squares fit `acc_i ≈ alpha·s_i + beta·(s_{i−1} + s_{i+1})`.
fn calibrate_isi(cfg: &ReceiverConfig, fir: &Fir) -> (f64, f64) {
    use crate::gfsk::modulate_iq;
    // A fixed PN pattern containing all 3-bit contexts.
    let mut lfsr = bluefi_coding::lfsr::Lfsr7::new(0x5B);
    let bits: Vec<bool> = (0..255).map(|_| lfsr.next_bit()).collect();
    let iq = modulate_iq(&bits, &cfg.gfsk, 0.0);
    let filtered = fir.filter_cx(&iq);
    let freq = discriminate(&filtered);
    let sps = cfg.gfsk.sps();
    let guard = cfg.gfsk.guard_bits;
    let s = |b: usize| if bits[b] { 1.0 } else { -1.0 };
    // Normal equations for [alpha, beta].
    let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 1..bits.len() - 1 {
        let start = (guard + i) * sps;
        let acc: f64 = freq[start..start + sps].iter().sum::<f64>() / sps as f64;
        let x1 = s(i);
        let x2 = s(i - 1) + s(i + 1);
        a11 += x1 * x1;
        a12 += x1 * x2;
        a22 += x2 * x2;
        b1 += x1 * acc;
        b2 += x2 * acc;
    }
    let det = a11 * a22 - a12 * a12;
    if det.abs() < 1e-12 {
        let dev = cfg.gfsk.deviation_hz / cfg.gfsk.sample_rate_hz;
        return (dev, 0.0);
    }
    let alpha = (b1 * a22 - b2 * a12) / det;
    let beta = (a11 * b2 - a12 * b1) / det;
    (alpha, beta)
}

/// Maximum-likelihood sequence estimation over the per-bit integrated
/// discriminator outputs with the 3-tap partial-response model
/// `acc_t ≈ alpha·s_t + beta·(s_{t−1} + s_{t+1})`, `s ∈ {−1,+1}`.
///
/// Trellis state before scoring observation t is `(s_{t−1}, s_t)`;
/// the transition to `(s_t, s_{t+1})` scores observation t with its full
/// context. The initial `s_{−1}` and the final `s_n` are free (edge bits
/// behave like extensions, matching the modulator). O(8·n) — negligible.
fn mlse_slice(accs: &[f64], weights: &[f64], alpha: f64, beta: f64) -> Vec<bool> {
    let n = accs.len();
    debug_assert_eq!(weights.len(), n);
    if n == 0 {
        return Vec::new();
    }
    let sv = |b: usize| if b == 1 { 1.0 } else { -1.0 };
    let mut metric = [0.0f64; 4]; // state = (s_{t-1} << 1) | s_t
    let mut surv: Vec<[u8; 4]> = Vec::with_capacity(n);
    for (t, &obs) in accs.iter().enumerate() {
        let w = weights[t];
        let mut next = [f64::INFINITY; 4];
        let mut choice = [0u8; 4];
        #[allow(clippy::needless_range_loop)]
        for st in 0..4usize {
            let a = (st >> 1) & 1; // s_{t-1}
            let b = st & 1; // s_t
            for c in 0..2usize {
                // s_{t+1}
                let model = alpha * sv(b) + beta * (sv(a) + sv(c));
                let e = obs - model;
                let m = metric[st] + w * e * e;
                let ns = (b << 1) | c;
                if m < next[ns] {
                    next[ns] = m;
                    choice[ns] = st as u8;
                }
            }
        }
        surv.push(choice);
        metric = next;
    }
    let mut state = metric
        .iter()
        .enumerate()
        .min_by(|x, y| x.1.total_cmp(y.1))
        .map(|(s, _)| s)
        .unwrap_or(0);
    // After scoring observation t the state is (s_t, s_{t+1}); its high bit
    // is bit t.
    let mut bits = vec![false; n];
    for t in (0..n).rev() {
        bits[t] = (state >> 1) & 1 == 1;
        state = surv[t][state] as usize;
    }
    bits
}

fn rail_midpoint(demod: &Demod) -> f64 {
    // Samples whose instantaneous power exceeds 10% of the mean (ignores
    // the silence around a burst), sorted by discriminator value; the slicer
    // threshold is the midpoint between the average upper and lower
    // quartiles — the two FSK rails.
    let p = mean_power(&demod.filtered);
    let mut vals: Vec<f64> = demod
        .filtered
        .iter()
        .zip(&demod.freq)
        .filter(|(v, _)| v.norm_sq() > 0.1 * p)
        .map(|(_, &f)| f)
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(|a, b| a.total_cmp(b));
    let q = vals.len() / 4;
    if q == 0 {
        return vals[vals.len() / 2];
    }
    let low: f64 = vals[..q].iter().sum::<f64>() / q as f64;
    let high: f64 = vals[vals.len() - q..].iter().sum::<f64>() / q as f64;
    0.5 * (low + high)
}

/// Result of a BLE advertising reception attempt.
#[derive(Debug, Clone)]
pub struct BleRx {
    /// RSSI if the access address was found.
    pub rssi_dbm: Option<f64>,
    /// Decode outcome if synchronized.
    pub decode: Option<AdvDecode>,
}

impl BleRx {
    /// Whether a valid packet was received.
    pub fn ok(&self) -> bool {
        matches!(self.decode, Some(AdvDecode::Ok(_)))
    }
}

/// Result of a BR reception attempt.
#[derive(Debug, Clone)]
pub struct BrRx {
    /// RSSI if the access code was found.
    pub rssi_dbm: Option<f64>,
    /// Decode outcome if synchronized.
    pub decode: Option<BrDecode>,
}

impl BrRx {
    /// Whether a valid packet was received.
    pub fn ok(&self) -> bool {
        matches!(self.decode, Some(BrDecode::Ok { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ble::{adv_air_bits, AdvPdu, AdvPduType};
    use crate::br::{br_air_bits, BrHeader, BtAddress, PacketType};
    use crate::gfsk::modulate_iq;

    fn pdu() -> AdvPdu {
        AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [1, 2, 3, 4, 5, 6],
            adv_data: vec![0x02, 0x01, 0x06, 0x03, 0x03, 0xAA, 0xFE],
            tx_add: false,
        }
    }

    fn tx_iq(offset_hz: f64, scale: f64) -> Vec<Cx> {
        let bits = adv_air_bits(&pdu(), 38);
        modulate_iq(&bits, &GfskParams::default(), offset_hz)
            .into_iter()
            .map(|v| v.scale(scale))
            .collect()
    }

    #[test]
    fn clean_ble_packet_decodes_at_baseband() {
        let rx = GfskReceiver::new(ReceiverConfig::default());
        let out = rx.receive_ble_adv(&tx_iq(0.0, 1.0), 38);
        assert!(out.ok(), "{:?}", out.decode);
        if let Some(AdvDecode::Ok(p)) = out.decode {
            assert_eq!(p, pdu());
        }
    }

    #[test]
    fn clean_ble_packet_decodes_at_4mhz_offset() {
        let cfg = ReceiverConfig { channel_offset_hz: 4e6, ..Default::default() };
        let rx = GfskReceiver::new(cfg);
        let out = rx.receive_ble_adv(&tx_iq(4e6, 1.0), 38);
        assert!(out.ok(), "{:?}", out.decode);
    }

    #[test]
    fn rssi_tracks_signal_power() {
        let rx = GfskReceiver::new(ReceiverConfig::default());
        let strong = rx.receive_ble_adv(&tx_iq(0.0, 1.0), 38);
        let weak = rx.receive_ble_adv(&tx_iq(0.0, 0.1), 38);
        let (s, w) = (strong.rssi_dbm.unwrap(), weak.rssi_dbm.unwrap());
        // 0.1 amplitude = -20 dB power.
        assert!((s - w - 20.0).abs() < 1.0, "s {s} w {w}");
    }

    #[test]
    fn off_channel_packet_is_rejected() {
        // Receiver tuned 4 MHz away from the transmission: the channel
        // filter kills it.
        let cfg = ReceiverConfig { channel_offset_hz: 4e6, ..Default::default() };
        let rx = GfskReceiver::new(cfg);
        let out = rx.receive_ble_adv(&tx_iq(0.0, 1.0), 38);
        assert!(!out.ok());
    }

    #[test]
    fn small_cfo_is_tolerated() {
        // ±50 kHz CFO (typical crystal error) must not break slicing thanks
        // to the median DC tracker.
        let rx = GfskReceiver::new(ReceiverConfig::default());
        let out = rx.receive_ble_adv(&tx_iq(50e3, 1.0), 38);
        assert!(out.ok(), "{:?}", out.decode);
    }

    #[test]
    fn br_packet_roundtrip_through_receiver() {
        let addr = BtAddress { lap: 0x123456, uap: 0x9A, nap: 0 };
        let hdr = BrHeader {
            lt_addr: 2,
            ptype: PacketType::Dh1,
            flow: true,
            arqn: false,
            seqn: false,
        };
        let payload: Vec<u8> = (0..20).collect();
        let bits = br_air_bits(addr, &hdr, &payload, 0x07);
        let iq = modulate_iq(&bits, &GfskParams::default(), 0.0);
        let rx = GfskReceiver::new(ReceiverConfig::default());
        let out = rx.receive_br(&iq, addr.lap, addr.uap, 0x07);
        assert!(out.ok(), "{:?}", out.decode);
        if let Some(BrDecode::Ok { payload: p, .. }) = out.decode {
            assert_eq!(p, payload);
        }
    }

    #[test]
    fn noise_only_capture_yields_nothing() {
        // Deterministic pseudo-noise, no packet.
        let iq: Vec<Cx> = (0..20_000)
            .map(|n| {
                let a = ((n * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5;
                let b = ((n * 1103515245usize) % 1000) as f64 / 1000.0 - 0.5;
                Cx { re: a * 0.01, im: b * 0.01 }
            })
            .collect();
        let rx = GfskReceiver::new(ReceiverConfig::default());
        assert!(!rx.receive_ble_adv(&iq, 38).ok());
    }

    #[test]
    fn truncated_capture_fails_gracefully() {
        let iq = tx_iq(0.0, 1.0);
        let rx = GfskReceiver::new(ReceiverConfig::default());
        let out = rx.receive_ble_adv(&iq[..iq.len() / 3], 38);
        assert!(!out.ok());
    }
}
