//! Anchored-phase GFSK evaluation for template-based delta synthesis.
//!
//! The standard GFSK modulator ([`crate::gfsk`]) produces the phase signal
//! by *accumulating* instantaneous frequency sample by sample. That is the
//! natural DSP formulation, but it makes every output sample a float
//! function of the entire bit prefix: flipping one payload bit perturbs the
//! rounding of every later sample, so no downstream cache can splice
//! recomputed spans into a stored baseline bit-exactly.
//!
//! This module evaluates the *same* Gaussian-shaped FM phase in closed
//! form, anchored per sample:
//!
//! ```text
//! θ(t) = A·m(j) + L(j) + 2π·f_off·t ,   j = clamp(t − guard, 0, n_shaped)
//! ```
//!
//! where `L(j)` sums the handful of Gaussian-window terms of the bits whose
//! pulses overlap shape sample `j`, and `m(j)` is an integer residue
//! tracking the bits whose pulses have fully *saturated* before `j`. Each
//! saturated bit advances the phase by exactly `±A = ±2π·(h/2)·ΣG` — for
//! h = 0.32 a rational 4/25 of a cycle — so the saturated history enters
//! only through `m = K mod 25`, an exactly-patchable integer. Every output
//! sample is therefore a float function of (a) an integer residue and (b)
//! the ≤ 6 bits whose pulses overlap it, evaluated in a fixed operation
//! order. Two payloads that agree on a sample's overlap window and residue
//! produce **bit-identical** f64 phase there — the property
//! `core::template` builds its delta-synthesis fast path on.
//!
//! The anchored signal is not float-identical to the accumulated one (the
//! two differ by accumulation rounding and by multiples of `A·period`,
//! ~1e-12 rad — physically nothing), which is why it is a separate,
//! opt-in [`PhaseMode`](../../bluefi_core/pipeline) rather than a drop-in
//! replacement: goldens for the cumulative path stay valid.

use crate::gfsk::GfskParams;
use bluefi_dsp::gaussian::gaussian_taps;

/// Gaussian filter span in symbols — must match [`crate::gfsk`]'s
/// modulator so both modes shape identically.
const FILTER_SPAN: usize = 3;

/// Largest residue period searched for; `h` must be rational with a small
/// denominator for the anchored decomposition to exist.
const MAX_PERIOD: usize = 64;

/// Closed-form anchored GFSK phase evaluator (see the module docs).
///
/// Construction precomputes the cumulative Gaussian window tables for one
/// parameter set; [`AnchoredModulator::fill_ext`] then evaluates the
/// extended phase signal sample by sample with no accumulation across
/// samples other than the integer residue.
#[derive(Debug, Clone)]
pub struct AnchoredModulator {
    /// Samples per symbol.
    sps: i64,
    /// Guard samples prepended (guard_bits · sps).
    guard: usize,
    /// Residue period: smallest q ≤ 64 with q·h/2 an integer.
    period: i64,
    /// Phase advance per saturated bit: 2π·dev_cps·ΣG = 2π·h/2 (times the
    /// tap-sum, which normalizes to 1).
    a: f64,
    /// taps.len() / 2 − 1: the largest window argument offset.
    d1: i64,
    /// Saturation argument: gt[x] is constant for x ≥ sat.
    sat: i64,
    /// Most negative bit index with any window contribution.
    i_min: i64,
    /// Largest bit index whose window constant `G(d1 − sps·i)` is nonzero;
    /// bits above this enter the residue instead of the edge constants.
    i_edge_max: i64,
    /// gt[x] = 2π·dev_cps·G(x) for x in 0..=sat.
    gt: Vec<f64>,
    /// Edge constants 2π·dev_cps·G(d1 − sps·i) for i in i_min..=i_edge_max.
    gt_edge: Vec<f64>,
}

impl AnchoredModulator {
    /// Builds the evaluator for one GFSK parameter set, or `None` when the
    /// anchored decomposition does not apply: non-integer samples/symbol,
    /// no residue period ≤ 64 (irrational-enough modulation index), or a
    /// filter too long for the two-zone (edge / residue) split.
    pub fn new(p: &GfskParams) -> Option<AnchoredModulator> {
        let sps_f = p.sample_rate_hz / p.symbol_rate_hz;
        if (sps_f.round() - sps_f).abs() > 1e-9 || sps_f < 1.0 {
            return None;
        }
        let sps = sps_f.round() as usize;
        // Residue period: q·(h/2) must be an integer number of cycles.
        let half_h = p.deviation_hz / p.symbol_rate_hz;
        let period = (1..=MAX_PERIOD)
            .find(|&q| ((q as f64 * half_h).round() - q as f64 * half_h).abs() < 1e-9)?;
        let taps = gaussian_taps(p.bt, sps, FILTER_SPAN);
        let len = taps.len() as i64;
        let sps_i = sps as i64;
        let d1 = len / 2 - 1;
        let sat = len - 1 + sps_i - 1;
        let i_min = (d1 - sat).div_euclid(sps_i) + 1;
        let i_edge_max = d1.div_euclid(sps_i);
        if i_edge_max >= i_min + 4 {
            return None; // filter spans too many symbols for the split
        }
        // Cumulative-tap table CT(y) = Σ_{k≤y} taps[k], then the window
        // G(x) = Σ_{m'=0}^{sps−1} CT(x−m'), premultiplied by 2π·dev_cps.
        let c = 2.0 * std::f64::consts::PI * p.deviation_hz / p.sample_rate_hz;
        let ct = |y: i64| -> f64 {
            if y < 0 {
                0.0
            } else {
                taps[..((y + 1).min(len)) as usize].iter().sum()
            }
        };
        let g = |x: i64| -> f64 { (0..sps_i).map(|m| ct(x - m)).sum::<f64>() * c };
        let gt: Vec<f64> = (0..=sat).map(g).collect();
        let gt_edge: Vec<f64> = (i_min..=i_edge_max).map(|i| g(d1 - sps_i * i)).collect();
        Some(AnchoredModulator {
            sps: sps_i,
            guard: p.guard_bits * sps,
            period: period as i64,
            a: gt[sat as usize],
            d1,
            sat,
            i_min,
            i_edge_max,
            gt,
            gt_edge,
        })
    }

    /// The residue period (25 at the Bluetooth defaults, h = 0.32).
    pub fn period(&self) -> usize {
        self.period as usize
    }

    /// NRZ sign of bit `i` with edge extension (the same clamping the
    /// convolution modulator's `nrz` lookup applies).
    #[inline]
    fn sign(bits: &[bool], i: i64) -> f64 {
        let idx = i.clamp(0, bits.len() as i64 - 1) as usize;
        if bits[idx] {
            1.0
        } else {
            -1.0
        }
    }

    /// The local window sum L(j) for shape sample `j`, excluding the
    /// residue-tracked saturated bits. `edge_full` is the precomputed full
    /// edge-constant sum, used once every edge bit has saturated.
    #[inline]
    fn l_of(&self, bits: &[bool], j: i64, edge_full: f64) -> f64 {
        let i_sat = (j + self.d1 - self.sat).div_euclid(self.sps);
        let i_hi = (j + self.d1).div_euclid(self.sps);
        let a = self.a;
        let mut l = if i_sat >= self.i_edge_max {
            edge_full
        } else {
            // Startup: only the already-saturated edge bits contribute a
            // constant. Same ascending order as `edge_full`'s construction
            // so the partial and full sums share every rounding step.
            let mut acc = 0.0;
            let mut i = self.i_min;
            while i <= i_sat.min(self.i_edge_max) {
                acc += Self::sign(bits, i) * (a - self.gt_edge[(i - self.i_min) as usize]);
                i += 1;
            }
            acc
        };
        let mut i = (i_sat + 1).max(self.i_min);
        while i <= i_hi {
            let x = (j + self.d1 - self.sps * i) as usize;
            let g0 = if i <= self.i_edge_max {
                self.gt_edge[(i - self.i_min) as usize]
            } else {
                0.0
            };
            l += Self::sign(bits, i) * (self.gt[x] - g0);
            i += 1;
        }
        l
    }

    /// First stream sample that can depend on bit `i`: bit `i`'s pulse
    /// first overlaps shape sample `sps·i − d1`, i.e. stream sample
    /// `guard + sps·i − d1`. Every sample strictly before is bit-identical
    /// across payloads that agree on all bits `< i` — the boundary the
    /// template cache's suffix refill splices at.
    pub fn first_sample_of_bit(&self, i: usize) -> usize {
        (self.guard as i64 + self.sps * i as i64 - self.d1).max(0) as usize
    }

    /// Fills `out` (resized to `ext_len`) with the anchored phase signal
    /// for `bits`, recentered by `offset_cps` (cycles/sample) — the fusion
    /// of GFSK modulation, frequency offset, and constant-carrier extension
    /// that the cumulative pipeline performs across three stages. Sample
    /// `t ≥ guard + n_shaped` continues the carrier (`j` clamps), covering
    /// both the trailing guard and the block-alignment extension.
    pub fn fill_ext(&self, bits: &[bool], offset_cps: f64, ext_len: usize, out: &mut Vec<f64>) {
        bluefi_dsp::contracts::ensure_len(out, ext_len, 0.0);
        self.fill_ext_from(bits, offset_cps, 0, out);
    }

    /// Suffix variant of [`AnchoredModulator::fill_ext`]: fills only
    /// `out[t_start..]`, leaving the prefix untouched. Because each sample
    /// is evaluated in closed form (the only cross-sample state is the
    /// integer residue, recovered exactly by the catch-up walk), the
    /// suffix is float-identical to the same samples of a full fill. The
    /// caller owns `out[..t_start]` — the template cache copies it from
    /// the cached base fill.
    pub fn fill_ext_from(&self, bits: &[bool], offset_cps: f64, t_start: usize, out: &mut [f64]) {
        let w_off = 2.0 * std::f64::consts::PI * offset_cps;
        if bits.is_empty() {
            for (t, slot) in out.iter_mut().enumerate().skip(t_start) {
                *slot = w_off * t as f64;
            }
            return;
        }
        let n_shaped = (bits.len() as i64) * self.sps;
        // Full edge-constant sum, valid once every edge bit has saturated.
        let mut edge_full = 0.0;
        let mut i = self.i_min;
        while i <= self.i_edge_max {
            edge_full += Self::sign(bits, i) * (self.a - self.gt_edge[(i - self.i_min) as usize]);
            i += 1;
        }
        // Walk t with the integer residue updated at saturation crossings;
        // the first iteration's while loop catches the residue up from
        // j = 0 to t_start, visiting every intermediate bit exactly as the
        // sequential walk does.
        let k0 = self.i_edge_max + 1; // first residue-tracked bit index
        let mut i_sat = (self.d1 - self.sat).div_euclid(self.sps); // i_sat at j = 0
        let mut m: i64 = 0;
        for (t, slot) in out.iter_mut().enumerate().skip(t_start) {
            let j = (t as i64 - self.guard as i64).clamp(0, n_shaped);
            let new_sat = (j + self.d1 - self.sat).div_euclid(self.sps);
            while i_sat < new_sat {
                i_sat += 1;
                if i_sat >= k0 {
                    let s = if Self::sign(bits, i_sat) > 0.0 { 1 } else { -1 };
                    m = (m + s).rem_euclid(self.period);
                }
            }
            let l = self.l_of(bits, j, edge_full);
            *slot = self.a * m as f64 + l + w_off * t as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_dsp::phase::wrap_angle;

    fn test_bits(n: usize, k: usize) -> Vec<bool> {
        (0..n).map(|i| (i * k + 3) % 7 < 3).collect()
    }

    /// Reference: the cumulative pipeline (shape → accumulate → offset →
    /// constant-carrier extension).
    fn reference_ext(bits: &[bool], p: &GfskParams, offset_cps: f64, ext_len: usize) -> Vec<f64> {
        let mut scratch = crate::gfsk::GfskScratch::new();
        let mut phase = Vec::new();
        scratch.modulate_phase_into(bits, p, offset_cps * p.sample_rate_hz, &mut phase);
        let mut out = phase.clone();
        let mut last = *phase.last().unwrap();
        while out.len() < ext_len {
            last += 2.0 * std::f64::consts::PI * offset_cps;
            out.push(last);
        }
        out
    }

    #[test]
    fn defaults_yield_period_25() {
        let am = AnchoredModulator::new(&GfskParams::default()).expect("constructible");
        assert_eq!(am.period(), 25);
        assert_eq!(am.sps, 20);
        assert_eq!(am.guard, 80);
    }

    #[test]
    fn non_integer_sps_is_rejected() {
        let p = GfskParams { sample_rate_hz: 20.5e6, ..GfskParams::default() };
        assert!(AnchoredModulator::new(&p).is_none());
    }

    #[test]
    fn irrational_index_is_rejected() {
        // h/2 = 0.157379... has no small-denominator rational form.
        let p = GfskParams { deviation_hz: 157_379.0, ..GfskParams::default() };
        assert!(AnchoredModulator::new(&p).is_none());
    }

    #[test]
    fn anchored_matches_cumulative_up_to_residue_wrap() {
        let p = GfskParams::default();
        let am = AnchoredModulator::new(&p).unwrap();
        for (n, k, off) in [(40usize, 5usize, 0.0f64), (96, 11, 0.05), (200, 7, -0.15)] {
            let bits = test_bits(n, k);
            let ext_len = (n + 8) * 20 + 90;
            let reference = reference_ext(&bits, &p, off, ext_len);
            let mut got = Vec::new();
            am.fill_ext(&bits, off, ext_len, &mut got);
            assert_eq!(got.len(), ext_len);
            for t in 0..ext_len {
                let err = wrap_angle(got[t] - reference[t]);
                assert!(
                    err.abs() < 1e-8,
                    "n={n} k={k} off={off} t={t}: anchored {} vs cumulative {}",
                    got[t],
                    reference[t]
                );
            }
        }
    }

    #[test]
    fn fill_is_deterministic_and_restartable() {
        let p = GfskParams::default();
        let am = AnchoredModulator::new(&p).unwrap();
        let bits = test_bits(80, 3);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        am.fill_ext(&bits, 0.07, 2000, &mut a);
        am.fill_ext(&test_bits(33, 9), -0.01, 900, &mut b); // perturb scratch reuse
        am.fill_ext(&bits, 0.07, 2000, &mut b);
        assert_eq!(a, b, "refills must be bit-identical");
    }

    #[test]
    fn late_mutation_leaves_the_prefix_bit_identical() {
        // The property the template cache relies on: mutating a late bit
        // leaves every sample before its pulse window float-identical.
        let p = GfskParams::default();
        let am = AnchoredModulator::new(&p).unwrap();
        let base = test_bits(120, 5);
        let mut mutated = base.clone();
        let flip_at = 100usize;
        mutated[flip_at] = !mutated[flip_at];
        let ext_len = (120 + 8) * 20 + 50;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        am.fill_ext(&base, 0.12, ext_len, &mut a);
        am.fill_ext(&mutated, 0.12, ext_len, &mut b);
        // Bit i's pulse first touches shape sample 20i−29, i.e. stream
        // sample guard + 20i − 29; everything strictly before is untouched.
        let first_touched = 80 + 20 * flip_at - 29;
        assert_eq!(a[..first_touched], b[..first_touched]);
        assert_ne!(a[first_touched..], b[first_touched..], "mutation must show up");
    }

    #[test]
    fn suffix_fill_splices_bit_exactly_onto_a_base_fill() {
        // The template-cache fast path: keep the base fill's prefix, refill
        // only from the first mutated bit's window — the result must be
        // float-identical to a full fill of the mutated payload.
        let p = GfskParams::default();
        let am = AnchoredModulator::new(&p).unwrap();
        let base = test_bits(150, 7);
        let ext_len = (150 + 8) * 20 + 63;
        let mut base_fill = Vec::new();
        am.fill_ext(&base, 0.09, ext_len, &mut base_fill);
        for flip_at in [0usize, 1, 40, 149] {
            let mut mutated = base.clone();
            mutated[flip_at] = !mutated[flip_at];
            let mut want = Vec::new();
            am.fill_ext(&mutated, 0.09, ext_len, &mut want);
            let t0 = am.first_sample_of_bit(flip_at).min(ext_len);
            let mut got = base_fill.clone();
            am.fill_ext_from(&mutated, 0.09, t0, &mut got);
            assert_eq!(got, want, "flip_at={flip_at} t0={t0}");
        }
    }

    #[test]
    fn guard_region_is_a_pure_carrier_ramp() {
        let p = GfskParams::default();
        let am = AnchoredModulator::new(&p).unwrap();
        let bits = test_bits(30, 2);
        let mut out = Vec::new();
        am.fill_ext(&bits, 0.25, 1000, &mut out);
        assert_eq!(out[0], 0.0);
        // Deep in the leading guard (before any pulse tail reaches in) the
        // phase is exactly the offset ramp.
        for t in 0..40 {
            let ramp = 2.0 * std::f64::consts::PI * 0.25 * t as f64;
            assert!((out[t] - ramp).abs() < 1e-12, "t={t}");
        }
    }
}
