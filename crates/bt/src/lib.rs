//! # bluefi-bt
//!
//! Bluetooth BR and BLE physical/baseband layers: GFSK modulation, packet
//! formats (BLE advertising, BR ACL with access codes, HEC/CRC/FEC and
//! whitening), a COTS-style non-coherent GFSK receiver, and frequency
//! hopping with AFH. This crate is both the *target* BlueFi synthesizes
//! toward and the *judge* the evaluation decodes with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchored;
pub mod ble;
pub mod br;
pub mod edr;
pub mod fhs;
pub mod gfsk;
pub mod hopping;
pub mod receiver;

pub use anchored::AnchoredModulator;
pub use ble::{AdvChannel, AdvChannelError};
pub use gfsk::{GfskParams, GfskScratch};
pub use receiver::{GfskReceiver, ReceiverConfig};
