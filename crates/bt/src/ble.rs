//! BLE advertising-channel packets (Bluetooth Core Vol 6 Part B).
//!
//! Air format (LE 1M): 8-bit preamble, 32-bit access address
//! (0x8E89BED6 on advertising channels), PDU (2-byte header + payload),
//! 24-bit CRC. PDU and CRC are whitened with the channel index. Everything
//! is LSB-first on the air.

use bluefi_coding::crc::{crc24_bits, crc24_check, BLE_ADV_CRC_INIT};
use bluefi_coding::lfsr::ble_whiten;
use bluefi_dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb, u64_to_bits_lsb};

/// The advertising-channel access address.
pub const ADV_ACCESS_ADDRESS: u32 = 0x8E89BED6;

/// A validated BLE advertising channel (37, 38 or 39).
///
/// The one place the "advertising channel must be 37..=39" rule lives —
/// construction returns `Err` on anything else instead of every consumer
/// re-implementing (and panicking on) the same match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvChannel(u8);

/// The error for an out-of-range advertising channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvChannelError(
    /// The rejected channel index.
    pub u8,
);

impl std::fmt::Display for AdvChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "advertising channel must be 37..=39, got {}", self.0)
    }
}

impl std::error::Error for AdvChannelError {}

impl AdvChannel {
    /// All three advertising channels, in index order.
    pub const ALL: [AdvChannel; 3] = [AdvChannel(37), AdvChannel(38), AdvChannel(39)];

    /// Validates a channel index.
    pub fn new(index: u8) -> Result<AdvChannel, AdvChannelError> {
        if (37..=39).contains(&index) {
            Ok(AdvChannel(index))
        } else {
            Err(AdvChannelError(index))
        }
    }

    /// The channel index (37, 38 or 39).
    pub fn index(self) -> u8 {
        self.0
    }

    /// The channel's carrier frequency in Hz (2402 / 2426 / 2480 MHz).
    pub fn freq_hz(self) -> f64 {
        match self.0 {
            37 => 2.402e9,
            38 => 2.426e9,
            _ => 2.480e9,
        }
    }
}

/// Advertising PDU types (subset relevant to beacons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvPduType {
    /// Connectable undirected advertising.
    AdvInd,
    /// Non-connectable undirected advertising (beacons).
    AdvNonconnInd,
    /// Scannable undirected advertising.
    AdvScanInd,
}

impl AdvPduType {
    fn code(self) -> u8 {
        match self {
            AdvPduType::AdvInd => 0x0,
            AdvPduType::AdvNonconnInd => 0x2,
            AdvPduType::AdvScanInd => 0x6,
        }
    }

    fn from_code(code: u8) -> Option<AdvPduType> {
        match code {
            0x0 => Some(AdvPduType::AdvInd),
            0x2 => Some(AdvPduType::AdvNonconnInd),
            0x6 => Some(AdvPduType::AdvScanInd),
            _ => None,
        }
    }
}

/// An advertising PDU before whitening/CRC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvPdu {
    /// PDU type.
    pub pdu_type: AdvPduType,
    /// Advertiser address (6 bytes, little-endian on air).
    pub adv_address: [u8; 6],
    /// Advertising data (0..=31 bytes of AD structures).
    pub adv_data: Vec<u8>,
    /// TxAdd flag (random vs public address).
    pub tx_add: bool,
}

impl AdvPdu {
    /// Serializes the PDU to bytes (header + AdvA + AdvData).
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.adv_data.len() <= 31, "AdvData is at most 31 bytes");
        let mut out = Vec::with_capacity(2 + 6 + self.adv_data.len());
        out.push(self.pdu_type.code() | ((self.tx_add as u8) << 6));
        out.push((6 + self.adv_data.len()) as u8);
        out.extend_from_slice(&self.adv_address);
        out.extend_from_slice(&self.adv_data);
        out
    }

    /// Parses PDU bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<AdvPdu> {
        if bytes.len() < 8 {
            return None;
        }
        let pdu_type = AdvPduType::from_code(bytes[0] & 0x0F)?;
        let tx_add = bytes[0] & 0x40 != 0;
        let len = bytes[1] as usize;
        if len < 6 || bytes.len() < 2 + len {
            return None;
        }
        let mut adv_address = [0u8; 6];
        adv_address.copy_from_slice(&bytes[2..8]);
        Some(AdvPdu {
            pdu_type,
            adv_address,
            adv_data: bytes[8..2 + len].to_vec(),
            tx_add,
        })
    }
}

/// Assembles the on-air bit stream for an advertising PDU on RF channel
/// `channel` (advertising channels are 37, 38, 39).
///
/// Layout: preamble (alternating bits matching the AA's first bit), access
/// address LSB-first, whitened (PDU ‖ CRC24).
pub fn adv_air_bits(pdu: &AdvPdu, channel: u8) -> Vec<bool> {
    assert!((37..=39).contains(&channel), "advertising channel 37..=39");
    let aa_bits = u64_to_bits_lsb(ADV_ACCESS_ADDRESS as u64, 32);
    // Preamble: 01010101 or 10101010 such that it alternates into AA bit 0
    // (bit 7 of the preamble must differ from AA bit 0).
    let first = aa_bits[0];
    let preamble: Vec<bool> = (0..8).map(|i| first ^ (i % 2 == 1)).collect();

    let pdu_bits = bytes_to_bits_lsb(&pdu.to_bytes());
    let crc = crc24_bits(BLE_ADV_CRC_INIT, &pdu_bits);
    let mut body = pdu_bits;
    body.extend(crc);
    let whitened = ble_whiten(channel, &body);

    let mut out = preamble;
    out.extend(aa_bits);
    out.extend(whitened);
    out
}

/// Outcome of decoding a candidate advertising packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvDecode {
    /// Valid PDU with a passing CRC.
    Ok(AdvPdu),
    /// The CRC failed (counts as a packet error).
    CrcError,
    /// The header was malformed.
    HeaderError,
}

/// Decodes the bit stream following the access address (whitened PDU+CRC).
///
/// `bits` must start at the first whitened bit and contain at least
/// `2 + 6` PDU bytes plus 3 CRC bytes worth of bits.
pub fn adv_decode(bits: &[bool], channel: u8) -> AdvDecode {
    if bits.len() < (2 + 6 + 3) * 8 {
        return AdvDecode::HeaderError;
    }
    let dewhitened = ble_whiten(channel, bits);
    // Header first: length tells us where the CRC is.
    let header = bits_to_bytes_lsb(&dewhitened[..16]);
    let len = header[1] as usize;
    if !(6..=37).contains(&len) {
        return AdvDecode::HeaderError;
    }
    let pdu_bits_len = (2 + len) * 8;
    if dewhitened.len() < pdu_bits_len + 24 {
        return AdvDecode::HeaderError;
    }
    let pdu_bits = &dewhitened[..pdu_bits_len];
    let crc_bits = &dewhitened[pdu_bits_len..pdu_bits_len + 24];
    if !crc24_check(BLE_ADV_CRC_INIT, pdu_bits, crc_bits) {
        return AdvDecode::CrcError;
    }
    match AdvPdu::from_bytes(&bits_to_bytes_lsb(pdu_bits)) {
        Some(pdu) => AdvDecode::Ok(pdu),
        None => AdvDecode::HeaderError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon() -> AdvPdu {
        AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [0x01, 0x02, 0x03, 0x04, 0x05, 0xC6],
            adv_data: (0..30).collect(),
            tx_add: true,
        }
    }

    #[test]
    fn pdu_roundtrip() {
        let p = beacon();
        assert_eq!(AdvPdu::from_bytes(&p.to_bytes()), Some(p.clone()));
    }

    #[test]
    fn air_bits_layout() {
        let p = beacon();
        let bits = adv_air_bits(&p, 37);
        // 8 preamble + 32 AA + (2+36)*8 PDU + 24 CRC.
        assert_eq!(bits.len(), 8 + 32 + 38 * 8 + 24);
        // Preamble alternates and continues into AA bit 0 (AA LSB = 0).
        for w in bits[..9].windows(2) {
            assert_ne!(w[0], w[1]);
        }
        // AA LSB-first: 0x8E89BED6 has LSB 0.
        assert!(!bits[8]);
    }

    #[test]
    fn encode_decode_roundtrip_every_adv_channel() {
        let p = beacon();
        for ch in 37..=39u8 {
            let bits = adv_air_bits(&p, ch);
            match adv_decode(&bits[40..], ch) {
                AdvDecode::Ok(decoded) => assert_eq!(decoded, p, "channel {ch}"),
                other => panic!("channel {ch}: {other:?}"),
            }
        }
    }

    #[test]
    fn payload_bit_error_is_crc_error() {
        let p = beacon();
        let mut bits = adv_air_bits(&p, 38);
        let n = bits.len();
        bits[n - 40] = !bits[n - 40]; // inside the payload
        assert_eq!(adv_decode(&bits[40..], 38), AdvDecode::CrcError);
    }

    #[test]
    fn wrong_channel_dewhitening_fails() {
        let p = beacon();
        let bits = adv_air_bits(&p, 37);
        assert_ne!(adv_decode(&bits[40..], 38), AdvDecode::Ok(p));
    }

    #[test]
    fn length_field_bounds_are_enforced() {
        // A dewhitened length of 5 (below AdvA) must be a header error.
        let mut pdu_bytes = vec![0x02u8, 0x05];
        pdu_bytes.extend([0u8; 20]);
        let mut bits = bytes_to_bits_lsb(&pdu_bytes);
        bits.extend(vec![false; 24]);
        let whitened = ble_whiten(37, &bits);
        assert_eq!(adv_decode(&whitened, 37), AdvDecode::HeaderError);
    }

    #[test]
    fn max_adv_data_respected() {
        let mut p = beacon();
        p.adv_data = vec![0; 31];
        let bits = adv_air_bits(&p, 39);
        assert_eq!(adv_decode(&bits[40..], 39), AdvDecode::Ok(p));
    }
}
