//! Bluetooth BR (basic rate) ACL packets (Core Vol 2 Part B).
//!
//! Air layout: 72-bit access code (4-bit preamble, 64-bit sync word from the
//! LAP's BCH(64,30) code, 4-bit trailer), 54-bit header (18 bits at rate-1/3
//! repetition: LT_ADDR, TYPE, FLOW, ARQN, SEQN, HEC), then the payload —
//! payload header, user data and CRC-16, whitened with the clock, and for
//! DM types additionally (15,10) FEC-encoded.
//!
//! The A2DP audio app streams DH5/DM5 packets through this module
//! (paper Sec 4.7).

use bluefi_coding::bch::sync_word_bits;
use bluefi_coding::crc::{crc16_bits, crc16_check};
use bluefi_coding::hamming::{decode_r13, decode_r23_fec, encode_r13, encode_r23_fec};
use bluefi_coding::lfsr::br_whiten;
use bluefi_dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};

/// A Bluetooth device address split the way the baseband uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtAddress {
    /// Lower address part (24 bits) — selects the access code.
    pub lap: u32,
    /// Upper address part — seeds HEC and CRC.
    pub uap: u8,
    /// Non-significant address part.
    pub nap: u16,
}

impl BtAddress {
    /// An address from raw bytes (as printed, MSB first:
    /// `NAP:NAP:UAP:LAP:LAP:LAP`).
    pub fn from_bytes(b: [u8; 6]) -> BtAddress {
        BtAddress {
            nap: u16::from_be_bytes([b[0], b[1]]),
            uap: b[2],
            lap: u32::from_be_bytes([0, b[3], b[4], b[5]]),
        }
    }
}

/// ACL packet types BlueFi's audio app uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// 1-slot, FEC-protected, ≤17 data bytes.
    Dm1,
    /// 1-slot, unprotected, ≤27 data bytes.
    Dh1,
    /// 3-slot, FEC-protected, ≤121 data bytes.
    Dm3,
    /// 3-slot, unprotected, ≤183 data bytes.
    Dh3,
    /// 5-slot, FEC-protected, ≤224 data bytes.
    Dm5,
    /// 5-slot, unprotected, ≤339 data bytes.
    Dh5,
}

impl PacketType {
    /// 4-bit TYPE code (ACL logical transport).
    pub fn code(self) -> u8 {
        match self {
            PacketType::Dm1 => 3,
            PacketType::Dh1 => 4,
            PacketType::Dm3 => 10,
            PacketType::Dh3 => 11,
            PacketType::Dm5 => 14,
            PacketType::Dh5 => 15,
        }
    }

    /// Inverse of [`PacketType::code`].
    pub fn from_code(code: u8) -> Option<PacketType> {
        match code {
            3 => Some(PacketType::Dm1),
            4 => Some(PacketType::Dh1),
            10 => Some(PacketType::Dm3),
            11 => Some(PacketType::Dh3),
            14 => Some(PacketType::Dm5),
            15 => Some(PacketType::Dh5),
            _ => None,
        }
    }

    /// Time slots occupied (625 µs each).
    pub fn slots(self) -> usize {
        match self {
            PacketType::Dm1 | PacketType::Dh1 => 1,
            PacketType::Dm3 | PacketType::Dh3 => 3,
            PacketType::Dm5 | PacketType::Dh5 => 5,
        }
    }

    /// Whether the payload carries rate-2/3 FEC.
    pub fn fec(self) -> bool {
        matches!(self, PacketType::Dm1 | PacketType::Dm3 | PacketType::Dm5)
    }

    /// Maximum user-data bytes.
    pub fn max_payload(self) -> usize {
        match self {
            PacketType::Dm1 => 17,
            PacketType::Dh1 => 27,
            PacketType::Dm3 => 121,
            PacketType::Dh3 => 183,
            PacketType::Dm5 => 224,
            PacketType::Dh5 => 339,
        }
    }

    /// Payload-header length in bytes (1 for single-slot, 2 for multi-slot).
    pub fn payload_header_len(self) -> usize {
        if self.slots() == 1 {
            1
        } else {
            2
        }
    }
}

/// The 72-bit channel access code for a LAP: alternating preamble, sync
/// word, alternating trailer (both chosen to extend the sync word's edge
/// bits, Vol 2 Part B 6.2/6.4).
pub fn access_code_bits(lap: u32) -> Vec<bool> {
    let sync = sync_word_bits(lap);
    let first = sync[0];
    let last = sync[63];
    // Preamble bit 3 must differ from sync bit 0; trailer bit 0 must differ
    // from sync bit 63.
    let mut out: Vec<bool> = (0..4).map(|i| first ^ (i % 2 == 1)).collect();
    out.extend_from_slice(&sync);
    out.extend((0..4).map(|i| last ^ (i % 2 == 0)));
    out
}

/// A BR packet header (pre-HEC fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrHeader {
    /// Logical transport address (3 bits, 1..=7 for active members).
    pub lt_addr: u8,
    /// Packet type.
    pub ptype: PacketType,
    /// Flow control bit.
    pub flow: bool,
    /// ARQ acknowledgement bit.
    pub arqn: bool,
    /// Sequence number bit.
    pub seqn: bool,
}

impl BrHeader {
    fn field_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(10);
        for i in 0..3 {
            bits.push((self.lt_addr >> i) & 1 == 1);
        }
        for i in 0..4 {
            bits.push((self.ptype.code() >> i) & 1 == 1);
        }
        bits.push(self.flow);
        bits.push(self.arqn);
        bits.push(self.seqn);
        bits
    }

    fn from_field_bits(bits: &[bool]) -> Option<BrHeader> {
        if bits.len() != 10 {
            return None;
        }
        let lt_addr = (0..3).fold(0u8, |a, i| a | ((bits[i] as u8) << i));
        let code = (0..4).fold(0u8, |a, i| a | ((bits[3 + i] as u8) << i));
        Some(BrHeader {
            lt_addr,
            ptype: PacketType::from_code(code)?,
            flow: bits[7],
            arqn: bits[8],
            seqn: bits[9],
        })
    }
}

/// Assembles a complete BR packet's air bits.
///
/// * `addr` — the master's address (LAP → access code, UAP → HEC/CRC).
/// * `clk6_1` — clock bits CLK₆…CLK₁ at transmission time (whitening seed);
///   this is why BlueFi must generate packets against the slot they will
///   actually be sent in (paper Sec 4.7/4.8 timeliness discussion).
pub fn br_air_bits(
    addr: BtAddress,
    header: &BrHeader,
    payload: &[u8],
    clk6_1: u8,
) -> Vec<bool> {
    assert!(
        payload.len() <= header.ptype.max_payload(),
        "{:?} carries at most {} bytes, got {}",
        header.ptype,
        header.ptype.max_payload(),
        payload.len()
    );
    let mut out = access_code_bits(addr.lap);

    // Header: 10 field bits + HEC, whitened, then rate-1/3 repetition.
    let fields = header.field_bits();
    let mut hdr = fields.clone();
    hdr.extend(bluefi_coding::crc::hec8_bits(addr.uap, &fields));
    let hdr_whitened = br_whiten(clk6_1, &hdr);
    out.extend(encode_r13(&hdr_whitened));

    // Payload: payload header + data + CRC-16, whitened, FEC if DM.
    let mut body = Vec::new();
    let hlen = header.ptype.payload_header_len();
    if hlen == 1 {
        // LLID=2 (start of L2CAP), FLOW=1, LENGTH (5 bits).
        body.push(0x02u8 | 0x04 | ((payload.len() as u8) << 3));
    } else {
        // LLID=2, FLOW=1, LENGTH (9 bits), 4 undefined.
        let len = payload.len() as u16;
        body.push(0x02 | 0x04 | (((len & 0x1F) as u8) << 3));
        body.push((len >> 5) as u8);
    }
    body.extend_from_slice(payload);
    let mut bits = bytes_to_bits_lsb(&body);
    bits.extend(crc16_bits(addr.uap, &bytes_to_bits_lsb(&body)));
    let whitened = br_whiten(clk6_1, &bits);
    if header.ptype.fec() {
        out.extend(encode_r23_fec(&whitened));
    } else {
        out.extend(whitened);
    }
    out
}

/// Assembles a BR packet whose payload is a raw bit field with no payload
/// header — the FHS packet's framing (field ‖ CRC-16, whitened, rate-2/3
/// FEC; Vol 2 Part B 6.5.1.4).
pub fn br_air_bits_raw(
    addr: BtAddress,
    header: &BrHeader,
    field_bits: &[bool],
    clk6_1: u8,
) -> Vec<bool> {
    let mut out = access_code_bits(addr.lap);
    let fields = header.field_bits();
    let mut hdr = fields.clone();
    hdr.extend(bluefi_coding::crc::hec8_bits(addr.uap, &fields));
    out.extend(encode_r13(&br_whiten(clk6_1, &hdr)));
    let mut bits = field_bits.to_vec();
    bits.extend(crc16_bits(addr.uap, field_bits));
    out.extend(encode_r23_fec(&br_whiten(clk6_1, &bits)));
    out
}

/// Decodes a raw-field packet body (bits after the access code): header,
/// then `n_field_bits` of payload + CRC-16 under rate-2/3 FEC. Returns the
/// field bits when everything checks out.
pub fn br_decode_raw(bits: &[bool], uap: u8, clk6_1: u8, n_field_bits: usize) -> Option<Vec<bool>> {
    if bits.len() < 54 {
        return None;
    }
    let hdr = br_whiten(clk6_1, &decode_r13(&bits[..54]));
    if !bluefi_coding::crc::hec8_check(uap, &hdr[..10], &hdr[10..18]) {
        return None;
    }
    let rest = &bits[54..];
    let usable = rest.len() - rest.len() % 15;
    let (decoded, _) = decode_r23_fec(&rest[..usable]);
    let body = br_whiten(clk6_1, &decoded);
    if body.len() < n_field_bits + 16 {
        return None;
    }
    let field = &body[..n_field_bits];
    if !crc16_check(uap, field, &body[n_field_bits..n_field_bits + 16]) {
        return None;
    }
    Some(field.to_vec())
}

/// Maximum air bits for an n-slot packet at 1 µs/bit — the sizes realized
/// by the largest spec payloads (DH1 = 366, DM3 = 1626 after FEC padding,
/// DM5 = 2871), all leaving ≥ ~250 µs turnaround before the next slot pair.
pub fn max_air_bits(slots: usize) -> usize {
    match slots {
        1 => 366,
        3 => 1626,
        5 => 2871,
        // lint: allow(panic) slot counts come from PacketType, which only produces 1/3/5
        _ => panic!("packets span 1, 3 or 5 slots"),
    }
}

/// Decode outcome for one BR packet, mirroring the FTS4BT sniffer's
/// classification in Figs 9 and 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrDecode {
    /// Header and CRC valid.
    Ok {
        /// Decoded header.
        header: BrHeader,
        /// User payload bytes.
        payload: Vec<u8>,
    },
    /// Header unrecoverable (HEC failure) — "Header Error".
    HeaderError,
    /// Header fine, payload CRC failed — "CRC Error".
    CrcError {
        /// The header that did decode.
        header: BrHeader,
    },
}

/// Decodes the bits following the access code.
pub fn br_decode(bits: &[bool], uap: u8, clk6_1: u8) -> BrDecode {
    if bits.len() < 54 {
        return BrDecode::HeaderError;
    }
    let hdr_whitened = decode_r13(&bits[..54]);
    let hdr = br_whiten(clk6_1, &hdr_whitened);
    let fields = &hdr[..10];
    if !bluefi_coding::crc::hec8_check(uap, fields, &hdr[10..18]) {
        return BrDecode::HeaderError;
    }
    let header = match BrHeader::from_field_bits(fields) {
        Some(h) => h,
        None => return BrDecode::HeaderError,
    };

    let rest = &bits[54..];
    // Undo FEC first (it was applied last on TX).
    let whitened = if header.ptype.fec() {
        let usable = rest.len() - rest.len() % 15;
        let (decoded, _clean) = decode_r23_fec(&rest[..usable]);
        decoded
    } else {
        rest.to_vec()
    };
    let body = br_whiten(clk6_1, &whitened);
    let hlen = header.ptype.payload_header_len();
    if body.len() < hlen * 8 {
        return BrDecode::CrcError { header };
    }
    let hdr_bytes = bits_to_bytes_lsb(&body[..hlen * 8]);
    let data_len = if hlen == 1 {
        (hdr_bytes[0] >> 3) as usize
    } else {
        ((hdr_bytes[0] >> 3) as usize) | ((hdr_bytes[1] as usize) << 5)
    };
    let total_bits = (hlen + data_len) * 8 + 16;
    if data_len > header.ptype.max_payload() || body.len() < total_bits {
        return BrDecode::CrcError { header };
    }
    let payload_bits = &body[..(hlen + data_len) * 8];
    let crc = &body[(hlen + data_len) * 8..total_bits];
    if !crc16_check(uap, payload_bits, crc) {
        return BrDecode::CrcError { header };
    }
    let bytes = bits_to_bytes_lsb(payload_bits);
    BrDecode::Ok { header, payload: bytes[hlen..].to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BtAddress {
        BtAddress { lap: 0x9E8B33, uap: 0x47, nap: 0x1234 }
    }

    fn header(ptype: PacketType) -> BrHeader {
        BrHeader { lt_addr: 1, ptype, flow: true, arqn: false, seqn: true }
    }

    #[test]
    fn access_code_is_72_bits_and_alternates() {
        let ac = access_code_bits(0x9E8B33);
        assert_eq!(ac.len(), 72);
        for w in ac[..5].windows(2) {
            assert_ne!(w[0], w[1], "preamble+first sync bit alternate");
        }
        for w in ac[67..].windows(2) {
            assert_ne!(w[0], w[1], "last sync bit+trailer alternate");
        }
    }

    #[test]
    fn roundtrip_every_packet_type() {
        for ptype in [
            PacketType::Dm1,
            PacketType::Dh1,
            PacketType::Dm3,
            PacketType::Dh3,
            PacketType::Dm5,
            PacketType::Dh5,
        ] {
            let payload: Vec<u8> = (0..ptype.max_payload() as u8).map(|i| i ^ 0x5A).collect();
            let bits = br_air_bits(addr(), &header(ptype), &payload, 0x15);
            assert!(
                bits.len() <= max_air_bits(ptype.slots()),
                "{ptype:?}: {} bits",
                bits.len()
            );
            match br_decode(&bits[72..], 0x47, 0x15) {
                BrDecode::Ok { header: h, payload: p } => {
                    assert_eq!(h, header(ptype), "{ptype:?}");
                    assert_eq!(p, payload, "{ptype:?}");
                }
                other => panic!("{ptype:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn header_corruption_is_header_error() {
        let bits = br_air_bits(addr(), &header(PacketType::Dh1), &[1, 2, 3], 0);
        let mut b = bits[72..].to_vec();
        // Corrupt 2 of 3 repetitions of several header bits so majority
        // voting fails.
        for i in [0usize, 1, 6, 7, 12, 13, 24, 25] {
            b[i] = !b[i];
        }
        assert_eq!(br_decode(&b, 0x47, 0), BrDecode::HeaderError);
    }

    #[test]
    fn payload_corruption_is_crc_error() {
        let bits = br_air_bits(addr(), &header(PacketType::Dh3), &[9u8; 100], 0x2A);
        let mut b = bits[72..].to_vec();
        let n = b.len();
        b[n - 30] = !b[n - 30];
        match br_decode(&b, 0x47, 0x2A) {
            BrDecode::CrcError { header: h } => assert_eq!(h.ptype, PacketType::Dh3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dm_fec_corrects_scattered_payload_errors() {
        let payload: Vec<u8> = (0..100).collect();
        let bits = br_air_bits(addr(), &header(PacketType::Dm3), &payload, 0x01);
        let mut b = bits[72..].to_vec();
        // One error per 15-bit FEC block is correctable.
        let payload_start = 54;
        let mut i = payload_start + 3;
        while i < b.len() {
            b[i] = !b[i];
            i += 15;
        }
        match br_decode(&b, 0x47, 0x01) {
            BrDecode::Ok { payload: p, .. } => assert_eq!(p, payload),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_header_bit_errors_are_corrected_by_repetition() {
        let bits = br_air_bits(addr(), &header(PacketType::Dh1), &[7u8; 10], 0x3F);
        let mut b = bits[72..].to_vec();
        for i in (0..54).step_by(3) {
            b[i] = !b[i]; // one flip per repetition triplet
        }
        match br_decode(&b, 0x47, 0x3F) {
            BrDecode::Ok { payload, .. } => assert_eq!(payload, vec![7u8; 10]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_clock_whitening_breaks_decode() {
        let bits = br_air_bits(addr(), &header(PacketType::Dh1), &[1, 2, 3], 0x10);
        assert!(!matches!(
            br_decode(&bits[72..], 0x47, 0x11),
            BrDecode::Ok { .. }
        ));
    }

    #[test]
    fn air_time_budget_per_type() {
        // DH5 with maximum payload fills almost exactly 5 slots.
        let p = vec![0u8; PacketType::Dh5.max_payload()];
        let bits = br_air_bits(addr(), &header(PacketType::Dh5), &p, 0);
        assert_eq!(bits.len(), 72 + 54 + (2 + 339 + 2) * 8);
        assert!(bits.len() <= max_air_bits(5));
        assert!(bits.len() > max_air_bits(3), "a full DH5 cannot fit 3 slots");
    }

    #[test]
    fn address_from_bytes() {
        let a = BtAddress::from_bytes([0x00, 0x11, 0x22, 0x9E, 0x8B, 0x33]);
        assert_eq!(a.nap, 0x0011);
        assert_eq!(a.uap, 0x22);
        assert_eq!(a.lap, 0x9E8B33);
    }
}
