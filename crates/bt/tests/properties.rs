//! Property-based tests for Bluetooth packet formats and hopping.

use bluefi_bt::ble::{adv_air_bits, adv_decode, AdvDecode, AdvPdu, AdvPduType};
use bluefi_bt::br::{br_air_bits, br_decode, BrDecode, BrHeader, BtAddress, PacketType};
use bluefi_bt::gfsk::{modulate_iq, GfskParams};
use bluefi_bt::hopping::{ChannelMap, HopSelector, SlotClock};
use proptest::prelude::*;

fn arb_ptype() -> impl Strategy<Value = PacketType> {
    prop::sample::select(vec![
        PacketType::Dm1,
        PacketType::Dh1,
        PacketType::Dm3,
        PacketType::Dh3,
        PacketType::Dm5,
        PacketType::Dh5,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ble_adv_roundtrip(
        addr in prop::array::uniform6(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..=31),
        ch in 37u8..=39,
    ) {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: addr,
            adv_data: data,
            tx_add: false,
        };
        let bits = adv_air_bits(&pdu, ch);
        prop_assert_eq!(adv_decode(&bits[40..], ch), AdvDecode::Ok(pdu));
    }

    #[test]
    fn br_roundtrip(
        lap in 0u32..(1 << 24),
        uap in any::<u8>(),
        clk in 0u8..64,
        ptype in arb_ptype(),
        len_frac in 0.0f64..1.0,
    ) {
        let addr = BtAddress { lap, uap, nap: 0 };
        let n = 1 + (len_frac * (ptype.max_payload() - 1) as f64) as usize;
        let payload: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
        let header = BrHeader { lt_addr: 1, ptype, flow: true, arqn: false, seqn: true };
        let bits = br_air_bits(addr, &header, &payload, clk);
        prop_assert!(bits.len() <= bluefi_bt::br::max_air_bits(ptype.slots()));
        match br_decode(&bits[72..], uap, clk) {
            BrDecode::Ok { header: h, payload: p } => {
                prop_assert_eq!(h, header);
                prop_assert_eq!(p, payload);
            }
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    #[test]
    fn gfsk_is_constant_envelope(bits in prop::collection::vec(any::<bool>(), 1..64), off in -5e6f64..5e6) {
        for v in modulate_iq(&bits, &GfskParams::default(), off) {
            prop_assert!((v.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn afh_always_lands_in_map(
        lap in 0u32..(1 << 24),
        channels in prop::collection::btree_set(0u8..79, 1..30),
        slot in 0u32..100_000,
    ) {
        let map = ChannelMap::from_channels(channels.into_iter().collect());
        let hop = HopSelector::new(lap, 0x42);
        let ch = hop.channel(SlotClock::at_slot(slot).clk, &map);
        prop_assert!(map.contains(ch));
    }
}
