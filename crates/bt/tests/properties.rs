//! Randomized-property tests for Bluetooth packet formats and hopping, on
//! the in-tree `bluefi_core::check` harness.

use bluefi_bt::ble::{adv_air_bits, adv_decode, AdvChannel, AdvDecode, AdvPdu, AdvPduType};
use bluefi_bt::br::{br_air_bits, br_decode, BrDecode, BrHeader, BtAddress, PacketType};
use bluefi_bt::gfsk::{modulate_iq, GfskParams};
use bluefi_bt::hopping::{ChannelMap, HopSelector, SlotClock};
use bluefi_core::check::{bools, bytes, check_n, vec_with};
use bluefi_core::rng::{Rng, StdRng};
use bluefi_core::{prop_assert, prop_assert_eq};

const CASES: usize = 24;

fn arb_ptype(rng: &mut StdRng) -> PacketType {
    let all = [
        PacketType::Dm1,
        PacketType::Dh1,
        PacketType::Dm3,
        PacketType::Dh3,
        PacketType::Dm5,
        PacketType::Dh5,
    ];
    all[rng.gen_range(0usize..all.len())]
}

#[test]
fn ble_adv_roundtrip() {
    check_n(
        "ble_adv_roundtrip",
        CASES,
        |rng| {
            let mut addr = [0u8; 6];
            for b in &mut addr {
                *b = rng.gen();
            }
            (addr, bytes(rng, 0..32), rng.gen_range(37u8..40))
        },
        |(addr, data, ch)| {
            let pdu = AdvPdu {
                pdu_type: AdvPduType::AdvNonconnInd,
                adv_address: *addr,
                adv_data: data.clone(),
                tx_add: false,
            };
            let bits = adv_air_bits(&pdu, *ch);
            prop_assert_eq!(adv_decode(&bits[40..], *ch), AdvDecode::Ok(pdu));
            Ok(())
        },
    );
}

#[test]
fn br_roundtrip() {
    check_n(
        "br_roundtrip",
        CASES,
        |rng| {
            (
                rng.gen_range(0u32..1 << 24),
                rng.gen::<u8>(),
                rng.gen_range(0u8..64),
                arb_ptype(rng),
                rng.next_f64(),
            )
        },
        |&(lap, uap, clk, ptype, len_frac)| {
            let addr = BtAddress { lap, uap, nap: 0 };
            let n = 1 + (len_frac * (ptype.max_payload() - 1) as f64) as usize;
            let payload: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
            let header = BrHeader { lt_addr: 1, ptype, flow: true, arqn: false, seqn: true };
            let bits = br_air_bits(addr, &header, &payload, clk);
            prop_assert!(bits.len() <= bluefi_bt::br::max_air_bits(ptype.slots()));
            match br_decode(&bits[72..], uap, clk) {
                BrDecode::Ok { header: h, payload: p } => {
                    prop_assert_eq!(h, header);
                    prop_assert_eq!(p, payload);
                }
                other => prop_assert!(false, "decode failed: {:?}", other),
            }
            Ok(())
        },
    );
}

#[test]
fn gfsk_is_constant_envelope() {
    check_n(
        "gfsk_is_constant_envelope",
        CASES,
        |rng| (bools(rng, 1..64), rng.gen_range(-5e6..5e6)),
        |(bits, off)| {
            for v in modulate_iq(bits, &GfskParams::default(), *off) {
                prop_assert!((v.abs() - 1.0).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

#[test]
fn afh_always_lands_in_map() {
    check_n(
        "afh_always_lands_in_map",
        CASES,
        |rng| {
            let channels: std::collections::BTreeSet<u8> =
                vec_with(rng, 1..30, |r| r.gen_range(0u8..79)).into_iter().collect();
            (rng.gen_range(0u32..1 << 24), channels, rng.gen_range(0u32..100_000))
        },
        |(lap, channels, slot)| {
            let map = ChannelMap::from_channels(channels.iter().copied().collect());
            let hop = HopSelector::new(*lap, 0x42);
            let ch = hop.channel(SlotClock::at_slot(*slot).clk, &map);
            prop_assert!(map.contains(ch));
            Ok(())
        },
    );
}

#[test]
fn adv_channel_validation() {
    check_n(
        "adv_channel_validation",
        64,
        |rng| rng.gen::<u8>(),
        |&ch| {
            match AdvChannel::new(ch) {
                Ok(adv) => {
                    prop_assert!((37..=39).contains(&ch));
                    prop_assert_eq!(adv.index(), ch);
                    prop_assert!(adv.freq_hz() >= 2.402e9 && adv.freq_hz() <= 2.480e9);
                }
                Err(e) => {
                    prop_assert!(!(37..=39).contains(&ch));
                    prop_assert_eq!(e.0, ch);
                }
            }
            Ok(())
        },
    );
}
