//! # bluefi-analyze
//!
//! In-tree static analysis for the BlueFi workspace — the standing
//! correctness gate behind `tests/analyze_gate.rs` and the
//! `cargo run -p bluefi-analyze` report. Zero dependencies, token-level
//! (no external parser), consistent with the hermetic-build policy.
//!
//! Rules:
//!
//! * **R1 no-panic** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unimplemented!` / `todo!` in library code outside `#[cfg(test)]`;
//!   escape hatch `// lint: allow(panic) <reason>`.
//! * **R2 no-unsafe** — no `unsafe` outside [`rules::UNSAFE_ALLOWLIST`];
//!   every crate carries `#![forbid(unsafe_code)]`.
//! * **R3 hermetic-manifests** — no non-`bluefi` dependencies in any
//!   `Cargo.toml` (absorbed from the former `tests/hermetic.rs`).
//! * **R4 doc-comments** — every `pub fn` in `dsp`/`wifi`/`core` carries a
//!   doc comment.
//! * **R5 no-float-eq** — no `==`/`!=` against float operands in signal
//!   code (`dsp`/`wifi`/`bt`/`core`); escape hatch
//!   `// lint: allow(float-eq) <reason>`.
//! * **R6 no-hot-loop-alloc** — no `FftPlan::new` / `Vec::with_capacity` /
//!   `vec![` inside `for`/`while` bodies in the hot-path crates
//!   (`dsp`/`wifi`/`coding`) — use a plan cache or a reused scratch buffer;
//!   escape hatch `// lint: allow(r6) <reason>`.
//! * **R7 no-adhoc-print** — no `println!` / `eprintln!` / `print!` /
//!   `eprint!` in library crates (`dsp`/`coding`/`wifi`/`bt`/`core`/`sim`/
//!   `apps`) — route output through the telemetry recorder or a
//!   `core::telemetry::Table`; escape hatch `// lint: allow(print) <reason>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifests;
pub mod rules;
pub mod source;

use source::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1 — no panic-family calls in library code.
    NoPanics,
    /// R2 — no `unsafe` outside the allowlist.
    NoUnsafe,
    /// R3 — hermetic manifests (workspace-internal dependencies only).
    HermeticManifests,
    /// R4 — doc comments on every public function in `dsp`/`wifi`/`core`.
    DocComments,
    /// R5 — no floating-point equality in signal code.
    NoFloatEq,
    /// R6 — no per-iteration allocation in hot-path loops.
    HotLoopAlloc,
    /// R7 — no ad-hoc `println!`-family output in library crates.
    AdhocPrint,
}

impl Rule {
    /// All rules in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::NoPanics,
        Rule::NoUnsafe,
        Rule::HermeticManifests,
        Rule::DocComments,
        Rule::NoFloatEq,
        Rule::HotLoopAlloc,
        Rule::AdhocPrint,
    ];

    /// Short code, `R1`..`R7`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanics => "R1",
            Rule::NoUnsafe => "R2",
            Rule::HermeticManifests => "R3",
            Rule::DocComments => "R4",
            Rule::NoFloatEq => "R5",
            Rule::HotLoopAlloc => "R6",
            Rule::AdhocPrint => "R7",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanics => "no-panic",
            Rule::NoUnsafe => "no-unsafe",
            Rule::HermeticManifests => "hermetic-manifests",
            Rule::DocComments => "doc-comments",
            Rule::NoFloatEq => "no-float-eq",
            Rule::HotLoopAlloc => "no-hot-loop-alloc",
            Rule::AdhocPrint => "no-adhoc-print",
        }
    }
}

/// One `file:line` finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(rule: Rule, file: &str, line: usize, message: String) -> Diagnostic {
        Diagnostic { rule, file: file.to_string(), line, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// Which rules apply to a workspace-relative source path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// R1 applies (library code: `crates/*/src`, excluding binary targets).
    pub no_panics: bool,
    /// R2 applies (all in-crate sources).
    pub no_unsafe: bool,
    /// R4 applies (`dsp`/`wifi`/`core` public API).
    pub doc_comments: bool,
    /// R5 applies (signal crates: `dsp`/`wifi`/`bt`/`core`).
    pub no_float_eq: bool,
    /// R6 applies (hot-path kernel crates: `dsp`/`wifi`/`coding`).
    pub hot_loop_alloc: bool,
    /// R7 applies (library crates whose output belongs in telemetry:
    /// `dsp`/`coding`/`wifi`/`bt`/`core`/`sim`/`apps`; binaries exempt).
    pub adhoc_print: bool,
}

/// Decides rule scope from a workspace-relative path like
/// `crates/dsp/src/fft.rs`.
pub fn scope_for(rel_path: &str) -> Scope {
    let norm = rel_path.replace('\\', "/");
    let mut parts = norm.split('/');
    if parts.next() != Some("crates") {
        return Scope::default();
    }
    let Some(krate) = parts.next() else { return Scope::default() };
    if parts.next() != Some("src") {
        return Scope::default();
    }
    let rest: Vec<&str> = parts.collect();
    let is_binary = rest.first() == Some(&"bin") || rest == ["main.rs"];
    Scope {
        no_panics: !is_binary,
        no_unsafe: true,
        doc_comments: !is_binary && matches!(krate, "dsp" | "wifi" | "core"),
        no_float_eq: !is_binary && matches!(krate, "dsp" | "wifi" | "bt" | "core"),
        hot_loop_alloc: !is_binary && matches!(krate, "dsp" | "wifi" | "coding"),
        adhoc_print: !is_binary
            && matches!(krate, "dsp" | "coding" | "wifi" | "bt" | "core" | "sim" | "apps"),
    }
}

/// Runs every applicable source rule over one file's text.
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let scope = scope_for(rel_path);
    let file = SourceFile::parse(rel_path, text);
    let mut out = Vec::new();
    if scope.no_panics {
        out.extend(rules::r1_no_panics(&file));
    }
    if scope.no_unsafe {
        out.extend(rules::r2_no_unsafe(&file));
    }
    if scope.doc_comments {
        out.extend(rules::r4_doc_comments(&file));
    }
    if scope.no_float_eq {
        out.extend(rules::r5_no_float_eq(&file));
    }
    if scope.hot_loop_alloc {
        out.extend(rules::r6_no_hot_loop_alloc(&file));
    }
    if scope.adhoc_print {
        out.extend(rules::r7_no_adhoc_print(&file));
    }
    out
}

/// The result of a full workspace pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every finding, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings per rule, in [`Rule::ALL`] order.
    pub fn counts(&self) -> [usize; 7] {
        let mut counts = [0usize; 7];
        for d in &self.diagnostics {
            let idx = Rule::ALL.iter().position(|r| *r == d.rule).unwrap_or(0);
            counts[idx] += 1;
        }
        counts
    }

    /// One-line machine-readable summary, e.g.
    /// `R1=0 R2=0 R3=0 R4=0 R5=0 R6=0 R7=0 total=0 files=58 manifests=10 status=clean`.
    pub fn summary(&self) -> String {
        let counts = self.counts();
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .zip(counts)
            .map(|(r, c)| format!("{}={c}", r.code()))
            .collect();
        format!(
            "{} total={} files={} manifests={} status={}",
            per_rule.join(" "),
            self.diagnostics.len(),
            self.files_scanned,
            self.manifests_scanned,
            if self.is_clean() { "clean" } else { "dirty" }
        )
    }

    /// Full human-readable report: findings grouped by rule, then the
    /// machine-readable summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rule in Rule::ALL {
            let diags: Vec<&Diagnostic> =
                self.diagnostics.iter().filter(|d| d.rule == rule).collect();
            out.push_str(&format!(
                "{} {:<18} {} finding(s)\n",
                rule.code(),
                rule.name(),
                diags.len()
            ));
            for d in diags {
                out.push_str(&format!("  {d}\n"));
            }
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }
}

/// Scans the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`): all `crates/*/src/**/*.rs` sources plus every
/// manifest. Fails with a message when the tree cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    // Sources.
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src)? {
            let rel = relative_to(&file, root);
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            report.diagnostics.extend(scan_source(&rel, &text));
            report.files_scanned += 1;
        }
    }

    // Manifests: workspace root + one per crate.
    let mut manifest_paths = vec![root.join("Cargo.toml")];
    for crate_dir in sorted_dirs(&crates_dir)? {
        let m = crate_dir.join("Cargo.toml");
        if m.is_file() {
            manifest_paths.push(m);
        }
    }
    for m in manifest_paths {
        let rel = relative_to(&m, root);
        let text = std::fs::read_to_string(&m)
            .map_err(|e| format!("cannot read {}: {e}", m.display()))?;
        report.diagnostics.extend(manifests::scan_manifest(&rel, &text));
        report.manifests_scanned += 1;
    }

    report
        .diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(report)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| format!("bad dir entry: {e}"))?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).map_err(|e| format!("cannot read {}: {e}", d.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| format!("bad dir entry: {e}"))?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative_to(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_rules() {
        let s = scope_for("crates/dsp/src/fft.rs");
        assert!(s.no_panics && s.no_unsafe && s.doc_comments && s.no_float_eq);
        assert!(s.hot_loop_alloc);
        let s = scope_for("crates/coding/src/viterbi.rs");
        assert!(s.hot_loop_alloc && !s.doc_comments);
        let s = scope_for("crates/core/src/pipeline.rs");
        assert!(!s.hot_loop_alloc && s.no_float_eq);
        let s = scope_for("crates/sim/src/mac.rs");
        assert!(s.no_panics && s.no_unsafe && !s.doc_comments && !s.no_float_eq);
        assert!(!s.hot_loop_alloc && s.adhoc_print);
        let s = scope_for("crates/bench/src/bin/fig5_distance.rs");
        assert!(!s.no_panics && s.no_unsafe && !s.doc_comments && !s.hot_loop_alloc);
        assert!(!s.adhoc_print, "binaries may print");
        let s = scope_for("crates/bench/src/lib.rs");
        assert!(!s.adhoc_print, "the bench reporter prints by design");
        let s = scope_for("crates/apps/src/audio.rs");
        assert!(s.adhoc_print);
        let s = scope_for("tests/e2e_audio.rs");
        assert!(!s.no_panics && !s.no_unsafe);
    }

    #[test]
    fn summary_is_machine_readable() {
        let mut r = Report { files_scanned: 3, manifests_scanned: 2, ..Default::default() };
        assert_eq!(
            r.summary(),
            "R1=0 R2=0 R3=0 R4=0 R5=0 R6=0 R7=0 total=0 files=3 manifests=2 status=clean"
        );
        r.diagnostics.push(Diagnostic::new(Rule::NoPanics, "x.rs", 1, "m".into()));
        assert!(r.summary().contains("R1=1") && r.summary().ends_with("status=dirty"));
    }
}
