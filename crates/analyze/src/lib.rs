//! # bluefi-analyze
//!
//! In-tree static analysis for the BlueFi workspace — the standing
//! correctness gate behind `tests/analyze_gate.rs` and the
//! `cargo run -p bluefi-analyze` report. Token-level (no external parser),
//! consistent with the hermetic-build policy; the only dependency is
//! `bluefi-core` for the machine-readable JSON report.
//!
//! The analyzer runs as a multi-pass pipeline (DESIGN.md §13):
//!
//! 1. [`source`] — the line lexer: code/comment/test-region/hatch
//!    classification with string and char contents blanked.
//! 2. [`tokens`] — a token stream (idents, literals, punctuation with
//!    spans) atop the blanked code view.
//! 3. [`items`] — a per-file item index: functions with visibility, body
//!    spans and `#[cfg(test)]` status, `use` imports, module paths.
//! 4. [`callgraph`] — a workspace symbol table and conservative call
//!    graph for the cross-file rule R10.
//!
//! Rules:
//!
//! * **R1 no-panic** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unimplemented!` / `todo!` in library code outside `#[cfg(test)]`;
//!   escape hatch `// lint: allow(panic) <reason>`.
//! * **R2 no-unsafe** — no `unsafe` outside [`rules::UNSAFE_ALLOWLIST`];
//!   every crate carries `#![forbid(unsafe_code)]`.
//! * **R3 hermetic-manifests** — no non-`bluefi` dependencies in any
//!   `Cargo.toml` (absorbed from the former `tests/hermetic.rs`).
//! * **R4 doc-comments** — every *fully public* `pub fn` in
//!   `dsp`/`wifi`/`core`/`analyze` carries a doc comment;
//!   `pub(crate)`/`pub(super)` are internal API and exempt.
//! * **R5 no-float-eq** — no `==`/`!=` against float operands in signal
//!   code (`dsp`/`wifi`/`bt`/`core`); escape hatch
//!   `// lint: allow(float-eq) <reason>`.
//! * **R6 no-hot-loop-alloc** — no `FftPlan::new` / `Vec::with_capacity` /
//!   `vec![` inside `for`/`while` bodies in the hot-path crates
//!   (`dsp`/`wifi`/`coding`) — use a plan cache or a reused scratch buffer;
//!   escape hatch `// lint: allow(r6) <reason>`.
//! * **R7 no-adhoc-print** — no `println!` / `eprintln!` / `print!` /
//!   `eprint!` in library crates — route output through the telemetry
//!   recorder or a `core::telemetry::Table`; escape hatch
//!   `// lint: allow(print) <reason>`.
//! * **R8 crate-layering** — no `bluefi_<x>` reference from a crate on the
//!   same layer or below `<x>` in the dependency DAG
//!   ([`callgraph::LAYERS`]); manifest `[dependencies]` are checked too;
//!   escape hatch `// lint: allow(layering) <reason>`.
//! * **R9 atomic-ordering** — every `Ordering::SeqCst`/`AcqRel` in the
//!   atomics-bearing crates (`core`/`coding`/`dsp`) needs
//!   `// lint: allow(atomic-ordering) <reason>`, and a `.load(..)` followed
//!   within three statements by a `.store(..)` on the same atomic is
//!   flagged as a lost-update race.
//! * **R10 no-transitive-hot-loop-alloc** — R6 propagated through the call
//!   graph: a hot loop calling a function that allocates directly or
//!   transitively is flagged at the call site with the allocation chain;
//!   escape hatch `// lint: allow(r10) <reason>`.
//!
//! Hatched (suppressed) findings are reported separately so the gate can
//! pin exact hatch counts — a new hatch is a visible diff, never silent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod items;
pub mod manifests;
pub mod rules;
pub mod source;
pub mod tokens;

use bluefi_core::json::Json;
use source::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1 — no panic-family calls in library code.
    NoPanics,
    /// R2 — no `unsafe` outside the allowlist.
    NoUnsafe,
    /// R3 — hermetic manifests (workspace-internal dependencies only).
    HermeticManifests,
    /// R4 — doc comments on every fully public function in
    /// `dsp`/`wifi`/`core`/`analyze`.
    DocComments,
    /// R5 — no floating-point equality in signal code.
    NoFloatEq,
    /// R6 — no per-iteration allocation in hot-path loops.
    HotLoopAlloc,
    /// R7 — no ad-hoc `println!`-family output in library crates.
    AdhocPrint,
    /// R8 — crate-layering: no upward or sibling `bluefi_*` references.
    CrateLayering,
    /// R9 — atomic-ordering audit: strong orderings need a reason, and
    /// load→store windows on one atomic are lost-update races.
    AtomicOrdering,
    /// R10 — no transitive allocation under hot loops (R6 through the
    /// call graph).
    TransitiveAlloc,
}

impl Rule {
    /// All rules in reporting order.
    pub const ALL: [Rule; 10] = [
        Rule::NoPanics,
        Rule::NoUnsafe,
        Rule::HermeticManifests,
        Rule::DocComments,
        Rule::NoFloatEq,
        Rule::HotLoopAlloc,
        Rule::AdhocPrint,
        Rule::CrateLayering,
        Rule::AtomicOrdering,
        Rule::TransitiveAlloc,
    ];

    /// Short code, `R1`..`R10`. Stable: the JSON schema and the gate key
    /// on these.
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanics => "R1",
            Rule::NoUnsafe => "R2",
            Rule::HermeticManifests => "R3",
            Rule::DocComments => "R4",
            Rule::NoFloatEq => "R5",
            Rule::HotLoopAlloc => "R6",
            Rule::AdhocPrint => "R7",
            Rule::CrateLayering => "R8",
            Rule::AtomicOrdering => "R9",
            Rule::TransitiveAlloc => "R10",
        }
    }

    /// Human-readable rule name. Stable, like [`Rule::code`].
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanics => "no-panic",
            Rule::NoUnsafe => "no-unsafe",
            Rule::HermeticManifests => "hermetic-manifests",
            Rule::DocComments => "doc-comments",
            Rule::NoFloatEq => "no-float-eq",
            Rule::HotLoopAlloc => "no-hot-loop-alloc",
            Rule::AdhocPrint => "no-adhoc-print",
            Rule::CrateLayering => "crate-layering",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::TransitiveAlloc => "no-transitive-hot-loop-alloc",
        }
    }
}

/// One `file:line` finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong and how to fix it.
    pub message: String,
    /// Supporting call chain (R10): qualified function names from the
    /// call site's callee down to the allocating function. Empty for
    /// single-site rules.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic without a chain.
    pub fn new(rule: Rule, file: &str, line: usize, message: String) -> Diagnostic {
        Diagnostic { rule, file: file.to_string(), line, message, chain: Vec::new() }
    }

    /// Builds a diagnostic carrying a call chain (R10).
    pub fn with_chain(
        rule: Rule,
        file: &str,
        line: usize,
        message: String,
        chain: Vec<String>,
    ) -> Diagnostic {
        Diagnostic { rule, file: file.to_string(), line, message, chain }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// The sink rules emit into: findings that fired, and findings that were
/// suppressed by an escape hatch. Keeping both lets the workspace report
/// pin exact hatch counts — adding a hatch shows up in the gate diff
/// instead of silently shrinking coverage.
#[derive(Debug, Clone, Default)]
pub struct Findings {
    /// Findings that fired (no hatch on the line).
    pub fired: Vec<Diagnostic>,
    /// Findings suppressed by a `// lint: allow(..) <reason>` hatch.
    pub hatched: Vec<Diagnostic>,
}

impl Findings {
    /// Routes one diagnostic to the fired or hatched list.
    pub fn emit(&mut self, hatched: bool, d: Diagnostic) {
        if hatched {
            self.hatched.push(d);
        } else {
            self.fired.push(d);
        }
    }

    /// Appends another sink's contents.
    pub fn extend(&mut self, other: Findings) {
        self.fired.extend(other.fired);
        self.hatched.extend(other.hatched);
    }
}

/// Which rules apply to a workspace-relative source path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// R1 applies (library code: `crates/*/src`, excluding binary targets).
    pub no_panics: bool,
    /// R2 applies (all in-crate sources).
    pub no_unsafe: bool,
    /// R4 applies (`dsp`/`wifi`/`core`/`analyze` public API).
    pub doc_comments: bool,
    /// R5 applies (signal crates: `dsp`/`wifi`/`bt`/`core`).
    pub no_float_eq: bool,
    /// R6 applies (hot-path kernel crates: `dsp`/`wifi`/`coding`).
    pub hot_loop_alloc: bool,
    /// R7 applies (library crates whose output belongs in telemetry;
    /// binaries exempt).
    pub adhoc_print: bool,
    /// R8 applies (every in-crate source; the layer table decides which
    /// references are upward).
    pub layering: bool,
    /// R9 applies (atomics-bearing crates: `core`/`coding`/`dsp`).
    pub atomics: bool,
}

/// Decides rule scope from a workspace-relative path like
/// `crates/dsp/src/fft.rs`.
pub fn scope_for(rel_path: &str) -> Scope {
    let norm = rel_path.replace('\\', "/");
    let mut parts = norm.split('/');
    if parts.next() != Some("crates") {
        return Scope::default();
    }
    let Some(krate) = parts.next() else { return Scope::default() };
    if parts.next() != Some("src") {
        return Scope::default();
    }
    let rest: Vec<&str> = parts.collect();
    let is_binary = rest.first() == Some(&"bin") || rest == ["main.rs"];
    Scope {
        no_panics: !is_binary,
        no_unsafe: true,
        doc_comments: !is_binary && matches!(krate, "dsp" | "wifi" | "core" | "analyze" | "service"),
        no_float_eq: !is_binary && matches!(krate, "dsp" | "wifi" | "bt" | "core" | "service"),
        hot_loop_alloc: !is_binary && matches!(krate, "dsp" | "wifi" | "coding"),
        adhoc_print: !is_binary
            && matches!(
                krate,
                "dsp" | "coding" | "wifi" | "bt" | "core" | "sim" | "apps" | "analyze" | "service"
            ),
        layering: true,
        atomics: !is_binary && matches!(krate, "core" | "coding" | "dsp" | "service"),
    }
}

/// Runs every applicable per-file rule over one file's text and returns
/// both fired and hatched findings. The cross-file rule R10 needs the
/// whole workspace — use [`analyze_files`] for that.
pub fn scan_source_full(rel_path: &str, text: &str) -> Findings {
    let scope = scope_for(rel_path);
    let file = SourceFile::parse(rel_path, text);
    let index = items::index_file(&file);
    let mut out = Findings::default();
    if scope.no_panics {
        rules::r1_no_panics(&file, &mut out);
    }
    if scope.no_unsafe {
        rules::r2_no_unsafe(&file, &mut out);
    }
    if scope.doc_comments {
        rules::r4_doc_comments(&file, &index, &mut out);
    }
    if scope.no_float_eq {
        rules::r5_no_float_eq(&file, &mut out);
    }
    if scope.hot_loop_alloc {
        rules::r6_no_hot_loop_alloc(&file, &mut out);
    }
    if scope.adhoc_print {
        rules::r7_no_adhoc_print(&file, &mut out);
    }
    if scope.layering {
        rules::r8_crate_layering(&file, &index, &mut out);
    }
    if scope.atomics {
        rules::r9_atomic_ordering(&file, &index, &mut out);
    }
    out
}

/// Back-compat shim: the fired findings of [`scan_source_full`]. The
/// per-rule fixture tests and older callers key on this shape.
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    scan_source_full(rel_path, text).fired
}

/// The result of a full workspace pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every finding that fired, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every finding suppressed by an escape hatch, in path order.
    pub hatched: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// True when no rule fired (hatched findings do not dirty a report —
    /// they are pinned separately by the gate).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Fired findings per rule, in [`Rule::ALL`] order.
    pub fn counts(&self) -> [usize; 10] {
        Self::count_by_rule(&self.diagnostics)
    }

    /// Hatched findings per rule, in [`Rule::ALL`] order.
    pub fn hatch_counts(&self) -> [usize; 10] {
        Self::count_by_rule(&self.hatched)
    }

    fn count_by_rule(diags: &[Diagnostic]) -> [usize; 10] {
        let mut counts = [0usize; 10];
        for d in diags {
            let idx = Rule::ALL.iter().position(|r| *r == d.rule).unwrap_or(0);
            counts[idx] += 1;
        }
        counts
    }

    /// One-line machine-readable summary, e.g.
    /// `R1=0 .. R10=0 total=0 hatched=16 files=58 manifests=10 status=clean`.
    pub fn summary(&self) -> String {
        let counts = self.counts();
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .zip(counts)
            .map(|(r, c)| format!("{}={c}", r.code()))
            .collect();
        format!(
            "{} total={} hatched={} files={} manifests={} status={}",
            per_rule.join(" "),
            self.diagnostics.len(),
            self.hatched.len(),
            self.files_scanned,
            self.manifests_scanned,
            if self.is_clean() { "clean" } else { "dirty" }
        )
    }

    /// Full human-readable report: findings grouped by rule, then the
    /// machine-readable summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rule in Rule::ALL {
            let diags: Vec<&Diagnostic> =
                self.diagnostics.iter().filter(|d| d.rule == rule).collect();
            let hatched = self.hatched.iter().filter(|d| d.rule == rule).count();
            out.push_str(&format!(
                "{:<3} {:<28} {} finding(s), {} hatched\n",
                rule.code(),
                rule.name(),
                diags.len(),
                hatched
            ));
            for d in diags {
                out.push_str(&format!("  {d}\n"));
                if !d.chain.is_empty() {
                    out.push_str(&format!("      chain: {}\n", d.chain.join(" => ")));
                }
            }
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Machine-readable JSON report (`bluefi-analyze/v1`), the interface
    /// the tier-1 gate consumes:
    ///
    /// ```json
    /// {
    ///   "schema": "bluefi-analyze/v1",
    ///   "status": "clean",
    ///   "total": 0, "files": 58, "manifests": 10,
    ///   "rules": [{"id": "R1", "name": "no-panic",
    ///              "findings": 0, "hatched": 12}, ...],
    ///   "diagnostics": [{"rule": "R10", "file": "...", "line": 7,
    ///                    "message": "...", "chain": ["a::f", "a::g"]}],
    ///   "hatched": [{"rule": "R1", "file": "...", "line": 3}]
    /// }
    /// ```
    ///
    /// Rule ids and names are stable; `rules` always lists all ten in
    /// order, so consumers may index as well as key by id.
    pub fn to_json(&self) -> Json {
        let counts = self.counts();
        let hatch_counts = self.hatch_counts();
        let rules: Vec<Json> = Rule::ALL
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Json::obj(vec![
                    ("id", Json::Str(r.code().to_string())),
                    ("name", Json::Str(r.name().to_string())),
                    ("findings", Json::Num(counts[i] as f64)),
                    ("hatched", Json::Num(hatch_counts[i] as f64)),
                ])
            })
            .collect();
        let diag_json = |d: &Diagnostic, with_message: bool| {
            let mut fields = vec![
                ("rule", Json::Str(d.rule.code().to_string())),
                ("file", Json::Str(d.file.clone())),
                ("line", Json::Num(d.line as f64)),
            ];
            if with_message {
                fields.push(("message", Json::Str(d.message.clone())));
                if !d.chain.is_empty() {
                    fields.push((
                        "chain",
                        Json::Arr(d.chain.iter().map(|c| Json::Str(c.clone())).collect()),
                    ));
                }
            }
            Json::obj(fields)
        };
        Json::obj(vec![
            ("schema", Json::Str("bluefi-analyze/v1".to_string())),
            (
                "status",
                Json::Str(if self.is_clean() { "clean" } else { "dirty" }.to_string()),
            ),
            ("total", Json::Num(self.diagnostics.len() as f64)),
            ("files", Json::Num(self.files_scanned as f64)),
            ("manifests", Json::Num(self.manifests_scanned as f64)),
            ("rules", Json::Arr(rules)),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(|d| diag_json(d, true)).collect()),
            ),
            (
                "hatched",
                Json::Arr(self.hatched.iter().map(|d| diag_json(d, false)).collect()),
            ),
        ])
    }
}

/// Runs the full multi-pass pipeline — per-file rules R1–R9 plus the
/// cross-file call-graph rule R10 — over in-memory `(rel_path, text)`
/// pairs. This is the core of [`analyze_workspace`] and the entry point
/// the R10 fixtures use.
pub fn analyze_files(files: &[(String, String)]) -> Findings {
    let mut out = Findings::default();
    let mut analyzed = Vec::with_capacity(files.len());
    for (rel, text) in files {
        out.extend(scan_source_full(rel, text));
        let source = SourceFile::parse(rel, text);
        let index = items::index_file(&source);
        analyzed.push(callgraph::AnalyzedFile { source, index });
    }
    callgraph::r10_transitive_alloc(&analyzed, &mut out);
    out
}

/// Scans the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`): all `crates/*/src/**/*.rs` sources plus every
/// manifest. Fails with a message when the tree cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    // Sources: load the whole tree, then run the multi-pass pipeline so
    // R10 sees every crate at once.
    let crates_dir = root.join("crates");
    let mut sources: Vec<(String, String)> = Vec::new();
    for crate_dir in sorted_dirs(&crates_dir)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src)? {
            let rel = relative_to(&file, root);
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            sources.push((rel, text));
        }
    }
    report.files_scanned = sources.len();
    let findings = analyze_files(&sources);
    report.diagnostics = findings.fired;
    report.hatched = findings.hatched;

    // Manifests: workspace root + one per crate. R3 (hermetic deps) plus
    // the R8 manifest-level layering check.
    let mut manifest_paths = vec![root.join("Cargo.toml")];
    for crate_dir in sorted_dirs(&crates_dir)? {
        let m = crate_dir.join("Cargo.toml");
        if m.is_file() {
            manifest_paths.push(m);
        }
    }
    for m in manifest_paths {
        let rel = relative_to(&m, root);
        let text = std::fs::read_to_string(&m)
            .map_err(|e| format!("cannot read {}: {e}", m.display()))?;
        report.diagnostics.extend(manifests::scan_manifest(&rel, &text));
        report.diagnostics.extend(manifests::scan_manifest_layering(&rel, &text));
        report.manifests_scanned += 1;
    }

    let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule.code());
    report.diagnostics.sort_by_key(key);
    report.hatched.sort_by_key(key);
    Ok(report)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| format!("bad dir entry: {e}"))?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).map_err(|e| format!("cannot read {}: {e}", d.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| format!("bad dir entry: {e}"))?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative_to(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_rules() {
        let s = scope_for("crates/dsp/src/fft.rs");
        assert!(s.no_panics && s.no_unsafe && s.doc_comments && s.no_float_eq);
        assert!(s.hot_loop_alloc && s.layering && s.atomics);
        let s = scope_for("crates/coding/src/viterbi.rs");
        assert!(s.hot_loop_alloc && !s.doc_comments && s.atomics);
        let s = scope_for("crates/core/src/pipeline.rs");
        assert!(!s.hot_loop_alloc && s.no_float_eq && s.atomics);
        let s = scope_for("crates/sim/src/mac.rs");
        assert!(s.no_panics && s.no_unsafe && !s.doc_comments && !s.no_float_eq);
        assert!(!s.hot_loop_alloc && s.adhoc_print && s.layering && !s.atomics);
        let s = scope_for("crates/bench/src/bin/fig5_distance.rs");
        assert!(!s.no_panics && s.no_unsafe && !s.doc_comments && !s.hot_loop_alloc);
        assert!(!s.adhoc_print, "binaries may print");
        assert!(s.layering, "binaries still respect the layer DAG");
        let s = scope_for("crates/bench/src/lib.rs");
        assert!(!s.adhoc_print, "the bench reporter prints by design");
        let s = scope_for("crates/apps/src/audio.rs");
        assert!(s.adhoc_print);
        let s = scope_for("crates/analyze/src/rules.rs");
        assert!(s.doc_comments && s.adhoc_print, "the analyzer lints itself");
        let s = scope_for("crates/service/src/server.rs");
        assert!(s.no_panics && s.doc_comments && s.no_float_eq && s.adhoc_print && s.atomics);
        let s = scope_for("crates/service/src/bin/bluefi-serviced.rs");
        assert!(!s.no_panics && !s.adhoc_print, "the daemon binary may print");
        let s = scope_for("tests/e2e_audio.rs");
        assert!(!s.no_panics && !s.no_unsafe && !s.layering);
    }

    #[test]
    fn summary_is_machine_readable() {
        let mut r = Report { files_scanned: 3, manifests_scanned: 2, ..Default::default() };
        assert_eq!(
            r.summary(),
            "R1=0 R2=0 R3=0 R4=0 R5=0 R6=0 R7=0 R8=0 R9=0 R10=0 \
             total=0 hatched=0 files=3 manifests=2 status=clean"
        );
        r.diagnostics.push(Diagnostic::new(Rule::NoPanics, "x.rs", 1, "m".into()));
        r.hatched.push(Diagnostic::new(Rule::NoPanics, "x.rs", 2, "m".into()));
        assert!(r.summary().contains("R1=1") && r.summary().contains("hatched=1"));
        assert!(r.summary().ends_with("status=dirty"));
    }

    #[test]
    fn json_report_matches_schema() {
        let mut r = Report { files_scanned: 3, manifests_scanned: 2, ..Default::default() };
        r.diagnostics.push(Diagnostic::with_chain(
            Rule::TransitiveAlloc,
            "crates/dsp/src/x.rs",
            7,
            "m".into(),
            vec!["dsp::f".into(), "dsp::g".into()],
        ));
        let j = r.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("bluefi-analyze/v1"));
        assert_eq!(j.get("status").and_then(Json::as_str), Some("dirty"));
        assert_eq!(j.get("total").and_then(Json::as_f64), Some(1.0));
        let rules = j.get("rules").and_then(Json::as_arr).expect("rules array");
        assert_eq!(rules.len(), 10);
        assert_eq!(rules[9].get("id").and_then(Json::as_str), Some("R10"));
        assert_eq!(rules[9].get("findings").and_then(Json::as_f64), Some(1.0));
        let diags = j.get("diagnostics").and_then(Json::as_arr).expect("diagnostics");
        let chain = diags[0].get("chain").and_then(Json::as_arr).expect("chain");
        assert_eq!(chain.len(), 2);
        // Round-trips through the parser.
        let parsed = Json::parse(&j.render()).expect("self-render parses");
        assert_eq!(parsed.get("total").and_then(Json::as_f64), Some(1.0));
    }
}
