//! Pass 1 — a token stream atop the line lexer.
//!
//! [`SourceFile`](crate::source::SourceFile) already classifies every
//! character as code / comment / literal content and blanks string and char
//! *contents* out of the per-line `code` view. This module tokenizes that
//! `code` view into identifiers, literals and punctuation with spans
//! (1-based line, 0-based column into the `code` string), which is what the
//! item indexer ([`crate::items`]) and the call-graph pass
//! ([`crate::callgraph`]) walk instead of raw text.
//!
//! The stream is deliberately coarse — no keyword table beyond what the
//! item pass needs, `::` is the only fused multi-character punctuator
//! (paths matter to the rules; `->`/`=>`/`..` do not) — and it never fails:
//! unexpected bytes become single-character [`TokKind::Punct`] tokens.

use crate::source::SourceFile;

/// Token classes produced by [`tokenize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `foo`, `bluefi_dsp`).
    Ident,
    /// A lifetime (`'a`); produced when a `'` introduces an identifier
    /// without a closing quote.
    Lifetime,
    /// A numeric literal, including suffixes (`1_000u64`, `0x3f`, `1.5e-3`).
    Num,
    /// A string-literal placeholder. Contents were blanked by the lexer, so
    /// the token is just the quote(s).
    Str,
    /// A char-literal placeholder (contents blanked, as with [`TokKind::Str`]).
    Char,
    /// Punctuation; `::` is fused, everything else is a single character.
    Punct,
}

/// One token with its span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text as it appears in the blanked `code` view.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 0-based column into the line's `code` string.
    pub col: usize,
}

impl Tok {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuator `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes the blanked `code` view of every line of `file`.
pub fn tokenize(file: &SourceFile) -> Vec<Tok> {
    let mut out = Vec::new();
    for (lineno, line) in file.lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let col = i;
            if ident_start(c) {
                let mut text = String::new();
                while i < chars.len() && ident_continue(chars[i]) {
                    text.push(chars[i]);
                    i += 1;
                }
                out.push(Tok { kind: TokKind::Ident, text, line: lineno + 1, col });
                continue;
            }
            if c.is_ascii_digit() {
                // Numbers swallow suffixes and simple float/exponent forms;
                // a trailing `.` followed by an identifier (method call on a
                // literal) is left to the punctuation stream.
                let mut text = String::new();
                while i < chars.len() {
                    let d = chars[i];
                    let take = d.is_ascii_alphanumeric()
                        || d == '_'
                        || (d == '.'
                            && chars.get(i + 1).copied().is_some_and(|n| n.is_ascii_digit()))
                        || ((d == '+' || d == '-')
                            && matches!(text.chars().next_back(), Some('e') | Some('E')));
                    if !take {
                        break;
                    }
                    text.push(d);
                    i += 1;
                }
                out.push(Tok { kind: TokKind::Num, text, line: lineno + 1, col });
                continue;
            }
            if c == '"' {
                // The lexer blanked the contents, so a string literal is an
                // adjacent quote pair — or a lone quote when the literal
                // spans lines.
                let text = if chars.get(i + 1) == Some(&'"') {
                    i += 2;
                    "\"\"".to_string()
                } else {
                    i += 1;
                    "\"".to_string()
                };
                out.push(Tok { kind: TokKind::Str, text, line: lineno + 1, col });
                continue;
            }
            if c == '\'' {
                // `''` is a blanked char literal; `'ident` is a lifetime.
                if chars.get(i + 1) == Some(&'\'') {
                    out.push(Tok {
                        kind: TokKind::Char,
                        text: "''".to_string(),
                        line: lineno + 1,
                        col,
                    });
                    i += 2;
                    continue;
                }
                if chars.get(i + 1).copied().is_some_and(ident_start) {
                    let mut text = String::from("'");
                    i += 1;
                    while i < chars.len() && ident_continue(chars[i]) {
                        text.push(chars[i]);
                        i += 1;
                    }
                    out.push(Tok { kind: TokKind::Lifetime, text, line: lineno + 1, col });
                    continue;
                }
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line: lineno + 1,
                    col,
                });
                i += 1;
                continue;
            }
            if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".to_string(),
                    line: lineno + 1,
                    col,
                });
                i += 2;
                continue;
            }
            out.push(Tok { kind: TokKind::Punct, text: c.to_string(), line: lineno + 1, col });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn idents_paths_and_literals() {
        let t = toks("let x = bluefi_dsp::fft::fft_into(buf, 64);");
        let texts: Vec<&str> = t.iter().map(|k| k.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "let", "x", "=", "bluefi_dsp", "::", "fft", "::", "fft_into", "(", "buf",
                ",", "64", ")", ";"
            ]
        );
        assert_eq!(t[3].kind, TokKind::Ident);
        assert_eq!(t[4].kind, TokKind::Punct);
        assert_eq!(t[11].kind, TokKind::Num);
        assert_eq!(t[11].line, 1);
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let t = toks("fn f<'a>(s: &'a str) { g(\"text\", 'c'); }");
        assert!(t.iter().any(|k| k.kind == TokKind::Lifetime && k.text == "'a"));
        assert!(t.iter().any(|k| k.kind == TokKind::Str));
        assert!(t.iter().any(|k| k.kind == TokKind::Char));
        // The blanked string carries no content.
        assert!(!t.iter().any(|k| k.text.contains("text")));
    }

    #[test]
    fn numeric_suffixes_and_floats() {
        let t = toks("let a = 1_000u64 + 1.5e-3 + 0x3f;");
        let nums: Vec<&str> = t
            .iter()
            .filter(|k| k.kind == TokKind::Num)
            .map(|k| k.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "1.5e-3", "0x3f"]);
    }

    #[test]
    fn spans_carry_lines() {
        let t = toks("a();\nb();\n");
        let b = t.iter().find(|k| k.is_ident("b")).expect("b token");
        assert_eq!(b.line, 2);
        assert_eq!(b.col, 0);
    }
}
