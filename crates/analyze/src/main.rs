//! `cargo run -p bluefi-analyze` — prints the full lint report for the
//! workspace and exits nonzero when any rule fires, so it can double as a
//! local pre-push check. The same pass runs under `cargo test` via
//! `tests/analyze_gate.rs`.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The analyze crate lives at `<workspace>/crates/analyze`.
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .unwrap_or(manifest_dir);
    match bluefi_analyze::analyze_workspace(root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bluefi-analyze: {e}");
            ExitCode::FAILURE
        }
    }
}
