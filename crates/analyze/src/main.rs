//! `cargo run -p bluefi-analyze` — prints the full lint report for the
//! workspace and exits nonzero when any rule fires, so it can double as a
//! local pre-push check. With `--json` it prints the machine-readable
//! `bluefi-analyze/v1` report instead (the same document the tier-1 gate
//! consumes in `tests/analyze_gate.rs`).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("bluefi-analyze: unknown flag `{other}` (supported: --json)");
                return ExitCode::FAILURE;
            }
        }
    }
    // The analyze crate lives at `<workspace>/crates/analyze`.
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .unwrap_or(manifest_dir);
    match bluefi_analyze::analyze_workspace(root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json().render());
            } else {
                print!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bluefi-analyze: {e}");
            ExitCode::FAILURE
        }
    }
}
