//! Pass 3 — workspace symbol table, conservative call graph, and the
//! transitive hot-loop allocation rule (R10).
//!
//! ## Over-approximation policy
//!
//! The call graph is built by *name resolution over the item index*, not by
//! type checking, so it is deliberately one-sided:
//!
//! * **Method calls** (`x.decode(...)`) resolve to *every* indexed method
//!   of that name in the caller's crate and every crate below it in the
//!   layer DAG. Receiver types are unknown, so this over-approximates —
//!   a flagged call may name a sibling type's method. That is acceptable
//!   for a deny-list linter: the fix is a hatch with a reason, never a
//!   missed allocation.
//! * **Free-function calls** resolve within the caller's crate by bare
//!   name, across crates only through an explicit path
//!   (`bluefi_dsp::fft::fft_into(...)`) or a recorded `use` import.
//! * **What the graph may miss** (under-approximation, the safe direction
//!   because every *direct* allocation is still caught by R6 at its own
//!   site): calls through function pointers / closures passed as values,
//!   trait-object dispatch where the method is only named at the trait
//!   definition, turbofish forms (`f::<T>(..)`), and macro-generated
//!   calls. Allocations *inside* std (e.g. `Iterator::collect`) are not
//!   modeled as calls at all — they are needles
//!   ([`ALLOC_NEEDLES`]) matched textually in whatever workspace function
//!   contains them.
//!
//! The crate layering used for visibility is the as-built dependency DAG
//! (see [`LAYERS`] and DESIGN.md §13):
//! `dsp → coding → {wifi, bt} → core → sim → apps → {bench, conformance}`,
//! with `analyze` on a tools rail beside `sim` (it may use `core::json`
//! and below, nothing lateral).

use crate::items::{FileIndex, FnItem};
use crate::rules::find_needle;
use crate::source::SourceFile;
use crate::tokens::{Tok, TokKind};
use crate::{Diagnostic, Findings, Rule};
use std::collections::HashMap;

/// Escape-hatch name for R10.
pub const ALLOW_TRANSITIVE: &str = "r10";

/// The workspace layer of each crate: a reference to `bluefi_<x>` from
/// crate `k` is legal only when `layer(x) < layer(k)` (strictly — siblings
/// on one layer must not reference each other).
pub const LAYERS: &[(&str, u8)] = &[
    ("dsp", 0),
    ("coding", 1),
    ("wifi", 2),
    ("bt", 2),
    ("core", 3),
    ("sim", 4),
    ("analyze", 4),
    ("apps", 5),
    ("service", 5),
    ("bench", 6),
    ("conformance", 6),
];

/// Layer of a workspace crate, if known.
pub fn layer_of(krate: &str) -> Option<u8> {
    LAYERS.iter().find(|(k, _)| *k == krate).map(|(_, l)| *l)
}

/// Textual allocation needles: a function whose body (outside test code)
/// matches one of these is the terminal of an R10 chain. Supersets the R6
/// needle list with the std allocators a call graph cannot see into.
pub const ALLOC_NEEDLES: [&str; 10] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "Box::new(",
    ".to_vec(",
    "format!(",
    ".collect(",
    ".to_string(",
    ".to_owned(",
    "String::from(",
];

/// One lexed-and-indexed source file — the unit the workspace passes walk.
#[derive(Debug, Clone)]
pub struct AnalyzedFile {
    /// The line model (pass 0).
    pub source: SourceFile,
    /// The token/item index (passes 1–2).
    pub index: FileIndex,
}

/// One call site extracted from a function body.
#[derive(Debug, Clone)]
struct Call {
    /// Called name (`fft_into`, `decode`, `new`).
    name: String,
    /// Leading path segments (`["bluefi_dsp", "fft"]`, `["TrellisPlan"]`);
    /// empty for bare and method calls.
    path: Vec<String>,
    /// True for `.name(...)` receiver calls.
    method: bool,
    /// 1-based call-site line.
    line: usize,
}

/// Global function id: (file index, fn index).
type FnId = (usize, usize);

struct Graph<'a> {
    files: &'a [AnalyzedFile],
    /// name → every fn with that bare name.
    by_name: HashMap<&'a str, Vec<FnId>>,
    /// Per-fn extracted call sites, keyed like the fn tables.
    calls: HashMap<FnId, Vec<Call>>,
    /// Per-fn allocation chain: `None` = not (known to be) allocating;
    /// `Some(steps)` = human-readable chain ending at a needle site.
    chains: HashMap<FnId, Vec<String>>,
}

fn fn_at<'a>(files: &'a [AnalyzedFile], id: FnId) -> &'a FnItem {
    &files[id.0].index.fns[id.1]
}

/// Keywords that look like `ident (` but are never calls.
fn is_call_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "let"
            | "ref"
            | "mut"
            | "box"
            | "await"
            | "dyn"
            | "impl"
            | "where"
            | "unsafe"
            | "pub"
    )
}

/// Extracts the call sites of one fn body from the token stream.
fn extract_calls(toks: &[Tok], body: (usize, usize)) -> Vec<Call> {
    let (start, end) = body;
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        let next_is_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if t.kind == TokKind::Ident && next_is_paren && !is_call_keyword(&t.text) {
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            if prev.is_some_and(|p| p.is_ident("fn")) {
                i += 1;
                continue; // a definition, not a call
            }
            let method = prev.is_some_and(|p| p.is_punct("."));
            let mut path = Vec::new();
            if !method {
                // Walk back over `seg::seg::` prefixes.
                let mut j = i;
                while j >= 2
                    && toks[j - 1].is_punct("::")
                    && toks[j - 2].kind == TokKind::Ident
                {
                    path.insert(0, toks[j - 2].text.clone());
                    j -= 2;
                }
            }
            out.push(Call { name: t.text.clone(), path, method, line: t.line });
        }
        i += 1;
    }
    out
}

/// Direct-allocation site of a fn body, if any: the first needle hit on a
/// non-test line inside the body range.
fn direct_alloc(file: &AnalyzedFile, f: &FnItem) -> Option<String> {
    let (start, end) = f.body_lines?;
    for lineno in start..=end {
        let Some(line) = file.source.lines.get(lineno - 1) else { continue };
        if line.in_test {
            continue;
        }
        for needle in ALLOC_NEEDLES {
            if find_needle(&line.code, needle).is_some() {
                let shown = needle.trim_end_matches('(');
                return Some(format!(
                    "`{shown}` at {}:{lineno}",
                    file.index.rel_path
                ));
            }
        }
    }
    None
}

impl<'a> Graph<'a> {
    fn build(files: &'a [AnalyzedFile]) -> Graph<'a> {
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut calls = HashMap::new();
        let mut chains = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.index.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
                if let Some(body) = f.body_toks {
                    calls.insert((fi, gi), extract_calls(&file.index.toks, body));
                }
                if let Some(site) = direct_alloc(file, f) {
                    chains.insert((fi, gi), vec![site]);
                }
            }
        }
        let mut g = Graph { files, by_name, calls, chains };
        g.propagate();
        g
    }

    /// True when code in `from` may legally name items of crate `to`.
    fn visible(from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        match (layer_of(from), layer_of(to)) {
            (Some(lf), Some(lt)) => lt < lf,
            _ => false,
        }
    }

    /// Resolves one call site to candidate workspace fns, per the policy in
    /// the module docs. `caller_crate` is the short crate name; `uses` the
    /// caller file's import map.
    fn resolve(&self, call: &Call, caller_crate: &str, uses: &FileIndex) -> Vec<FnId> {
        let Some(pool) = self.by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        let import_of = |name: &str| -> Option<String> {
            uses.uses.iter().find(|u| u.name == name).map(|u| u.krate.clone())
        };
        let mut out = Vec::new();
        for &id in pool {
            let g = fn_at(self.files, id);
            let Some(gk) = self.files[id.0].index.krate.as_deref() else { continue };
            if !Self::visible(caller_crate, gk) {
                continue;
            }
            let ok = if call.method {
                g.owner.is_some()
            } else if call.path.is_empty() {
                // Bare call: tuple-struct ctors (capitalized) are skipped by
                // the caller; here it is same-crate or an imported name.
                g.owner.is_none()
                    && (gk == caller_crate
                        || import_of(&call.name).is_some_and(|k| k == gk))
            } else {
                let first = call.path[0].as_str();
                let crate_ok = if let Some(x) = first.strip_prefix("bluefi_") {
                    gk == x
                } else if matches!(first, "crate" | "self" | "super") {
                    gk == caller_crate
                } else if let Some(k) = import_of(first) {
                    gk == k
                } else {
                    gk == caller_crate
                };
                let type_seg = call
                    .path
                    .last()
                    .filter(|s| s.chars().next().is_some_and(|c| c.is_uppercase()));
                let owner_ok = match type_seg {
                    Some(ty) => g.owner.as_deref() == Some(ty.as_str()),
                    None => g.owner.is_none(),
                };
                crate_ok && owner_ok
            };
            if ok {
                out.push(id);
            }
        }
        out.sort();
        out
    }

    /// BFS fixpoint: a fn inherits the shortest chain of any callee that
    /// (transitively) allocates. Deterministic: rounds are breadth-first,
    /// call sites are visited in body order, candidates in (file, fn) order.
    fn propagate(&mut self) {
        loop {
            let mut added: Vec<(FnId, Vec<String>)> = Vec::new();
            for (&id, calls) in &self.calls {
                if self.chains.contains_key(&id) {
                    continue;
                }
                let caller_crate = match self.files[id.0].index.krate.as_deref() {
                    Some(k) => k,
                    None => continue,
                };
                'calls: for call in calls {
                    if !call.method
                        && call.path.is_empty()
                        && call.name.chars().next().is_some_and(|c| c.is_uppercase())
                    {
                        continue; // tuple-struct / unit ctor
                    }
                    for cand in self.resolve(call, caller_crate, &self.files[id.0].index) {
                        if cand == id {
                            continue; // direct recursion
                        }
                        if let Some(chain) = self.chains.get(&cand) {
                            let mut steps =
                                vec![fn_at(self.files, cand).qualified.clone()];
                            steps.extend(chain.iter().cloned());
                            added.push((id, steps));
                            break 'calls;
                        }
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            // Within a round, ties resolve to the lexicographically first
            // chain so output is stable across hash orders.
            added.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
            added.dedup_by_key(|(id, _)| *id);
            for (id, chain) in added {
                self.chains.entry(id).or_insert(chain);
            }
        }
    }
}

/// R10 — transitive hot-loop allocation.
///
/// R6 catches an allocation written *textually* inside a `for`/`while`
/// body; R10 propagates the same policy through the call graph: a hot-loop
/// call site whose callee allocates — directly or through further calls —
/// is flagged with the full chain down to the needle. Scope is the R6
/// hot-path crate set; the escape hatch is `// lint: allow(r10) <reason>`.
pub fn r10_transitive_alloc(files: &[AnalyzedFile], out: &mut Findings) {
    let graph = Graph::build(files);
    for (fi, file) in files.iter().enumerate() {
        if !crate::scope_for(&file.index.rel_path).hot_loop_alloc {
            continue;
        }
        let caller_crate = match file.index.krate.as_deref() {
            Some(k) => k,
            None => continue,
        };
        for (gi, f) in file.index.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(calls) = graph.calls.get(&(fi, gi)) else { continue };
            let mut seen: Vec<(usize, String)> = Vec::new();
            for call in calls {
                let lineno = call.line;
                let in_loop = file.index.in_loop.get(lineno - 1).copied().unwrap_or(false);
                let Some(line) = file.source.lines.get(lineno - 1) else { continue };
                if !in_loop || line.in_test {
                    continue;
                }
                if !call.method
                    && call.path.is_empty()
                    && call.name.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    continue;
                }
                for cand in graph.resolve(call, caller_crate, &file.index) {
                    if cand == (fi, gi) {
                        continue;
                    }
                    let Some(chain) = graph.chains.get(&cand) else { continue };
                    let callee = fn_at(files, cand);
                    let key = (lineno, callee.qualified.clone());
                    if seen.contains(&key) {
                        continue;
                    }
                    seen.push(key);
                    let mut full = vec![callee.qualified.clone()];
                    full.extend(chain.iter().cloned());
                    let hatched =
                        line.allows.iter().any(|a| a == ALLOW_TRANSITIVE);
                    let d = Diagnostic::with_chain(
                        Rule::TransitiveAlloc,
                        &file.index.rel_path,
                        lineno,
                        format!(
                            "hot-loop call to `{}` allocates transitively \
                             ({}) — hoist the allocation, take a scratch \
                             buffer, or add `// lint: allow(r10) <reason>`",
                            callee.qualified,
                            full.join(" => "),
                        ),
                        full,
                    );
                    out.emit(hatched, d);
                    break; // one finding per call site
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    fn analyzed(rel: &str, src: &str) -> AnalyzedFile {
        let source = SourceFile::parse(rel, src);
        let index = index_file(&source);
        AnalyzedFile { source, index }
    }

    #[test]
    fn layers_are_a_dag() {
        assert!(layer_of("dsp") < layer_of("coding"));
        assert!(layer_of("coding") < layer_of("wifi"));
        assert_eq!(layer_of("wifi"), layer_of("bt"));
        assert!(layer_of("bt") < layer_of("core"));
        assert!(layer_of("core") < layer_of("sim"));
        assert!(layer_of("apps") < layer_of("bench"));
        assert_eq!(layer_of("apps"), layer_of("service"));
        assert!(layer_of("service") < layer_of("bench"));
        assert!(layer_of("service") < layer_of("conformance"));
        assert_eq!(layer_of("nonsuch"), None);
    }

    #[test]
    fn direct_callee_allocation_is_flagged_with_chain() {
        let file = analyzed(
            "crates/dsp/src/a.rs",
            "fn helper(n: usize) -> Vec<u8> {\n    vec![0; n]\n}\n\
             fn hot(items: &[u8]) {\n    for &x in items {\n        \
             let v = helper(x as usize);\n        drop(v);\n    }\n}\n",
        );
        let mut out = Findings::default();
        r10_transitive_alloc(&[file], &mut out);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        assert_eq!(out.fired[0].line, 6);
        assert_eq!(out.fired[0].chain.len(), 2);
        assert!(out.fired[0].chain[0].contains("dsp::a::helper"));
        assert!(out.fired[0].chain[1].contains("`vec!"));
    }

    #[test]
    fn cross_crate_chains_respect_visibility_and_paths() {
        let dsp = analyzed(
            "crates/dsp/src/buf.rs",
            "pub fn grow() -> Vec<u8> {\n    Vec::with_capacity(64)\n}\n",
        );
        let coding = analyzed(
            "crates/coding/src/mid.rs",
            "pub fn relay() -> Vec<u8> {\n    bluefi_dsp::buf::grow()\n}\n",
        );
        let wifi = analyzed(
            "crates/wifi/src/hot.rs",
            "use bluefi_coding::mid::relay;\n\
             fn hot(n: usize) {\n    for _ in 0..n {\n        let v = relay();\n        \
             drop(v);\n    }\n}\n",
        );
        let mut out = Findings::default();
        r10_transitive_alloc(&[dsp, coding, wifi], &mut out);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        let d = &out.fired[0];
        assert_eq!(d.file, "crates/wifi/src/hot.rs");
        assert_eq!(d.line, 4);
        // Three-step chain: relay => grow => needle site.
        assert_eq!(d.chain.len(), 3, "{:#?}", d.chain);
        assert!(d.chain[0].contains("coding::mid::relay"));
        assert!(d.chain[1].contains("dsp::buf::grow"));
        assert!(d.chain[2].contains("Vec::with_capacity"));
    }

    #[test]
    fn hatch_and_non_loop_calls_stay_silent() {
        let file = analyzed(
            "crates/coding/src/b.rs",
            "fn helper() -> Vec<u8> {\n    Vec::new()\n}\n\
             fn cold() {\n    let v = helper();\n    drop(v);\n}\n\
             fn hot(n: usize) {\n    for _ in 0..n {\n        \
             let v = helper(); // lint: allow(r10) cold fallback, bounded\n        \
             drop(v);\n    }\n}\n",
        );
        let mut out = Findings::default();
        r10_transitive_alloc(&[file], &mut out);
        assert!(out.fired.is_empty(), "{:#?}", out.fired);
        assert_eq!(out.hatched.len(), 1);
        assert_eq!(out.hatched[0].line, 10);
    }

    #[test]
    fn upward_and_lateral_crates_are_not_resolved() {
        // A method named like an allocating fn in a *higher* crate must not
        // leak downward into dsp's resolution.
        let sim = analyzed(
            "crates/sim/src/s.rs",
            "pub struct S;\nimpl S {\n    pub fn step(&self) -> Vec<u8> {\n        \
             vec![0]\n    }\n}\n",
        );
        let dsp = analyzed(
            "crates/dsp/src/d.rs",
            "fn hot(s: &Thing, n: usize) {\n    for _ in 0..n {\n        \
             let v = s.step();\n        drop(v);\n    }\n}\n",
        );
        let mut out = Findings::default();
        r10_transitive_alloc(&[sim, dsp], &mut out);
        assert!(out.fired.is_empty(), "{:#?}", out.fired);
    }
}
