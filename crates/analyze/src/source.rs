//! Line-oriented source model for the lint rules.
//!
//! The scanner is deliberately *not* a Rust parser: it is a single-pass
//! lexer that classifies every character of a file as code, comment, or
//! string/char-literal content, then exposes a per-line view where
//!
//! * `code` holds the line with comments and literal *contents* removed
//!   (quotes are kept as placeholders), so token searches cannot be fooled
//!   by `"panic!"` inside a string or `unwrap()` inside a doc comment;
//! * `comment` holds the comment text, where escape hatches
//!   (`// lint: allow(<rule>) <reason>`) are recognized; and
//! * `in_test` marks lines inside a `#[cfg(test)]` item, tracked by brace
//!   depth from the attribute.
//!
//! This mirrors the hermetic-build policy: no external parser crates, and
//! behavior simple enough to verify from fixtures.

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original line text.
    pub raw: String,
    /// The line with comments stripped and string/char contents blanked.
    pub code: String,
    /// The comment text carried by this line (no `//` / `/* */` markers).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Lint rules suppressed on this line via the escape hatch, including
    /// hatches declared on directly preceding comment-only lines.
    pub allows: Vec<String>,
}

/// A fully lexed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics).
    pub rel_path: String,
    /// The analyzed lines, in file order.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

impl SourceFile {
    /// Lexes `text` into the per-line model.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let mut lines: Vec<Line> = Vec::new();
        let chars: Vec<char> = text.chars().collect();
        let mut state = State::Code;
        let mut code = String::new();
        let mut comment = String::new();
        let mut raw_line = String::new();
        let mut i = 0usize;

        let flush =
            |code: &mut String, comment: &mut String, raw: &mut String, lines: &mut Vec<Line>| {
                lines.push(Line {
                    raw: std::mem::take(raw),
                    code: std::mem::take(code),
                    comment: std::mem::take(comment),
                    in_test: false,
                    allows: Vec::new(),
                });
            };

        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                if state == State::LineComment {
                    state = State::Code;
                }
                flush(&mut code, &mut comment, &mut raw_line, &mut lines);
                i += 1;
                continue;
            }
            raw_line.push(c);
            match state {
                State::Code => {
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        state = State::LineComment;
                        raw_line.push('/');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        raw_line.push('*');
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                        continue;
                    }
                    // Raw strings: r"..."  r#"..."#  (and byte variants).
                    if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0usize;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + usize::from(c == 'b')) {
                            // Consume the prefix into raw/code, enter RawStr.
                            for &p in &chars[i + 1..=j] {
                                raw_line.push(p);
                            }
                            code.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Distinguish a char literal from a lifetime: an
                        // escape (`'\n'`) or any single char followed by a
                        // closing quote (`'x'`, `'{'`) is a literal. A
                        // lifetime (`'a`) never carries a closing quote, so
                        // no extra exclusions are needed — an earlier guard
                        // that exempted `'{'` leaked its brace into the
                        // code view and corrupted brace-depth tracking.
                        let n1 = chars.get(i + 1).copied();
                        let n2 = chars.get(i + 2).copied();
                        let is_char = n1 == Some('\\') || (n1.is_some() && n2 == Some('\''));
                        if is_char {
                            code.push('\'');
                            state = State::Char;
                            i += 1;
                            continue;
                        }
                        // Lifetime: fall through as plain code.
                    }
                    code.push(c);
                    i += 1;
                }
                State::LineComment => {
                    comment.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        raw_line.push('*');
                        i += 2;
                        continue;
                    }
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        raw_line.push('/');
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    i += 1;
                }
                State::Str => {
                    if c == '\\' {
                        // Skip the escaped character (it may be a quote).
                        if let Some(&e) = chars.get(i + 1) {
                            if e != '\n' {
                                raw_line.push(e);
                                i += 1;
                            }
                        }
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                    }
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                        if closed {
                            for _ in 0..hashes {
                                raw_line.push('#');
                            }
                            code.push('"');
                            state = State::Code;
                            i += hashes + 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                State::Char => {
                    if c == '\\' {
                        if let Some(&e) = chars.get(i + 1) {
                            if e != '\n' {
                                raw_line.push(e);
                                i += 1;
                            }
                        }
                    } else if c == '\'' {
                        code.push('\'');
                        state = State::Code;
                    }
                    i += 1;
                }
            }
        }
        if !raw_line.is_empty() || !code.is_empty() || !comment.is_empty() {
            flush(&mut code, &mut comment, &mut raw_line, &mut lines);
        }

        let mut file = SourceFile { rel_path: rel_path.to_string(), lines };
        file.mark_test_regions();
        file.collect_allows();
        file
    }

    /// Marks every line covered by a `#[cfg(test)]` item (attribute line
    /// through the matching close brace of the following item).
    fn mark_test_regions(&mut self) {
        let n = self.lines.len();
        let mut i = 0usize;
        while i < n {
            let squashed: String =
                self.lines[i].code.chars().filter(|c| !c.is_whitespace()).collect();
            if !squashed.contains("#[cfg(test)]") && !squashed.contains("#[cfg(any(test") {
                i += 1;
                continue;
            }
            // Walk forward to the first `{` of the annotated item, then to
            // its matching `}`; mark everything in between.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < n {
                self.lines[j].in_test = true;
                for c in self.lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        // `#[cfg(test)]` on a braceless item (e.g. a
                        // `mod tests;` declaration): stop at the `;`.
                        ';' if !opened => {
                            depth = 0;
                            opened = true;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        }
    }

    /// Resolves escape hatches: a hatch on a comment-only line also covers
    /// the next code-bearing line(s) directly below it.
    fn collect_allows(&mut self) {
        let own: Vec<Vec<String>> =
            self.lines.iter().map(|l| parse_allows(&l.comment)).collect();
        for i in 0..self.lines.len() {
            let mut allows = own[i].clone();
            // Inherit from the contiguous block of comment-only lines above.
            let mut j = i;
            while j > 0 {
                j -= 1;
                let above = &self.lines[j];
                if above.code.trim().is_empty() && !above.comment.trim().is_empty() {
                    allows.extend(own[j].iter().cloned());
                } else {
                    break;
                }
            }
            self.lines[i].allows = allows;
        }
    }
}

/// True when the last pushed code character continues an identifier (so an
/// `r` in e.g. `var` is not mistaken for a raw-string prefix).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Parses `lint: allow(<rule>) <reason>` hatches out of a comment. A hatch
/// with an empty reason is ignored (the reason is mandatory).
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .split("lint: allow(")
            .next()
            .unwrap_or("")
            .trim();
        rest = &rest[close + 1..];
        if !rule.is_empty() && !reason.is_empty() {
            out.push(rule);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = \"panic!\"; // unwrap()\nlet c = '\\'';\n/* block\npanic! */ let x = 1;",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].comment.contains("unwrap()"));
        assert!(f.lines[1].code.contains("let c ="));
        assert!(!f.lines[2].code.contains("panic!"));
        assert!(f.lines[3].code.contains("let x = 1"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("-> &'a str"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::parse("x.rs", "let s = r#\"has unwrap() inside\"#; done();");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("done()"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}";
        let f = SourceFile::parse("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn escape_hatch_requires_reason_and_covers_next_line() {
        let src = "// lint: allow(panic) invariant: n is validated above\nx.unwrap();\n\
                   y.unwrap(); // lint: allow(panic)\nz.unwrap(); // lint: allow(panic) ok here";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.lines[1].allows, vec!["panic".to_string()]);
        assert!(f.lines[2].allows.is_empty(), "reason is mandatory");
        assert_eq!(f.lines[3].allows, vec!["panic".to_string()]);
    }

    #[test]
    fn brace_char_literals_do_not_leak_braces() {
        // `'{'` / `'}'` are char literals, not lifetimes; their braces must
        // be blanked or brace-depth tracking (cfg-test regions, R6 loop
        // bodies) drifts for the rest of the file. Regression: an old
        // lifetime heuristic exempted `'{'` specifically.
        let f = SourceFile::parse("x.rs", "match c { '{' => a(), '}' => b(), _ => c() }");
        assert!(!f.lines[0].code.contains("'{'"), "{:?}", f.lines[0].code);
        let depth: i64 = f.lines[0]
            .code
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0, "balanced braces after blanking: {:?}", f.lines[0].code);
        // ...and the region tracker stays correct downstream of one.
        let src = "const OPEN: char = '{';\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let f = SourceFile::parse("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn multi_hash_raw_strings_and_byte_strings_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = r##\"quote \"# then panic!\"##; let b = br#\"unwrap()\"#; tail();",
        );
        assert!(!f.lines[0].code.contains("panic"), "{:?}", f.lines[0].code);
        assert!(!f.lines[0].code.contains("unwrap"), "{:?}", f.lines[0].code);
        assert!(f.lines[0].code.contains("tail()"));
        // An identifier ending in `r` (`var`) is not a raw-string prefix.
        let f = SourceFile::parse("x.rs", "let var = 1; var\"\";");
        assert!(f.lines[0].code.contains("var"));
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let src = "/* outer /* inner unwrap() */ still comment panic! */ live();";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("live()"));
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn escaped_quote_chars_and_escaped_backslash() {
        // `'\''` (escaped quote) and `'\\'` (escaped backslash) both close
        // properly; following code stays visible.
        let f = SourceFile::parse("x.rs", "let q = '\\''; let b = '\\\\'; after();");
        assert!(f.lines[0].code.contains("after()"), "{:?}", f.lines[0].code);
        // A string containing an escaped quote does not end early.
        let f = SourceFile::parse("x.rs", "let s = \"a\\\"b panic!\"; after();");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("after()"));
    }

    #[test]
    fn hatches_on_stacked_comment_lines_all_cover_the_next_code_line() {
        let src = "// lint: allow(panic) checked by caller\n\
                   // lint: allow(r6) buffer is 8 bytes, cold path\n\
                   let x = risky();\nlet y = 1;";
        let f = SourceFile::parse("x.rs", src);
        let mut allows = f.lines[2].allows.clone();
        allows.sort();
        assert_eq!(allows, vec!["panic".to_string(), "r6".to_string()]);
        assert!(f.lines[3].allows.is_empty(), "coverage stops at the code line");
    }

    #[test]
    fn cfg_test_tracks_braces_across_impl_blocks() {
        // The test region covers exactly the annotated impl, not the next
        // one — even with nested fn braces inside.
        let src = "#[cfg(test)]\nimpl Harness {\n    fn run(&self) {\n        if x { y(); }\n    }\n}\n\
                   impl Live {\n    fn hot(&self) {}\n}";
        let f = SourceFile::parse("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, true, true, true, true, false, false, false]);
    }
}
