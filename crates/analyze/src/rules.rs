//! The per-file lint rules (R1, R2, R4–R9).
//!
//! Each rule walks the [`SourceFile`] line model — and, for the semantic
//! rules, the [`FileIndex`] token/item model — and emits `file:line`
//! diagnostics into a [`Findings`] sink, recording hatched (suppressed)
//! findings separately so the gate can pin exact hatch counts. Scope
//! (which crates/files a rule applies to) is decided by
//! [`crate::scope_for`] from the workspace-relative path; the rule bodies
//! only look at content. The cross-file rule R10 lives in
//! [`crate::callgraph`].

use crate::callgraph::layer_of;
use crate::items::FileIndex;
use crate::source::{Line, SourceFile};
use crate::tokens::TokKind;
use crate::{Diagnostic, Findings, Rule};

/// Escape-hatch names accepted by each rule.
pub const ALLOW_PANIC: &str = "panic";
/// Hatch name for R2.
pub const ALLOW_UNSAFE: &str = "unsafe";
/// Hatch name for R5.
pub const ALLOW_FLOAT_EQ: &str = "float-eq";
/// Hatch name for R6.
pub const ALLOW_HOT_LOOP_ALLOC: &str = "r6";
/// Hatch name for R7.
pub const ALLOW_PRINT: &str = "print";
/// Hatch name for R8.
pub const ALLOW_LAYERING: &str = "layering";
/// Hatch name for R9.
pub const ALLOW_ATOMIC_ORDERING: &str = "atomic-ordering";

/// Files allowed to contain `unsafe` (R2 allowlist). Empty: the workspace
/// is `unsafe`-free and every crate carries `#![forbid(unsafe_code)]`.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

fn allowed(line: &Line, hatch: &str) -> bool {
    line.allows.iter().any(|a| a == hatch)
}

/// R1 — panic-family calls in library code.
///
/// Flags `.unwrap()`, `.expect(`, `panic!`, `unimplemented!` and `todo!`
/// outside `#[cfg(test)]` items, unless the line carries a
/// `// lint: allow(panic) <reason>` hatch.
pub fn r1_no_panics(file: &SourceFile, out: &mut Findings) {
    const NEEDLES: [&str; 5] =
        [".unwrap()", ".expect(", "panic!", "unimplemented!", "todo!"];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in NEEDLES {
            if let Some(found) = find_needle(&line.code, needle) {
                out.emit(
                    allowed(line, ALLOW_PANIC),
                    Diagnostic::new(
                        Rule::NoPanics,
                        &file.rel_path,
                        i + 1,
                        format!(
                            "`{found}` in library code — return Result/Option or add \
                             `// lint: allow(panic) <reason>`"
                        ),
                    ),
                );
            }
        }
    }
}

/// Finds `needle` in `code`, rejecting matches that merely extend a longer
/// identifier (so `debug_assert!`-style neighbors or `xpanic!` never hit).
pub(crate) fn find_needle(code: &str, needle: &str) -> Option<String> {
    // Needles opening with `.` are self-delimiting; identifier-led needles
    // (`panic!` etc.) must not match inside a longer name.
    let check_prefix = needle.starts_with(|c: char| c.is_alphanumeric() || c == '_');
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let pre_ok = !check_prefix
            || at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok {
            return Some(needle.trim_end_matches(['(', ')']).to_string());
        }
        from = at + needle.len();
    }
    None
}

/// R2 — `unsafe` outside the allowlist.
pub fn r2_no_unsafe(file: &SourceFile, out: &mut Findings) {
    if UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str()) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        let hit = line
            .code
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .any(|w| w == "unsafe");
        if hit {
            out.emit(
                allowed(line, ALLOW_UNSAFE),
                Diagnostic::new(
                    Rule::NoUnsafe,
                    &file.rel_path,
                    i + 1,
                    "`unsafe` outside the allowlist — remove it or extend \
                     UNSAFE_ALLOWLIST / add `// lint: allow(unsafe) <reason>`"
                        .to_string(),
                ),
            );
        }
    }
}

/// R4 — every *fully public* `pub fn` needs a doc comment.
///
/// Driven by the item index: a [`Vis::Public`](crate::items::Vis) function
/// must be directly preceded by a `///` doc comment or `#[doc = ...]`,
/// with only attribute lines in between. Restricted-visibility functions
/// (`pub(crate)`, `pub(super)`, `pub(in ...)`) are internal API and exempt,
/// as is test code.
pub fn r4_doc_comments(file: &SourceFile, index: &FileIndex, out: &mut Findings) {
    use crate::items::Vis;
    for f in &index.fns {
        if f.is_test || f.vis != Vis::Public {
            continue;
        }
        if !has_doc_above(file, f.line - 1) {
            out.emit(
                false,
                Diagnostic::new(
                    Rule::DocComments,
                    &file.rel_path,
                    f.line,
                    format!("public function `{}` has no doc comment", f.name),
                ),
            );
        }
    }
}

fn has_doc_above(file: &SourceFile, mut i: usize) -> bool {
    while i > 0 {
        i -= 1;
        let raw = file.lines[i].raw.trim_start();
        if raw.starts_with("///") || raw.starts_with("#[doc") || raw.starts_with("/**") {
            return true;
        }
        // Skip attributes (and continuation lines of multi-line attributes,
        // which end with `]` or `)]`).
        if raw.starts_with("#[") || raw.ends_with(")]") {
            continue;
        }
        return false;
    }
    false
}

/// R5 — floating-point `==` / `!=` in signal code.
///
/// Token-level: an equality whose left or right operand is a float literal
/// (`0.0`, `1e-3f64`, `1f32`) or an `f32::` / `f64::` associated constant.
/// Exact float comparison silently breaks under the pipeline's quantized
/// arithmetic; compare against a tolerance instead.
pub fn r5_no_float_eq(file: &SourceFile, out: &mut Findings) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for op in ["==", "!="] {
            let mut from = 0usize;
            while let Some(pos) = line.code[from..].find(op) {
                let at = from + pos;
                from = at + op.len();
                // Not part of `<=`, `>=`, `=>`, `===`-like runs.
                let before = line.code[..at].chars().next_back();
                let after = line.code[at + op.len()..].chars().next();
                if matches!(before, Some('<') | Some('>') | Some('=') | Some('!'))
                    || after == Some('=')
                {
                    continue;
                }
                let lhs = last_token(&line.code[..at]);
                let rhs = first_token(&line.code[at + op.len()..]);
                if is_float_token(&lhs) || is_float_token(&rhs) {
                    out.emit(
                        allowed(line, ALLOW_FLOAT_EQ),
                        Diagnostic::new(
                            Rule::NoFloatEq,
                            &file.rel_path,
                            i + 1,
                            format!(
                                "float equality `{lhs} {op} {rhs}` in signal code — compare \
                                 with a tolerance or add `// lint: allow(float-eq) <reason>`"
                            ),
                        ),
                    );
                }
            }
        }
    }
}

fn token_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | ':')
}

fn last_token(s: &str) -> String {
    s.trim_end()
        .chars()
        .rev()
        .take_while(|&c| token_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

fn first_token(s: &str) -> String {
    let s = s.trim_start();
    let neg = s.starts_with('-');
    let body: String = s
        .chars()
        .skip(usize::from(neg))
        .take_while(|&c| token_char(c))
        .collect();
    if neg {
        format!("-{body}")
    } else {
        body
    }
}

fn is_float_token(tok: &str) -> bool {
    if tok.contains("f32::") || tok.contains("f64::") {
        return true;
    }
    let t = tok.strip_prefix('-').unwrap_or(tok);
    let (t, suffixed) = match t.strip_suffix("f64").or_else(|| t.strip_suffix("f32")) {
        Some(stripped) => (stripped, true),
        None => (t, false),
    };
    let mut chars = t.chars();
    let Some(first) = chars.next() else { return false };
    if !first.is_ascii_digit() {
        return false;
    }
    let numeric = t
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'));
    // An integer literal (`52`, `1_000`) only becomes float-like with a
    // decimal point, an exponent, or an explicit f32/f64 suffix.
    numeric && (t.contains('.') || t.contains('e') || t.contains('E') || suffixed)
}

/// R6 — per-iteration allocation in hot-path loops.
///
/// Flags `FftPlan::new(`, `Vec::with_capacity(`, `vec![`, `Box::new(` and
/// `.to_vec()` on lines inside a `for`/`while` body (tracked by brace depth
/// from the loop header) — those allocations repeat every iteration; hoist
/// them, use a size-keyed plan cache (`fft_plan`, `trellis_plan`), or reuse
/// a scratch buffer via `contracts::ensure_len`. The boxed-slice needles
/// exist for the trellis/traceback modules, whose scratch state lives in
/// `Box<[T; N]>` arrays that must be built once per scratch, never per
/// decode step. Loop *headers* are exempt (they evaluate once for `for`),
/// as is test code; the escape hatch is `// lint: allow(r6) <reason>`.
/// Transitive allocation through callees is R10's job
/// ([`crate::callgraph::r10_transitive_alloc`]).
pub fn r6_no_hot_loop_alloc(file: &SourceFile, out: &mut Findings) {
    const NEEDLES: [&str; 5] =
        ["FftPlan::new(", "Vec::with_capacity(", "vec![", "Box::new(", ".to_vec()"];
    let in_loop = crate::items::loop_lines(file);
    for (i, line) in file.lines.iter().enumerate() {
        if !in_loop[i] || line.in_test {
            continue;
        }
        for needle in NEEDLES {
            if let Some(found) = find_needle(&line.code, needle) {
                out.emit(
                    allowed(line, ALLOW_HOT_LOOP_ALLOC),
                    Diagnostic::new(
                        Rule::HotLoopAlloc,
                        &file.rel_path,
                        i + 1,
                        format!(
                            "`{found}` allocates every loop iteration — hoist it, use \
                             the plan cache / a reused scratch buffer, or add \
                             `// lint: allow(r6) <reason>`"
                        ),
                    ),
                );
            }
        }
    }
}

/// R7 — ad-hoc `println!`-family output in library crates.
///
/// Library code must not write to stdout/stderr directly: results flow
/// through return values, and observability flows through the telemetry
/// recorder (`core::telemetry`) — counters, spans, and `Table` snapshots
/// that binaries render or export as JSON. Flags `println!`, `eprintln!`,
/// `print!` and `eprint!` outside `#[cfg(test)]`; binaries
/// (`src/bin/`, `main.rs`) are out of scope, and the escape hatch is
/// `// lint: allow(print) <reason>`.
pub fn r7_no_adhoc_print(file: &SourceFile, out: &mut Findings) {
    const NEEDLES: [&str; 4] = ["println!", "eprintln!", "print!", "eprint!"];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in NEEDLES {
            if let Some(found) = find_needle(&line.code, needle) {
                out.emit(
                    allowed(line, ALLOW_PRINT),
                    Diagnostic::new(
                        Rule::AdhocPrint,
                        &file.rel_path,
                        i + 1,
                        format!(
                            "`{found}` in library code — record telemetry / return a \
                             `Table` and let the caller render it, or add \
                             `// lint: allow(print) <reason>`"
                        ),
                    ),
                );
            }
        }
    }
}

/// R8 — crate-layering enforcement at the `use`/path level.
///
/// The workspace dependency DAG (as built; see
/// [`crate::callgraph::LAYERS`] and DESIGN.md §13) is
/// `dsp → coding → {wifi, bt} → core → sim → apps → {bench, conformance}`.
/// Any `bluefi_<x>` path in the source of crate `k` where `x` sits on the
/// same layer (a sibling) or above is an upward reference and is flagged.
/// `#[cfg(test)]` code is exempt — dev-dependencies may legitimately reach
/// upward (e.g. `dsp`'s tests use `bluefi_core`). The escape hatch is
/// `// lint: allow(layering) <reason>`; the manifest-level complement is
/// [`crate::manifests::scan_manifest_layering`].
pub fn r8_crate_layering(file: &SourceFile, index: &FileIndex, out: &mut Findings) {
    let Some(caller) = index.krate.as_deref() else { return };
    let Some(caller_layer) = layer_of(caller) else { return };
    for t in &index.toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(target) = t.text.strip_prefix("bluefi_") else { continue };
        if target == caller {
            continue;
        }
        let Some(target_layer) = layer_of(target) else { continue };
        if target_layer < caller_layer {
            continue;
        }
        let Some(line) = file.lines.get(t.line - 1) else { continue };
        if line.in_test {
            continue;
        }
        let relation = if target_layer == caller_layer { "sibling" } else { "upward" };
        out.emit(
            allowed(line, ALLOW_LAYERING),
            Diagnostic::new(
                Rule::CrateLayering,
                &file.rel_path,
                t.line,
                format!(
                    "`bluefi_{target}` is a {relation} reference from `{caller}` — the \
                     layer DAG is dsp -> coding -> {{wifi, bt}} -> core -> sim -> apps -> \
                     {{bench, conformance}}; move the shared code down a layer or add \
                     `// lint: allow(layering) <reason>`"
                ),
            ),
        );
    }
}

/// Atomic read-modify-write method names (never part of a lost-update
/// report — they are the fix).
const ATOMIC_RMW: [&str; 11] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// R9 — atomic-ordering audit.
///
/// Two checks over the token stream of the atomics-bearing crates:
///
/// 1. **Strong orderings need a reason.** Every `Ordering::SeqCst` /
///    `Ordering::AcqRel` must carry a
///    `// lint: allow(atomic-ordering) <reason>` hatch explaining why
///    `Relaxed` or `Acquire`/`Release` is insufficient. The telemetry
///    counters, the fork-join pool and the OnceLock intern maps are all
///    correct under `Relaxed`; a stray `SeqCst` costs a full fence on the
///    BT-slot budget's hot path (625 µs per the paper) for nothing.
/// 2. **Load→store lost-update windows.** An atomic `.load(..Ordering..)`
///    whose receiver is `.store(..Ordering..)`d again within the next
///    three statements of the same function body is a read-modify-write
///    spelled as two racy halves — a concurrent writer between them is
///    silently overwritten. Use `fetch_add`/`fetch_update`/
///    `compare_exchange` instead, or hatch the store line. Receivers are
///    compared syntactically; a receiver the scanner cannot normalize
///    (e.g. one built through a call chain) is skipped, which
///    under-approximates — acceptable because the audit is a review aid,
///    not a proof (DESIGN.md §13).
pub fn r9_atomic_ordering(file: &SourceFile, index: &FileIndex, out: &mut Findings) {
    let toks = &index.toks;
    // Part 1: strong orderings.
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") || !toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        {
            continue;
        }
        let Some(ord) = toks.get(i + 2).filter(|t| {
            t.kind == TokKind::Ident && (t.text == "SeqCst" || t.text == "AcqRel")
        }) else {
            continue;
        };
        let Some(line) = file.lines.get(ord.line - 1) else { continue };
        if line.in_test {
            continue;
        }
        out.emit(
            allowed(line, ALLOW_ATOMIC_ORDERING),
            Diagnostic::new(
                Rule::AtomicOrdering,
                &file.rel_path,
                ord.line,
                format!(
                    "`Ordering::{}` is a full fence on the hot path — justify why \
                     Relaxed/Acquire-Release is insufficient with \
                     `// lint: allow(atomic-ordering) <reason>`",
                    ord.text
                ),
            ),
        );
    }

    // Part 2: load→store windows per function body.
    #[derive(PartialEq)]
    enum Kind {
        Load,
        Store,
    }
    for f in &index.fns {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body_toks else { continue };
        let mut stmt = 0usize;
        let mut events: Vec<(usize, Kind, String, usize)> = Vec::new(); // (stmt, kind, recv, line)
        for i in start..end.min(toks.len()) {
            let t = &toks[i];
            if t.is_punct(";") {
                stmt += 1;
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let kind = match t.text.as_str() {
                "load" => Kind::Load,
                "store" => Kind::Store,
                _ => continue,
            };
            let is_method = i > start && toks[i - 1].is_punct(".");
            let opens = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if !is_method || !opens {
                continue;
            }
            // Only atomic-API calls: the args must name an `Ordering`.
            let close = matching_paren(toks, i + 1, end);
            let atomic = toks[i + 2..close]
                .iter()
                .any(|a| a.is_ident("Ordering") || a.is_ident("SeqCst") || a.is_ident("Relaxed"));
            if !atomic {
                continue;
            }
            if let Some(recv) = receiver_before(toks, i - 1, start) {
                events.push((stmt, kind, recv, t.line));
            }
        }
        for (s_stmt, kind, recv, s_line) in &events {
            if *kind != Kind::Store {
                continue;
            }
            let raced = events.iter().any(|(l_stmt, k, l_recv, _)| {
                *k == Kind::Load
                    && l_recv == recv
                    && *l_stmt <= *s_stmt
                    && s_stmt - l_stmt <= 3
            });
            if !raced {
                continue;
            }
            let Some(line) = file.lines.get(s_line - 1) else { continue };
            out.emit(
                allowed(line, ALLOW_ATOMIC_ORDERING),
                Diagnostic::new(
                    Rule::AtomicOrdering,
                    &file.rel_path,
                    *s_line,
                    format!(
                        "`{recv}.load(..)` then `.store(..)` within 3 statements — a \
                         concurrent update between them is lost; use a read-modify-write \
                         (`fetch_add`, `fetch_update`, `compare_exchange`) or add \
                         `// lint: allow(atomic-ordering) <reason>`"
                    ),
                ),
            );
        }
        let _ = ATOMIC_RMW; // documented fix set; kept for the message/test surface
    }
}

/// Index of the `)` matching the `(` at `open` (exclusive scan bound
/// `end`); returns `end` when unbalanced.
fn matching_paren(toks: &[crate::tokens::Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().take(end.min(toks.len())).skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    end
}

/// Normalizes the receiver expression ending at `dot` (the `.` before an
/// atomic method), walking back over `ident`, `.`, `::` and `[...]` index
/// groups. Returns `None` for receivers built through calls — those are
/// skipped rather than mis-compared.
fn receiver_before(
    toks: &[crate::tokens::Tok],
    dot: usize,
    start: usize,
) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // toks[dot] is the `.`
    while i > start {
        let prev = &toks[i - 1];
        if prev.kind == TokKind::Ident || prev.kind == TokKind::Num {
            parts.push(prev.text.clone());
            i -= 1;
            // Continue through `.` / `::` chains.
            if i > start && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")) {
                parts.push(toks[i - 1].text.clone());
                i -= 1;
                continue;
            }
            break;
        }
        if prev.is_punct("]") {
            // Capture the whole index group verbatim.
            let mut depth = 0i64;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct("]") {
                    depth += 1;
                } else if toks[j].is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if toks[j].is_punct(")") || toks[j].is_punct("(") {
                    return None; // call inside the index: give up
                }
                if j == start {
                    return None;
                }
                j -= 1;
            }
            for k in (j..i).rev() {
                parts.push(toks[k].text.clone());
            }
            i = j;
            continue;
        }
        if prev.is_punct(")") {
            return None; // receiver is a call result: not comparable
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.concat())
}

/// Position of a standalone `for` / `while` loop keyword, if any.
///
/// `for` only counts when a standalone `in` follows before any `{` on the
/// line — that separates real loop headers from `impl Trait for Type {`
/// headers and `for<'a>` higher-ranked bounds, neither of which opens a
/// loop body.
pub(crate) fn loop_keyword_pos(code: &str) -> Option<usize> {
    for kw in ["for", "while"] {
        let mut from = 0usize;
        while let Some(p) = code[from..].find(kw) {
            let at = from + p;
            from = at + kw.len();
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !code[at + kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !(before_ok && after_ok) {
                continue;
            }
            if kw == "for" {
                let rest = &code[at + kw.len()..];
                let rest = rest.split('{').next().unwrap_or(rest);
                let has_in = rest
                    .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .any(|w| w == "in");
                if !has_in {
                    continue;
                }
            }
            return Some(at);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    fn scan(rule: fn(&SourceFile, &mut Findings), src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/dsp/src/x.rs", src);
        let mut out = Findings::default();
        rule(&file, &mut out);
        out.fired
    }

    fn scan_indexed(
        rule: fn(&SourceFile, &FileIndex, &mut Findings),
        rel: &str,
        src: &str,
    ) -> Findings {
        let file = SourceFile::parse(rel, src);
        let index = index_file(&file);
        let mut out = Findings::default();
        rule(&file, &index, &mut out);
        out
    }

    #[test]
    fn r1_flags_each_family_member() {
        let src = "a.unwrap();\nb.expect(\"x\");\npanic!(\"y\");\nunimplemented!();\ntodo!();";
        assert_eq!(scan(r1_no_panics, src).len(), 5);
    }

    #[test]
    fn r1_skips_unwrap_or_variants() {
        let src = "a.unwrap_or(0);\nb.unwrap_or_else(|| 1);\nc.unwrap_or_default();";
        assert!(scan(r1_no_panics, src).is_empty());
    }

    #[test]
    fn r1_skips_should_panic_and_debug_assert() {
        let src = "#[should_panic(expected = \"x\")]\ndebug_assert!(a);";
        assert!(scan(r1_no_panics, src).is_empty());
    }

    #[test]
    fn r1_hatched_findings_are_recorded_not_fired() {
        let src = "a.unwrap(); // lint: allow(panic) length checked above\nb.unwrap();";
        let file = SourceFile::parse("crates/dsp/src/x.rs", src);
        let mut out = Findings::default();
        r1_no_panics(&file, &mut out);
        assert_eq!(out.fired.len(), 1);
        assert_eq!(out.fired[0].line, 2);
        assert_eq!(out.hatched.len(), 1);
        assert_eq!(out.hatched[0].line, 1);
    }

    #[test]
    fn r5_literal_comparisons() {
        assert_eq!(scan(r5_no_float_eq, "if x == 0.0 {}").len(), 1);
        assert_eq!(scan(r5_no_float_eq, "if x != 1e-9 {}").len(), 1);
        assert_eq!(scan(r5_no_float_eq, "if y == f64::NEG_INFINITY {}").len(), 1);
        assert!(scan(r5_no_float_eq, "if n == 1 {}").is_empty());
        assert!(scan(r5_no_float_eq, "if n <= 1.0 {}").is_empty());
        assert!(scan(r5_no_float_eq, "let f = |x| x => 1.0;").is_empty());
    }

    #[test]
    fn r6_flags_allocations_inside_loops_only() {
        // Allocation before the loop: fine. Same calls inside: flagged.
        let src = "let mut buf = Vec::with_capacity(n);\n\
                   for x in items {\n    let v = vec![0.0; 64];\n    \
                   let p = FftPlan::new(64);\n}\n\
                   let after = Vec::with_capacity(2);";
        let d = scan(r6_no_hot_loop_alloc, src);
        assert_eq!(d.len(), 2, "{d:#?}");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 4);
    }

    #[test]
    fn r6_header_while_and_hatch() {
        // A `for` header evaluates once — exempt; nested while bodies are
        // tracked; the hatch silences a deliberate per-iteration alloc.
        let src = "for x in vec![1, 2] {\n    while y {\n        \
                   let a = vec![0; 8]; // lint: allow(r6) tiny, cold path\n        \
                   let b = vec![0; 8];\n    }\n}";
        let d = scan(r6_no_hot_loop_alloc, src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn impl_for_headers_and_hrtbs_are_not_loops() {
        // `impl Trait for Type {` must not open a loop region — the old
        // keyword scan flagged `Default::default()` bodies as hot loops.
        let src = "impl Default for Scratch {\n    fn default() -> Scratch {\n        \
                   let v = vec![0u8; 8];\n        Scratch { v }\n    }\n}";
        assert!(scan(r6_no_hot_loop_alloc, src).is_empty());
        assert_eq!(loop_keyword_pos("impl Default for Scratch {"), None);
        assert_eq!(loop_keyword_pos("fn f<F: for<'a> Fn(&'a u8)>(f: F) {"), None);
        assert_eq!(loop_keyword_pos("for x in items {"), Some(0));
        assert_eq!(loop_keyword_pos("while x < 4 {"), Some(0));
        assert_eq!(loop_keyword_pos("for (i, v) in xs.iter().enumerate() {"), Some(0));
    }

    #[test]
    fn r6_loop_exit_stops_flagging() {
        let src = "for x in items {\n    f(x);\n}\nlet v = vec![0; 8];\n\
                   fn formless() { let w = vec![1]; }";
        assert!(scan(r6_no_hot_loop_alloc, src).is_empty());
    }

    #[test]
    fn r7_flags_each_print_macro_once() {
        // One finding per line; `eprintln!` must not double-count as
        // `print!`/`eprint!`/`println!`, and suffix-matching identifiers
        // (`my_println!`) never hit.
        let src = "println!(\"x\");\neprintln!(\"y\");\nprint!(\"z\");\neprint!(\"w\");";
        let d = scan(r7_no_adhoc_print, src);
        assert_eq!(d.len(), 4, "{d:#?}");
        assert!(scan(r7_no_adhoc_print, "my_println!(\"x\");").is_empty());
        assert!(scan(r7_no_adhoc_print, "writeln!(f, \"x\");").is_empty());
    }

    #[test]
    fn r7_respects_hatch_and_test_code() {
        let src = "println!(\"boot\"); // lint: allow(print) startup banner\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}";
        assert!(scan(r7_no_adhoc_print, src).is_empty());
    }

    #[test]
    fn r4_requires_docs_on_fully_public_fns_only() {
        let src = "/// Doc.\npub fn documented() {}\npub fn bare() {}\n\
                   /// Doc.\n#[inline]\npub fn attributed() {}\npub(crate) fn internal() {}\n\
                   pub(super) fn upward() {}\npub(in crate::x) fn scoped() {}\nfn private() {}";
        let out = scan_indexed(r4_doc_comments, "crates/dsp/src/x.rs", src);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        assert!(out.fired[0].message.contains("`bare`"));
        assert_eq!(out.fired[0].line, 3);
    }

    #[test]
    fn r4_covers_impl_methods() {
        let src = "pub struct S;\nimpl S {\n    pub fn bare(&self) {}\n    \
                   /// Doc.\n    pub fn documented(&self) {}\n    \
                   pub(crate) fn internal(&self) {}\n}";
        let out = scan_indexed(r4_doc_comments, "crates/dsp/src/x.rs", src);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        assert_eq!(out.fired[0].line, 3);
    }

    #[test]
    fn r8_flags_upward_and_sibling_references() {
        let src = "use bluefi_core::telemetry::Counter;\n\
                   use bluefi_bt::gfsk::modulate;\n\
                   use bluefi_dsp::fft::fft_into;\n\
                   fn f() { let x = bluefi_sim::mac::Slot::new(); }\n";
        let out = scan_indexed(r8_crate_layering, "crates/wifi/src/x.rs", src);
        let lines: Vec<usize> = out.fired.iter().map(|d| d.line).collect();
        // core above wifi (1), bt sibling (2), sim above (4); dsp below: fine.
        assert_eq!(lines, vec![1, 2, 4], "{:#?}", out.fired);
        assert!(out.fired[0].message.contains("upward"));
        assert!(out.fired[1].message.contains("sibling"));
    }

    #[test]
    fn r8_exempts_tests_self_and_hatched_lines() {
        let src = "use bluefi_wifi::tx::Synth; // lint: allow(layering) doc example only\n\
                   #[cfg(test)]\nmod tests {\n    use bluefi_core::json::Json;\n}\n";
        let out = scan_indexed(r8_crate_layering, "crates/wifi/src/x.rs", src);
        assert!(out.fired.is_empty(), "{:#?}", out.fired);
        // Only the sibling/upward hatch is recorded; self-reference is free.
        assert!(out.hatched.is_empty(), "self-reference needs no hatch");
    }

    #[test]
    fn r9_strong_orderings_need_a_hatch() {
        let src = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::SeqCst);\n    \
                   // lint: allow(atomic-ordering) publishes the init handshake\n    \
                   a.store(2, Ordering::AcqRel);\n    a.store(3, Ordering::Relaxed);\n}\n";
        let out = scan_indexed(r9_atomic_ordering, "crates/core/src/par.rs", src);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        assert_eq!(out.fired[0].line, 2);
        assert_eq!(out.hatched.len(), 1);
        assert_eq!(out.hatched[0].line, 4);
    }

    #[test]
    fn r9_load_store_window_is_a_lost_update() {
        let src = "fn bump(c: &AtomicU64) {\n    let v = c.load(Ordering::Relaxed);\n    \
                   c.store(v + 1, Ordering::Relaxed);\n}\n\
                   fn fine(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n\
                   fn far(c: &AtomicU64, d: &AtomicU64) {\n    let v = c.load(Ordering::Relaxed);\n    \
                   d.store(v, Ordering::Relaxed);\n}\n";
        let out = scan_indexed(r9_atomic_ordering, "crates/core/src/par.rs", src);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        assert_eq!(out.fired[0].line, 3);
        assert!(out.fired[0].message.contains("c.load"));
    }

    #[test]
    fn r9_self_feeding_store_and_indexed_receivers() {
        let src = "fn f(cells: &[AtomicU64]) {\n    \
                   cells[i].store(cells[i].load(Ordering::Relaxed) + 1, Ordering::Relaxed);\n}\n\
                   fn different_index(cells: &[AtomicU64]) {\n    \
                   let v = cells[a].load(Ordering::Relaxed);\n    \
                   cells[b].store(v, Ordering::Relaxed);\n}\n";
        let out = scan_indexed(r9_atomic_ordering, "crates/core/src/par.rs", src);
        assert_eq!(out.fired.len(), 1, "{:#?}", out.fired);
        assert_eq!(out.fired[0].line, 2);
    }
}
