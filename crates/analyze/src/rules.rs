//! The source-level lint rules (R1, R2, R4, R5, R6, R7).
//!
//! Each rule walks the [`SourceFile`] line model and emits `file:line`
//! diagnostics. Scope (which crates/files a rule applies to) is decided by
//! [`crate::scope_for`] from the workspace-relative path; the rule bodies
//! only look at line content.

use crate::source::{Line, SourceFile};
use crate::{Diagnostic, Rule};

/// Escape-hatch names accepted by each rule.
pub const ALLOW_PANIC: &str = "panic";
/// Hatch name for R2.
pub const ALLOW_UNSAFE: &str = "unsafe";
/// Hatch name for R5.
pub const ALLOW_FLOAT_EQ: &str = "float-eq";
/// Hatch name for R6.
pub const ALLOW_HOT_LOOP_ALLOC: &str = "r6";
/// Hatch name for R7.
pub const ALLOW_PRINT: &str = "print";

/// Files allowed to contain `unsafe` (R2 allowlist). Empty: the workspace
/// is `unsafe`-free and every crate carries `#![forbid(unsafe_code)]`.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

fn allowed(line: &Line, hatch: &str) -> bool {
    line.allows.iter().any(|a| a == hatch)
}

/// R1 — panic-family calls in library code.
///
/// Flags `.unwrap()`, `.expect(`, `panic!`, `unimplemented!` and `todo!`
/// outside `#[cfg(test)]` items, unless the line carries a
/// `// lint: allow(panic) <reason>` hatch.
pub fn r1_no_panics(file: &SourceFile) -> Vec<Diagnostic> {
    const NEEDLES: [&str; 5] =
        [".unwrap()", ".expect(", "panic!", "unimplemented!", "todo!"];
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(line, ALLOW_PANIC) {
            continue;
        }
        for needle in NEEDLES {
            if let Some(found) = find_needle(&line.code, needle) {
                out.push(Diagnostic::new(
                    Rule::NoPanics,
                    &file.rel_path,
                    i + 1,
                    format!(
                        "`{found}` in library code — return Result/Option or add \
                         `// lint: allow(panic) <reason>`"
                    ),
                ));
            }
        }
    }
    out
}

/// Finds `needle` in `code`, rejecting matches that merely extend a longer
/// identifier (so `debug_assert!`-style neighbors or `xpanic!` never hit).
fn find_needle(code: &str, needle: &str) -> Option<String> {
    // Needles opening with `.` are self-delimiting; identifier-led needles
    // (`panic!` etc.) must not match inside a longer name.
    let check_prefix = needle.starts_with(|c: char| c.is_alphanumeric() || c == '_');
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let pre_ok = !check_prefix
            || at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok {
            return Some(needle.trim_end_matches(['(', ')']).to_string());
        }
        from = at + needle.len();
    }
    None
}

/// R2 — `unsafe` outside the allowlist.
pub fn r2_no_unsafe(file: &SourceFile) -> Vec<Diagnostic> {
    if UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if allowed(line, ALLOW_UNSAFE) {
            continue;
        }
        let hit = line
            .code
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .any(|w| w == "unsafe");
        if hit {
            out.push(Diagnostic::new(
                Rule::NoUnsafe,
                &file.rel_path,
                i + 1,
                "`unsafe` outside the allowlist — remove it or extend \
                 UNSAFE_ALLOWLIST / add `// lint: allow(unsafe) <reason>`"
                    .to_string(),
            ));
        }
    }
    out
}

/// R4 — every `pub fn` needs a doc comment.
///
/// A `pub fn` (also `pub const fn` / `pub async fn`) must be directly
/// preceded by a `///` doc comment or `#[doc = ...]`, with only attribute
/// lines in between. Restricted-visibility functions (`pub(crate)` etc.)
/// and test code are exempt.
pub fn r4_doc_comments(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let trimmed = line.code.trim_start();
        let is_pub_fn = ["pub fn ", "pub const fn ", "pub async fn ", "pub unsafe fn "]
            .iter()
            .any(|p| trimmed.starts_with(p));
        if !is_pub_fn {
            continue;
        }
        if !has_doc_above(file, i) {
            let name = trimmed
                .split("fn ")
                .nth(1)
                .and_then(|r| r.split(['(', '<', ' ']).next())
                .unwrap_or("?");
            out.push(Diagnostic::new(
                Rule::DocComments,
                &file.rel_path,
                i + 1,
                format!("public function `{name}` has no doc comment"),
            ));
        }
    }
    out
}

fn has_doc_above(file: &SourceFile, mut i: usize) -> bool {
    while i > 0 {
        i -= 1;
        let raw = file.lines[i].raw.trim_start();
        if raw.starts_with("///") || raw.starts_with("#[doc") || raw.starts_with("/**") {
            return true;
        }
        // Skip attributes (and continuation lines of multi-line attributes,
        // which end with `]` or `)]`).
        if raw.starts_with("#[") || raw.ends_with(")]") {
            continue;
        }
        return false;
    }
    false
}

/// R5 — floating-point `==` / `!=` in signal code.
///
/// Token-level: an equality whose left or right operand is a float literal
/// (`0.0`, `1e-3f64`, `1f32`) or an `f32::` / `f64::` associated constant.
/// Exact float comparison silently breaks under the pipeline's quantized
/// arithmetic; compare against a tolerance instead.
pub fn r5_no_float_eq(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(line, ALLOW_FLOAT_EQ) {
            continue;
        }
        for op in ["==", "!="] {
            let mut from = 0usize;
            while let Some(pos) = line.code[from..].find(op) {
                let at = from + pos;
                from = at + op.len();
                // Not part of `<=`, `>=`, `=>`, `===`-like runs.
                let before = line.code[..at].chars().next_back();
                let after = line.code[at + op.len()..].chars().next();
                if matches!(before, Some('<') | Some('>') | Some('=') | Some('!'))
                    || after == Some('=')
                {
                    continue;
                }
                let lhs = last_token(&line.code[..at]);
                let rhs = first_token(&line.code[at + op.len()..]);
                if is_float_token(&lhs) || is_float_token(&rhs) {
                    out.push(Diagnostic::new(
                        Rule::NoFloatEq,
                        &file.rel_path,
                        i + 1,
                        format!(
                            "float equality `{lhs} {op} {rhs}` in signal code — compare \
                             with a tolerance or add `// lint: allow(float-eq) <reason>`"
                        ),
                    ));
                }
            }
        }
    }
    out
}

fn token_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | ':')
}

fn last_token(s: &str) -> String {
    s.trim_end()
        .chars()
        .rev()
        .take_while(|&c| token_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

fn first_token(s: &str) -> String {
    let s = s.trim_start();
    let neg = s.starts_with('-');
    let body: String = s
        .chars()
        .skip(usize::from(neg))
        .take_while(|&c| token_char(c))
        .collect();
    if neg {
        format!("-{body}")
    } else {
        body
    }
}

fn is_float_token(tok: &str) -> bool {
    if tok.contains("f32::") || tok.contains("f64::") {
        return true;
    }
    let t = tok.strip_prefix('-').unwrap_or(tok);
    let (t, suffixed) = match t.strip_suffix("f64").or_else(|| t.strip_suffix("f32")) {
        Some(stripped) => (stripped, true),
        None => (t, false),
    };
    let mut chars = t.chars();
    let Some(first) = chars.next() else { return false };
    if !first.is_ascii_digit() {
        return false;
    }
    let numeric = t
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'));
    // An integer literal (`52`, `1_000`) only becomes float-like with a
    // decimal point, an exponent, or an explicit f32/f64 suffix.
    numeric && (t.contains('.') || t.contains('e') || t.contains('E') || suffixed)
}

/// R6 — per-iteration allocation in hot-path loops.
///
/// Flags `FftPlan::new(`, `Vec::with_capacity(`, `vec![`, `Box::new(` and
/// `.to_vec()` on lines inside a `for`/`while` body (tracked by brace depth
/// from the loop header) — those allocations repeat every iteration; hoist
/// them, use a size-keyed plan cache (`fft_plan`, `trellis_plan`), or reuse
/// a scratch buffer via `contracts::ensure_len`. The boxed-slice needles
/// exist for the trellis/traceback modules, whose scratch state lives in
/// `Box<[T; N]>` arrays that must be built once per scratch, never per
/// decode step. Loop *headers* are exempt (they evaluate once for `for`),
/// as is test code; the escape hatch is `// lint: allow(r6) <reason>`.
pub fn r6_no_hot_loop_alloc(file: &SourceFile) -> Vec<Diagnostic> {
    const NEEDLES: [&str; 5] =
        ["FftPlan::new(", "Vec::with_capacity(", "vec![", "Box::new(", ".to_vec()"];
    let mut out = Vec::new();
    let mut depth = 0i64;
    // Brace depth of each currently-open for/while body.
    let mut loop_depths: Vec<i64> = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if !loop_depths.is_empty() && !line.in_test && !allowed(line, ALLOW_HOT_LOOP_ALLOC) {
            for needle in NEEDLES {
                if let Some(found) = find_needle(code, needle) {
                    out.push(Diagnostic::new(
                        Rule::HotLoopAlloc,
                        &file.rel_path,
                        i + 1,
                        format!(
                            "`{found}` allocates every loop iteration — hoist it, use \
                             the plan cache / a reused scratch buffer, or add \
                             `// lint: allow(r6) <reason>`"
                        ),
                    ));
                }
            }
        }
        // Track braces; a loop header's first `{` after the keyword opens a
        // body at the new depth. (Headers whose `{` falls on a later line
        // are not tracked — rustfmt keeps loop braces on the header line.)
        let mut pending_header = if line.in_test { None } else { loop_keyword_pos(code) };
        for (ci, c) in code.char_indices() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_header.is_some_and(|k| ci > k) {
                        loop_depths.push(depth);
                        pending_header = None;
                    }
                }
                '}' => {
                    depth -= 1;
                    while loop_depths.last().is_some_and(|&d| d > depth) {
                        loop_depths.pop();
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// R7 — ad-hoc `println!`-family output in library crates.
///
/// Library code must not write to stdout/stderr directly: results flow
/// through return values, and observability flows through the telemetry
/// recorder (`core::telemetry`) — counters, spans, and `Table` snapshots
/// that binaries render or export as JSON. Flags `println!`, `eprintln!`,
/// `print!` and `eprint!` outside `#[cfg(test)]`; binaries
/// (`src/bin/`, `main.rs`) are out of scope, and the escape hatch is
/// `// lint: allow(print) <reason>`.
pub fn r7_no_adhoc_print(file: &SourceFile) -> Vec<Diagnostic> {
    const NEEDLES: [&str; 4] = ["println!", "eprintln!", "print!", "eprint!"];
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(line, ALLOW_PRINT) {
            continue;
        }
        for needle in NEEDLES {
            if let Some(found) = find_needle(&line.code, needle) {
                out.push(Diagnostic::new(
                    Rule::AdhocPrint,
                    &file.rel_path,
                    i + 1,
                    format!(
                        "`{found}` in library code — record telemetry / return a \
                         `Table` and let the caller render it, or add \
                         `// lint: allow(print) <reason>`"
                    ),
                ));
            }
        }
    }
    out
}

/// Position of a standalone `for` / `while` keyword, if any.
fn loop_keyword_pos(code: &str) -> Option<usize> {
    for kw in ["for", "while"] {
        let mut from = 0usize;
        while let Some(p) = code[from..].find(kw) {
            let at = from + p;
            from = at + kw.len();
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !code[at + kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                return Some(at);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rule: fn(&SourceFile) -> Vec<Diagnostic>, src: &str) -> Vec<Diagnostic> {
        rule(&SourceFile::parse("crates/dsp/src/x.rs", src))
    }

    #[test]
    fn r1_flags_each_family_member() {
        let src = "a.unwrap();\nb.expect(\"x\");\npanic!(\"y\");\nunimplemented!();\ntodo!();";
        assert_eq!(scan(r1_no_panics, src).len(), 5);
    }

    #[test]
    fn r1_skips_unwrap_or_variants() {
        let src = "a.unwrap_or(0);\nb.unwrap_or_else(|| 1);\nc.unwrap_or_default();";
        assert!(scan(r1_no_panics, src).is_empty());
    }

    #[test]
    fn r1_skips_should_panic_and_debug_assert() {
        let src = "#[should_panic(expected = \"x\")]\ndebug_assert!(a);";
        assert!(scan(r1_no_panics, src).is_empty());
    }

    #[test]
    fn r5_literal_comparisons() {
        assert_eq!(scan(r5_no_float_eq, "if x == 0.0 {}").len(), 1);
        assert_eq!(scan(r5_no_float_eq, "if x != 1e-9 {}").len(), 1);
        assert_eq!(scan(r5_no_float_eq, "if y == f64::NEG_INFINITY {}").len(), 1);
        assert!(scan(r5_no_float_eq, "if n == 1 {}").is_empty());
        assert!(scan(r5_no_float_eq, "if n <= 1.0 {}").is_empty());
        assert!(scan(r5_no_float_eq, "let f = |x| x => 1.0;").is_empty());
    }

    #[test]
    fn r6_flags_allocations_inside_loops_only() {
        // Allocation before the loop: fine. Same calls inside: flagged.
        let src = "let mut buf = Vec::with_capacity(n);\n\
                   for x in items {\n    let v = vec![0.0; 64];\n    \
                   let p = FftPlan::new(64);\n}\n\
                   let after = Vec::with_capacity(2);";
        let d = scan(r6_no_hot_loop_alloc, src);
        assert_eq!(d.len(), 2, "{d:#?}");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 4);
    }

    #[test]
    fn r6_header_while_and_hatch() {
        // A `for` header evaluates once — exempt; nested while bodies are
        // tracked; the hatch silences a deliberate per-iteration alloc.
        let src = "for x in vec![1, 2] {\n    while y {\n        \
                   let a = vec![0; 8]; // lint: allow(r6) tiny, cold path\n        \
                   let b = vec![0; 8];\n    }\n}";
        let d = scan(r6_no_hot_loop_alloc, src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn r6_loop_exit_stops_flagging() {
        let src = "for x in items {\n    f(x);\n}\nlet v = vec![0; 8];\n\
                   fn formless() { let w = vec![1]; }";
        assert!(scan(r6_no_hot_loop_alloc, src).is_empty());
    }

    #[test]
    fn r7_flags_each_print_macro_once() {
        // One finding per line; `eprintln!` must not double-count as
        // `print!`/`eprint!`/`println!`, and suffix-matching identifiers
        // (`my_println!`) never hit.
        let src = "println!(\"x\");\neprintln!(\"y\");\nprint!(\"z\");\neprint!(\"w\");";
        let d = scan(r7_no_adhoc_print, src);
        assert_eq!(d.len(), 4, "{d:#?}");
        assert!(scan(r7_no_adhoc_print, "my_println!(\"x\");").is_empty());
        assert!(scan(r7_no_adhoc_print, "writeln!(f, \"x\");").is_empty());
    }

    #[test]
    fn r7_respects_hatch_and_test_code() {
        let src = "println!(\"boot\"); // lint: allow(print) startup banner\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}";
        assert!(scan(r7_no_adhoc_print, src).is_empty());
    }

    #[test]
    fn r4_requires_docs() {
        let src = "/// Doc.\npub fn documented() {}\npub fn bare() {}\n\
                   /// Doc.\n#[inline]\npub fn attributed() {}\npub(crate) fn internal() {}";
        let d = scan(r4_doc_comments, src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`bare`"));
        assert_eq!(d[0].line, 3);
    }
}
