//! Pass 2 — a per-file item index on the token stream.
//!
//! Walks the [`tokenize`](crate::tokens::tokenize) output once and records
//! every `fn` item with its visibility, enclosing `mod`/`impl` context,
//! crate-qualified path, body span (token and line ranges) and test-ness,
//! plus the file's `use`-imports (local name → originating workspace
//! crate). This is what the cross-file rules resolve against; it is *not* a
//! Rust parser — the recognizer is a linear scan with brace/paren depth
//! tracking, and constructs it cannot classify simply fall out of the index
//! (a miss makes the downstream call graph *smaller*, which is the safe
//! direction for a deny-list linter; see DESIGN.md §13).

use crate::source::SourceFile;
use crate::tokens::{tokenize, Tok, TokKind};

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)` — visible, but not part of
    /// the public API surface.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, if this is an associated fn/method.
    pub owner: Option<String>,
    /// Visibility of the `fn` itself.
    pub vis: Vis,
    /// Crate-qualified path: `crate::module[::Owner]::name`.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body (between the braces), when present.
    pub body_toks: Option<(usize, usize)>,
    /// 1-based line range of the body (open-brace line ..= close-brace
    /// line), when present.
    pub body_lines: Option<(usize, usize)>,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// Where a `use`-imported name comes from.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// Local (possibly `as`-renamed) name.
    pub name: String,
    /// Workspace crate the name resolves into (`dsp`, `core`, ...). Imports
    /// from `std`/external roots are not recorded.
    pub krate: String,
}

/// The full index for one file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Workspace crate short name (`dsp`, `core`, ...), when the path is a
    /// `crates/<name>/src/...` source.
    pub krate: Option<String>,
    /// Module path of the file itself (e.g. `core::telemetry`).
    pub module: String,
    /// The token stream the index was built from.
    pub toks: Vec<Tok>,
    /// Every indexed function, in source order.
    pub fns: Vec<FnItem>,
    /// `use`-imports mapping local names to workspace crates.
    pub uses: Vec<UseImport>,
    /// Per-line flag: true when the line starts inside a `for`/`while`
    /// body (the R6/R10 hot-loop region).
    pub in_loop: Vec<bool>,
}

/// Short crate name from a workspace-relative path
/// (`crates/dsp/src/fft.rs` → `dsp`).
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let norm = rel_path.strip_prefix("crates/")?;
    let (krate, rest) = norm.split_once('/')?;
    rest.starts_with("src/").then_some(krate)
}

/// Module path of a file inside its crate: `crates/core/src/telemetry/mod.rs`
/// → `core::telemetry`, `crates/dsp/src/lib.rs` → `dsp`.
fn module_of(rel_path: &str, krate: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if let Some(rest) = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .and_then(|(_, r)| r.strip_prefix("src/"))
    {
        for seg in rest.split('/') {
            let seg = seg.strip_suffix(".rs").unwrap_or(seg);
            if seg == "lib" || seg == "mod" || seg == "main" {
                continue;
            }
            parts.push(seg);
        }
    }
    let mut module = krate.to_string();
    for p in parts {
        module.push_str("::");
        module.push_str(p);
    }
    module
}

#[derive(Debug, Clone, PartialEq)]
enum Pending {
    Fn(usize), // index into fns being built
    Mod(String),
    Impl(String),
}

#[derive(Debug, Clone)]
enum Ctx {
    Mod(String),
    Impl(String),
    Fn(usize),
    Block, // any other braced region (loop, match, struct literal, ...)
}

/// Builds the [`FileIndex`] for a lexed file.
pub fn index_file(file: &SourceFile) -> FileIndex {
    let toks = tokenize(file);
    let krate = crate_of(&file.rel_path).map(str::to_string);
    let module =
        krate.as_deref().map(|k| module_of(&file.rel_path, k)).unwrap_or_default();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut uses: Vec<UseImport> = Vec::new();
    let own_crate = krate.clone().unwrap_or_default();

    let in_test_line =
        |line: usize| file.lines.get(line.saturating_sub(1)).is_some_and(|l| l.in_test);

    // Linear scan with depth tracking. `pending` is the item header whose
    // `{` (or `;`) we are waiting for; item keywords are only recognized at
    // paren depth 0 with no pending header, which keeps `-> impl Iterator`
    // or `x: impl Fn()` in signatures from being misread as items.
    let mut depth = 0i64;
    let mut paren = 0i64;
    let mut pending: Option<Pending> = None;
    let mut ctx: Vec<(i64, Ctx)> = Vec::new();
    let mut boundary = 0usize; // first token of the current item prefix

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" => {
                    depth += 1;
                    let opened = match pending.take() {
                        Some(kind) if paren == 0 => match kind {
                            Pending::Fn(idx) => {
                                fns[idx].body_toks = Some((i + 1, i + 1));
                                fns[idx].body_lines = Some((t.line, t.line));
                                Ctx::Fn(idx)
                            }
                            Pending::Mod(name) => Ctx::Mod(name),
                            Pending::Impl(name) => Ctx::Impl(name),
                        },
                        other => {
                            pending = other;
                            Ctx::Block
                        }
                    };
                    ctx.push((depth, opened));
                    boundary = i + 1;
                }
                "}" => {
                    while ctx.last().is_some_and(|(d, _)| *d >= depth) {
                        if let Some((_, Ctx::Fn(idx))) = ctx.pop() {
                            if let Some((start, _)) = fns[idx].body_toks {
                                fns[idx].body_toks = Some((start, i));
                            }
                            if let Some((start, _)) = fns[idx].body_lines {
                                fns[idx].body_lines = Some((start, t.line));
                            }
                        }
                    }
                    depth -= 1;
                    boundary = i + 1;
                }
                ";" => {
                    // Cancels a bodiless header (trait fn decl, `mod x;`).
                    if paren == 0 {
                        pending = None;
                        boundary = i + 1;
                    }
                }
                "]" => {
                    // Attribute close: the item prefix continues past it.
                }
                _ => {}
            },
            TokKind::Ident if paren == 0 && pending.is_none() => {
                match t.text.as_str() {
                    "fn" => {
                        if let Some(name_tok) =
                            toks.get(i + 1).filter(|n| n.kind == TokKind::Ident)
                        {
                            let vis = visibility_of(&toks[boundary..i]);
                            let owner = ctx.iter().rev().find_map(|(_, c)| match c {
                                Ctx::Impl(ty) => Some(ty.clone()),
                                _ => None,
                            });
                            let mods: Vec<&str> = ctx
                                .iter()
                                .filter_map(|(_, c)| match c {
                                    Ctx::Mod(m) => Some(m.as_str()),
                                    _ => None,
                                })
                                .collect();
                            let mut qualified = module.clone();
                            if qualified.is_empty() {
                                qualified = own_crate.clone();
                            }
                            for m in &mods {
                                qualified.push_str("::");
                                qualified.push_str(m);
                            }
                            if let Some(ty) = &owner {
                                qualified.push_str("::");
                                qualified.push_str(ty);
                            }
                            qualified.push_str("::");
                            qualified.push_str(&name_tok.text);
                            fns.push(FnItem {
                                name: name_tok.text.clone(),
                                owner,
                                vis,
                                qualified,
                                line: t.line,
                                body_toks: None,
                                body_lines: None,
                                is_test: in_test_line(t.line),
                            });
                            pending = Some(Pending::Fn(fns.len() - 1));
                            i += 1; // skip the name
                        }
                    }
                    "mod" => {
                        if let Some(name_tok) =
                            toks.get(i + 1).filter(|n| n.kind == TokKind::Ident)
                        {
                            pending = Some(Pending::Mod(name_tok.text.clone()));
                            i += 1;
                        }
                    }
                    "impl" => {
                        pending = Some(Pending::Impl(impl_type_name(&toks[i + 1..])));
                    }
                    "use" => {
                        let end = toks[i..]
                            .iter()
                            .position(|t| t.is_punct(";"))
                            .map(|p| i + p)
                            .unwrap_or(toks.len());
                        collect_use_imports(&toks[i + 1..end], &own_crate, &mut uses);
                        i = end;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }

    let in_loop = loop_lines(file);
    FileIndex { rel_path: file.rel_path.clone(), krate, module, toks, fns, uses, in_loop }
}

/// Visibility from the modifier tokens preceding a `fn` keyword.
fn visibility_of(prefix: &[Tok]) -> Vis {
    for (i, t) in prefix.iter().enumerate() {
        if t.is_ident("pub") {
            return if prefix.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                Vis::Restricted
            } else {
                Vis::Public
            };
        }
    }
    Vis::Private
}

/// Self-type name of an `impl` header (the tokens after `impl`, up to the
/// opening brace): the last path segment at angle depth 0, taken after
/// `for` when present and before any `where` clause. HRTB `for<'a>` bounds
/// in the generics would confuse the `for` split — none exist in this
/// workspace, and a miss only shrinks the call graph (safe direction).
fn impl_type_name(toks: &[Tok]) -> String {
    let upto = toks
        .iter()
        .position(|t| t.is_punct("{") || t.is_punct(";"))
        .unwrap_or(toks.len());
    let mut header = &toks[..upto];
    if let Some(w) = header.iter().position(|t| t.is_ident("where")) {
        header = &header[..w];
    }
    if let Some(f) = header.iter().position(|t| t.is_ident("for")) {
        header = &header[f + 1..];
    }
    let mut angle = 0i64;
    let mut last_seg = String::new();
    for t in header {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Ident, w) if angle == 0 && !matches!(w, "dyn" | "mut" | "const") => {
                last_seg = w.to_string();
            }
            _ => {}
        }
    }
    last_seg
}

/// Expands a `use` tree into (leaf name → workspace crate) imports.
/// Handles `use bluefi_x::a::b;`, `{...}` groups one level deep, and
/// `as` renames; glob imports and non-workspace roots are skipped.
fn collect_use_imports(toks: &[Tok], own_crate: &str, out: &mut Vec<UseImport>) {
    let root = match toks.first() {
        Some(t) if t.kind == TokKind::Ident => t.text.as_str(),
        _ => return,
    };
    let krate = if let Some(stripped) = root.strip_prefix("bluefi_") {
        stripped.to_string()
    } else if matches!(root, "crate" | "self" | "super") && !own_crate.is_empty() {
        own_crate.to_string()
    } else {
        return; // std / external root: not resolvable into the workspace
    };

    // Walk the flat token list; every ident that is followed by `,`, `}`
    // or end-of-tree (i.e. not by `::`) is a leaf. `as` renames the leaf.
    let mut i = 1usize;
    let mut last_ident: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if t.text == "as" {
                if let Some(alias) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    out.push(UseImport { name: alias.text.clone(), krate: krate.clone() });
                    last_ident = None;
                    i += 2;
                    continue;
                }
            }
            last_ident = Some(t.text.clone());
        } else if t.is_punct("::") {
            // The previous ident was a path segment, not a leaf.
            if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident || n.is_punct("{")) {
                last_ident = None;
            }
        } else if t.is_punct(",") || t.is_punct("}") {
            if let Some(name) = last_ident.take() {
                out.push(UseImport { name, krate: krate.clone() });
            }
        }
        i += 1;
    }
    if let Some(name) = last_ident.take() {
        out.push(UseImport { name, krate });
    }
}

/// Per-line hot-loop flags: `true` when the line *starts* inside a
/// `for`/`while` body. This is the exact region model R6 has always used
/// (headers exempt, test-code loops not tracked, rustfmt-style braces), now
/// shared with R10's call-site check.
pub fn loop_lines(file: &SourceFile) -> Vec<bool> {
    let mut out = Vec::with_capacity(file.lines.len());
    let mut depth = 0i64;
    let mut loop_depths: Vec<i64> = Vec::new();
    for line in &file.lines {
        out.push(!loop_depths.is_empty());
        let code = &line.code;
        let mut pending_header =
            if line.in_test { None } else { crate::rules::loop_keyword_pos(code) };
        for (ci, c) in code.char_indices() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_header.is_some_and(|k| ci > k) {
                        loop_depths.push(depth);
                        pending_header = None;
                    }
                }
                '}' => {
                    depth -= 1;
                    while loop_depths.last().is_some_and(|&d| d > depth) {
                        loop_depths.pop();
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> FileIndex {
        index_file(&SourceFile::parse("crates/dsp/src/sub/x.rs", src))
    }

    #[test]
    fn fn_items_carry_visibility_and_spans() {
        let src = "/// Doc.\npub fn api(a: u8) -> u8 {\n    a\n}\n\
                   pub(crate) fn internal() {}\nfn private() {}\n";
        let idx = index(src);
        assert_eq!(idx.krate.as_deref(), Some("dsp"));
        assert_eq!(idx.module, "dsp::sub::x");
        let names: Vec<(&str, Vis)> =
            idx.fns.iter().map(|f| (f.name.as_str(), f.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("api", Vis::Public),
                ("internal", Vis::Restricted),
                ("private", Vis::Private)
            ]
        );
        assert_eq!(idx.fns[0].qualified, "dsp::sub::x::api");
        assert_eq!(idx.fns[0].body_lines, Some((2, 4)));
    }

    #[test]
    fn impl_and_mod_context_qualify_names() {
        let src = "impl Plan {\n    pub fn new() -> Plan { Plan }\n}\n\
                   impl Iterator for Plan {\n    fn next(&mut self) -> Option<u8> { None }\n}\n\
                   mod inner {\n    fn helper() {}\n}\n";
        let idx = index(src);
        assert_eq!(idx.fns[0].qualified, "dsp::sub::x::Plan::new");
        assert_eq!(idx.fns[0].owner.as_deref(), Some("Plan"));
        assert_eq!(idx.fns[1].qualified, "dsp::sub::x::Plan::next");
        assert_eq!(idx.fns[2].qualified, "dsp::sub::x::inner::helper");
    }

    #[test]
    fn signature_impl_and_fn_types_are_not_items() {
        let src = "pub fn outer(cb: impl Fn(u8) -> u8) -> impl Iterator<Item = u8> {\n\
                       std::iter::once(cb(1))\n}\nfn after() {}\n";
        let idx = index(src);
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "after"]);
        assert_eq!(idx.fns[0].body_lines, Some((1, 3)));
    }

    #[test]
    fn trait_decls_have_no_body_and_tests_are_marked() {
        let src = "trait T {\n    fn decl(&self) -> u8;\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let idx = index(src);
        let decl = idx.fns.iter().find(|f| f.name == "decl").expect("decl indexed");
        assert!(decl.body_toks.is_none());
        let t = idx.fns.iter().find(|f| f.name == "t").expect("t indexed");
        assert!(t.is_test);
    }

    #[test]
    fn use_imports_map_to_workspace_crates() {
        let src = "use bluefi_dsp::fft::{fft_into, FftPlan};\n\
                   use bluefi_coding::viterbi::decode as vdecode;\n\
                   use std::collections::HashMap;\nuse crate::bits::pack;\n";
        let idx = index_file(&SourceFile::parse("crates/wifi/src/x.rs", src));
        let got: Vec<(&str, &str)> =
            idx.uses.iter().map(|u| (u.name.as_str(), u.krate.as_str())).collect();
        assert_eq!(
            got,
            vec![
                ("fft_into", "dsp"),
                ("FftPlan", "dsp"),
                ("vdecode", "coding"),
                ("pack", "wifi")
            ]
        );
    }

    #[test]
    fn loop_lines_match_the_r6_region_model() {
        let src = "fn f(items: &[u8]) {\n    for x in items {\n        g(*x);\n    }\n    h();\n}\n";
        let f = SourceFile::parse("crates/dsp/src/x.rs", src);
        assert_eq!(loop_lines(&f), vec![false, false, true, true, false, false]);
    }
}
