//! R3 — hermetic-manifest policy.
//!
//! The tier-1 gate (`cargo build --release && cargo test -q`) only works
//! offline because every crate depends exclusively on sibling `bluefi-*`
//! crates. This module (which absorbed the former `tests/hermetic.rs`
//! guard) scans every `Cargo.toml` and reports:
//!
//! * any dependency-section entry that is not a `bluefi*` crate, and
//! * any mention of the historically vendored registry crates (`rand`,
//!   `serde`, ...) anywhere in a manifest, even commented out.

use crate::{Diagnostic, Rule};

/// Section headers whose entries must all be `bluefi*` crates.
const DEP_SECTIONS: [&str; 5] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
    "target", // any `[target.'cfg(..)'.dependencies]` style table
];

/// Registry crates that must never reappear in any manifest (the in-tree
/// replacements live in `bluefi-core`).
const BANNED_NAMES: [&str; 7] =
    ["rand", "proptest", "criterion", "crossbeam", "parking_lot", "serde", "bytes"];

/// True if the `[section]` header opens a dependency table.
fn is_dep_section(header: &str) -> bool {
    DEP_SECTIONS.iter().any(|s| {
        header == *s
            || header.ends_with(&format!(".{s}"))
            || (*s == "target" && header.starts_with("target.") && header.contains("dependencies"))
    })
}

/// Extracts the dependency name from a line inside a dependency table.
/// Handles `name = "1.0"`, `name = { .. }`, and `name.workspace = true`.
fn dep_name(line: &str) -> Option<&str> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
        return None;
    }
    let key = line.split('=').next()?.trim();
    // `bluefi-core.workspace = true` -> the part before the first dot.
    let name = key.split('.').next()?.trim().trim_matches('"');
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Scans one manifest's text; `rel_path` is used in diagnostics.
pub fn scan_manifest(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            let header = trimmed.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = is_dep_section(header);
        } else if in_dep_section {
            if let Some(name) = dep_name(trimmed) {
                if !name.starts_with("bluefi") {
                    out.push(Diagnostic::new(
                        Rule::HermeticManifests,
                        rel_path,
                        lineno + 1,
                        format!("external dependency `{name}` breaks the offline build"),
                    ));
                }
            }
        }
        // Belt-and-braces: banned crate names anywhere, even commented out
        // or outside dependency tables (whole-word match, so a crate named
        // `bluefi-random` would not false-positive).
        for banned in BANNED_NAMES {
            let hit = line
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .any(|w| w == banned);
            if hit {
                out.push(Diagnostic::new(
                    Rule::HermeticManifests,
                    rel_path,
                    lineno + 1,
                    format!("banned registry crate name `{banned}` mentioned in manifest"),
                ));
            }
        }
    }
    out
}

/// R8 at the manifest level: in `crates/<k>/Cargo.toml`, every `bluefi-*`
/// entry under `[dependencies]` must sit strictly *below* `<k>` in the
/// layer DAG ([`crate::callgraph::LAYERS`]). `[dev-dependencies]` are
/// exempt — test-only upward edges (e.g. `dsp` testing against
/// `bluefi-core`) do not constrain the shipped dependency graph. The
/// workspace-root manifest only aggregates and is skipped.
pub fn scan_manifest_layering(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    use crate::callgraph::layer_of;
    let norm = rel_path.replace('\\', "/");
    let mut parts = norm.split('/');
    let krate = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some("crates"), Some(k), Some("Cargo.toml"), None) => k,
        _ => return Vec::new(),
    };
    let Some(crate_layer) = layer_of(krate) else { return Vec::new() };
    let mut out = Vec::new();
    let mut in_plain_deps = false;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            let header = trimmed.trim_matches(|c| c == '[' || c == ']');
            in_plain_deps = header == "dependencies";
            continue;
        }
        if !in_plain_deps {
            continue;
        }
        let Some(name) = dep_name(trimmed) else { continue };
        let Some(target) = name.strip_prefix("bluefi-") else { continue };
        let Some(target_layer) = layer_of(target) else { continue };
        if target_layer >= crate_layer {
            let relation =
                if target_layer == crate_layer { "a sibling on the same layer" } else { "above" };
            out.push(Diagnostic::new(
                Rule::CrateLayering,
                rel_path,
                lineno + 1,
                format!(
                    "`{name}` is {relation} `{krate}` in the layer DAG — shipped \
                     `[dependencies]` must point strictly downward \
                     (dev-dependencies are exempt)"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_manifest_passes() {
        let text = "[package]\nname = \"bluefi-x\"\n[dependencies]\nbluefi-dsp.workspace = true\n";
        assert!(scan_manifest("Cargo.toml", text).is_empty());
    }

    #[test]
    fn external_dep_and_banned_name_flagged() {
        let text = "[dependencies]\nrand = \"0.8\"\nbluefi-dsp.workspace = true\n";
        let d = scan_manifest("Cargo.toml", text);
        // `rand` trips both the dep-section check and the banned-name scan.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn conformance_manifest_shape_is_hermetic() {
        // The exact dependency shape of `crates/conformance/Cargo.toml`:
        // seven sibling crates, workspace-inherited metadata, nothing else.
        // Keeping this fixture in sync with the real manifest means R3
        // provably covers the conformance crate's shape, not just generic
        // examples.
        let text = "[package]\n\
                    name = \"bluefi-conformance\"\n\
                    version.workspace = true\n\
                    [dependencies]\n\
                    bluefi-dsp.workspace = true\n\
                    bluefi-coding.workspace = true\n\
                    bluefi-wifi.workspace = true\n\
                    bluefi-bt.workspace = true\n\
                    bluefi-core.workspace = true\n\
                    bluefi-sim.workspace = true\n\
                    bluefi-service.workspace = true\n";
        assert!(scan_manifest("crates/conformance/Cargo.toml", text).is_empty());
        // And the same shape with one external fixture-diffing crate
        // sneaked in must fire.
        let bad = format!("{text}serde = \"1\"\n");
        let d = scan_manifest("crates/conformance/Cargo.toml", &bad);
        assert_eq!(d.len(), 2); // dep-section entry + banned-name mention
    }

    #[test]
    fn dev_and_target_sections_are_checked() {
        let text = "[dev-dependencies]\nproptest = \"1\"\n[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        let d = scan_manifest("Cargo.toml", text);
        assert_eq!(d.len(), 3); // proptest (x2: dep + banned) + libc
    }

    #[test]
    fn layering_flags_upward_shipped_deps_only() {
        // dsp (layer 0) shipping a dep on core (layer 3): upward, flagged.
        let text = "[dependencies]\nbluefi-core.workspace = true\n";
        let d = scan_manifest_layering("crates/dsp/Cargo.toml", text);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].line, 2);
        // The same edge as a dev-dependency is a legitimate test-only edge.
        let dev = "[dev-dependencies]\nbluefi-core.workspace = true\n";
        assert!(scan_manifest_layering("crates/dsp/Cargo.toml", dev).is_empty());
        // Downward dep: fine. Sibling (wifi -> bt, both layer 2): flagged.
        let down = "[dependencies]\nbluefi-dsp.workspace = true\n";
        assert!(scan_manifest_layering("crates/core/Cargo.toml", down).is_empty());
        let sib = "[dependencies]\nbluefi-bt.workspace = true\n";
        let d = scan_manifest_layering("crates/wifi/Cargo.toml", sib);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("sibling"));
        // The workspace root only aggregates members.
        let root = "[workspace.dependencies]\nbluefi-core = { path = \"crates/core\" }\n";
        assert!(scan_manifest_layering("Cargo.toml", root).is_empty());
    }
}
