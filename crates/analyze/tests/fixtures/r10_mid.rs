// R10 fixture, middle layer (scanned as a coding source): relays the
// dsp allocation one hop up — allocates transitively, never directly.
// Never compiled.

pub fn relay(n: usize) -> Vec<f64> {
    bluefi_dsp::r10_leaf::fresh_buf(n)
}
