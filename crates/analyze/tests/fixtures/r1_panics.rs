//! R1 fixture: five panic-family violations, one hatch-suppressed call,
//! and a `#[cfg(test)]` module the rule must ignore.

/// Five ways to blow up.
pub fn five_violations(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("value");
    if a + b > 100 {
        panic!("too big");
    }
    if a == 9 {
        unimplemented!();
    }
    todo!()
}

/// Suppressed by the escape hatch (reason required).
pub fn suppressed(x: Option<u32>) -> u32 {
    // lint: allow(panic) fixtures demonstrate the escape hatch
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        None::<u32>.unwrap();
    }
}
