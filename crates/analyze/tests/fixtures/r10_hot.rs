// R10 fixture, hot layer (scanned as a wifi source): a hot loop calling
// a direct allocator (1-hop chain) and a cross-crate relay (multi-hop
// chain wifi -> coding -> dsp). Never compiled.

use bluefi_coding::r10_mid::relay;

fn direct_alloc() -> Vec<u8> {
    Vec::with_capacity(16)
}

fn hot(n: usize) {
    for i in 0..n {
        let a = direct_alloc(); // FLAGGED (line 13): 1-hop chain
        let b = relay(i); // FLAGGED (line 14): multi-hop chain to dsp's vec!
        // lint: allow(r10) cold fallback, bounded by the retry budget
        let c = relay(i); // hatched: silent
        let s = bluefi_dsp::r10_leaf::sum(&b); // allocation-free callee: fine
        drop((a, b, c, s));
    }
    let outside = relay(n); // outside the loop: fine
    drop(outside);
}
