//! R7 fixture: ad-hoc prints in library code. Never compiled — scanned
//! under a virtual `crates/core/src/` path by `tests/rules.rs`.

/// Four flagged prints, one per macro.
pub fn noisy(x: u32) -> u32 {
    println!("computing {x}"); // flagged: stdout from a library
    eprintln!("warn: {x}"); // flagged: stderr from a library
    print!("partial"); // flagged
    eprint!("partial err"); // flagged
    x + 1
}

/// The escape hatch silences a deliberate print.
pub fn hatched() {
    println!("boot banner"); // lint: allow(print) one-time startup banner
}

/// Non-calls and buffered writes stay silent.
pub fn quiet(log: &mut String) {
    // A string literal mentioning println! is not a call.
    log.push_str("use println! sparingly");
    let mut s = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(s, "buffered output is fine");
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_prints_are_fine_in_tests() {
        println!("test diagnostics stay visible");
    }
}
