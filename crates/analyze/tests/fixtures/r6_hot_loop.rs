// R6 fixture: per-iteration allocations in hot loops. Never compiled.

fn hoisted_is_fine(items: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(items.len());
    for &x in items {
        out.push(x * 2.0); // reuse of the hoisted buffer: fine
        let tmp = vec![0.0; 4]; // FLAGGED (line 7)
        let plan = FftPlan::new(64); // FLAGGED (line 8)
        let cap = Vec::with_capacity(9); // FLAGGED (line 9)
        drop((tmp, plan, cap));
    }
    out
}

fn while_loops_count(mut n: usize) {
    while n > 0 {
        // lint: allow(r6) warm-up path, runs at most once per packet
        let hatched = vec![0u8; n];
        let unhatched = vec![1u8; n]; // FLAGGED (line 19)
        drop((hatched, unhatched));
        n -= 1;
    }
}

fn headers_are_exempt() {
    for v in vec![1, 2, 3] {
        drop(v);
    }
    let after = vec![0; 2]; // outside any loop: fine
    drop(after);
}

fn trellis_style_boxed_state(steps: &[u8]) {
    let hoisted = Box::new([0u64; 64]); // once per scratch: fine
    let mut survivors = steps.to_vec(); // hoisted copy: fine
    for &s in steps {
        let per_step = Box::new([s as u64; 64]); // FLAGGED (line 37)
        let copied = survivors.to_vec(); // FLAGGED (line 38)
        survivors.push(s);
        drop((per_step, copied));
    }
    drop(hoisted);
}

#[cfg(test)]
mod tests {
    fn test_code_is_exempt() {
        for _ in 0..3 {
            let v = vec![0; 8];
            drop(v);
        }
    }
}
