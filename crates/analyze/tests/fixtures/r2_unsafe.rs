//! R2 fixture: one `unsafe` block (flagged) and one hatch-suppressed.

/// Reads a byte the hard way.
pub fn flagged(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Suppressed by the escape hatch.
pub fn suppressed(p: *const u8) -> u8 {
    // lint: allow(unsafe) fixtures demonstrate the hatch
    unsafe { *p }
}
