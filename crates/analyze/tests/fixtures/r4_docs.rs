//! R4 fixture: undocumented fully-public functions; documented,
//! attribute-stacked, and restricted-visibility functions must all pass.

/// Documented.
pub fn documented() {}

pub fn bare() {}

/// Documented through an attribute stack.
#[inline]
#[must_use]
pub fn attributed() -> u32 {
    42
}

pub(crate) fn restricted() {}

pub(super) fn upward_restricted() {}

pub(in crate::detail) fn path_restricted() {}

pub struct Api;

impl Api {
    pub fn method_bare(&self) {}

    /// Documented method.
    pub fn method_documented(&self) {}

    pub(crate) fn method_internal(&self) {}
}
