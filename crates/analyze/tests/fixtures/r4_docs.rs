//! R4 fixture: one undocumented `pub fn`; documented, attribute-stacked,
//! and restricted-visibility functions must all pass.

/// Documented.
pub fn documented() {}

pub fn bare() {}

/// Documented through an attribute stack.
#[inline]
#[must_use]
pub fn attributed() -> u32 {
    42
}

pub(crate) fn restricted() {}
