//! R5 fixture: two float equalities (a literal and an associated
//! constant), one suppressed; integer and ordering comparisons untouched.

/// Compares floats exactly — twice.
pub fn flagged(x: f64, y: f64, n: usize) -> bool {
    let a = x == 0.0;
    let b = y != f64::INFINITY;
    let c = n == 52;
    let d = x <= 1.0;
    a && b && c && d
}

/// Suppressed sentinel comparison.
pub fn suppressed(offset: f64) -> bool {
    // lint: allow(float-eq) exact 0.0 is a sentinel in this fixture
    offset == 0.0
}
