// R8 fixture (scanned as a wifi source): upward and sibling crate
// references against the layer DAG. Never compiled.

use bluefi_dsp::fft::fft_plan; // downward: fine
use bluefi_core::telemetry::Counter; // FLAGGED (line 5): upward
use bluefi_bt::gfsk::modulate; // FLAGGED (line 6): sibling layer

// lint: allow(layering) doc-generation helper, not a shipped edge
use bluefi_sim::mac::Slot; // hatched: silent

fn peek() -> usize {
    bluefi_apps::audio::latency_samples() // FLAGGED (line 12): upward path
}

#[cfg(test)]
mod tests {
    use bluefi_core::json::Json; // dev-dependency edge: exempt in test code
}
