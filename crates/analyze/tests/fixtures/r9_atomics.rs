// R9 fixture (scanned as a core source): strong orderings and
// load->store lost-update windows. Never compiled.

use std::sync::atomic::{AtomicU64, Ordering};

fn strong_orderings(a: &AtomicU64) {
    a.store(1, Ordering::SeqCst); // FLAGGED (line 7): unjustified fence
    // lint: allow(atomic-ordering) init handshake publishes before spawn
    a.store(2, Ordering::AcqRel); // hatched: silent
    a.store(3, Ordering::Relaxed); // fine
}

fn lost_update(c: &AtomicU64) {
    let v = c.load(Ordering::Relaxed);
    c.store(v + 1, Ordering::Relaxed); // FLAGGED (line 15): racy two-step RMW
}

fn self_feeding_store(c: &AtomicU64) {
    c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed); // FLAGGED (line 19)
}

fn proper_rmw(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // fine: atomic read-modify-write
}

fn distinct_atomics(c: &AtomicU64, d: &AtomicU64) {
    let v = c.load(Ordering::Relaxed);
    d.store(v, Ordering::Relaxed); // different receiver: fine
}

fn far_apart(c: &AtomicU64) {
    let v = c.load(Ordering::Relaxed);
    let a = v + 1;
    let b = a * 2;
    let z = b ^ a;
    let w = z.rotate_left(1);
    c.store(w, Ordering::Relaxed); // > 3 statements after the load: fine
}

#[cfg(test)]
mod tests {
    use super::*;
    fn test_code_is_exempt(a: &AtomicU64) {
        a.store(9, Ordering::SeqCst);
    }
}
