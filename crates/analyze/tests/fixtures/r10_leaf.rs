// R10 fixture, leaf layer (scanned as a dsp source): the allocating
// helper the chain bottoms out in. Never compiled.

/// Allocates a fresh buffer every call.
pub fn fresh_buf(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

/// Allocation-free helper.
pub fn sum(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    for &x in xs {
        s += x;
    }
    s
}
