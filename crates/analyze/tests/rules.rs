//! Proves every rule fires: each fixture under `tests/fixtures/` carries a
//! known set of violations (plus suppressed/exempt cases), and these tests
//! pin the exact diagnostic counts, lines, and `file:line` rendering.
//!
//! Fixtures are scanned under *virtual* workspace paths (e.g.
//! `crates/dsp/src/...`) so the scope rules treat them as signal-crate
//! library code; the files themselves are never compiled.

use bluefi_analyze::{analyze_files, manifests, scan_source, scan_source_full, Rule};

fn lines_of(diags: &[bluefi_analyze::Diagnostic], rule: Rule) -> Vec<usize> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn r1_fires_on_every_panic_family_member() {
    let src = include_str!("fixtures/r1_panics.rs");
    let diags = scan_source("crates/dsp/src/r1_panics.rs", src);
    // unwrap, expect, panic!, unimplemented!, todo! — and nothing else:
    // the hatched call and the #[cfg(test)] module stay silent.
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::NoPanics));
    assert_eq!(lines_of(&diags, Rule::NoPanics), vec![6, 7, 9, 12, 14]);
    assert_eq!(
        diags[0].to_string(),
        "crates/dsp/src/r1_panics.rs:6: [R1 no-panic] `.unwrap` in library code — \
         return Result/Option or add `// lint: allow(panic) <reason>`"
    );
}

#[test]
fn r2_fires_on_unallowlisted_unsafe() {
    let src = include_str!("fixtures/r2_unsafe.rs");
    let diags = scan_source("crates/dsp/src/r2_unsafe.rs", src);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, Rule::NoUnsafe);
    assert_eq!(diags[0].line, 5);
    assert!(diags[0].to_string().starts_with("crates/dsp/src/r2_unsafe.rs:5: [R2 no-unsafe]"));
}

#[test]
fn r3_fires_on_external_and_banned_dependencies() {
    let text = include_str!("fixtures/r3_manifest.toml");
    let diags = manifests::scan_manifest("crates/fixture/NotCargo.toml", text);
    // serde: external dep + banned name (2 findings, same line);
    // quickcheck: external dep (1 finding). bluefi-dsp passes.
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::HermeticManifests));
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![11, 11, 14]);
    assert!(diags[0].to_string().contains("`serde`"));
    assert!(diags[2].to_string().contains("`quickcheck`"));
}

#[test]
fn r4_fires_on_undocumented_fully_public_fns_only() {
    let src = include_str!("fixtures/r4_docs.rs");
    let diags = scan_source("crates/dsp/src/r4_docs.rs", src);
    // `bare` and the bare impl method; every restricted-visibility fn
    // (pub(crate), pub(super), pub(in ...)) is internal API and exempt.
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::DocComments));
    assert_eq!(lines_of(&diags, Rule::DocComments), vec![7, 25]);
    assert_eq!(
        diags[0].to_string(),
        "crates/dsp/src/r4_docs.rs:7: [R4 doc-comments] public function `bare` has no doc comment"
    );
    assert!(diags[1].to_string().contains("`method_bare`"));
}

#[test]
fn r5_fires_on_float_equality() {
    let src = include_str!("fixtures/r5_float_eq.rs");
    let diags = scan_source("crates/dsp/src/r5_float_eq.rs", src);
    // Literal 0.0 and f64::INFINITY; the integer ==, the <=, and the
    // hatched sentinel all pass.
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::NoFloatEq));
    assert_eq!(lines_of(&diags, Rule::NoFloatEq), vec![6, 7]);
    assert!(diags[0].to_string().starts_with("crates/dsp/src/r5_float_eq.rs:6: [R5 no-float-eq]"));
}

#[test]
fn r6_fires_on_hot_loop_allocations() {
    let src = include_str!("fixtures/r6_hot_loop.rs");
    let diags = scan_source("crates/dsp/src/r6_hot_loop.rs", src);
    let r6: Vec<usize> = lines_of(&diags, Rule::HotLoopAlloc);
    // vec!, FftPlan::new, Vec::with_capacity inside the for body; the
    // unhatched vec! in the while body; Box::new and .to_vec() in the
    // trellis-style loop. Hoisted/hatched/header/test-code allocations
    // stay silent.
    assert_eq!(r6, vec![7, 8, 9, 19, 37, 38], "{diags:#?}");
    assert!(diags
        .iter()
        .find(|d| d.rule == Rule::HotLoopAlloc)
        .unwrap()
        .to_string()
        .starts_with("crates/dsp/src/r6_hot_loop.rs:7: [R6 no-hot-loop-alloc]"));
    // The coding crate (home of the trellis/traceback modules) is in
    // scope: the same fixture fires identically there.
    let diags = scan_source("crates/coding/src/trellis.rs", src);
    assert_eq!(lines_of(&diags, Rule::HotLoopAlloc), vec![7, 8, 9, 19, 37, 38]);
    // Out of scope in `core` (the pipeline intentionally clones results).
    let diags = scan_source("crates/core/src/r6_hot_loop.rs", src);
    assert!(lines_of(&diags, Rule::HotLoopAlloc).is_empty());
}

#[test]
fn r7_fires_on_adhoc_prints_in_library_code() {
    let src = include_str!("fixtures/r7_print.rs");
    let diags = scan_source("crates/core/src/r7_print.rs", src);
    let r7 = lines_of(&diags, Rule::AdhocPrint);
    // println!, eprintln!, print!, eprint! in `noisy`; the hatched banner,
    // the string literal, the writeln! into a buffer, and the #[cfg(test)]
    // print all stay silent.
    assert_eq!(r7, vec![6, 7, 8, 9], "{diags:#?}");
    assert!(diags
        .iter()
        .find(|d| d.rule == Rule::AdhocPrint)
        .unwrap()
        .to_string()
        .starts_with("crates/core/src/r7_print.rs:6: [R7 no-adhoc-print]"));
    // Binaries render the tables — out of scope there, and in bench's lib
    // (the Reporter prints by design).
    let diags = scan_source("crates/bench/src/bin/r7_print.rs", src);
    assert!(lines_of(&diags, Rule::AdhocPrint).is_empty());
    let diags = scan_source("crates/bench/src/r7_print.rs", src);
    assert!(lines_of(&diags, Rule::AdhocPrint).is_empty());
}

#[test]
fn r8_fires_on_upward_and_sibling_references() {
    let src = include_str!("fixtures/r8_layering.rs");
    let out = scan_source_full("crates/wifi/src/r8_layering.rs", src);
    let r8 = lines_of(&out.fired, Rule::CrateLayering);
    // core (upward use), bt (sibling use), apps (upward path expression);
    // the dsp use is downward, the hatched sim use and the #[cfg(test)]
    // core use stay silent.
    assert_eq!(r8, vec![5, 6, 12], "{:#?}", out.fired);
    assert_eq!(lines_of(&out.hatched, Rule::CrateLayering), vec![9]);
    assert!(out.fired[0]
        .to_string()
        .starts_with("crates/wifi/src/r8_layering.rs:5: [R8 crate-layering]"));
    assert!(out.fired[0].message.contains("upward"));
    assert!(out.fired[1].message.contains("sibling"));
    // The same file inside `apps` (top of the tree): only the sim use
    // (hatched) and nothing else is upward... core/bt/dsp are all below.
    let out = scan_source_full("crates/apps/src/r8_layering.rs", src);
    assert!(lines_of(&out.fired, Rule::CrateLayering).is_empty(), "{:#?}", out.fired);
}

#[test]
fn r9_fires_on_strong_orderings_and_lost_updates() {
    let src = include_str!("fixtures/r9_atomics.rs");
    let out = scan_source_full("crates/core/src/r9_atomics.rs", src);
    let r9 = lines_of(&out.fired, Rule::AtomicOrdering);
    // SeqCst without a hatch, the two-statement load->store window, and
    // the self-feeding store; the hatched AcqRel, Relaxed stores,
    // fetch_add, cross-atomic store, far-apart store, and test code all
    // stay silent.
    assert_eq!(r9, vec![7, 15, 19], "{:#?}", out.fired);
    assert_eq!(lines_of(&out.hatched, Rule::AtomicOrdering), vec![9]);
    assert!(out.fired[0].message.contains("Ordering::SeqCst"));
    assert!(out.fired[1].message.contains("lost"));
    // Out of scope outside the atomics-bearing crates.
    let out = scan_source_full("crates/sim/src/r9_atomics.rs", src);
    assert!(lines_of(&out.fired, Rule::AtomicOrdering).is_empty());
}

#[test]
fn r10_fires_on_transitive_hot_loop_allocation() {
    let files = vec![
        (
            "crates/dsp/src/r10_leaf.rs".to_string(),
            include_str!("fixtures/r10_leaf.rs").to_string(),
        ),
        (
            "crates/coding/src/r10_mid.rs".to_string(),
            include_str!("fixtures/r10_mid.rs").to_string(),
        ),
        (
            "crates/wifi/src/r10_hot.rs".to_string(),
            include_str!("fixtures/r10_hot.rs").to_string(),
        ),
    ];
    let out = analyze_files(&files);
    let r10: Vec<&bluefi_analyze::Diagnostic> =
        out.fired.iter().filter(|d| d.rule == Rule::TransitiveAlloc).collect();
    // The 1-hop call and the multi-hop relay; the hatched relay, the
    // allocation-free callee, and the call outside the loop stay silent.
    assert_eq!(r10.len(), 2, "{:#?}", out.fired);
    assert!(r10.iter().all(|d| d.file == "crates/wifi/src/r10_hot.rs"));
    assert_eq!(r10[0].line, 13);
    assert_eq!(r10[1].line, 14);
    // 1-hop chain: callee then the allocation site.
    assert_eq!(r10[0].chain.len(), 2, "{:#?}", r10[0].chain);
    assert!(r10[0].chain[0].contains("wifi::r10_hot::direct_alloc"));
    assert!(r10[0].chain[1].contains("Vec::with_capacity"));
    // Multi-hop chain crosses two crate boundaries down to dsp's vec!.
    assert_eq!(r10[1].chain.len(), 3, "{:#?}", r10[1].chain);
    assert!(r10[1].chain[0].contains("coding::r10_mid::relay"));
    assert!(r10[1].chain[1].contains("dsp::r10_leaf::fresh_buf"));
    assert!(r10[1].chain[2].contains("`vec!"));
    assert!(r10[1].chain[2].contains("crates/dsp/src/r10_leaf.rs:6"));
    // The hatched call site is recorded, not fired.
    assert_eq!(lines_of(&out.hatched, Rule::TransitiveAlloc), vec![16]);
    // No other rule fires on the fixture trio (they are clean by design).
    assert_eq!(out.fired.len(), 2, "{:#?}", out.fired);
}

#[test]
fn scope_disables_rules_outside_signal_crates() {
    // The same R5 fixture scanned as a sim-crate file: R5 is out of scope
    // there, so only rules that apply everywhere could fire (none do).
    let src = include_str!("fixtures/r5_float_eq.rs");
    let diags = scan_source("crates/sim/src/r5_float_eq.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
    // And a binary target is exempt from R1 entirely.
    let src = include_str!("fixtures/r1_panics.rs");
    let diags = scan_source("crates/bench/src/bin/r1_panics.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
}
