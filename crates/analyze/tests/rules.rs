//! Proves every rule fires: each fixture under `tests/fixtures/` carries a
//! known set of violations (plus suppressed/exempt cases), and these tests
//! pin the exact diagnostic counts, lines, and `file:line` rendering.
//!
//! Fixtures are scanned under *virtual* workspace paths (e.g.
//! `crates/dsp/src/...`) so the scope rules treat them as signal-crate
//! library code; the files themselves are never compiled.

use bluefi_analyze::{manifests, scan_source, Rule};

fn lines_of(diags: &[bluefi_analyze::Diagnostic], rule: Rule) -> Vec<usize> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn r1_fires_on_every_panic_family_member() {
    let src = include_str!("fixtures/r1_panics.rs");
    let diags = scan_source("crates/dsp/src/r1_panics.rs", src);
    // unwrap, expect, panic!, unimplemented!, todo! — and nothing else:
    // the hatched call and the #[cfg(test)] module stay silent.
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::NoPanics));
    assert_eq!(lines_of(&diags, Rule::NoPanics), vec![6, 7, 9, 12, 14]);
    assert_eq!(
        diags[0].to_string(),
        "crates/dsp/src/r1_panics.rs:6: [R1 no-panic] `.unwrap` in library code — \
         return Result/Option or add `// lint: allow(panic) <reason>`"
    );
}

#[test]
fn r2_fires_on_unallowlisted_unsafe() {
    let src = include_str!("fixtures/r2_unsafe.rs");
    let diags = scan_source("crates/dsp/src/r2_unsafe.rs", src);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, Rule::NoUnsafe);
    assert_eq!(diags[0].line, 5);
    assert!(diags[0].to_string().starts_with("crates/dsp/src/r2_unsafe.rs:5: [R2 no-unsafe]"));
}

#[test]
fn r3_fires_on_external_and_banned_dependencies() {
    let text = include_str!("fixtures/r3_manifest.toml");
    let diags = manifests::scan_manifest("crates/fixture/NotCargo.toml", text);
    // serde: external dep + banned name (2 findings, same line);
    // quickcheck: external dep (1 finding). bluefi-dsp passes.
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::HermeticManifests));
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![11, 11, 14]);
    assert!(diags[0].to_string().contains("`serde`"));
    assert!(diags[2].to_string().contains("`quickcheck`"));
}

#[test]
fn r4_fires_on_undocumented_pub_fn() {
    let src = include_str!("fixtures/r4_docs.rs");
    let diags = scan_source("crates/dsp/src/r4_docs.rs", src);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, Rule::DocComments);
    assert_eq!(diags[0].line, 7);
    assert_eq!(
        diags[0].to_string(),
        "crates/dsp/src/r4_docs.rs:7: [R4 doc-comments] public function `bare` has no doc comment"
    );
}

#[test]
fn r5_fires_on_float_equality() {
    let src = include_str!("fixtures/r5_float_eq.rs");
    let diags = scan_source("crates/dsp/src/r5_float_eq.rs", src);
    // Literal 0.0 and f64::INFINITY; the integer ==, the <=, and the
    // hatched sentinel all pass.
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == Rule::NoFloatEq));
    assert_eq!(lines_of(&diags, Rule::NoFloatEq), vec![6, 7]);
    assert!(diags[0].to_string().starts_with("crates/dsp/src/r5_float_eq.rs:6: [R5 no-float-eq]"));
}

#[test]
fn r6_fires_on_hot_loop_allocations() {
    let src = include_str!("fixtures/r6_hot_loop.rs");
    let diags = scan_source("crates/dsp/src/r6_hot_loop.rs", src);
    let r6: Vec<usize> = lines_of(&diags, Rule::HotLoopAlloc);
    // vec!, FftPlan::new, Vec::with_capacity inside the for body; the
    // unhatched vec! in the while body; Box::new and .to_vec() in the
    // trellis-style loop. Hoisted/hatched/header/test-code allocations
    // stay silent.
    assert_eq!(r6, vec![7, 8, 9, 19, 37, 38], "{diags:#?}");
    assert!(diags
        .iter()
        .find(|d| d.rule == Rule::HotLoopAlloc)
        .unwrap()
        .to_string()
        .starts_with("crates/dsp/src/r6_hot_loop.rs:7: [R6 no-hot-loop-alloc]"));
    // The coding crate (home of the trellis/traceback modules) is in
    // scope: the same fixture fires identically there.
    let diags = scan_source("crates/coding/src/trellis.rs", src);
    assert_eq!(lines_of(&diags, Rule::HotLoopAlloc), vec![7, 8, 9, 19, 37, 38]);
    // Out of scope in `core` (the pipeline intentionally clones results).
    let diags = scan_source("crates/core/src/r6_hot_loop.rs", src);
    assert!(lines_of(&diags, Rule::HotLoopAlloc).is_empty());
}

#[test]
fn r7_fires_on_adhoc_prints_in_library_code() {
    let src = include_str!("fixtures/r7_print.rs");
    let diags = scan_source("crates/core/src/r7_print.rs", src);
    let r7 = lines_of(&diags, Rule::AdhocPrint);
    // println!, eprintln!, print!, eprint! in `noisy`; the hatched banner,
    // the string literal, the writeln! into a buffer, and the #[cfg(test)]
    // print all stay silent.
    assert_eq!(r7, vec![6, 7, 8, 9], "{diags:#?}");
    assert!(diags
        .iter()
        .find(|d| d.rule == Rule::AdhocPrint)
        .unwrap()
        .to_string()
        .starts_with("crates/core/src/r7_print.rs:6: [R7 no-adhoc-print]"));
    // Binaries render the tables — out of scope there, and in bench's lib
    // (the Reporter prints by design).
    let diags = scan_source("crates/bench/src/bin/r7_print.rs", src);
    assert!(lines_of(&diags, Rule::AdhocPrint).is_empty());
    let diags = scan_source("crates/bench/src/r7_print.rs", src);
    assert!(lines_of(&diags, Rule::AdhocPrint).is_empty());
}

#[test]
fn scope_disables_rules_outside_signal_crates() {
    // The same R5 fixture scanned as a sim-crate file: R5 is out of scope
    // there, so only rules that apply everywhere could fire (none do).
    let src = include_str!("fixtures/r5_float_eq.rs");
    let diags = scan_source("crates/sim/src/r5_float_eq.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
    // And a binary target is exempt from R1 entirely.
    let src = include_str!("fixtures/r1_panics.rs");
    let diags = scan_source("crates/bench/src/bin/r1_panics.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
}
