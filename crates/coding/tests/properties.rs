//! Randomized-property tests for every invariant the coding substrate
//! promises, on the in-tree `bluefi_core::check` harness.

use bluefi_coding::bch::{check_sync_word, sync_word};
use bluefi_coding::convolutional::encode_r12;
use bluefi_coding::crc::{crc16_bits, crc16_check, crc24_bits, crc24_check, BLE_ADV_CRC_INIT};
use bluefi_coding::hamming::{decode15_10, decode_r13, encode15_10, encode_r13, BlockStatus};
use bluefi_coding::lfsr::{ble_whiten, recover_seed, scramble};
use bluefi_coding::puncture::{depuncture, puncture, CodeRate, RxBit};
use bluefi_coding::realtime::{protected_mask, RealtimePlan};
use bluefi_coding::viterbi::{decode_punctured, decode_punctured_scalar, reencode_flips};
use bluefi_coding::FreeEdge;
use bluefi_core::check::{bools, check};
use bluefi_core::rng::{Rng, SeedableRng, StdRng};
use bluefi_core::{prop_assert, prop_assert_eq};

#[test]
fn scramble_is_involution() {
    check(
        "scramble_is_involution",
        |rng| (rng.gen_range(1u8..128), bools(rng, 0..300)),
        |(seed, bits)| {
            prop_assert_eq!(scramble(*seed, &scramble(*seed, bits)), *bits);
            Ok(())
        },
    );
}

#[test]
fn scrambler_seed_recovery() {
    check(
        "scrambler_seed_recovery",
        |rng| rng.gen_range(1u8..128),
        |&seed| {
            let scrambled = scramble(seed, &vec![false; 16]);
            prop_assert_eq!(recover_seed(&scrambled), Some(seed));
            Ok(())
        },
    );
}

#[test]
fn ble_whitening_involution() {
    check(
        "ble_whitening_involution",
        |rng| (rng.gen_range(0u8..40), bools(rng, 0..200)),
        |(ch, bits)| {
            prop_assert_eq!(ble_whiten(*ch, &ble_whiten(*ch, bits)), *bits);
            Ok(())
        },
    );
}

#[test]
fn convolutional_code_is_linear() {
    check(
        "convolutional_code_is_linear",
        |rng| (bools(rng, 30..31), bools(rng, 30..31)),
        |(a, b)| {
            let sum: Vec<bool> = a.iter().zip(b).map(|(x, y)| x ^ y).collect();
            let ea = encode_r12(a);
            let eb = encode_r12(b);
            let esum = encode_r12(&sum);
            let xor: Vec<bool> = ea.iter().zip(&eb).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(esum, xor);
            Ok(())
        },
    );
}

#[test]
fn viterbi_inverts_noiseless_encoding() {
    check(
        "viterbi_inverts_noiseless_encoding",
        |rng| (bools(rng, 30..31), rng.gen_range(0usize..4)),
        |(data, rate_idx)| {
            let rate = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56][*rate_idx];
            let tx = puncture(rate, &encode_r12(data));
            let dec = decode_punctured(rate, &tx, None, false);
            prop_assert_eq!(dec, *data);
            Ok(())
        },
    );
}

#[test]
fn depuncture_preserves_transmitted_bits() {
    check(
        "depuncture_preserves_transmitted_bits",
        |rng| (bools(rng, 30..31), rng.gen_range(0usize..4)),
        |(data, rate_idx)| {
            let rate = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56][*rate_idx];
            let mother = encode_r12(data);
            let tx = puncture(rate, &mother);
            let rx = depuncture(rate, &tx, None);
            let survived: Vec<bool> = rx
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    RxBit::Bit { value, .. } => Some(*value == mother[i]),
                    RxBit::Erasure => None,
                })
                .collect();
            prop_assert!(survived.iter().all(|&ok| ok));
            prop_assert_eq!(survived.len(), tx.len());
            Ok(())
        },
    );
}

#[test]
fn realtime_plan_never_flips_protected() {
    check(
        "realtime_plan_never_flips_protected",
        |rng| (bools(rng, 39 * 4..39 * 4 + 1), rng.gen::<bool>()),
        |(target, front)| {
            let edge = if *front { FreeEdge::Front } else { FreeEdge::Back };
            let plan = RealtimePlan::new(target.len(), edge);
            let out = plan.decode(target);
            let mask = protected_mask(target.len(), edge);
            for &f in &out.flips {
                prop_assert!(!mask[f], "protected bit {} flipped", f);
            }
            // The paper's guarantee: at most 1/3 of bits flip.
            prop_assert!(out.flips.len() * 3 <= target.len());
            Ok(())
        },
    );
}

#[test]
fn packed_engine_matches_scalar_reference() {
    // The bit-packed trellis engine must agree with the scalar reference
    // decoder on every rate, termination mode, corruption pattern, and —
    // critically — every metric-width kernel the weight magnitudes can
    // dispatch to (u16 renormalizing, u32, u64).
    check(
        "packed_engine_matches_scalar_reference",
        |rng| {
            // 30 = lcm of the puncturing periods, so every rate divides.
            let data = bools(rng, 30..31);
            let rate_idx = rng.gen_range(0usize..4);
            let wclass = rng.gen_range(0usize..4);
            let terminate = rng.gen::<bool>();
            let seed = rng.gen::<u64>();
            (data, rate_idx, wclass, terminate, seed)
        },
        |(data, rate_idx, wclass, terminate, seed)| {
            let rate = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56][*rate_idx];
            let mut tx = puncture(rate, &encode_r12(data));
            let mut rng = StdRng::seed_from_u64(*seed);
            for bit in tx.iter_mut() {
                if rng.gen_range(0u32..8) == 0 {
                    *bit = !*bit;
                }
            }
            // One weight class per kernel: unweighted and small weights
            // take the renormalizing u16 path, mid-size weights the u32
            // path, and huge weights (total budget above 2^26) the u64
            // path.
            let weights: Option<Vec<u32>> = match wclass {
                0 => None,
                1 => Some((0..tx.len()).map(|_| rng.gen_range(1u32..1_166)).collect()),
                2 => Some((0..tx.len()).map(|_| rng.gen_range(2_000u32..50_001)).collect()),
                _ => Some((0..tx.len()).map(|_| rng.gen_range(1u32 << 22..1 << 24)).collect()),
            };
            let w = weights.as_deref();
            let packed = decode_punctured(rate, &tx, w, *terminate);
            let scalar = decode_punctured_scalar(rate, &tx, w, *terminate);
            prop_assert_eq!(packed, scalar);
            Ok(())
        },
    );
}

#[test]
fn weighted_viterbi_respects_infinite_weight_stripes() {
    check(
        "weighted_viterbi_respects_infinite_weight_stripes",
        |rng| bools(rng, 60..61),
        |data| {
            // Random target (not a codeword): protect positions i % 13 >= 6.
            let rate = CodeRate::R56;
            let n = data.len() * 6 / 5 - (data.len() * 6 / 5) % rate.period_outputs();
            let target: Vec<bool> = (0..n).map(|i| data[i % data.len()] ^ (i % 7 == 3)).collect();
            let weights: Vec<u32> = (0..n).map(|i| if i % 13 >= 6 { 1000 } else { 1 }).collect();
            let dec = decode_punctured(rate, &target, Some(&weights), false);
            for f in reencode_flips(rate, &dec, &target) {
                prop_assert!(f % 13 < 6, "protected stripe bit {} flipped", f);
            }
            Ok(())
        },
    );
}

#[test]
fn crc16_detects_any_single_flip() {
    check(
        "crc16_detects_any_single_flip",
        |rng| {
            let payload = bools(rng, 1..120);
            let flip = rng.gen_range(0usize..payload.len());
            (rng.gen::<u8>(), payload, flip)
        },
        |(uap, payload, flip)| {
            let crc = crc16_bits(*uap, payload);
            let mut bad = payload.clone();
            bad[*flip] = !bad[*flip];
            prop_assert!(crc16_check(*uap, payload, &crc));
            prop_assert!(!crc16_check(*uap, &bad, &crc));
            Ok(())
        },
    );
}

#[test]
fn crc24_detects_any_single_flip() {
    check(
        "crc24_detects_any_single_flip",
        |rng| {
            let pdu = bools(rng, 1..200);
            let flip = rng.gen_range(0usize..pdu.len());
            (pdu, flip)
        },
        |(pdu, flip)| {
            let crc = crc24_bits(BLE_ADV_CRC_INIT, pdu);
            let mut bad = pdu.clone();
            bad[*flip] = !bad[*flip];
            prop_assert!(crc24_check(BLE_ADV_CRC_INIT, pdu, &crc));
            prop_assert!(!crc24_check(BLE_ADV_CRC_INIT, &bad, &crc));
            Ok(())
        },
    );
}

#[test]
fn hamming_corrects_every_single_error() {
    check(
        "hamming_corrects_every_single_error",
        |rng| (bools(rng, 10..11), rng.gen_range(0usize..15)),
        |(data, pos)| {
            let mut cw = encode15_10(data);
            cw[*pos] = !cw[*pos];
            let (dec, status) = decode15_10(&cw);
            prop_assert_eq!(status, BlockStatus::Corrected);
            prop_assert_eq!(dec, *data);
            Ok(())
        },
    );
}

#[test]
fn repetition_majority_beats_one_error_per_triplet() {
    check(
        "repetition_majority_beats_one_error_per_triplet",
        |rng| {
            let data = bools(rng, 1..40);
            let which: Vec<usize> =
                (0..data.len()).map(|_| rng.gen_range(0usize..3)).collect();
            (data, which)
        },
        |(data, which)| {
            let mut enc = encode_r13(data);
            for (t, &w) in which.iter().enumerate().take(data.len()) {
                enc[t * 3 + w] = !enc[t * 3 + w];
            }
            prop_assert_eq!(decode_r13(&enc), *data);
            Ok(())
        },
    );
}

#[test]
fn sync_words_roundtrip_and_reject_corruption() {
    check(
        "sync_words_roundtrip_and_reject_corruption",
        |rng| (rng.gen_range(0u32..1 << 24), rng.gen_range(0u32..64)),
        |&(lap, bit)| {
            let sw = sync_word(lap);
            prop_assert_eq!(check_sync_word(sw), Some(lap));
            prop_assert_eq!(check_sync_word(sw ^ (1u64 << bit)), None);
            Ok(())
        },
    );
}
