//! Property-based tests for every invariant the coding substrate promises.

use bluefi_coding::bch::{check_sync_word, sync_word};
use bluefi_coding::convolutional::encode_r12;
use bluefi_coding::crc::{crc16_bits, crc16_check, crc24_bits, crc24_check, BLE_ADV_CRC_INIT};
use bluefi_coding::hamming::{decode15_10, decode_r13, encode15_10, encode_r13, BlockStatus};
use bluefi_coding::lfsr::{ble_whiten, recover_seed, scramble};
use bluefi_coding::puncture::{depuncture, puncture, CodeRate, RxBit};
use bluefi_coding::realtime::{protected_mask, RealtimePlan};
use bluefi_coding::viterbi::{decode_punctured, reencode_flips};
use bluefi_coding::FreeEdge;
use proptest::prelude::*;

proptest! {
    #[test]
    fn scramble_is_involution(seed in 1u8..128, bits in prop::collection::vec(any::<bool>(), 0..300)) {
        prop_assert_eq!(scramble(seed, &scramble(seed, &bits)), bits);
    }

    #[test]
    fn scrambler_seed_recovery(seed in 1u8..128) {
        let scrambled = scramble(seed, &vec![false; 16]);
        prop_assert_eq!(recover_seed(&scrambled), Some(seed));
    }

    #[test]
    fn ble_whitening_involution(ch in 0u8..40, bits in prop::collection::vec(any::<bool>(), 0..200)) {
        prop_assert_eq!(ble_whiten(ch, &ble_whiten(ch, &bits)), bits);
    }

    #[test]
    fn convolutional_code_is_linear(
        a in prop::collection::vec(any::<bool>(), 30),
        b in prop::collection::vec(any::<bool>(), 30),
    ) {
        let sum: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ea = encode_r12(&a);
        let eb = encode_r12(&b);
        let esum = encode_r12(&sum);
        let xor: Vec<bool> = ea.iter().zip(&eb).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(esum, xor);
    }

    #[test]
    fn viterbi_inverts_noiseless_encoding(
        data in prop::collection::vec(any::<bool>(), 30),
        rate_idx in 0usize..4,
    ) {
        let rate = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56][rate_idx];
        let tx = puncture(rate, &encode_r12(&data));
        let dec = decode_punctured(rate, &tx, None, false);
        prop_assert_eq!(dec, data);
    }

    #[test]
    fn depuncture_preserves_transmitted_bits(
        data in prop::collection::vec(any::<bool>(), 30),
        rate_idx in 0usize..4,
    ) {
        let rate = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56][rate_idx];
        let mother = encode_r12(&data);
        let tx = puncture(rate, &mother);
        let rx = depuncture(rate, &tx, None);
        let survived: Vec<bool> = rx
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                RxBit::Bit { value, .. } => Some(*value == mother[i]),
                RxBit::Erasure => None,
            })
            .collect();
        prop_assert!(survived.iter().all(|&ok| ok));
        prop_assert_eq!(survived.len(), tx.len());
    }

    #[test]
    fn realtime_plan_never_flips_protected(
        target in prop::collection::vec(any::<bool>(), 39 * 4..=39 * 4),
        front in any::<bool>(),
    ) {
        let edge = if front { FreeEdge::Front } else { FreeEdge::Back };
        let plan = RealtimePlan::new(target.len(), edge);
        let out = plan.decode(&target);
        let mask = protected_mask(target.len(), edge);
        for &f in &out.flips {
            prop_assert!(!mask[f], "protected bit {} flipped", f);
        }
        // The paper's guarantee: at most 1/3 of bits flip.
        prop_assert!(out.flips.len() * 3 <= target.len());
    }

    #[test]
    fn weighted_viterbi_respects_infinite_weight_stripes(
        data in prop::collection::vec(any::<bool>(), 60),
    ) {
        // Random target (not a codeword): protect positions i % 13 >= 6.
        let rate = CodeRate::R56;
        let n = data.len() * 6 / 5 - (data.len() * 6 / 5) % rate.period_outputs();
        let target: Vec<bool> = (0..n).map(|i| data[i % data.len()] ^ (i % 7 == 3)).collect();
        let weights: Vec<u32> = (0..n).map(|i| if i % 13 >= 6 { 1000 } else { 1 }).collect();
        let dec = decode_punctured(rate, &target, Some(&weights), false);
        for f in reencode_flips(rate, &dec, &target) {
            prop_assert!(f % 13 < 6, "protected stripe bit {} flipped", f);
        }
    }

    #[test]
    fn crc16_detects_any_single_flip(
        uap in any::<u8>(),
        payload in prop::collection::vec(any::<bool>(), 1..120),
        flip in any::<prop::sample::Index>(),
    ) {
        let crc = crc16_bits(uap, &payload);
        let mut bad = payload.clone();
        let i = flip.index(bad.len());
        bad[i] = !bad[i];
        prop_assert!(crc16_check(uap, &payload, &crc));
        prop_assert!(!crc16_check(uap, &bad, &crc));
    }

    #[test]
    fn crc24_detects_any_single_flip(
        pdu in prop::collection::vec(any::<bool>(), 1..200),
        flip in any::<prop::sample::Index>(),
    ) {
        let crc = crc24_bits(BLE_ADV_CRC_INIT, &pdu);
        let mut bad = pdu.clone();
        let i = flip.index(bad.len());
        bad[i] = !bad[i];
        prop_assert!(crc24_check(BLE_ADV_CRC_INIT, &pdu, &crc));
        prop_assert!(!crc24_check(BLE_ADV_CRC_INIT, &bad, &crc));
    }

    #[test]
    fn hamming_corrects_every_single_error(
        data in prop::collection::vec(any::<bool>(), 10),
        pos in 0usize..15,
    ) {
        let mut cw = encode15_10(&data);
        cw[pos] = !cw[pos];
        let (dec, status) = decode15_10(&cw);
        prop_assert_eq!(status, BlockStatus::Corrected);
        prop_assert_eq!(dec, data);
    }

    #[test]
    fn repetition_majority_beats_one_error_per_triplet(
        data in prop::collection::vec(any::<bool>(), 1..40),
        which in prop::collection::vec(0usize..3, 1..40),
    ) {
        let mut enc = encode_r13(&data);
        for (t, &w) in which.iter().enumerate().take(data.len()) {
            enc[t * 3 + w] = !enc[t * 3 + w];
        }
        prop_assert_eq!(decode_r13(&enc), data);
    }

    #[test]
    fn sync_words_roundtrip_and_reject_corruption(lap in 0u32..(1 << 24), bit in 0u32..64) {
        let sw = sync_word(lap);
        prop_assert_eq!(check_sync_word(sw), Some(lap));
        prop_assert_eq!(check_sync_word(sw ^ (1u64 << bit)), None);
    }
}
