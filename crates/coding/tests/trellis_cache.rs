//! Integration tests for the process-wide trellis-plan intern table and
//! the per-scratch decode memo.
//!
//! These run as a separate test binary on purpose: the intern table is
//! process-global state, and a dedicated process keeps the counts below
//! deterministic (unit tests in the library crate would race them).

use bluefi_coding::puncture::CodeRate;
use bluefi_coding::trellis::{interned_plan_count, trellis_plan};
use bluefi_coding::viterbi::ViterbiScratch;
use bluefi_coding::{convolutional::encode_r12, puncture::puncture};
use std::sync::Arc;

const RATES: [CodeRate; 4] = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56];

/// Concurrent first-users of one (rate, length) key must all receive the
/// *same* interned plan — no lost-race duplicate construction. The intern
/// holds its lock across the build, so this pins the Arc identity, not
/// just structural equality.
#[test]
fn concurrent_first_use_interns_one_plan() {
    let n_tx = CodeRate::R34.period_outputs() * 64;
    let plans: Vec<Arc<_>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(move || trellis_plan(CodeRate::R34, n_tx)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p), "racing first-use built a duplicate plan");
    }
    assert_eq!(plans[0].rate(), CodeRate::R34);
    assert_eq!(plans[0].n_tx(), n_tx);
}

/// Re-requesting interned keys never rebuilds or evicts: the table grows
/// once per distinct key and then stays put, and every hit returns the
/// original Arc.
#[test]
fn reuse_is_eviction_free_across_keys() {
    let mut keys: Vec<(CodeRate, usize)> = RATES
        .iter()
        .flat_map(|&r| (1..=3).map(move |k| (r, r.period_outputs() * 16 * k)))
        .collect();
    // The sibling tests in this binary share the process-global table;
    // covering their keys here keeps the count assertion interleaving-proof.
    keys.push((CodeRate::R34, CodeRate::R34.period_outputs() * 64));
    keys.push((CodeRate::R23, 60));
    keys.sort_by_key(|&(r, n)| (r as usize, n));
    keys.dedup();
    let first: Vec<Arc<_>> = keys.iter().map(|&(r, n)| trellis_plan(r, n)).collect();
    let after_first = interned_plan_count();
    assert!(after_first >= keys.len(), "every distinct key must be interned");
    for round in 0..3 {
        for (i, &(r, n)) in keys.iter().enumerate() {
            let again = trellis_plan(r, n);
            assert!(Arc::ptr_eq(&first[i], &again), "round {round}: key {i} was rebuilt");
        }
        assert_eq!(interned_plan_count(), after_first, "round {round}: table size changed");
    }
}

/// The scratch-level decode memo replays a repeated (rate, payload,
/// weights) decode without re-running the trellis, and invalidates on any
/// input change.
#[test]
fn decode_memo_hits_only_on_identical_inputs() {
    let data: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
    let tx = puncture(CodeRate::R23, &encode_r12(&data));
    let weights: Vec<u32> = (0..tx.len()).map(|i| 1 + (i as u32 % 7)).collect();

    let mut vit = ViterbiScratch::new();
    let mut out = Vec::new();

    vit.decode_punctured_into(CodeRate::R23, &tx, Some(&weights), false, &mut out);
    assert_eq!(out, data);
    assert!(!vit.last_decode_memoized(), "first decode cannot hit the memo");
    assert_eq!(vit.memo_hits(), 0);

    // Identical repeat: served from the memo, identical output.
    let mut repeat = Vec::new();
    vit.decode_punctured_into(CodeRate::R23, &tx, Some(&weights), false, &mut repeat);
    assert_eq!(repeat, data);
    assert!(vit.last_decode_memoized());
    assert_eq!(vit.memo_hits(), 1);

    // Any input change must miss: weights, termination, then payload.
    let mut bumped = weights.clone();
    bumped[0] += 1;
    vit.decode_punctured_into(CodeRate::R23, &tx, Some(&bumped), false, &mut out);
    assert!(!vit.last_decode_memoized(), "changed weights must invalidate");
    vit.decode_punctured_into(CodeRate::R23, &tx, Some(&bumped), true, &mut out);
    assert!(!vit.last_decode_memoized(), "changed termination must invalidate");
    let mut flipped = tx.clone();
    flipped[3] = !flipped[3];
    vit.decode_punctured_into(CodeRate::R23, &flipped, Some(&bumped), true, &mut out);
    assert!(!vit.last_decode_memoized(), "changed payload must invalidate");
    assert_eq!(vit.memo_hits(), 1, "misses must not count as hits");

    // And the memo re-arms on the new inputs.
    vit.decode_punctured_into(CodeRate::R23, &flipped, Some(&bumped), true, &mut out);
    assert!(vit.last_decode_memoized());
    assert_eq!(vit.memo_hits(), 2);
}
