//! Bluetooth BR payload/header FEC.
//!
//! * **Rate 1/3**: each header bit is simply repeated three times
//!   (Vol 2 Part B 7.4); decoded by majority vote.
//! * **Rate 2/3**: a (15,10) shortened Hamming code with generator
//!   `g(D) = (D+1)(D⁴+D+1) = D⁵+D⁴+D²+1` (Vol 2 Part B 7.5). Ten data bits
//!   produce five parity bits; single errors in each 15-bit block are
//!   corrected, double errors detected.

/// Generator polynomial for the (15,10) code, coefficients of
/// D⁵+D⁴+D²+1 below the leading term excluded: 0b10101 — see `encode15_10`.
const G15_10: u16 = 0b1_0101; // D^4 + D^2 + 1 terms below D^5

/// Encodes exactly 10 data bits into a 15-bit codeword
/// (10 data bits followed by 5 parity bits). Thin shim over
/// [`encode15_10_into`].
pub fn encode15_10(data: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(15);
    encode15_10_into(data, &mut out);
    out
}

/// Appends the 15-bit codeword for exactly 10 data bits to `out` — the
/// allocation-free core of [`encode15_10`], used per block by
/// [`encode_r23_fec`] so the stream encoder never allocates inside its
/// block loop.
pub fn encode15_10_into(data: &[bool], out: &mut Vec<bool>) {
    assert_eq!(data.len(), 10);
    // Systematic encoding by polynomial division: parity = (data · D⁵) mod g.
    let mut reg: u16 = 0; // 5-bit remainder register
    for &d in data {
        let fb = ((reg >> 4) & 1 == 1) ^ d;
        reg = (reg << 1) & 0x1F;
        if fb {
            reg ^= G15_10 & 0x1F;
        }
    }
    out.extend_from_slice(data);
    for i in (0..5).rev() {
        out.push((reg >> i) & 1 == 1);
    }
}

/// Encodes an arbitrary bit stream with the rate-2/3 FEC. The stream is
/// zero-padded to a multiple of 10 bits first (the caller should track the
/// true length), matching the Bluetooth convention of appending "don't
/// care" bits.
pub fn encode_r23_fec(bits: &[bool]) -> Vec<bool> {
    let mut padded = bits.to_vec();
    while !padded.len().is_multiple_of(10) {
        padded.push(false);
    }
    let mut out = Vec::with_capacity(padded.len() * 3 / 2);
    for block in padded.chunks_exact(10) {
        encode15_10_into(block, &mut out);
    }
    out
}

/// Decode outcome for one (15,10) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStatus {
    /// Codeword was clean.
    Clean,
    /// One bit error corrected.
    Corrected,
    /// Syndrome matched no single-bit error: uncorrectable.
    Failed,
}

/// Decodes one 15-bit block; returns the 10 data bits and the status.
/// Thin shim over [`decode15_10_into`].
pub fn decode15_10(block: &[bool]) -> (Vec<bool>, BlockStatus) {
    let mut out = Vec::with_capacity(10);
    let status = decode15_10_into(block, &mut out);
    (out, status)
}

/// Appends the 10 decoded data bits of one 15-bit block to `out` and
/// returns the block status — the allocation-free core of
/// [`decode15_10`], used per block by [`decode_r23_fec`]. On
/// [`BlockStatus::Failed`] the raw (uncorrected) data bits are appended,
/// matching the shim's behavior.
pub fn decode15_10_into(block: &[bool], out: &mut Vec<bool>) -> BlockStatus {
    assert_eq!(block.len(), 15);
    // Compute the syndrome: divide the entire received word by g.
    let mut reg: u16 = 0;
    for &d in block {
        let fb = ((reg >> 4) & 1 == 1) ^ d;
        reg = (reg << 1) & 0x1F;
        if fb {
            reg ^= G15_10 & 0x1F;
        }
    }
    let start = out.len();
    out.extend_from_slice(&block[..10]);
    if reg == 0 {
        return BlockStatus::Clean;
    }
    // Single-error syndromes: flipping position p yields the syndrome of
    // the unit vector at p. Precompute by running a unit vector through the
    // same division. 15 candidates; tiny, so compute inline.
    let mut hit = None;
    for p in 0..15 {
        let mut r: u16 = 0;
        for i in 0..15 {
            let fb = ((r >> 4) & 1 == 1) ^ (i == p);
            r = (r << 1) & 0x1F;
            if fb {
                r ^= G15_10 & 0x1F;
            }
        }
        if r == reg {
            hit = Some(p);
            break;
        }
    }
    if let Some(p) = hit {
        // A parity-position error (p >= 10) leaves the data bits intact.
        if p < 10 {
            out[start + p] = !out[start + p];
        }
        return BlockStatus::Corrected;
    }
    BlockStatus::Failed
}

/// Decodes a rate-2/3 FEC stream; returns data bits and `true` when all
/// blocks were clean or corrected.
pub fn decode_r23_fec(bits: &[bool]) -> (Vec<bool>, bool) {
    assert_eq!(bits.len() % 15, 0, "rate-2/3 FEC stream must be 15-bit blocks");
    let mut out = Vec::with_capacity(bits.len() / 15 * 10);
    let mut ok = true;
    for block in bits.chunks_exact(15) {
        if decode15_10_into(block, &mut out) == BlockStatus::Failed {
            ok = false;
        }
    }
    (out, ok)
}

/// Rate-1/3 repetition encoding (each bit three times, consecutively).
pub fn encode_r13(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len() * 3);
    for &b in bits {
        out.extend([b, b, b]);
    }
    out
}

/// Rate-1/3 majority decoding.
pub fn decode_r13(bits: &[bool]) -> Vec<bool> {
    assert_eq!(bits.len() % 3, 0);
    bits.chunks_exact(3)
        .map(|c| (c[0] as u8 + c[1] as u8 + c[2] as u8) >= 2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, k: usize) -> Vec<bool> {
        (0..n).map(|i| (i * k + 1) % 3 == 0).collect()
    }

    #[test]
    fn codewords_have_zero_syndrome() {
        for k in 1..8 {
            let data = pattern(10, k);
            let cw = encode15_10(&data);
            let (dec, st) = decode15_10(&cw);
            assert_eq!(st, BlockStatus::Clean);
            assert_eq!(dec, data);
        }
    }

    #[test]
    fn corrects_any_single_bit_error() {
        let data = pattern(10, 3);
        let cw = encode15_10(&data);
        for p in 0..15 {
            let mut rx = cw.clone();
            rx[p] = !rx[p];
            let (dec, st) = decode15_10(&rx);
            assert_eq!(st, BlockStatus::Corrected, "pos {p}");
            assert_eq!(dec, data, "pos {p}");
        }
    }

    #[test]
    fn minimum_distance_is_four() {
        // g = (D+1)(D⁴+D+1): the factor (D+1) adds overall parity, giving
        // d_min = 4 — every pair of distinct codewords differs in ≥4 bits.
        let mut min_d = usize::MAX;
        for v in 1u16..1024 {
            let data: Vec<bool> = (0..10).map(|i| (v >> i) & 1 == 1).collect();
            let w = encode15_10(&data).iter().filter(|&&b| b).count();
            min_d = min_d.min(w);
        }
        assert_eq!(min_d, 4);
    }

    #[test]
    fn stream_roundtrip_with_padding() {
        let bits = pattern(23, 5); // not a multiple of 10
        let enc = encode_r23_fec(&bits);
        assert_eq!(enc.len(), 45); // padded to 30 -> 3 blocks
        let (dec, ok) = decode_r23_fec(&enc);
        assert!(ok);
        assert_eq!(&dec[..23], &bits[..]);
    }

    #[test]
    fn repetition_roundtrip_and_majority() {
        let bits = pattern(17, 2);
        let enc = encode_r13(&bits);
        assert_eq!(enc.len(), 51);
        assert_eq!(decode_r13(&enc), bits);
        // One error per triplet is always corrected.
        let mut rx = enc.clone();
        for i in (0..rx.len()).step_by(3) {
            rx[i] = !rx[i];
        }
        assert_eq!(decode_r13(&rx), bits);
    }

    #[test]
    fn double_error_is_not_miscorrected_to_clean() {
        let data = pattern(10, 7);
        let cw = encode15_10(&data);
        let mut rx = cw.clone();
        rx[0] = !rx[0];
        rx[7] = !rx[7];
        let (_, st) = decode15_10(&rx);
        // d_min = 4: two errors are never mistaken for a clean codeword.
        assert_ne!(st, BlockStatus::Clean);
    }
}
