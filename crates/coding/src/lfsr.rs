//! Linear-feedback shift registers: the 802.11 data scrambler and the
//! Bluetooth whitening sequences.
//!
//! Both standards use the same primitive polynomial `x⁷ + x⁴ + 1`, differing
//! only in initialization and framing:
//!
//! * 802.11 (17.3.5.5): a 7-bit register seeded with a nonzero "scrambler
//!   seed"; the output sequence is XORed onto the PPDU data bits. Because
//!   XOR is an involution, descrambling is the same operation with the same
//!   seed — the property BlueFi's Sec 2.8 relies on.
//! * Bluetooth LE (Vol 6, Part B, 3.2): whitening seeded with the RF channel
//!   index (bit 6 forced to 1).
//! * Bluetooth BR (Vol 2, Part B, 7.2): payload/header whitening seeded from
//!   clock bits (bit 6 forced to 1).

/// The shared 7-bit LFSR, generating the `x⁷ + x⁴ + 1` m-sequence.
///
/// State convention: bit 6 is the oldest stage (`x⁷` side). Each step
/// outputs `s6 ⊕ s3` and shifts that bit into stage 0 — the textbook
/// Fibonacci form of the 802.11 scrambler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr7 {
    state: u8,
}

impl Lfsr7 {
    /// Creates the register with a 7-bit seed.
    ///
    /// # Panics
    /// Panics when the seed is zero (the register would be stuck) or wider
    /// than 7 bits.
    pub fn new(seed: u8) -> Lfsr7 {
        assert!(seed != 0, "an all-zero LFSR seed generates no sequence");
        assert!(seed < 0x80, "seed must fit in 7 bits, got {seed:#x}");
        let lfsr = Lfsr7 { state: seed };
        if bluefi_dsp::contracts::enabled() {
            // Stage contract: x⁷+x⁴+1 is primitive, so every nonzero seed
            // must cycle through all 127 states before returning home.
            let mut probe = lfsr;
            let mut period = 0u32;
            loop {
                probe.next_bit();
                period += 1;
                if probe.state == seed {
                    break;
                }
                bluefi_dsp::contract!(
                    period <= 127,
                    "Lfsr7: seed {seed:#x} did not return within 127 steps"
                );
            }
            bluefi_dsp::contract!(
                period == 127,
                "Lfsr7: seed {seed:#x} has period {period}, expected the full m-sequence 127"
            );
        }
        lfsr
    }

    /// Current register contents.
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Produces the next sequence bit.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        let b = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | b) & 0x7F;
        b == 1
    }

    /// Produces the next `n` bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// The 802.11 frame-synchronous data scrambler.
///
/// `scramble(seed, bits)` XORs the LFSR sequence onto `bits`; applying it
/// twice with the same seed is the identity.
pub fn scramble(seed: u8, bits: &[bool]) -> Vec<bool> {
    let mut lfsr = Lfsr7::new(seed);
    bits.iter().map(|&d| d ^ lfsr.next_bit()).collect()
}

/// Recovers the scrambler seed from the first 7 descrambler-input bits when
/// the plaintext is known to start with zeros (802.11 prepends a 16-bit
/// all-zero SERVICE field precisely so receivers can do this).
///
/// Given the first 7 *scrambled* bits of a stream whose plaintext starts
/// with ≥7 zero bits, the scrambled bits ARE the LFSR output; running the
/// register backwards yields the seed.
pub fn recover_seed(first_scrambled_bits: &[bool]) -> Option<u8> {
    if first_scrambled_bits.len() < 7 {
        return None;
    }
    // Forward: out[i] = s6 ⊕ s3 of the state before step i, and the state
    // shifts that bit in. Observing 7 consecutive outputs determines the
    // state after 7 steps; invert the recurrence to get the initial state.
    // Easier: brute force the 127 possible seeds (tiny, branch-free).
    (1u8..0x80).find(|&seed| {
        let mut l = Lfsr7::new(seed);
        first_scrambled_bits[..7].iter().all(|&b| l.next_bit() == b)
    })
}

/// Bluetooth LE whitening for a given RF channel index (0–39).
///
/// Seed is the 6-bit channel index with bit 6 set (spec Vol 6 Part B 3.2).
/// Self-inverse: apply to whiten, apply again to de-whiten.
pub fn ble_whiten(channel_index: u8, bits: &[bool]) -> Vec<bool> {
    assert!(channel_index < 40, "BLE channel index 0-39, got {channel_index}");
    scramble_with_seed_bit6(0x40 | channel_index, bits)
}

/// Bluetooth BR payload whitening seeded from clock bits CLK₆…CLK₁
/// (spec Vol 2 Part B 7.2): seed = clock bits with bit 6 forced to 1.
pub fn br_whiten(clk6_1: u8, bits: &[bool]) -> Vec<bool> {
    scramble_with_seed_bit6(0x40 | (clk6_1 & 0x3F), bits)
}

fn scramble_with_seed_bit6(seed: u8, bits: &[bool]) -> Vec<bool> {
    let mut lfsr = Lfsr7::new(seed);
    bits.iter().map(|&d| d ^ lfsr.next_bit()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_period_is_127() {
        // x^7+x^4+1 is primitive: every nonzero seed cycles through all 127
        // states before repeating.
        let mut l = Lfsr7::new(1);
        let start = l.state();
        let mut period = 0;
        loop {
            l.next_bit();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 127, "period exceeded 127");
        }
        assert_eq!(period, 127);
    }

    #[test]
    fn all_seeds_produce_shifts_of_one_sequence() {
        // m-sequence property: the set of states visited is the same for all
        // seeds.
        let collect_states = |seed: u8| {
            let mut l = Lfsr7::new(seed);
            let mut s = std::collections::BTreeSet::new();
            for _ in 0..127 {
                s.insert(l.state());
                l.next_bit();
            }
            s
        };
        assert_eq!(collect_states(1), collect_states(71));
    }

    #[test]
    fn scramble_is_involution() {
        let bits: Vec<bool> = (0..300).map(|i| (i * 7 + 3) % 5 < 2).collect();
        for seed in [1u8, 71, 127] {
            assert_eq!(scramble(seed, &scramble(seed, &bits)), bits);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let zeros = vec![false; 64];
        assert_ne!(scramble(1, &zeros), scramble(2, &zeros));
    }

    #[test]
    fn seed_recovery_from_service_field() {
        // 802.11 prepends 16 zero bits; the receiver sees pure LFSR output.
        for seed in [1u8, 42, 71, 126] {
            let service_and_data: Vec<bool> = vec![false; 16];
            let scrambled = scramble(seed, &service_and_data);
            assert_eq!(recover_seed(&scrambled), Some(seed));
        }
    }

    #[test]
    fn seed_recovery_needs_seven_bits() {
        assert_eq!(recover_seed(&[true, false]), None);
    }

    #[test]
    fn ble_whitening_is_involution_and_channel_dependent() {
        let pdu: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for ch in [0u8, 37, 38, 39] {
            assert_eq!(ble_whiten(ch, &ble_whiten(ch, &pdu)), pdu);
        }
        assert_ne!(ble_whiten(37, &pdu), ble_whiten(38, &pdu));
    }

    #[test]
    fn br_whitening_is_involution() {
        let bits: Vec<bool> = (0..100).map(|i| i % 7 < 3).collect();
        for clk in [0u8, 1, 33, 63] {
            assert_eq!(br_whiten(clk, &br_whiten(clk, &bits)), bits);
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_seed_rejected() {
        Lfsr7::new(0);
    }
}
