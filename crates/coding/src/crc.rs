//! Cyclic redundancy checks used by Bluetooth.
//!
//! All three are implemented on bit slices (LSB-first transmission order)
//! with a shared bitwise engine, because packet assembly in this workspace
//! happens at the bit level anyway.
//!
//! * **HEC-8** (BR packet header): `g(D) = D⁸+D⁷+D⁵+D²+D+1`, register
//!   initialized with the UAP.
//! * **CRC-16** (BR payload): CCITT `g(D) = D¹⁶+D¹²+D⁵+1`, register
//!   initialized with the UAP in the upper octet.
//! * **CRC-24** (BLE PDU): `g(D) = D²⁴+D¹⁰+D⁹+D⁶+D⁴+D³+D+1`
//!   (0x00065B), init 0x555555 on advertising channels.

/// Generic bitwise CRC over a bit stream.
///
/// `poly` excludes the top `x^width` term; bits are shifted in one at a
/// time, MSB-of-register-first (the classic serial LFSR-with-input form).
/// Returns the register value.
fn crc_bits(poly: u32, width: u32, init: u32, bits: &[bool]) -> u32 {
    let top = 1u32 << (width - 1);
    let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    let mut reg = init & mask;
    for &b in bits {
        let fb = ((reg & top) != 0) ^ b;
        reg = (reg << 1) & mask;
        if fb {
            reg ^= poly & mask;
        }
    }
    reg
}

/// Bluetooth BR header-error-check (8 bits).
///
/// `uap` initializes the register (spec Vol 2 Part B 7.1.1); `header_bits`
/// are the 10 header fields bits (LT_ADDR, TYPE, FLOW, ARQN, SEQN).
pub fn hec8(uap: u8, header_bits: &[bool]) -> u8 {
    // g(D) = D^8 + D^7 + D^5 + D^2 + D + 1 -> 0b1010_0111 below x^8.
    crc_bits(0b1010_0111, 8, uap as u32, header_bits) as u8
}

/// Verifies a header + appended HEC.
pub fn hec8_check(uap: u8, header_bits: &[bool], hec_bits: &[bool]) -> bool {
    assert_eq!(hec_bits.len(), 8);
    let computed = hec8(uap, header_bits);
    (0..8).all(|i| hec_bits[i] == ((computed >> (7 - i)) & 1 == 1))
}

/// Emits the 8 HEC bits in transmission order (MSB of register first,
/// matching the serial LFSR readout).
pub fn hec8_bits(uap: u8, header_bits: &[bool]) -> Vec<bool> {
    let h = hec8(uap, header_bits);
    (0..8).map(|i| (h >> (7 - i)) & 1 == 1).collect()
}

/// Bluetooth BR payload CRC-16 (CCITT polynomial, UAP-seeded).
pub fn crc16(uap: u8, payload_bits: &[bool]) -> u16 {
    crc_bits(0x1021, 16, (uap as u32) << 8, payload_bits) as u16
}

/// Emits the 16 CRC bits in transmission order.
pub fn crc16_bits(uap: u8, payload_bits: &[bool]) -> Vec<bool> {
    let c = crc16(uap, payload_bits);
    (0..16).map(|i| (c >> (15 - i)) & 1 == 1).collect()
}

/// Verifies payload bits followed by a 16-bit CRC.
pub fn crc16_check(uap: u8, payload_bits: &[bool], crc: &[bool]) -> bool {
    assert_eq!(crc.len(), 16);
    crc16_bits(uap, payload_bits) == crc
}

/// BLE CRC-24 over a PDU (advertising-channel init 0x555555).
pub fn crc24(init: u32, pdu_bits: &[bool]) -> u32 {
    crc_bits(0x00065B, 24, init, pdu_bits)
}

/// Default BLE advertising-channel CRC init value.
pub const BLE_ADV_CRC_INIT: u32 = 0x555555;

/// Emits the 24 CRC bits in BLE transmission order (the spec sends the CRC
/// most-significant bit first).
pub fn crc24_bits(init: u32, pdu_bits: &[bool]) -> Vec<bool> {
    let c = crc24(init, pdu_bits);
    (0..24).map(|i| (c >> (23 - i)) & 1 == 1).collect()
}

/// Verifies a PDU followed by its 24-bit CRC.
pub fn crc24_check(init: u32, pdu_bits: &[bool], crc: &[bool]) -> bool {
    assert_eq!(crc.len(), 24);
    crc24_bits(init, pdu_bits) == crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[u8]) -> Vec<bool> {
        bluefi_test_bits(v)
    }

    // Local LSB-first expansion (mirror of dsp::bits, kept standalone so the
    // crate stays dependency-free).
    fn bluefi_test_bits(v: &[u8]) -> Vec<bool> {
        v.iter()
            .flat_map(|&b| (0..8).map(move |i| (b >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn hec_detects_any_single_bit_error() {
        let header = bits(&[0xA5, 0x01])[..10].to_vec();
        let hec = hec8_bits(0x47, &header);
        assert!(hec8_check(0x47, &header, &hec));
        for i in 0..10 {
            let mut h = header.clone();
            h[i] = !h[i];
            assert!(!hec8_check(0x47, &h, &hec), "missed flip at {i}");
        }
        for i in 0..8 {
            let mut c = hec.clone();
            c[i] = !c[i];
            assert!(!hec8_check(0x47, &header, &c), "missed HEC flip at {i}");
        }
    }

    #[test]
    fn hec_depends_on_uap() {
        let header = vec![true; 10];
        assert_ne!(hec8(0x00, &header), hec8(0x47, &header));
    }

    #[test]
    fn crc16_detects_burst_errors() {
        let payload = bits(&[0xDE, 0xAD, 0xBE, 0xEF, 0x42]);
        let crc = crc16_bits(0x12, &payload);
        assert!(crc16_check(0x12, &payload, &crc));
        // Any burst up to 16 bits is detected by a degree-16 CRC.
        for start in 0..payload.len().saturating_sub(16) {
            let mut p = payload.clone();
            for b in p[start..start + 16].iter_mut() {
                *b = !*b;
            }
            assert!(!crc16_check(0x12, &p, &crc), "missed burst at {start}");
        }
    }

    #[test]
    fn crc16_of_empty_is_init_run() {
        // With no data the register just holds the init value.
        assert_eq!(crc16(0xAB, &[]), 0xAB00);
    }

    #[test]
    fn crc24_roundtrip_and_single_bit_detection() {
        let pdu = bits(&[0x42, 0x10, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        let crc = crc24_bits(BLE_ADV_CRC_INIT, &pdu);
        assert!(crc24_check(BLE_ADV_CRC_INIT, &pdu, &crc));
        for i in 0..pdu.len() {
            let mut p = pdu.clone();
            p[i] = !p[i];
            assert!(!crc24_check(BLE_ADV_CRC_INIT, &p, &crc));
        }
    }

    #[test]
    fn crc24_is_linear_in_the_data() {
        // CRC(a ^ b) with zero init == CRC(a, init=0) ^ CRC(b, init=0):
        // the defining linearity of CRCs, a good catch-all for engine bugs.
        let a = bits(&[0x13, 0x37, 0x00, 0xFF]);
        let b = bits(&[0x9E, 0x8B, 0x33, 0x21]);
        let ab: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(crc24(0, &ab), crc24(0, &a) ^ crc24(0, &b));
    }

    #[test]
    fn crc_widths_respect_mask() {
        assert!(crc24(BLE_ADV_CRC_INIT, &bits(&[0xFF; 10])) < (1 << 24));
        assert!(u32::from(crc16(0xFF, &bits(&[0xFF; 10]))) < (1 << 16));
    }
}
