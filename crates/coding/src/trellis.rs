//! Bit-packed, branchless trellis engine for the weighted Viterbi
//! (paper Sec 2.7; the `fec_reversal` hot spot of ROADMAP open item 1).
//!
//! The scalar reference decoder in [`crate::viterbi`] walks an enum-typed
//! depunctured stream ([`crate::puncture::RxBit`]) and branches per
//! transition — for a BlueFi packet that is ~3.5 million data-dependent
//! branches over a 400 KB intermediate buffer, and it is why the stage
//! dominated the packet budget. This module replaces the inner loop with
//! three structural changes, none of which alters a single output bit:
//!
//! * **Interned trellis plans** — the per-`(rate, length)` walk structure
//!   (keep flags and transmitted-bit offsets per trellis step, expanded
//!   from the cyclic puncturing pattern) is built once and cached forever
//!   in a process-wide intern table, the same idiom as the FFT plan cache
//!   (`dsp::fft::fft_plan`). The decode kernel indexes the punctured
//!   stream directly; no depunctured `RxBit` buffer exists at all.
//! * **Branchless add–compare–select** — path metrics live in two flat
//!   `[u64; 64]` columns swept as 32 butterflies per step (destination
//!   states `j` and `j + 32` share the same two predecessors, so each
//!   metric word is loaded once). The branch metric collapses to a
//!   4-entry table indexed by the 2-bit transition output code
//!   `(A << 1) | B`, so the kernel contains no data-dependent branches:
//!   compare, select, accumulate.
//! * **Bit-packed survivors** — one decision bit per destination state
//!   packs a whole trellis column into a single `u64`: 8 bytes per step
//!   instead of the scalar decoder's 64-byte `[u8; 64]` column, an 8×
//!   cut in survivor-memory traffic (a BlueFi packet's survivor history
//!   drops from ~1.7 MB to ~210 KB). Traceback walks the packed words
//!   directly: the decision bit *is* the predecessor's low state bit.
//!
//! ## Bit-exactness proof obligations
//!
//! The packed engine must reproduce the scalar reference decoder bit for
//! bit (the conformance golden vectors and differential matrix were built
//! to hold this rewrite to account). The load-bearing equivalences:
//!
//! 1. **Tie-breaks select the even predecessor.** The scalar decoder
//!    visits predecessors in ascending state order and replaces only on
//!    strictly smaller metric, so the even predecessor wins ties; the
//!    packed select uses `m_odd < m_even` for the same effect.
//! 2. **The final-state argmin selects the lowest state index.** The
//!    scalar `min_by_key` returns the first minimum; the packed scan
//!    ascends with a strict compare.
//! 3. **Sentinel-rooted metrics never win.** The scalar decoder skips
//!    states with metric ≥ [`INF`]; the packed sweep instead lets
//!    sentinel-rooted metrics participate, which is safe because state 0
//!    reaches every state within `MEMORY = 6` steps, after which no
//!    sentinel-rooted cell remains — and while they exist they sit at
//!    least `INF` above any reachable metric (a reachable metric is
//!    bounded by the total mismatch budget `Σ weights < INF`), so every
//!    compare resolves exactly as the scalar skip would. (Survivor bits
//!    of unreachable states may differ, but traceback only visits states
//!    on the winning — reachable — path.)
//! 4. **No overflow.** During the ≤ 6 sentinel-decay steps a metric is at
//!    most `INF + 6 · 2 · u32::MAX`, far below the `u64` wrap point for
//!    `INF = u64::MAX / 4`; afterwards metrics are bounded by the budget.
//!    The narrow `u32` kernel is dispatched only when the budget is ≤
//!    [`SMALL_METRIC_BOUND`], which bounds its worst transient below
//!    `u32::MAX` the same way (see [`INF32`]).

use crate::convolutional::{G0, G1, NUM_STATES};
use crate::puncture::CodeRate;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The "unreachable" path metric sentinel, shared with the scalar
/// reference decoder so both engines agree on which states are live.
pub const INF: u64 = u64::MAX / 4;

/// Sentinel for the narrow (`u32`) metric kernel. With a total mismatch
/// budget of at most [`SMALL_METRIC_BOUND`] = 2²⁶, the worst transient
/// metric during the 6 sentinel-decay steps is bounded by
/// `2³⁰ + 6 · 2 · 2²⁶ < 2³¹`, so narrow metrics never wrap **and** stay
/// inside the signed-compare range SIMD units prefer.
const INF32: u32 = 1 << 30;

/// Largest total mismatch budget (Σ per-transmitted-bit weights, or the
/// transmitted length when unweighted) for which the `u32` kernel is
/// provably overflow-free. The BlueFi hot path (Table-1 confidence
/// weights over a 32 760-bit symbol payload) sums to ~5.6 M ≪ 2²⁶, so
/// packet decodes never need the wide kernel.
const SMALL_METRIC_BOUND: u64 = 1 << 26;

/// Sentinel for the `u16` renormalizing kernel; see
/// [`SMALL_WEIGHT_BOUND`] for the bounds that make it exact.
const INF16: u16 = 16_000;

/// Largest single mismatch weight for which the `u16` kernel is provably
/// exact. Unlike the wider kernels it bounds the *per-step* cost, not the
/// total budget, because the kernel renormalizes: every
/// [`RENORM_INTERVAL`] steps it subtracts the minimum metric from every
/// state, which shifts all metrics by a common constant and therefore
/// changes **no** comparison, survivor bit, or argmin — only the stored
/// representation. The bounds, with `tot ≤ 2 · SMALL_WEIGHT_BOUND = 2330`
/// the worst per-step cost:
///
/// * **Spread.** Any state is reachable from any state in `MEMORY = 6`
///   steps (the state register is the last 6 inputs), so every reachable
///   metric sits within `6 · tot` of the minimum.
/// * **Sentinels.** No renormalization happens before step 8, so while
///   sentinel-rooted cells exist (the first 6 steps) they hold at least
///   `INF16 = 16 000`, strictly above any reachable metric
///   (`≤ 6 · tot = 13 980`) — identical decisions to the wide kernels —
///   and at most `INF16 + 6 · tot = 29 980 < i16::MAX`.
/// * **No overflow.** After a renormalization the minimum is 0; within
///   the next 8 steps the minimum grows by at most `8 · tot`, so every
///   compared value is at most `(8 + 6) · tot = 32 620 < i16::MAX` —
///   no wrap, and signed 8-lane SIMD compares are exact.
const SMALL_WEIGHT_BOUND: u32 = 1_165;

/// Steps between `u16`-kernel renormalizations (a power of two so the
/// check is a mask test). Must stay ≥ `MEMORY + 1` (sentinels must be
/// gone before the first subtraction) and small enough for the overflow
/// bound above.
const RENORM_INTERVAL: usize = 8;

/// `ABIT[j]` / `BBIT[j]`: the A / B output bit of the edge arriving at
/// destination `j` from its **even** predecessor — the one branch cost
/// the symmetry-folded kernel computes per butterfly (every other branch
/// cost is its complement; see the `acs_kernel` docs).
const ABIT: [bool; NUM_STATES / 2] = {
    let mut a = [false; NUM_STATES / 2];
    let mut j = 0;
    while j < NUM_STATES / 2 {
        a[j] = CODES[0][j] & 2 != 0;
        j += 1;
    }
    a
};

/// See [`ABIT`].
const BBIT: [bool; NUM_STATES / 2] = {
    let mut b = [false; NUM_STATES / 2];
    let mut j = 0;
    while j < NUM_STATES / 2 {
        b[j] = CODES[0][j] & 1 != 0;
        j += 1;
    }
    b
};

/// [`ABIT`]/[`BBIT`] widened to all-ones/all-zeros lane masks, so the
/// branch cost becomes pure mask arithmetic (`weight & (MASK ^ target)`)
/// instead of a lane select — constant vectors after vectorization.
macro_rules! bit_masks {
    ($bits:expr, $ty:ty) => {{
        let mut m = [0 as $ty; NUM_STATES / 2];
        let mut j = 0;
        while j < NUM_STATES / 2 {
            m[j] = if $bits[j] { <$ty>::MAX } else { 0 };
            j += 1;
        }
        m
    }};
}
const AMASK64: [u64; NUM_STATES / 2] = bit_masks!(ABIT, u64);
const BMASK64: [u64; NUM_STATES / 2] = bit_masks!(BBIT, u64);
const AMASK32: [u32; NUM_STATES / 2] = bit_masks!(ABIT, u32);
const BMASK32: [u32; NUM_STATES / 2] = bit_masks!(BBIT, u32);
const AMASK16: [u16; NUM_STATES / 2] = bit_masks!(ABIT, u16);
const BMASK16: [u16; NUM_STATES / 2] = bit_masks!(BBIT, u16);

/// `LANE_BIT[j] = 1 << j`: the survivor-word bit a butterfly's decision
/// occupies, as a constant table so the take-bit packing is a lane-masked
/// OR reduction the vectorizer folds, not 64 serial shift-or pairs.
const LANE_BIT: [u32; NUM_STATES / 2] = {
    let mut t = [0u32; NUM_STATES / 2];
    let mut j = 0;
    while j < NUM_STATES / 2 {
        t[j] = 1 << j;
        j += 1;
    }
    t
};

/// Parity of the set bits of `v` (const-evaluable).
const fn parity_bit(v: u8) -> u8 {
    (v.count_ones() & 1) as u8
}

/// The 2-bit transition output code `(A << 1) | B` for a (state, input)
/// trellis edge — the packed form of `convolutional::transition_output`.
const fn out_code(state: u8, input: u8) -> u8 {
    let window = (input << 6) | state;
    (parity_bit(window & G0) << 1) | parity_bit(window & G1)
}

/// Per-destination-state transition output codes: `CODES[0][ns]` is the
/// code of the edge arriving from the even predecessor `(ns & 31) << 1`,
/// `CODES[1][ns]` from the odd predecessor. Destination `ns`'s input bit
/// is `ns >> 5` (the most-recent-input slot of the state register).
const CODES: [[u8; NUM_STATES]; 2] = {
    let mut c = [[0u8; NUM_STATES]; 2];
    let mut ns = 0;
    while ns < NUM_STATES {
        let input = (ns >> 5) as u8;
        let even = ((ns & 31) << 1) as u8;
        c[0][ns] = out_code(even, input);
        c[1][ns] = out_code(even | 1, input);
        ns += 1;
    }
    c
};

/// Reusable state for the packed decoder: two path-metric columns and the
/// bit-packed survivor history. One per worker thread, never shared; the
/// survivor buffer grows to the longest stream decoded and is then reused
/// allocation-free.
#[derive(Debug, Clone)]
pub struct PackedScratch {
    /// Current-step path metrics for the wide kernel, one `u64` per state.
    cur: Box<[u64; NUM_STATES]>,
    /// Next-step path metrics (ping-pongs with `cur` by pointer swap).
    nxt: Box<[u64; NUM_STATES]>,
    /// Metric columns for the narrow (`u32`) kernel — see
    /// [`SMALL_METRIC_BOUND`] for when it is provably safe to use.
    cur32: Box<[u32; NUM_STATES]>,
    nxt32: Box<[u32; NUM_STATES]>,
    /// Metric columns for the renormalizing `u16` kernel — see
    /// [`SMALL_WEIGHT_BOUND`].
    cur16: Box<[u16; NUM_STATES]>,
    nxt16: Box<[u16; NUM_STATES]>,
    /// `survivors[t]` bit `s` = the ACS decision at step `t` for
    /// destination state `s`: 0 selects the even predecessor, 1 the odd.
    survivors: Vec<u64>,
}

impl Default for PackedScratch {
    fn default() -> PackedScratch {
        PackedScratch::new()
    }
}

impl PackedScratch {
    /// An empty scratch; the survivor history grows on first use.
    pub fn new() -> PackedScratch {
        PackedScratch {
            cur: Box::new([INF; NUM_STATES]),
            nxt: Box::new([INF; NUM_STATES]),
            cur32: Box::new([INF32; NUM_STATES]),
            nxt32: Box::new([INF32; NUM_STATES]),
            cur16: Box::new([INF16; NUM_STATES]),
            nxt16: Box::new([INF16; NUM_STATES]),
            survivors: Vec::new(),
        }
    }
}

/// A precomputed trellis-walk plan for one `(rate, transmitted-length)`
/// pair: per-step keep flags and transmitted-bit offsets expanded from
/// the cyclic puncturing pattern, so the decode kernel reads the
/// punctured target stream in place.
///
/// Plans are target-independent — they depend only on the code structure
/// — so they are interned process-wide by [`trellis_plan`] and shared by
/// every worker thread.
#[derive(Debug)]
pub struct TrellisPlan {
    rate: CodeRate,
    n_tx: usize,
    steps: usize,
    /// Packed per-step descriptor: bit 0 = A transmitted, bit 1 = B
    /// transmitted, bits 2.. = offset of the step's first transmitted bit
    /// in the punctured stream.
    step_desc: Vec<u32>,
}

impl TrellisPlan {
    /// Builds the plan for decoding `n_tx` transmitted bits at `rate`.
    /// `n_tx` must be a whole number of puncturing periods. Prefer the
    /// interned [`trellis_plan`] on hot paths.
    pub fn new(rate: CodeRate, n_tx: usize) -> TrellisPlan {
        let steps = rate.n_inputs(n_tx);
        let (ka, kb) = rate.pattern();
        let period = ka.len();
        let mut step_desc = Vec::with_capacity(steps);
        let mut off: u32 = 0;
        for t in 0..steps {
            let ph = t % period;
            let a = ka[ph] as u32;
            let b = kb[ph] as u32;
            step_desc.push((off << 2) | (b << 1) | a);
            off += a + b;
        }
        debug_assert_eq!(off as usize, n_tx);
        TrellisPlan { rate, n_tx, steps, step_desc }
    }

    /// The code rate the plan was built for.
    pub fn rate(&self) -> CodeRate {
        self.rate
    }

    /// Transmitted (punctured) bits per decode.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Trellis steps (= information bits recovered) per decode.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Decodes the punctured `target` stream into `out` (resized to one
    /// bit per trellis step), with optional per-transmitted-bit mismatch
    /// weights (missing weights default to 1) — bit-identical to
    /// depuncturing and running the scalar reference decoder. When
    /// `terminate` is true the survivor must end in state 0.
    ///
    /// The weight magnitudes pick the metric width: per-bit weights up to
    /// [`SMALL_WEIGHT_BOUND`] run the renormalizing `u16` kernel (8 SIMD
    /// lanes), total budgets up to [`SMALL_METRIC_BOUND`] the `u32`
    /// kernel (4 lanes), anything larger the wide `u64` kernel. All three
    /// produce identical survivor decisions — narrower kernels hold the
    /// same integers (up to the comparison-preserving renormalization
    /// offset), just stored smaller — so the choice is invisible in the
    /// output.
    ///
    /// Allocation-free at steady state: only `scratch` / `out` growth
    /// allocates.
    pub fn decode_into(
        &self,
        target: &[bool],
        weights: Option<&[u32]>,
        terminate: bool,
        scratch: &mut PackedScratch,
        out: &mut Vec<bool>,
    ) {
        assert_eq!(target.len(), self.n_tx, "target length must match the plan");
        bluefi_dsp::contracts::ensure_len(out, self.steps, false);
        if self.steps == 0 {
            return;
        }
        bluefi_dsp::contracts::ensure_len(&mut scratch.survivors, self.steps, 0u64);
        let (w_max, budget): (u32, u64) = match weights {
            Some(w) => {
                assert_eq!(w.len(), target.len(), "one weight per transmitted bit");
                (w.iter().copied().max().unwrap_or(0), w.iter().map(|&x| x as u64).sum())
            }
            None => (1, self.n_tx as u64),
        };
        let PackedScratch { cur, nxt, cur32, nxt32, cur16, nxt16, survivors } = scratch;
        let survivors = &mut survivors[..self.steps];
        let start = if w_max <= SMALL_WEIGHT_BOUND {
            match weights {
                Some(w) => {
                    self.acs16(target, |i| w[i] as u16, cur16, nxt16, survivors, terminate)
                }
                None => self.acs16(target, |_| 1u16, cur16, nxt16, survivors, terminate),
            }
        } else if budget <= SMALL_METRIC_BOUND {
            match weights {
                Some(w) => self.acs32(target, |i| w[i], cur32, nxt32, survivors, terminate),
                None => self.acs32(target, |_| 1u32, cur32, nxt32, survivors, terminate),
            }
        } else {
            match weights {
                Some(w) => self.acs64(target, |i| w[i] as u64, cur, nxt, survivors, terminate),
                None => self.acs64(target, |_| 1u64, cur, nxt, survivors, terminate),
            }
        };
        // Walk the packed survivor history backward, emitting one decoded
        // bit per step. The decision bit of a destination state *is* the
        // low bit of its predecessor: `prev = ((state & 31) << 1) | bit`.
        let mut state = start;
        for (t, &word) in survivors.iter().enumerate().rev() {
            out[t] = state >> 5 == 1;
            let bit = (word >> state) & 1;
            state = ((state & 31) << 1) | bit as usize;
        }
    }
}

/// Stamps the forward add–compare–select sweep for one metric width.
///
/// The kernel leans on a symmetry of the (133,171) generators: both
/// polynomials tap the current input (window bit 6) *and* the oldest state
/// bit (window bit 0), so toggling either the input bit or the predecessor
/// parity flips **both** output bits — `CODES[1][j] = CODES[0][j] ^ 3` and
/// `CODES[k][j + 32] = CODES[k][j] ^ 3` (pinned by a unit test below).
/// With per-step emission costs `ca0/ca1` (for output A = 0/1) and
/// `cb0/cb1`, the four branch metrics of a butterfly therefore collapse to
/// one value `x` (cost of the even predecessor's code) and its complement
/// `tot − x` where `tot = ca0 + ca1 + cb0 + cb1` — no table lookups inside
/// the loop, and the per-lane select reads compile-time-constant masks
/// ([`ABIT`]/[`BBIT`]), which keeps the whole butterfly loop branchless
/// and auto-vectorizable.
///
/// Tie-breaks use `odd < even`, so ties select the even predecessor —
/// matching the scalar reference, which visits predecessors ascending and
/// replaces only on strictly smaller metric. The final-state argmin scans
/// ascending with a strict compare (first minimum), mirroring the scalar
/// `min_by_key`. Unreachable states decay from the `INF` sentinel within
/// `MEMORY` steps (state 0 reaches every state in 6 transitions), so no
/// clamp is needed: sentinel-rooted metrics stay strictly above every
/// reachable metric while they exist, and the overflow headroom above the
/// sentinel covers those 6 steps (see `INF` / `INF32`).
macro_rules! acs_kernel {
    ($name:ident, $ty:ty, $sty:ty, $inf:expr, $amask:expr, $bmask:expr, $renorm:literal) => {
        fn $name(
            &self,
            target: &[bool],
            weight_of: impl Fn(usize) -> $ty,
            cur: &mut Box<[$ty; NUM_STATES]>,
            nxt: &mut Box<[$ty; NUM_STATES]>,
            survivors: &mut [u64],
            terminate: bool,
        ) -> usize {
            /// One trellis step: 32 butterflies (destinations `j` for
            /// input 0 and `j + 32` for input 1 share predecessors `2j`
            /// and `2j + 1`, loaded once), with the even-predecessor
            /// branch cost supplied by `x_of` so rate-punctured steps
            /// that transmit a single bit (4 of every 5 at R5/6, the
            /// BlueFi hot path) pay for one mask chain instead of two.
            /// Everything inside is constant-mask arithmetic, a compare,
            /// and a select — branchless, cross-iteration-independent,
            /// lane-parallel. Returns the packed survivor word.
            #[inline(always)]
            fn step<F: Fn(usize) -> $ty>(
                c: &[$ty; NUM_STATES],
                n: &mut [$ty; NUM_STATES],
                tot: $ty,
                x_of: F,
            ) -> u64 {
                // Decision masks land in `u32` cells: survivor-word lane
                // width, and — measured — the vector factor this pins is
                // the fastest configuration for every kernel (wider
                // factors push the stride-2 metric loads into scalar
                // gathers that cost more than the extra lanes recover).
                let mut take_lo = [0u32; NUM_STATES / 2];
                let mut take_hi = [0u32; NUM_STATES / 2];
                for j in 0..NUM_STATES / 2 {
                    let x = x_of(j);
                    let y = tot - x;
                    let m0 = c[2 * j];
                    let m1 = c[2 * j + 1];
                    let lo0 = m0 + x;
                    let lo1 = m1 + y;
                    // In the narrow kernels every metric stays below the
                    // signed midpoint (see the sentinel docs), so the
                    // signed compare is the unsigned one — minus the SIMD
                    // sign-bias fixups.
                    let tl = (lo1 as $sty) < (lo0 as $sty); // tie -> even
                    n[j] = if tl { lo1 } else { lo0 };
                    let hi0 = m0 + y;
                    let hi1 = m1 + x;
                    let th = (hi1 as $sty) < (hi0 as $sty);
                    n[NUM_STATES / 2 + j] = if th { hi1 } else { hi0 };
                    take_lo[j] = if tl { u32::MAX } else { 0 };
                    take_hi[j] = if th { u32::MAX } else { 0 };
                }
                // Fold the decision masks into the survivor word: two
                // pure OR reductions over constant lane bits, which the
                // vectorizer keeps in SIMD accumulators.
                let mut lo_word = 0u32;
                for j in 0..NUM_STATES / 2 {
                    lo_word |= take_lo[j] & LANE_BIT[j];
                }
                let mut hi_word = 0u32;
                for j in 0..NUM_STATES / 2 {
                    hi_word |= take_hi[j] & LANE_BIT[j];
                }
                lo_word as u64 | (hi_word as u64) << (NUM_STATES / 2)
            }

            cur.fill($inf);
            cur[0] = 0; // 802.11 convention: the encoder starts at state 0
            for (t, &desc) in self.step_desc.iter().enumerate() {
                let off = (desc >> 2) as usize;
                let keep_a = desc & 1 != 0;
                let keep_b = desc & 2 != 0;
                let c = &**cur;
                let n = &mut **nxt;
                // Erasures (stolen positions) cost zero: an absent side
                // simply drops out of the even-predecessor cost. The
                // target-bit mask XOR flips "code bit set" into "code bit
                // wrong", so the cost is `weight` exactly on mismatch.
                survivors[t] = match (keep_a, keep_b) {
                    (true, true) => {
                        let wa = weight_of(off);
                        let ta = if target[off] { <$ty>::MAX } else { 0 };
                        let wb = weight_of(off + 1);
                        let tb = if target[off + 1] { <$ty>::MAX } else { 0 };
                        step(c, n, wa + wb, |j| {
                            (wa & ($amask[j] ^ ta)) + (wb & ($bmask[j] ^ tb))
                        })
                    }
                    (true, false) => {
                        let wa = weight_of(off);
                        let ta = if target[off] { <$ty>::MAX } else { 0 };
                        step(c, n, wa, |j| wa & ($amask[j] ^ ta))
                    }
                    (false, true) => {
                        let wb = weight_of(off);
                        let tb = if target[off] { <$ty>::MAX } else { 0 };
                        step(c, n, wb, |j| wb & ($bmask[j] ^ tb))
                    }
                    (false, false) => step(c, n, 0, |_| 0),
                };
                std::mem::swap(cur, nxt);
                // The u16 kernel renormalizes: shifting every metric by
                // the same constant changes no comparison (so survivors,
                // tie-breaks, and the final argmin are untouched) and
                // keeps the narrow metrics inside their overflow bound —
                // see `SMALL_WEIGHT_BOUND` for the proof.
                if $renorm && (t + 1) % RENORM_INTERVAL == 0 {
                    let mn = cur.iter().copied().fold(<$ty>::MAX, <$ty>::min);
                    for m in cur.iter_mut() {
                        *m -= mn;
                    }
                }
            }
            if terminate {
                0
            } else {
                // First minimal metric, ascending — the scalar argmin.
                let mut best = cur[0];
                let mut state = 0usize;
                for (i, &m) in cur.iter().enumerate() {
                    if m < best {
                        best = m;
                        state = i;
                    }
                }
                state
            }
        }
    };
}

impl TrellisPlan {
    // The wide kernel keeps the plain unsigned compare: budgets beyond
    // [`SMALL_METRIC_BOUND`] give no signed-range guarantee (and SSE2 has
    // no packed 64-bit compare to feed anyway).
    acs_kernel!(acs64, u64, u64, INF, AMASK64, BMASK64, false);
    acs_kernel!(acs32, u32, i32, INF32, AMASK32, BMASK32, false);
    acs_kernel!(acs16, u16, i16, INF16, AMASK16, BMASK16, true);
}

type PlanKey = (usize, CodeRate);
type PlanCache = Mutex<HashMap<PlanKey, Arc<TrellisPlan>>>;

fn cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the interned plan for decoding `n_tx` transmitted bits at
/// `rate`, building it on first use — the same size-keyed idiom as the
/// FFT plan cache. Construction happens under the intern lock, so
/// concurrent first-users of one key all receive the *same* `Arc` (no
/// lost-race duplicates); plans are never evicted. A cache hit performs
/// no heap allocation.
pub fn trellis_plan(rate: CodeRate, n_tx: usize) -> Arc<TrellisPlan> {
    // A poisoned lock only means another thread panicked mid-insert; the
    // map is still structurally sound, so recover rather than propagate.
    let mut map = cache().lock().unwrap_or_else(|p| p.into_inner());
    Arc::clone(
        map.entry((n_tx, rate))
            .or_insert_with(|| Arc::new(TrellisPlan::new(rate, n_tx))),
    )
}

/// Number of trellis plans currently interned (observability/test hook).
pub fn interned_plan_count() -> usize {
    cache().lock().unwrap_or_else(|p| p.into_inner()).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolutional::{transition_next, transition_output};

    #[test]
    fn code_tables_match_the_encoder() {
        for ns in 0..NUM_STATES {
            let input = ns >> 5 == 1;
            let even = (ns & 31) << 1;
            for (side, pred) in [(0, even), (1, even | 1)] {
                assert_eq!(
                    transition_next(pred as u8, input) as usize,
                    ns,
                    "predecessor arithmetic"
                );
                let (a, b) = transition_output(pred as u8, input);
                let code = ((a as u8) << 1) | b as u8;
                assert_eq!(CODES[side][ns], code, "ns {ns} side {side}");
            }
        }
    }

    #[test]
    fn code_symmetry_backs_the_folded_kernel() {
        // Both (133,171) generators tap window bits 0 and 6, so flipping
        // the predecessor parity or the input bit flips BOTH output bits.
        // The ACS kernel derives all four butterfly branch costs from this.
        for j in 0..NUM_STATES / 2 {
            assert_eq!(CODES[1][j], CODES[0][j] ^ 3, "odd predecessor, j {j}");
            for k in 0..2 {
                assert_eq!(CODES[k][j + 32], CODES[k][j] ^ 3, "input flip, j {j} side {k}");
            }
        }
        // And the const masks are exactly the even-predecessor code bits.
        for j in 0..NUM_STATES / 2 {
            assert_eq!(ABIT[j], CODES[0][j] & 2 != 0);
            assert_eq!(BBIT[j], CODES[0][j] & 1 != 0);
        }
    }

    #[test]
    fn plan_arithmetic_covers_every_transmitted_bit() {
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56] {
            let n_tx = rate.period_outputs() * 7;
            let plan = TrellisPlan::new(rate, n_tx);
            assert_eq!(plan.n_tx(), n_tx);
            assert_eq!(plan.steps(), rate.n_inputs(n_tx));
            // Offsets must be dense and strictly increasing by the keep count.
            let mut expect = 0u32;
            for &desc in &plan.step_desc {
                assert_eq!(desc >> 2, expect);
                expect += (desc & 1) + ((desc >> 1) & 1);
            }
            assert_eq!(expect as usize, n_tx);
        }
    }

    #[test]
    fn empty_plan_decodes_to_empty() {
        let plan = TrellisPlan::new(CodeRate::R12, 0);
        let mut scratch = PackedScratch::new();
        let mut out = vec![true; 3];
        plan.decode_into(&[], None, false, &mut scratch, &mut out);
        assert!(out.is_empty());
    }
}
