//! Bluetooth BR sync-word generation — the (64,30) expurgated block code of
//! spec Vol 2 Part B 6.3.3.
//!
//! The 64-bit sync word in every BR access code is derived from the 24-bit
//! LAP: append a 6-bit Barker sequence, XOR with a fixed PN sequence,
//! compute 34 parity bits with the degree-34 generator `g(D)` (octal
//! 260534236651), and XOR the full 64-bit codeword with the PN again. The
//! construction gives large minimum distance (d = 14) so receivers can
//! correlate against it in heavy noise.
//!
//! Bit-order conventions here are pinned by the well-known GIAC
//! (inquiry-access-code) golden vector: LAP 0x9E8B33 →
//! sync word 0x475C58CC73345E72.

/// The fixed 64-bit PN sequence from the spec.
pub const PN: u64 = 0x83848D96BBCC54FC;

/// Generator polynomial g(D), octal 260534236651 (degree 34; bit i is the
/// coefficient of Dⁱ).
pub const GENERATOR: u64 = 0o260534236651;

/// LAP of the General Inquiry Access Code.
pub const GIAC_LAP: u32 = 0x9E8B33;

#[inline]
fn bit(v: u64, i: u32) -> u64 {
    (v >> i) & 1
}

fn reverse_bits(v: u64, width: u32) -> u64 {
    (0..width).fold(0u64, |acc, i| acc | (bit(v, i) << (width - 1 - i)))
}

/// `info·D³⁴ mod g(D)` — the 34 BCH parity bits.
fn bch_parity(info30: u64) -> u64 {
    let mut r: u64 = info30 << 34;
    for d in (34..64).rev() {
        if bit(r, d) == 1 {
            r ^= GENERATOR << (d - 34);
        }
    }
    r & ((1u64 << 34) - 1)
}

/// Derives the 64-bit sync word for a 24-bit LAP.
///
/// The returned value is in *presentation* order (the order sync words are
/// conventionally quoted, e.g. GIAC = 0x475C58CC73345E72); use
/// [`sync_word_bits`] for the on-air LSB-first bit sequence.
pub fn sync_word(lap: u32) -> u64 {
    assert!(lap < (1 << 24), "LAP is 24 bits, got {lap:#x}");
    let lap = lap as u64;
    // Append the Barker sequence: a23 == 0 -> 001101, else 110010, written
    // into info bits 24..29 in reversed (appended-end-first) order.
    let barker = if bit(lap, 23) == 0 { 0b001101u64 } else { 0b110010 };
    let barker = reverse_bits(barker, 6);
    let info = lap | (barker << 24);
    // XOR the information with PN bits 34..63, compute parity over the
    // randomized info, assemble the codeword, and undo the PN over the full
    // word (which leaves the info part carrying the raw LAP — visible in
    // sniffed packets — while the parity stays randomized).
    let pn_info = (PN >> 34) & ((1 << 30) - 1);
    let xt = info ^ pn_info;
    let codeword = (xt << 34) | bch_parity(xt);
    reverse_bits(codeword ^ PN, 64)
}

/// The sync word as 64 on-air bits (transmitted LSB of the presentation
/// value last; i.e. bit 0 of the returned vector is transmitted first).
pub fn sync_word_bits(lap: u32) -> Vec<bool> {
    let sw = sync_word(lap);
    // Presentation order is the reverse of the internal codeword order; the
    // air order sends the codeword LSB-first, i.e. presentation MSB-first.
    (0..64).rev().map(|i| bit(sw, i) == 1).collect()
}

/// Verifies that a 64-bit word is a valid sync word (a PN-masked BCH
/// codeword) and recovers its LAP if so.
pub fn check_sync_word(sw: u64) -> Option<u32> {
    let codeword = reverse_bits(sw, 64) ^ PN;
    // The codeword's information part is the PN-randomized x̃; undo the PN
    // to recover the raw LAP.
    let info = (codeword >> 34) ^ ((PN >> 34) & ((1 << 30) - 1));
    let lap = (info & 0xFF_FFFF) as u32;
    if sync_word(lap) == sw {
        Some(lap)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giac_golden_vector() {
        assert_eq!(sync_word(GIAC_LAP), 0x475C58CC73345E72);
    }

    #[test]
    fn lap_recoverable_from_sync_word() {
        for lap in [0u32, 1, GIAC_LAP, 0x123456, 0xFFFFFF] {
            let sw = sync_word(lap);
            assert_eq!(check_sync_word(sw), Some(lap), "lap {lap:#x}");
        }
    }

    #[test]
    fn corrupted_words_are_rejected() {
        let sw = sync_word(GIAC_LAP);
        // Flipping any parity-side bit invalidates the word (info-side flips
        // change the LAP *and* break parity).
        for i in 0..64 {
            assert_eq!(check_sync_word(sw ^ (1 << i)), None, "bit {i}");
        }
    }

    #[test]
    fn distinct_laps_give_distant_sync_words() {
        // The expurgated (64,30) code has minimum distance 14; check a
        // sample of LAP pairs meets it.
        let laps = [0x000000u32, 0x000001, 0x9E8B33, 0x555555, 0xABCDEF, 0xFFFFFF];
        for (i, &a) in laps.iter().enumerate() {
            for &b in &laps[i + 1..] {
                let d = (sync_word(a) ^ sync_word(b)).count_ones();
                assert!(d >= 14, "LAPs {a:#x},{b:#x} distance {d}");
            }
        }
    }

    #[test]
    fn parity_is_a_valid_remainder() {
        // codeword (pre-PN) must be divisible by g(D).
        for lap in [GIAC_LAP, 0x42u32, 0x800000] {
            let codeword = reverse_bits(sync_word(lap), 64) ^ PN;
            let mut r = codeword;
            for d in (34..64).rev() {
                if bit(r, d) == 1 {
                    r ^= GENERATOR << (d - 34);
                }
            }
            assert_eq!(r & ((1 << 34) - 1), 0, "lap {lap:#x}");
        }
    }

    #[test]
    fn air_bits_match_presentation_msb_first() {
        let bits = sync_word_bits(GIAC_LAP);
        assert_eq!(bits.len(), 64);
        let sw = sync_word(GIAC_LAP);
        // First transmitted bit is the presentation MSB.
        assert_eq!(bits[0], (sw >> 63) & 1 == 1);
        assert_eq!(bits[63], sw & 1 == 1);
    }

    #[test]
    fn autocorrelation_of_giac_is_peaky() {
        // Good sync words have low off-peak autocorrelation: shifting the
        // word against itself should disagree in many positions.
        let bits = sync_word_bits(GIAC_LAP);
        for shift in 1..32 {
            let agree = bits[shift..]
                .iter()
                .zip(&bits[..64 - shift])
                .filter(|(a, b)| a == b)
                .count();
            let total = 64 - shift;
            // Off-peak agreement stays well below 90%.
            assert!(
                agree as f64 / total as f64 <= 0.9,
                "shift {shift}: {agree}/{total}"
            );
        }
    }
}
