//! Weighted hard-decision Viterbi decoding of the 802.11 BCC.
//!
//! Two departures from a textbook decoder, both required by BlueFi
//! (paper Sec 2.7):
//!
//! 1. **Erasure support** — punctured positions carry no information and
//!    contribute zero branch metric.
//! 2. **Per-bit weights** — BlueFi is not decoding a noisy channel; it is
//!    *compressing* a target sequence. Bits destined for subcarriers inside
//!    the Bluetooth band must survive re-encoding, so their mismatch cost is
//!    raised (1000/100/1 in the paper's Table 1) and the survivor path
//!    avoids flipping them unless no codeword exists that preserves them.
//!
//! The decoder is a pseudo-polynomial dynamic program, O(T·2⁶) — this is
//! the stage the paper measures at 46.88 ms/packet in C and the reason the
//! real-time decoder ([`crate::realtime`]) exists.

use crate::convolutional::{transition_next, transition_output, NUM_STATES};
use crate::puncture::RxBit;

/// Decodes a (depunctured) mother-code stream back to information bits.
///
/// `rx` is the mother-position stream `[A0, B0, A1, B1, ...]` as produced by
/// [`crate::puncture::depuncture`]; its length must be even. The decoder
/// starts from state 0 (802.11 convention). When `terminate` is true the
/// survivor must end in state 0 (use when the stream includes tail bits);
/// otherwise the best final state wins.
///
/// Returns the decoded information bits (one per RX pair).
pub fn decode(rx: &[RxBit], terminate: bool) -> Vec<bool> {
    assert_eq!(rx.len() % 2, 0, "mother stream must be (A,B) pairs");
    let steps = rx.len() / 2;
    if steps == 0 {
        return Vec::new();
    }

    const INF: u64 = u64::MAX / 4;
    let mut metric = vec![INF; NUM_STATES];
    metric[0] = 0;
    let mut next_metric = vec![INF; NUM_STATES];
    // survivor[t][s] = input bit leading into state s at step t+1, plus the
    // predecessor is recomputable from s and that bit? No: two predecessors
    // map into s; we store the chosen predecessor state directly.
    let mut surv_prev: Vec<[u8; NUM_STATES]> = Vec::with_capacity(steps);

    // Precompute per-state transition tables once.
    let mut table = [[(0u8, false, false); 2]; NUM_STATES];
    for (s, row) in table.iter_mut().enumerate() {
        for (i, slot) in row.iter_mut().enumerate() {
            let input = i == 1;
            let (a, b) = transition_output(s as u8, input);
            *slot = (transition_next(s as u8, input), a, b);
        }
    }

    let cost = |r: RxBit, out: bool| -> u64 {
        match r {
            RxBit::Erasure => 0,
            RxBit::Bit { value, weight } => {
                if value == out {
                    0
                } else {
                    weight as u64
                }
            }
        }
    };

    for t in 0..steps {
        let ra = rx[2 * t];
        let rb = rx[2 * t + 1];
        next_metric.iter_mut().for_each(|m| *m = INF);
        let mut prev_of = [0u8; NUM_STATES];
        for s in 0..NUM_STATES {
            let m = metric[s];
            if m >= INF {
                continue;
            }
            for &(ns, a, b) in &table[s] {
                let nm = m + cost(ra, a) + cost(rb, b);
                if nm < next_metric[ns as usize] {
                    next_metric[ns as usize] = nm;
                    prev_of[ns as usize] = s as u8;
                }
            }
        }
        surv_prev.push(prev_of);
        std::mem::swap(&mut metric, &mut next_metric);
    }

    // Pick the final state.
    let mut state = if terminate {
        0usize
    } else {
        metric
            .iter()
            .enumerate()
            .min_by_key(|(_, &m)| m)
            .map(|(s, _)| s)
            .unwrap_or(0)
    };

    // Trace back. The input bit that led into `state` is its bit 5 (the
    // most-recent-input slot of the state register).
    let mut bits = vec![false; steps];
    for t in (0..steps).rev() {
        bits[t] = (state >> 5) & 1 == 1;
        state = surv_prev[t][state] as usize;
    }
    bits
}

/// Convenience wrapper: decode a punctured stream at `rate` with optional
/// per-transmitted-bit weights.
pub fn decode_punctured(
    rate: crate::puncture::CodeRate,
    punctured: &[bool],
    weights: Option<&[u32]>,
    terminate: bool,
) -> Vec<bool> {
    let rx = crate::puncture::depuncture(rate, punctured, weights);
    decode(&rx, terminate)
}

/// Re-encodes `decoded` and reports which transmitted positions of the
/// original punctured target differ ("bit-flips" in the paper's language).
pub fn reencode_flips(
    rate: crate::puncture::CodeRate,
    decoded: &[bool],
    target_punctured: &[bool],
) -> Vec<usize> {
    let re = crate::puncture::puncture(rate, &crate::convolutional::encode_r12(decoded));
    assert_eq!(re.len(), target_punctured.len());
    re.iter()
        .zip(target_punctured)
        .enumerate()
        .filter_map(|(i, (a, b))| if a != b { Some(i) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolutional::encode_r12;
    use crate::puncture::{puncture, CodeRate};

    fn pattern_bits(n: usize, k: u64) -> Vec<bool> {
        (0..n).map(|i| (i as u64 * k + k / 3) % 7 < 3).collect()
    }

    #[test]
    fn decodes_clean_stream_every_rate() {
        let data = pattern_bits(60, 11);
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56] {
            let tx = puncture(rate, &encode_r12(&data));
            let dec = decode_punctured(rate, &tx, None, false);
            assert_eq!(dec, data, "rate {rate:?}");
        }
    }

    #[test]
    fn corrects_scattered_errors_at_rate_half() {
        let mut data = pattern_bits(120, 5);
        data.extend([false; 6]); // tail
        let mut tx = puncture(CodeRate::R12, &encode_r12(&data));
        // Flip well-separated bits (beyond one constraint length apart).
        for &i in &[10usize, 60, 110, 170, 230] {
            tx[i] = !tx[i];
        }
        let dec = decode_punctured(CodeRate::R12, &tx, None, true);
        assert_eq!(dec, data);
    }

    #[test]
    fn termination_forces_zero_state() {
        let mut data = pattern_bits(40, 3);
        data.extend([false; 6]);
        let tx = puncture(CodeRate::R12, &encode_r12(&data));
        let dec = decode_punctured(CodeRate::R12, &tx, None, true);
        assert_eq!(dec, data);
        assert!(dec[dec.len() - 6..].iter().all(|&b| !b));
    }

    #[test]
    fn weights_steer_flips_away_from_protected_bits() {
        // BlueFi's protected set is interleaver-striped: within every 13-bit
        // cycle the positions mapped to the Bluetooth band are protected.
        // Stripes keep the local protected density (8/13) below the
        // information rate (5/6), so a codeword matching every protected bit
        // exists and the weighted decoder must find one. (A *contiguous*
        // protected run denser than 5/6 would be information-theoretically
        // unprotectable — see the realtime module's DOF argument.)
        let target = pattern_bits(13 * 30, 17); // almost surely not a codeword
        let rate = CodeRate::R56;
        let n = target.len() - target.len() % rate.period_outputs();
        let target = &target[..n];
        let protected = |i: usize| i % 13 >= 5;
        let weights: Vec<u32> = (0..n).map(|i| if protected(i) { 1000 } else { 1 }).collect();
        let dec = decode_punctured(rate, target, Some(&weights), false);
        let flips = reencode_flips(rate, &dec, target);
        assert!(
            !flips.is_empty(),
            "a random target should not be exactly encodable at rate 5/6"
        );
        for &f in &flips {
            assert!(!protected(f), "protected bit {f} flipped (flips: {flips:?})");
        }
    }

    #[test]
    fn graded_weights_prefer_flipping_cheap_bits() {
        // Two-tier weights (the paper's 1000/100/1 scheme): when a flip is
        // unavoidable it must land on the cheapest tier available.
        let target = pattern_bits(13 * 30, 23);
        let rate = CodeRate::R56;
        let n = target.len() - target.len() % rate.period_outputs();
        let target = &target[..n];
        // Tier: 1000 for positions 5.., 100 for 3..5, 1 for 0..3 per cycle.
        let weight_of = |i: usize| match i % 13 {
            0..=2 => 1u32,
            3..=4 => 100,
            _ => 1000,
        };
        let weights: Vec<u32> = (0..n).map(weight_of).collect();
        let dec = decode_punctured(rate, target, Some(&weights), false);
        let flips = reencode_flips(rate, &dec, target);
        assert!(!flips.is_empty());
        let cost: u64 = flips.iter().map(|&f| weight_of(f) as u64).sum();
        // Never pay a 1000-weight flip, and the total cost should be
        // dominated by weight-1 positions.
        assert!(flips.iter().all(|&f| weight_of(f) < 1000), "flips: {flips:?}");
        assert!(cost < 1000, "cost {cost} flips {flips:?}");
    }

    #[test]
    fn unweighted_decode_minimizes_total_flips_vs_greedy_reference() {
        // The Viterbi result must be at least as good as decoding the
        // punctured stream by simple re-quantization through a few random
        // codewords. We check optimality indirectly: re-encoding the decode
        // of a codeword-with-k-flips differs from the target in at most 2k
        // positions (triangle inequality via the true codeword).
        let mut data = pattern_bits(80, 7);
        data.extend([false; 6]);
        let rate = CodeRate::R23;
        let clean = puncture(rate, &encode_r12(&data));
        let mut tx = clean.clone();
        for &i in &[5usize, 40, 80] {
            tx[i] = !tx[i];
        }
        let dec = decode_punctured(rate, &tx, None, true);
        let flips = reencode_flips(rate, &dec, &tx);
        assert!(flips.len() <= 6, "got {} flips", flips.len());
    }

    #[test]
    fn empty_input_decodes_to_empty() {
        assert!(decode(&[], false).is_empty());
    }
}
