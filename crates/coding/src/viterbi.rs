//! Weighted hard-decision Viterbi decoding of the 802.11 BCC.
//!
//! Two departures from a textbook decoder, both required by BlueFi
//! (paper Sec 2.7):
//!
//! 1. **Erasure support** — punctured positions carry no information and
//!    contribute zero branch metric.
//! 2. **Per-bit weights** — BlueFi is not decoding a noisy channel; it is
//!    *compressing* a target sequence. Bits destined for subcarriers inside
//!    the Bluetooth band must survive re-encoding, so their mismatch cost is
//!    raised (1000/100/1 in the paper's Table 1) and the survivor path
//!    avoids flipping them unless no codeword exists that preserves them.
//!
//! The decoder is a pseudo-polynomial dynamic program, O(T·2⁶) — this is
//! the stage the paper measures at 46.88 ms/packet in C and the reason the
//! real-time decoder ([`crate::realtime`]) exists.
//!
//! Two implementations share this module's API:
//!
//! * the **scalar reference decoder** ([`ViterbiScratch::decode_into`] and
//!   the `*_scalar` entry points) — straightforward enum-typed trellis
//!   walk, kept as the semantic ground truth; and
//! * the **packed engine** ([`crate::trellis`]) — bit-packed branchless
//!   kernel that [`ViterbiScratch::decode_punctured_into`] routes through,
//!   proven bit-identical to the reference by property tests and the
//!   conformance golden vectors.
//!
//! The scratch additionally memoizes the last punctured decode: repeated
//! payloads (beacons, test repetitions) skip the trellis entirely and
//! replay the remembered survivor result.

use crate::convolutional::{transition_next, transition_output, NUM_STATES};
use crate::puncture::{CodeRate, RxBit};
use crate::trellis::{trellis_plan, PackedScratch, INF};

/// Reusable trellis state for the weighted Viterbi: path metrics, survivor
/// storage, the per-state transition table, and a depuncture buffer.
///
/// One scratch amortizes every allocation the decoder needs; after the
/// first decode of a given length, subsequent decodes through the same
/// scratch are allocation-free. The scratch is plain mutable state — one
/// per worker thread, never shared.
#[derive(Debug, Clone)]
pub struct ViterbiScratch {
    // Path metrics ping-pong between these two buffers (Vecs so the
    // per-step swap is a pointer swap, not a 512-byte copy).
    metric: Vec<u64>,
    next_metric: Vec<u64>,
    // survivor[t][s] = chosen predecessor of state s at step t+1 (two
    // predecessors map into each state, so the bit alone is not enough).
    surv_prev: Vec<[u8; NUM_STATES]>,
    // Per-state transitions: (next_state, out_a, out_b) for input 0 and 1.
    table: [[(u8, bool, bool); 2]; NUM_STATES],
    // Depuncture buffer for `decode_punctured_scalar_into`.
    rx_buf: Vec<RxBit>,
    // Re-encode buffers for `reencode_flips_into`.
    reenc_mother: Vec<bool>,
    reenc_punct: Vec<bool>,
    // The packed engine's metric columns and survivor words.
    packed: PackedScratch,
    // Repeat-decode memo (see `DecodeMemo`).
    memo: DecodeMemo,
    // Replay buffers for the real-time decoder, so one scratch serves both
    // FEC-reversal strategies (`core::reversal` picks per packet).
    realtime: crate::realtime::RealtimeScratch,
}

/// Memo of the last punctured decode: when the same (rate, termination,
/// target, weights) tuple comes back — beacon retransmissions decode the
/// identical coded payload every slot — the remembered output is replayed
/// without touching the trellis. Matching is exact slice equality, so a
/// hit can never return a wrong answer; a miss just decodes normally.
#[derive(Debug, Clone)]
struct DecodeMemo {
    valid: bool,
    rate: CodeRate,
    terminate: bool,
    weighted: bool,
    target: Vec<bool>,
    weights: Vec<u32>,
    out: Vec<bool>,
    hits: u64,
    last_hit: bool,
}

impl DecodeMemo {
    fn new() -> DecodeMemo {
        DecodeMemo {
            valid: false,
            rate: CodeRate::R12,
            terminate: false,
            weighted: false,
            target: Vec::new(),
            weights: Vec::new(),
            out: Vec::new(),
            hits: 0,
            last_hit: false,
        }
    }

    fn matches(
        &self,
        rate: CodeRate,
        target: &[bool],
        weights: Option<&[u32]>,
        terminate: bool,
    ) -> bool {
        self.valid
            && self.rate == rate
            && self.terminate == terminate
            && self.weighted == weights.is_some()
            && self.target.as_slice() == target
            && weights.is_none_or(|w| self.weights.as_slice() == w)
    }

    fn store(
        &mut self,
        rate: CodeRate,
        target: &[bool],
        weights: Option<&[u32]>,
        terminate: bool,
        out: &[bool],
    ) {
        self.valid = true;
        self.rate = rate;
        self.terminate = terminate;
        self.weighted = weights.is_some();
        copy_bools(&mut self.target, target);
        match weights {
            Some(w) => {
                bluefi_dsp::contracts::ensure_len(&mut self.weights, w.len(), 0);
                self.weights.copy_from_slice(w);
            }
            None => self.weights.clear(),
        }
        copy_bools(&mut self.out, out);
    }
}

/// Copies `src` into `dst` through the contracts-aware resize, so steady
/// state (unchanged length) performs no allocation.
fn copy_bools(dst: &mut Vec<bool>, src: &[bool]) {
    bluefi_dsp::contracts::ensure_len(dst, src.len(), false);
    dst.copy_from_slice(src);
}

impl Default for ViterbiScratch {
    fn default() -> ViterbiScratch {
        ViterbiScratch::new()
    }
}

impl ViterbiScratch {
    /// Builds a scratch with the transition table precomputed. Survivor
    /// storage starts empty and grows to the longest stream decoded.
    pub fn new() -> ViterbiScratch {
        let mut table = [[(0u8, false, false); 2]; NUM_STATES];
        for (s, row) in table.iter_mut().enumerate() {
            for (i, slot) in row.iter_mut().enumerate() {
                let input = i == 1;
                let (a, b) = transition_output(s as u8, input);
                *slot = (transition_next(s as u8, input), a, b);
            }
        }
        ViterbiScratch {
            metric: vec![INF; NUM_STATES],
            next_metric: vec![INF; NUM_STATES],
            surv_prev: Vec::new(),
            table,
            rx_buf: Vec::new(),
            reenc_mother: Vec::new(),
            reenc_punct: Vec::new(),
            packed: PackedScratch::new(),
            memo: DecodeMemo::new(),
            realtime: crate::realtime::RealtimeScratch::new(),
        }
    }

    /// The embedded real-time replay buffers, for callers that switch
    /// between the Viterbi and real-time reversal strategies with one
    /// scratch (see [`crate::realtime::RealtimePlan::decode_into`]).
    pub fn realtime_scratch(&mut self) -> &mut crate::realtime::RealtimeScratch {
        &mut self.realtime
    }

    /// Total repeat-decode memo hits since the scratch was built.
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits
    }

    /// True when the most recent [`decode_punctured_into`] call was served
    /// from the repeat-decode memo without running the trellis.
    ///
    /// [`decode_punctured_into`]: ViterbiScratch::decode_punctured_into
    pub fn last_decode_memoized(&self) -> bool {
        self.memo.last_hit
    }

    /// Decodes a (depunctured) mother-code stream into `out` (resized to
    /// one bit per RX pair). Same semantics as [`decode`]; allocates only
    /// when the survivor storage or `out` must grow.
    pub fn decode_into(&mut self, rx: &[RxBit], terminate: bool, out: &mut Vec<bool>) {
        assert_eq!(rx.len() % 2, 0, "mother stream must be (A,B) pairs");
        let steps = rx.len() / 2;
        bluefi_dsp::contracts::ensure_len(out, steps, false);
        if steps == 0 {
            return;
        }
        bluefi_dsp::contracts::ensure_len(&mut self.surv_prev, steps, [0u8; NUM_STATES]);

        self.metric.iter_mut().for_each(|m| *m = INF);
        self.metric[0] = 0;

        let cost = |r: RxBit, out: bool| -> u64 {
            match r {
                RxBit::Erasure => 0,
                RxBit::Bit { value, weight } => {
                    if value == out {
                        0
                    } else {
                        weight as u64
                    }
                }
            }
        };

        for t in 0..steps {
            let ra = rx[2 * t];
            let rb = rx[2 * t + 1];
            self.next_metric.iter_mut().for_each(|m| *m = INF);
            let prev_of = &mut self.surv_prev[t];
            *prev_of = [0u8; NUM_STATES];
            for s in 0..NUM_STATES {
                let m = self.metric[s];
                if m >= INF {
                    continue;
                }
                for &(ns, a, b) in &self.table[s] {
                    let nm = m + cost(ra, a) + cost(rb, b);
                    if nm < self.next_metric[ns as usize] {
                        self.next_metric[ns as usize] = nm;
                        prev_of[ns as usize] = s as u8;
                    }
                }
            }
            std::mem::swap(&mut self.metric, &mut self.next_metric);
        }

        // Pick the final state.
        let mut state = if terminate {
            0usize
        } else {
            self.metric
                .iter()
                .enumerate()
                .min_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0)
        };

        // Trace back. The input bit that led into `state` is its bit 5 (the
        // most-recent-input slot of the state register).
        for t in (0..steps).rev() {
            out[t] = (state >> 5) & 1 == 1;
            state = self.surv_prev[t][state] as usize;
        }
    }

    /// Scratch variant of [`decode_punctured`]: decodes the punctured
    /// stream through the bit-packed engine ([`crate::trellis`]), bit-
    /// identical to depuncturing and running the scalar reference decoder.
    ///
    /// Repeated targets are served from the repeat-decode memo (see
    /// [`ViterbiScratch::last_decode_memoized`]); cold decodes fetch the
    /// interned trellis plan and run the branchless kernel. Allocation-free
    /// at steady state.
    pub fn decode_punctured_into(
        &mut self,
        rate: crate::puncture::CodeRate,
        punctured: &[bool],
        weights: Option<&[u32]>,
        terminate: bool,
        out: &mut Vec<bool>,
    ) {
        if self.memo.matches(rate, punctured, weights, terminate) {
            self.memo.hits += 1;
            self.memo.last_hit = true;
            copy_bools(out, &self.memo.out);
            return;
        }
        self.memo.last_hit = false;
        let plan = trellis_plan(rate, punctured.len());
        plan.decode_into(punctured, weights, terminate, &mut self.packed, out);
        self.memo.store(rate, punctured, weights, terminate, out);
    }

    /// The scalar reference path of [`decode_punctured_into`]: depunctures
    /// through the internal RX buffer, then runs the enum-typed trellis
    /// walk of [`ViterbiScratch::decode_into`]. Kept as the semantic ground
    /// truth the packed engine is differenced against (property tests, the
    /// conformance matrix); hot paths should use the packed entry point.
    ///
    /// [`decode_punctured_into`]: ViterbiScratch::decode_punctured_into
    pub fn decode_punctured_scalar_into(
        &mut self,
        rate: crate::puncture::CodeRate,
        punctured: &[bool],
        weights: Option<&[u32]>,
        terminate: bool,
        out: &mut Vec<bool>,
    ) {
        let mut rx = std::mem::take(&mut self.rx_buf);
        crate::puncture::depuncture_into(rate, punctured, weights, &mut rx);
        self.decode_into(&rx, terminate, out);
        self.rx_buf = rx;
    }

    /// Scratch variant of [`reencode_flips`]: re-encodes through the internal
    /// buffers and writes the differing positions into `flips` (cleared
    /// first), allocating only when a buffer must grow.
    pub fn reencode_flips_into(
        &mut self,
        rate: crate::puncture::CodeRate,
        decoded: &[bool],
        target_punctured: &[bool],
        flips: &mut Vec<usize>,
    ) {
        crate::convolutional::encode_r12_into(decoded, &mut self.reenc_mother);
        crate::puncture::puncture_into(rate, &self.reenc_mother, &mut self.reenc_punct);
        assert_eq!(self.reenc_punct.len(), target_punctured.len());
        let cap = flips.capacity();
        flips.clear();
        for (i, (a, b)) in self.reenc_punct.iter().zip(target_punctured).enumerate() {
            if a != b {
                flips.push(i);
            }
        }
        if flips.capacity() > cap {
            bluefi_dsp::contracts::probe_alloc();
        }
    }
}

/// Decodes a (depunctured) mother-code stream back to information bits.
///
/// `rx` is the mother-position stream `[A0, B0, A1, B1, ...]` as produced by
/// [`crate::puncture::depuncture`]; its length must be even. The decoder
/// starts from state 0 (802.11 convention). When `terminate` is true the
/// survivor must end in state 0 (use when the stream includes tail bits);
/// otherwise the best final state wins.
///
/// Returns the decoded information bits (one per RX pair). Thin shim over
/// [`ViterbiScratch::decode_into`]; hot paths should hold a scratch.
pub fn decode(rx: &[RxBit], terminate: bool) -> Vec<bool> {
    let mut out = Vec::new();
    ViterbiScratch::new().decode_into(rx, terminate, &mut out);
    out
}

/// Convenience wrapper: decode a punctured stream at `rate` with optional
/// per-transmitted-bit weights, through the bit-packed engine. Thin shim
/// over [`ViterbiScratch::decode_punctured_into`]; hot paths should hold a
/// scratch.
pub fn decode_punctured(
    rate: crate::puncture::CodeRate,
    punctured: &[bool],
    weights: Option<&[u32]>,
    terminate: bool,
) -> Vec<bool> {
    let mut out = Vec::new();
    ViterbiScratch::new().decode_punctured_into(rate, punctured, weights, terminate, &mut out);
    out
}

/// The scalar reference path of [`decode_punctured`]: depuncture, then the
/// enum-typed trellis walk. The packed engine is held bit-identical to this
/// function by property tests and the conformance golden vectors.
pub fn decode_punctured_scalar(
    rate: crate::puncture::CodeRate,
    punctured: &[bool],
    weights: Option<&[u32]>,
    terminate: bool,
) -> Vec<bool> {
    let rx = crate::puncture::depuncture(rate, punctured, weights);
    decode(&rx, terminate)
}

/// Re-encodes `decoded` and reports which transmitted positions of the
/// original punctured target differ ("bit-flips" in the paper's language).
pub fn reencode_flips(
    rate: crate::puncture::CodeRate,
    decoded: &[bool],
    target_punctured: &[bool],
) -> Vec<usize> {
    let re = crate::puncture::puncture(rate, &crate::convolutional::encode_r12(decoded));
    assert_eq!(re.len(), target_punctured.len());
    re.iter()
        .zip(target_punctured)
        .enumerate()
        .filter_map(|(i, (a, b))| if a != b { Some(i) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolutional::encode_r12;
    use crate::puncture::{puncture, CodeRate};

    fn pattern_bits(n: usize, k: u64) -> Vec<bool> {
        (0..n).map(|i| (i as u64 * k + k / 3) % 7 < 3).collect()
    }

    #[test]
    fn decodes_clean_stream_every_rate() {
        let data = pattern_bits(60, 11);
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56] {
            let tx = puncture(rate, &encode_r12(&data));
            let dec = decode_punctured(rate, &tx, None, false);
            assert_eq!(dec, data, "rate {rate:?}");
        }
    }

    #[test]
    fn corrects_scattered_errors_at_rate_half() {
        let mut data = pattern_bits(120, 5);
        data.extend([false; 6]); // tail
        let mut tx = puncture(CodeRate::R12, &encode_r12(&data));
        // Flip well-separated bits (beyond one constraint length apart).
        for &i in &[10usize, 60, 110, 170, 230] {
            tx[i] = !tx[i];
        }
        let dec = decode_punctured(CodeRate::R12, &tx, None, true);
        assert_eq!(dec, data);
    }

    #[test]
    fn termination_forces_zero_state() {
        let mut data = pattern_bits(40, 3);
        data.extend([false; 6]);
        let tx = puncture(CodeRate::R12, &encode_r12(&data));
        let dec = decode_punctured(CodeRate::R12, &tx, None, true);
        assert_eq!(dec, data);
        assert!(dec[dec.len() - 6..].iter().all(|&b| !b));
    }

    #[test]
    fn weights_steer_flips_away_from_protected_bits() {
        // BlueFi's protected set is interleaver-striped: within every 13-bit
        // cycle the positions mapped to the Bluetooth band are protected.
        // Stripes keep the local protected density (8/13) below the
        // information rate (5/6), so a codeword matching every protected bit
        // exists and the weighted decoder must find one. (A *contiguous*
        // protected run denser than 5/6 would be information-theoretically
        // unprotectable — see the realtime module's DOF argument.)
        let target = pattern_bits(13 * 30, 17); // almost surely not a codeword
        let rate = CodeRate::R56;
        let n = target.len() - target.len() % rate.period_outputs();
        let target = &target[..n];
        let protected = |i: usize| i % 13 >= 5;
        let weights: Vec<u32> = (0..n).map(|i| if protected(i) { 1000 } else { 1 }).collect();
        let dec = decode_punctured(rate, target, Some(&weights), false);
        let flips = reencode_flips(rate, &dec, target);
        assert!(
            !flips.is_empty(),
            "a random target should not be exactly encodable at rate 5/6"
        );
        for &f in &flips {
            assert!(!protected(f), "protected bit {f} flipped (flips: {flips:?})");
        }
    }

    #[test]
    fn graded_weights_prefer_flipping_cheap_bits() {
        // Two-tier weights (the paper's 1000/100/1 scheme): when a flip is
        // unavoidable it must land on the cheapest tier available.
        let target = pattern_bits(13 * 30, 23);
        let rate = CodeRate::R56;
        let n = target.len() - target.len() % rate.period_outputs();
        let target = &target[..n];
        // Tier: 1000 for positions 5.., 100 for 3..5, 1 for 0..3 per cycle.
        let weight_of = |i: usize| match i % 13 {
            0..=2 => 1u32,
            3..=4 => 100,
            _ => 1000,
        };
        let weights: Vec<u32> = (0..n).map(weight_of).collect();
        let dec = decode_punctured(rate, target, Some(&weights), false);
        let flips = reencode_flips(rate, &dec, target);
        assert!(!flips.is_empty());
        let cost: u64 = flips.iter().map(|&f| weight_of(f) as u64).sum();
        // Never pay a 1000-weight flip, and the total cost should be
        // dominated by weight-1 positions.
        assert!(flips.iter().all(|&f| weight_of(f) < 1000), "flips: {flips:?}");
        assert!(cost < 1000, "cost {cost} flips {flips:?}");
    }

    #[test]
    fn unweighted_decode_minimizes_total_flips_vs_greedy_reference() {
        // The Viterbi result must be at least as good as decoding the
        // punctured stream by simple re-quantization through a few random
        // codewords. We check optimality indirectly: re-encoding the decode
        // of a codeword-with-k-flips differs from the target in at most 2k
        // positions (triangle inequality via the true codeword).
        let mut data = pattern_bits(80, 7);
        data.extend([false; 6]);
        let rate = CodeRate::R23;
        let clean = puncture(rate, &encode_r12(&data));
        let mut tx = clean.clone();
        for &i in &[5usize, 40, 80] {
            tx[i] = !tx[i];
        }
        let dec = decode_punctured(rate, &tx, None, true);
        let flips = reencode_flips(rate, &dec, &tx);
        assert!(flips.len() <= 6, "got {} flips", flips.len());
    }

    #[test]
    fn empty_input_decodes_to_empty() {
        assert!(decode(&[], false).is_empty());
    }

    #[test]
    fn packed_path_matches_scalar_reference() {
        // The packed engine behind `decode_punctured` must reproduce the
        // enum-typed reference walk bit for bit: every rate, weighted and
        // unweighted, terminated and free-ending.
        for (len, k) in [(60usize, 11u64), (120, 5), (30, 29)] {
            let mut data = pattern_bits(len, k);
            data.extend([false; 6]);
            for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56] {
                let n = data.len() - data.len() % rate.period_inputs();
                let mut tx = puncture(rate, &encode_r12(&data[..n]));
                // Corrupt a few positions so the decode is not trivial.
                for i in (3..tx.len()).step_by(37) {
                    tx[i] = !tx[i];
                }
                let weights: Vec<u32> =
                    (0..tx.len() as u32).map(|i| [1, 100, 1000][(i % 3) as usize]).collect();
                for (w, term) in
                    [(None, false), (None, true), (Some(&weights[..]), false)]
                {
                    let packed = decode_punctured(rate, &tx, w, term);
                    let scalar = decode_punctured_scalar(rate, &tx, w, term);
                    assert_eq!(packed, scalar, "len {len} rate {rate:?} term {term}");
                }
            }
        }
    }

    #[test]
    fn repeat_decodes_hit_the_memo() {
        let data = pattern_bits(60, 7);
        let tx = puncture(CodeRate::R56, &encode_r12(&data));
        let weights: Vec<u32> = (0..tx.len() as u32).map(|i| 1 + i % 7).collect();
        let mut scratch = ViterbiScratch::new();
        let mut out = Vec::new();
        scratch.decode_punctured_into(CodeRate::R56, &tx, Some(&weights), false, &mut out);
        assert!(!scratch.last_decode_memoized());
        assert_eq!(scratch.memo_hits(), 0);
        let cold = out.clone();
        // Identical target: served from the memo, identical answer.
        scratch.decode_punctured_into(CodeRate::R56, &tx, Some(&weights), false, &mut out);
        assert!(scratch.last_decode_memoized());
        assert_eq!(scratch.memo_hits(), 1);
        assert_eq!(out, cold);
        // Same target, different weights: must NOT hit.
        let other: Vec<u32> = weights.iter().map(|w| w + 1).collect();
        scratch.decode_punctured_into(CodeRate::R56, &tx, Some(&other), false, &mut out);
        assert!(!scratch.last_decode_memoized());
        // Same bits but unweighted is a different key, too.
        scratch.decode_punctured_into(CodeRate::R56, &tx, None, false, &mut out);
        assert!(!scratch.last_decode_memoized());
        assert_eq!(out, decode_punctured_scalar(CodeRate::R56, &tx, None, false));
        assert_eq!(scratch.memo_hits(), 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_decode() {
        // One scratch across streams of different lengths, rates, and
        // weightings must reproduce the one-shot decoder bit for bit.
        let mut scratch = ViterbiScratch::new();
        let mut out = Vec::new();
        for (len, k) in [(120usize, 5u64), (40, 3), (200, 11)] {
            let mut data = pattern_bits(len, k);
            data.extend([false; 6]);
            for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R56] {
                let n = data.len() - data.len() % rate.period_inputs();
                let tx = puncture(rate, &encode_r12(&data[..n]));
                let weights: Vec<u32> = (0..tx.len() as u32).map(|i| 1 + i % 7).collect();
                scratch.decode_punctured_into(rate, &tx, Some(&weights), false, &mut out);
                let fresh = decode_punctured(rate, &tx, Some(&weights), false);
                assert_eq!(out, fresh, "len {len} rate {rate:?}");
            }
        }
    }
}
