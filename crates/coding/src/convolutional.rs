//! The 802.11 rate-1/2 convolutional (BCC) mother code.
//!
//! Constraint length K = 7, generator polynomials g₀ = 133₈ and g₁ = 171₈
//! (17.3.5.6). The encoder emits output pair (A, B) per input bit; punctured
//! rates are derived in [`crate::puncture`].
//!
//! Because the code is linear over GF(2), every output bit is a parity of
//! the current input and up to six previous inputs — the property the
//! real-time decoder ([`crate::realtime`]) exploits.

/// Generator polynomial g₀ = 133₈ (taps on `d[i]`, `d[i-2]`, `d[i-3]`, `d[i-5]`, `d[i-6]`).
pub const G0: u8 = 0o133;
/// Generator polynomial g₁ = 171₈ (taps on `d[i]`, `d[i-1]`, `d[i-2]`, `d[i-3]`, `d[i-6]`).
pub const G1: u8 = 0o171;
/// Encoder memory (K-1).
pub const MEMORY: usize = 6;
/// Number of trellis states.
pub const NUM_STATES: usize = 1 << MEMORY;

/// Parity of the bits selected by `mask`.
#[inline]
fn parity(v: u8) -> bool {
    v.count_ones() % 2 == 1
}

/// A streaming convolutional encoder.
///
/// `state` holds the last six input bits with the most recent in bit 5 and
/// the oldest in bit 0, so the evaluation window is `(input << 6) | state`,
/// reading taps from bit 6 (current input) down to bit 0 (six steps ago).
/// The impulse-response unit test pins this convention against the
/// generator octals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvEncoder {
    // Bit 5 = most recent past input, bit 0 = oldest (6 steps ago).
    state: u8,
}

impl ConvEncoder {
    /// Fresh encoder, zero state (the 802.11 convention: the scrambled
    /// SERVICE field precedes the data, and the encoder starts at state 0).
    pub fn new() -> ConvEncoder {
        ConvEncoder { state: 0 }
    }

    /// Creates an encoder at an explicit state (bit 5 = most recent input).
    pub fn with_state(state: u8) -> ConvEncoder {
        assert!(state < NUM_STATES as u8);
        ConvEncoder { state }
    }

    /// Current state (bit 5 = most recent input).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Encodes one input bit, returning the output pair (A, B).
    #[inline]
    pub fn push(&mut self, input: bool) -> (bool, bool) {
        // Window: bit 6 = current input, bit 5..0 = past inputs (bit 5 most
        // recent). Generator octals read the same way: g0 = 1011011 means
        // taps at window bits {6,4,3,1,0} -> d[i], d[i-2], d[i-3], d[i-5], d[i-6].
        let window = ((input as u8) << 6) | self.state;
        let a = parity(window & G0);
        let b = parity(window & G1);
        self.state = ((self.state >> 1) | ((input as u8) << 5)) & 0x3F;
        (a, b)
    }

    /// Encodes a bit slice into the interleaved output stream
    /// `[A0, B0, A1, B1, ...]`. Thin shim over [`ConvEncoder::encode_into`].
    pub fn encode(&mut self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.encode_into(bits, &mut out);
        out
    }

    /// Scratch-buffer variant of [`ConvEncoder::encode`]: writes the
    /// interleaved stream into `out` (resized to `2 * bits.len()`),
    /// allocating only when `out` must grow.
    pub fn encode_into(&mut self, bits: &[bool], out: &mut Vec<bool>) {
        bluefi_dsp::contracts::ensure_len(out, bits.len() * 2, false);
        for (i, &b) in bits.iter().enumerate() {
            let (a, bb) = self.push(b);
            out[2 * i] = a;
            out[2 * i + 1] = bb;
        }
    }
}

/// One-shot rate-1/2 encoding from the zero state.
pub fn encode_r12(bits: &[bool]) -> Vec<bool> {
    ConvEncoder::new().encode(bits)
}

/// Scratch-buffer variant of [`encode_r12`].
pub fn encode_r12_into(bits: &[bool], out: &mut Vec<bool>) {
    ConvEncoder::new().encode_into(bits, out);
}

/// Output pair for a (state, input) trellis transition — used by the
/// Viterbi decoder to build its branch tables.
#[inline]
pub fn transition_output(state: u8, input: bool) -> (bool, bool) {
    let window = ((input as u8) << 6) | state;
    (parity(window & G0), parity(window & G1))
}

/// Next state for a (state, input) trellis transition.
#[inline]
pub fn transition_next(state: u8, input: bool) -> u8 {
    ((state >> 1) | ((input as u8) << 5)) & 0x3F
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_response_matches_generators() {
        // Encoding 1 followed by zeros reads out the generator taps over
        // time: A outputs = g0 coefficients from the current-input tap down.
        let mut enc = ConvEncoder::new();
        let out = enc.encode(&[true, false, false, false, false, false, false]);
        let a: Vec<bool> = out.iter().step_by(2).cloned().collect();
        let b: Vec<bool> = out.iter().skip(1).step_by(2).cloned().collect();
        // g0 = 1011011 (binary, MSB = current input): successive A outputs
        // see the 1 march from the "current" tap to the oldest tap.
        let g0_bits: Vec<bool> = (0..7).rev().map(|i| (G0 >> i) & 1 == 1).collect();
        let g1_bits: Vec<bool> = (0..7).rev().map(|i| (G1 >> i) & 1 == 1).collect();
        assert_eq!(a, g0_bits);
        assert_eq!(b, g1_bits);
    }

    #[test]
    fn zero_input_keeps_zero_output() {
        let out = encode_r12(&vec![false; 20]);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn code_is_linear() {
        let x: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let y: Vec<bool> = (0..40).map(|i| i % 5 == 1).collect();
        let xy: Vec<bool> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let ex = encode_r12(&x);
        let ey = encode_r12(&y);
        let exy = encode_r12(&xy);
        let sum: Vec<bool> = ex.iter().zip(&ey).map(|(a, b)| a ^ b).collect();
        assert_eq!(exy, sum);
    }

    #[test]
    fn six_zeros_flush_to_zero_state() {
        let mut enc = ConvEncoder::new();
        enc.encode(&[true, true, false, true, true, true]);
        assert_ne!(enc.state(), 0);
        enc.encode(&[false; 6]);
        assert_eq!(enc.state(), 0);
    }

    #[test]
    fn free_distance_is_ten() {
        // The (133,171) code famously has d_free = 10: the minimum-weight
        // nonzero codeword over all short input bursts has weight 10.
        let mut min_weight = usize::MAX;
        // Inputs: a 1 followed by up to 10 arbitrary bits, then flushed.
        for pattern in 0u32..(1 << 10) {
            let mut bits = vec![true];
            for i in 0..10 {
                bits.push((pattern >> i) & 1 == 1);
            }
            bits.extend([false; 6]);
            let w = encode_r12(&bits).iter().filter(|&&b| b).count();
            min_weight = min_weight.min(w);
        }
        assert_eq!(min_weight, 10);
    }

    #[test]
    fn transition_tables_agree_with_encoder() {
        for state in 0..NUM_STATES as u8 {
            for input in [false, true] {
                let mut enc = ConvEncoder::with_state(state);
                let out = enc.push(input);
                assert_eq!(out, transition_output(state, input));
                assert_eq!(enc.state(), transition_next(state, input));
            }
        }
    }

    #[test]
    fn state_is_recent_input_window() {
        let mut enc = ConvEncoder::new();
        enc.push(true);
        assert_eq!(enc.state(), 0b100000);
        enc.push(false);
        assert_eq!(enc.state(), 0b010000);
        enc.push(true);
        assert_eq!(enc.state(), 0b101000);
    }
}
