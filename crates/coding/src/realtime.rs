//! The real-time O(T) decoder (paper Sec 2.7, last three paragraphs).
//!
//! For real-time packet generation BlueFi abandons the Viterbi search and
//! exploits two structural facts at code rate 2/3:
//!
//! * the WiFi interleaver has an internal period of 13, so "important" bits
//!   (those landing on subcarriers inside the Bluetooth band) occupy the
//!   same positions within every 13-bit cycle; and
//! * the mother code is **linear over GF(2)**, so "choose input bits such
//!   that a chosen subset of transmitted bits matches a target exactly" is a
//!   banded linear system, solvable online in one pass.
//!
//! The paper phrases the solution as a lookup table ("any 9-bit pattern has,
//! and only has, eight 12-bit candidates and their first 3 bits are
//! distinct"); that table is precisely the solution set of this linear
//! system, a correspondence the `paper_candidate_table_claim` test checks
//! explicitly. The implementation here solves the system directly with an
//! incremental Gaussian elimination whose bandwidth is bounded by the
//! encoder memory, so the runtime is O(T) with a small constant — the ~50×
//! speedup over Viterbi that Sec 4.8 reports.
//!
//! ## Mask construction
//!
//! [`protected_mask`] decides which transmitted positions are guaranteed
//! exact. It walks the positions inside the "important" band (the tail of
//! each 13-bit cycle for [`FreeEdge::Front`], the head for
//! [`FreeEdge::Back`]) and keeps each position whose parity equation is
//! linearly independent of those already kept — a *target-independent*
//! property of the code, so the mask is computed once per length. Rate 2/3
//! offers 2 information bits per 3 transmitted, so in steady state exactly
//! 26 of every 39 positions are protectable (the paper's "2/3 of bits will
//! not flip"); the rank walk also handles the startup transient, where the
//! zero initial state makes a few early equations degenerate (at stream
//! start `A₀ = B₀ = d₀`, so no mask can pin both).

use crate::convolutional::{encode_r12, encode_r12_into, G0, G1};
use crate::puncture::{puncture, puncture_into, CodeRate};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which edge of each 13-bit interleaver cycle is sacrificial.
///
/// With the HT-20 interleaver at 64-QAM, transmitted-bit index `k mod 13`
/// selects a 1/13th slice of the band from the most negative subcarriers
/// (`k mod 13 == 0` → around −28) to the most positive (→ +28). Allowing
/// flips only at the cycle *front* confines them to negative subcarriers
/// (use when the Bluetooth signal sits at a positive frequency offset);
/// flips only at the cycle *back* confines them to positive subcarriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreeEdge {
    /// Flips allowed at the front of each cycle (subcarriers ≈ −28..−8);
    /// protects the positive half of the band.
    Front,
    /// Flips allowed at the back of each cycle (subcarriers ≈ +8..+28);
    /// protects the negative half of the band.
    Back,
}

/// A sparse GF(2) equation: XOR of `unknowns` equals `rhs`.
#[derive(Debug, Clone)]
struct Eq {
    unknowns: Vec<u32>, // sorted ascending, pivot = last
    rhs: bool,
}

impl Eq {
    fn xor_with(&mut self, other: &Eq) {
        let mut out = Vec::with_capacity(self.unknowns.len() + other.unknowns.len());
        let (a, b) = (&self.unknowns, &other.unknowns);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.unknowns = out;
        self.rhs ^= other.rhs;
    }
}

/// Generator taps as input-index offsets (0 = current input).
fn taps(g: u8) -> Vec<u32> {
    (0..7).filter(|&d| (g >> (6 - d)) & 1 == 1).map(|d| d as u32).collect()
}

/// The symbolic parity equation of transmitted bit `t` at rate 2/3:
/// which input-bit indices XOR to produce it.
fn symbolic_row(t: usize, taps_a: &[u32], taps_b: &[u32]) -> Vec<u32> {
    let g = t / 3;
    let (latest, tapset): (i64, &[u32]) = match t % 3 {
        0 => (2 * g as i64, taps_a),
        1 => (2 * g as i64, taps_b),
        _ => (2 * g as i64 + 1, taps_a),
    };
    let mut unknowns: Vec<u32> = tapset
        .iter()
        .filter_map(|&d| {
            let idx = latest - d as i64;
            (idx >= 0).then_some(idx as u32)
        })
        .collect();
    unknowns.sort_unstable();
    unknowns
}

/// Builds the maximal protected-position mask for `n_tx` transmitted bits
/// (`n_tx` must be a multiple of 39, one full interleaver/puncture
/// super-period).
///
/// Positions outside the sacrificial edge of each 13-bit cycle are
/// protected greedily in transmission order as long as their parity
/// equations stay linearly independent — see the module docs. In steady
/// state this yields 26 protected positions per 39 (the theoretical
/// maximum for rate 2/3).
pub fn protected_mask(n_tx: usize, edge: FreeEdge) -> Vec<bool> {
    assert_eq!(n_tx % 39, 0, "length must be a multiple of 39, got {n_tx}");
    let taps_a = taps(G0);
    let taps_b = taps(G1);
    // Priority phases, most important first. For Front we protect every
    // position at cycle offset ≥ 5 (24 per 39 — the paper's {5..13},
    // {18..25}, {31..38}), then add offset-4 positions while rank lasts
    // (the paper's t=30), then offset 3 and so on: flips end up pinned to
    // the lowest cycle offsets. Back is the mirror image.
    let phase_of = |t: usize| -> usize {
        let pos = t % 13;
        match edge {
            FreeEdge::Front => {
                5_usize.saturating_sub(pos)
            }
            FreeEdge::Back => {
                pos.saturating_sub(7)
            }
        }
    };
    let n_in = n_tx / 3 * 2;
    let mut pivots: Vec<Option<Vec<u32>>> = vec![None; n_in];
    let mut mask = vec![false; n_tx];
    // Processing direction keeps the elimination banded: Front-mode
    // equations reference unknowns just introduced, so ascending order with
    // newest-unknown pivots stays local; Back-mode equations reference
    // unknowns that arrive LATER, so the mirror (descending order,
    // oldest-unknown pivots) is what stays local — ascending order there
    // causes quadratic fill-in.
    let asc = edge == FreeEdge::Front;
    for phase in 0..=5 {
        for i in 0..n_tx {
            let t = if asc { i } else { n_tx - 1 - i };
            if phase_of(t) != phase || mask[t] {
                continue;
            }
            // lint: allow(r10) one-shot mask construction, amortized by RealtimePlan
            let mut row = symbolic_row(t, &taps_a, &taps_b);
            // Reduce symbolically; accept iff independent.
            loop {
                let pivot = if asc { row.last() } else { row.first() };
                match pivot {
                    None => break, // dependent -> stays unprotected
                    Some(&p) => match &pivots[p as usize] {
                        Some(prow) => {
                            let prow = prow.clone();
                            let mut eq = Eq { unknowns: row, rhs: false };
                            // lint: allow(r10) sparse GF(2) rows are variable-length; the Vec is the row
                            eq.xor_with(&Eq { unknowns: prow, rhs: false });
                            row = eq.unknowns;
                        }
                        None => {
                            pivots[p as usize] = Some(row);
                            mask[t] = true;
                            break;
                        }
                    },
                }
            }
        }
    }
    mask
}

/// Error from [`RealtimeDecoder::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RealtimeError {
    /// Target length not a multiple of 3 (rate-2/3 period).
    BadLength(usize),
    /// Mask length does not match the target length.
    MaskMismatch {
        /// transmitted bits
        target: usize,
        /// mask entries
        mask: usize,
    },
    /// The protected constraints are mutually inconsistent (the mask asks
    /// for more exact bits than the code has degrees of freedom in some
    /// window). Masks from [`protected_mask`] never trigger this.
    Infeasible {
        /// transmitted-bit index at which the contradiction surfaced
        at: usize,
    },
}

impl std::fmt::Display for RealtimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealtimeError::BadLength(n) => {
                write!(f, "target length {n} is not a multiple of 3")
            }
            RealtimeError::MaskMismatch { target, mask } => {
                write!(f, "mask length {mask} != target length {target}")
            }
            RealtimeError::Infeasible { at } => {
                write!(f, "protected constraints inconsistent at transmitted bit {at}")
            }
        }
    }
}

impl std::error::Error for RealtimeError {}

/// Result of a real-time decode.
#[derive(Debug, Clone)]
pub struct RealtimeDecode {
    /// The recovered information bits (length `2·n_tx/3`).
    pub decoded: Vec<bool>,
    /// Transmitted positions where re-encoding differs from the target
    /// (all guaranteed to lie at unprotected positions).
    pub flips: Vec<usize>,
}

/// The O(T) exact-constraint decoder for rate 2/3.
#[derive(Debug, Default, Clone)]
pub struct RealtimeDecoder {}

impl RealtimeDecoder {
    /// Creates a decoder.
    pub fn new() -> RealtimeDecoder {
        RealtimeDecoder {}
    }

    /// Finds information bits whose rate-2/3 encoding matches `target` at
    /// every position where `protected` is true, exactly.
    ///
    /// `target.len()` must be a multiple of 3 and equal `protected.len()`.
    /// `edge` must match the mask's construction so the elimination runs in
    /// the banded direction (see [`protected_mask`]).
    pub fn decode(
        &self,
        target: &[bool],
        protected: &[bool],
        edge: FreeEdge,
    ) -> Result<RealtimeDecode, RealtimeError> {
        let n_tx = target.len();
        if !n_tx.is_multiple_of(3) {
            return Err(RealtimeError::BadLength(n_tx));
        }
        if protected.len() != n_tx {
            return Err(RealtimeError::MaskMismatch { target: n_tx, mask: protected.len() });
        }
        let n_in = n_tx / 3 * 2;
        let taps_a = taps(G0);
        let taps_b = taps(G1);

        let asc = edge == FreeEdge::Front;
        let mut pivot_rows: Vec<Option<Eq>> = vec![None; n_in];
        let order: Box<dyn Iterator<Item = usize>> =
            if asc { Box::new(0..n_tx) } else { Box::new((0..n_tx).rev()) };
        for t in order {
            if !protected[t] {
                continue;
            }
            // lint: allow(r10) sparse GF(2) rows are variable-length; the Vec is the row
            let mut eq = Eq { unknowns: symbolic_row(t, &taps_a, &taps_b), rhs: target[t] };
            loop {
                let pivot = if asc { eq.unknowns.last() } else { eq.unknowns.first() };
                match pivot {
                    None => {
                        if eq.rhs {
                            return Err(RealtimeError::Infeasible { at: t });
                        }
                        break; // redundant but consistent
                    }
                    Some(&p) => match &pivot_rows[p as usize] {
                        Some(row) => {
                            let row = row.clone();
                            // lint: allow(r10) sparse row merge; see RealtimePlan for the cached path
                            eq.xor_with(&row);
                        }
                        None => {
                            pivot_rows[p as usize] = Some(eq);
                            break;
                        }
                    },
                }
            }
        }

        // Substitution in pivot order: ascending pivots (Front) reference
        // strictly smaller unknowns, so sweep upward; descending pivots
        // (Back) reference strictly larger ones, so sweep downward. Free
        // unknowns default to 0.
        let mut values = vec![false; n_in];
        let sub_order: Box<dyn Iterator<Item = usize>> =
            if asc { Box::new(0..n_in) } else { Box::new((0..n_in).rev()) };
        for i in sub_order {
            if let Some(row) = &pivot_rows[i] {
                let mut v = row.rhs;
                for &u in &row.unknowns {
                    if (u as usize) != i {
                        v ^= values[u as usize];
                    }
                }
                values[i] = v;
            }
        }

        // Verify and collect flips.
        let re = puncture(CodeRate::R23, &encode_r12(&values));
        debug_assert_eq!(re.len(), n_tx);
        let mut flips = Vec::new();
        for t in 0..n_tx {
            if re[t] != target[t] {
                debug_assert!(!protected[t], "protected bit {t} flipped");
                flips.push(t);
            }
        }
        Ok(RealtimeDecode { decoded: values, flips })
    }
}

/// A precomputed elimination plan for one `(length, edge)` pair.
///
/// The Gaussian elimination's *structure* — which positions are
/// protectable, which pivot each equation lands on, which previously-stored
/// rows it combines with — depends only on the code, never on the target
/// bits. A plan captures that structure once; decoding a target is then a
/// pure replay: propagate right-hand sides along the recorded dependency
/// lists and back-substitute. This is what makes the decoder genuinely
/// real-time (the paper's "pre-generated lookup table" plays the same
/// role).
#[derive(Debug, Clone)]
pub struct RealtimePlan {
    n_tx: usize,
    n_in: usize,
    mask: Vec<bool>,
    /// Pivot rows in processing order.
    rows: Vec<PlanRow>,
    /// Row indices sorted in substitution order (by pivot, ascending for
    /// Front, descending for Back).
    sub_order: Vec<u32>,
    /// Whether rows were processed in ascending transmitted order (Front).
    asc: bool,
    /// `min_pivot_from[i]` = the smallest pivot among `rows[i..]` (`n_in`
    /// for `i == rows.len()`): the suffix-redecode bound — inputs below it
    /// are untouched by any row at index ≥ `i`.
    min_pivot_from: Vec<u32>,
}

#[derive(Debug, Clone)]
struct PlanRow {
    /// The pivot unknown this row solves for.
    pivot: u32,
    /// The transmitted-bit index the equation came from.
    t: u32,
    /// Indices (into `rows`) whose RHS was XORed in during reduction.
    rhs_deps: Vec<u32>,
    /// The reduced row's unknowns (pivot included).
    unknowns: Vec<u32>,
}

impl RealtimePlan {
    /// Builds the plan for `n_tx` transmitted bits (multiple of 39) with
    /// the given sacrificial edge. Cost is one symbolic elimination; every
    /// subsequent [`RealtimePlan::decode`] is allocation-light.
    pub fn new(n_tx: usize, edge: FreeEdge) -> RealtimePlan {
        let mask = protected_mask(n_tx, edge);
        let n_in = n_tx / 3 * 2;
        let taps_a = taps(G0);
        let taps_b = taps(G1);
        let asc = edge == FreeEdge::Front;
        // pivot unknown -> row index
        let mut pivot_of: Vec<Option<u32>> = vec![None; n_in];
        let mut rows: Vec<PlanRow> = Vec::new();
        let order: Box<dyn Iterator<Item = usize>> =
            if asc { Box::new(0..n_tx) } else { Box::new((0..n_tx).rev()) };
        for t in order {
            if !mask[t] {
                continue;
            }
            // lint: allow(r10) one-shot plan construction, amortized across decodes
            let mut unknowns = symbolic_row(t, &taps_a, &taps_b);
            let mut rhs_deps = Vec::new();
            loop {
                let pivot = if asc { unknowns.last() } else { unknowns.first() };
                match pivot {
                    None => unreachable!("mask rows are independent by construction"),
                    Some(&p) => match pivot_of[p as usize] {
                        Some(ri) => {
                            rhs_deps.push(ri);
                            let other = rows[ri as usize].unknowns.clone();
                            let mut eq = Eq { unknowns, rhs: false };
                            // lint: allow(r10) one-shot plan construction, amortized across decodes
                            eq.xor_with(&Eq { unknowns: other, rhs: false });
                            unknowns = eq.unknowns;
                        }
                        None => {
                            pivot_of[p as usize] = Some(rows.len() as u32);
                            rows.push(PlanRow {
                                pivot: p,
                                t: t as u32,
                                rhs_deps,
                                unknowns,
                            });
                            break;
                        }
                    },
                }
            }
        }
        let mut sub_order: Vec<u32> = (0..rows.len() as u32).collect();
        sub_order.sort_by_key(|&i| {
            let p = rows[i as usize].pivot as i64;
            if asc {
                p
            } else {
                -p
            }
        });
        let mut min_pivot_from = vec![n_in as u32; rows.len() + 1];
        for i in (0..rows.len()).rev() {
            min_pivot_from[i] = min_pivot_from[i + 1].min(rows[i].pivot);
        }
        RealtimePlan { n_tx, n_in, mask, rows, sub_order, asc, min_pivot_from }
    }

    /// The protected-position mask this plan realizes.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Decodes a target coded stream (length must equal the plan's). Thin
    /// shim over [`RealtimePlan::decode_into`]; hot paths should hold a
    /// [`RealtimeScratch`].
    pub fn decode(&self, target: &[bool]) -> RealtimeDecode {
        let mut scratch = RealtimeScratch::new();
        let mut decoded = Vec::new();
        let mut flips = Vec::new();
        self.decode_into(target, &mut scratch, &mut decoded, &mut flips);
        RealtimeDecode { decoded, flips }
    }

    /// Scratch-buffer variant of [`RealtimePlan::decode`]: replays the
    /// recorded elimination against `target`, writing the recovered
    /// information bits into `decoded` (resized to `2·n_tx/3`) and the
    /// mismatching transmitted positions into `flips` (cleared first).
    /// Allocation-free at steady state: only buffer growth allocates.
    pub fn decode_into(
        &self,
        target: &[bool],
        scratch: &mut RealtimeScratch,
        decoded: &mut Vec<bool>,
        flips: &mut Vec<usize>,
    ) {
        assert_eq!(target.len(), self.n_tx, "target length must match the plan");
        // Phase 1: propagate right-hand sides along the recorded reductions
        // (rhs_deps only reference earlier rows, so one forward pass fills
        // the whole vector).
        let rhs = &mut scratch.rhs;
        bluefi_dsp::contracts::ensure_len(rhs, self.rows.len(), false);
        for (i, row) in self.rows.iter().enumerate() {
            let mut v = target[row.t as usize];
            for &d in &row.rhs_deps {
                v ^= rhs[d as usize];
            }
            rhs[i] = v;
        }
        // Phase 2: substitution in pivot order. Free unknowns default to 0.
        bluefi_dsp::contracts::ensure_len(decoded, self.n_in, false);
        decoded.fill(false);
        for &ri in &self.sub_order {
            let row = &self.rows[ri as usize];
            let mut v = rhs[ri as usize];
            for &u in &row.unknowns {
                if u != row.pivot {
                    v ^= decoded[u as usize];
                }
            }
            decoded[row.pivot as usize] = v;
        }
        // Verify and collect flips through the scratch re-encode buffers.
        encode_r12_into(decoded, &mut scratch.reenc_mother);
        puncture_into(CodeRate::R23, &scratch.reenc_mother, &mut scratch.reenc_punct);
        debug_assert_eq!(scratch.reenc_punct.len(), self.n_tx);
        let cap = flips.capacity();
        flips.clear();
        for (t, (a, b)) in scratch.reenc_punct.iter().zip(target).enumerate() {
            if a != b {
                debug_assert!(!self.mask[t], "protected bit {t} flipped");
                flips.push(t);
            }
        }
        if flips.capacity() > cap {
            bluefi_dsp::contracts::probe_alloc();
        }
    }

    /// Snapshots the state of the decode that just ran through `scratch`
    /// into `ckpt`: the propagated right-hand sides plus the recovered
    /// information bits. A checkpoint lets [`RealtimePlan::redecode_suffix`]
    /// replay only the tail of the elimination when a later target differs
    /// from the checkpointed one only at transmitted positions ≥ some
    /// `t_start`. Allocation-free once the checkpoint buffers have grown.
    pub fn save_checkpoint(
        &self,
        scratch: &RealtimeScratch,
        decoded: &[bool],
        ckpt: &mut RealtimeCheckpoint,
    ) {
        debug_assert_eq!(decoded.len(), self.n_in);
        bluefi_dsp::contracts::ensure_len(&mut ckpt.rhs, self.rows.len(), false);
        ckpt.rhs.copy_from_slice(&scratch.rhs[..self.rows.len()]);
        bluefi_dsp::contracts::ensure_len(&mut ckpt.decoded, self.n_in, false);
        ckpt.decoded.copy_from_slice(decoded);
    }

    /// Index of the first elimination row sourced at or past transmit
    /// position `t_start` (rows are stored in ascending-`t` order).
    fn first_replayed_row(&self, t_start: usize) -> usize {
        self.rows.partition_point(|row| (row.t as usize) < t_start)
    }

    /// How many elimination rows a suffix re-decode from transmit
    /// position `t_start` replays — the incremental-work size of
    /// [`RealtimePlan::redecode_suffix`] (with `t_start = 0` the whole
    /// plan, i.e. the cost of a full replay). Exposed so callers can
    /// attribute patch-path FEC work, e.g. on a trace span's detail.
    pub fn replayed_rows_from(&self, t_start: usize) -> usize {
        self.rows.len() - self.first_replayed_row(t_start)
    }

    /// Incremental redecode for a target that matches the checkpointed one
    /// at every transmitted position `< t_start`: replays only the rows
    /// whose source position is ≥ `t_start` and re-substitutes only the
    /// pivots those rows can reach. Writes the full recovered information
    /// vector into `decoded` and returns `b_bound` — the smallest input
    /// index that may differ from the checkpoint (everything below it is
    /// copied verbatim).
    ///
    /// **Front-edge plans only** (rows ascend in `t` and every pivot is its
    /// row's largest unknown, which is what makes the prefix reusable);
    /// Back-edge callers must run a full [`RealtimePlan::decode_into`].
    /// Flip extraction is a separate pass —
    /// [`RealtimePlan::reencode_flips_suffix`].
    pub fn redecode_suffix(
        &self,
        target: &[bool],
        t_start: usize,
        ckpt: &RealtimeCheckpoint,
        scratch: &mut RealtimeScratch,
        decoded: &mut Vec<bool>,
    ) -> usize {
        debug_assert!(self.asc, "suffix redecode requires a Front-edge plan");
        debug_assert_eq!(target.len(), self.n_tx);
        debug_assert_eq!(ckpt.rhs.len(), self.rows.len());
        debug_assert_eq!(ckpt.decoded.len(), self.n_in);
        // Rows are in ascending-t order: the first row sourced at or past
        // the mutation is found by binary search.
        let r_start = self.first_replayed_row(t_start);
        let b_bound = self.min_pivot_from[r_start] as usize;
        // Phase 1 (suffix): rows < r_start read unchanged targets and
        // unchanged dependencies, so their RHS comes from the checkpoint;
        // rows ≥ r_start are recomputed into the scratch.
        bluefi_dsp::contracts::ensure_len(&mut scratch.rhs, self.rows.len(), false);
        for i in r_start..self.rows.len() {
            let row = &self.rows[i];
            let mut v = target[row.t as usize];
            for &d in &row.rhs_deps {
                let d = d as usize;
                v ^= if d < r_start { ckpt.rhs[d] } else { scratch.rhs[d] };
            }
            scratch.rhs[i] = v;
        }
        // Phase 2: inputs below b_bound are solved by rows < r_start whose
        // unknowns are all < b_bound (Front pivots are row maxima), so they
        // keep their checkpointed values; every pivot ≥ b_bound is
        // re-substituted in ascending pivot order.
        bluefi_dsp::contracts::ensure_len(decoded, self.n_in, false);
        decoded.copy_from_slice(&ckpt.decoded);
        let s_start = self
            .sub_order
            .partition_point(|&ri| (self.rows[ri as usize].pivot as usize) < b_bound);
        for &ri in &self.sub_order[s_start..] {
            let ri = ri as usize;
            let row = &self.rows[ri];
            let mut v = if ri < r_start { ckpt.rhs[ri] } else { scratch.rhs[ri] };
            for &u in &row.unknowns {
                if u != row.pivot {
                    v ^= decoded[u as usize];
                }
            }
            decoded[row.pivot as usize] = v;
        }
        b_bound
    }

    /// Flip extraction to pair with [`RealtimePlan::redecode_suffix`]:
    /// re-encodes only the transmitted suffix that can differ from the
    /// checkpointed base — positions whose parity window reaches an input
    /// ≥ `b_bound` or whose target bit changed (≥ `t_start`) — and splices
    /// it after the base decode's flips. `base_flips` must be the flip list
    /// of the checkpointed decode against the checkpointed target.
    pub fn reencode_flips_suffix(
        &self,
        decoded: &[bool],
        target: &[bool],
        b_bound: usize,
        t_start: usize,
        base_flips: &[usize],
        flips: &mut Vec<usize>,
    ) {
        debug_assert_eq!(decoded.len(), self.n_in);
        debug_assert_eq!(target.len(), self.n_tx);
        // First transmitted position whose newest tapped input is ≥
        // b_bound: positions t with latest(t) < b_bound re-encode
        // identically because every tapped input is unchanged.
        let t_re = 3 * (b_bound / 2) + if b_bound % 2 == 1 { 2 } else { 0 };
        let t_flip = t_start.min(t_re);
        let cap = flips.capacity();
        flips.clear();
        let keep = base_flips.partition_point(|&f| f < t_flip);
        flips.extend_from_slice(&base_flips[..keep]);
        // Generator taps as input-index offsets, hardcoded for the suffix
        // walk (pinned against `taps(G0)`/`taps(G1)` by a test).
        const TAPS_A: [usize; 5] = [0, 2, 3, 5, 6];
        const TAPS_B: [usize; 5] = [0, 1, 2, 3, 6];
        let parity = |taps: &[usize; 5], j: usize| -> bool {
            let mut v = false;
            for &d in taps {
                if d <= j {
                    v ^= decoded[j - d];
                }
            }
            v
        };
        for (t, &want) in target.iter().enumerate().skip(t_flip) {
            let g = t / 3;
            let re = match t % 3 {
                0 => parity(&TAPS_A, 2 * g),
                1 => parity(&TAPS_B, 2 * g),
                _ => parity(&TAPS_A, 2 * g + 1),
            };
            if re != want {
                debug_assert!(!self.mask[t], "protected bit {t} flipped");
                flips.push(t);
            }
        }
        if flips.capacity() > cap {
            bluefi_dsp::contracts::probe_alloc();
        }
    }
}

/// A saved decode state for one `(plan, target)` pair: the propagated
/// right-hand sides and the recovered information bits. Captured by
/// [`RealtimePlan::save_checkpoint`], consumed by
/// [`RealtimePlan::redecode_suffix`] to patch in a mutated target without
/// replaying the untouched prefix of the elimination.
#[derive(Debug, Clone, Default)]
pub struct RealtimeCheckpoint {
    rhs: Vec<bool>,
    decoded: Vec<bool>,
}

impl RealtimeCheckpoint {
    /// An empty checkpoint; buffers grow on first save.
    pub fn new() -> RealtimeCheckpoint {
        RealtimeCheckpoint::default()
    }

    /// Heap footprint of the checkpoint, in bytes (capacity accounting for
    /// the template cache's byte budget).
    pub fn bytes(&self) -> usize {
        self.rhs.capacity() + self.decoded.capacity()
    }
}

/// Reusable buffers for [`RealtimePlan::decode_into`]: the RHS propagation
/// vector and the re-encode verification buffers. One per worker thread,
/// never shared; buffers grow to the largest plan replayed and are then
/// reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct RealtimeScratch {
    rhs: Vec<bool>,
    reenc_mother: Vec<bool>,
    reenc_punct: Vec<bool>,
}

impl RealtimeScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> RealtimeScratch {
        RealtimeScratch::default()
    }
}

type RealtimePlanCache = Mutex<HashMap<(usize, FreeEdge), Arc<RealtimePlan>>>;

fn plan_cache() -> &'static RealtimePlanCache {
    static CACHE: OnceLock<RealtimePlanCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the interned elimination plan for a `(length, edge)` pair. The
/// plan is target-independent (see [`RealtimePlan`]), so real-time packet
/// generation pays the symbolic elimination once per packet geometry — this
/// is what keeps per-packet decode time below the 1.25 ms slot interval
/// (paper Sec 4.8). Construction happens under the intern lock, so
/// concurrent first-users of one key all receive the same `Arc`; plans are
/// never evicted.
pub fn realtime_plan(n_tx: usize, edge: FreeEdge) -> Arc<RealtimePlan> {
    // A poisoned lock only means another thread panicked mid-insert; the
    // map is still structurally sound, so recover rather than propagate.
    let mut map = plan_cache().lock().unwrap_or_else(|p| p.into_inner());
    Arc::clone(
        map.entry((n_tx, edge))
            .or_insert_with(|| Arc::new(RealtimePlan::new(n_tx, edge))),
    )
}

/// Number of real-time plans currently interned (observability/test hook).
pub fn interned_realtime_plan_count() -> usize {
    plan_cache().lock().unwrap_or_else(|p| p.into_inner()).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, k: u64) -> Vec<bool> {
        (0..n).map(|i| (i as u64 * k).wrapping_mul(2654435761) % 97 < 48).collect()
    }

    #[test]
    fn plan_decode_matches_direct_decode() {
        for edge in [FreeEdge::Front, FreeEdge::Back] {
            let n = 39 * 24;
            let plan = RealtimePlan::new(n, edge);
            let direct_mask = protected_mask(n, edge);
            assert_eq!(plan.mask(), &direct_mask[..]);
            for k in [3u64, 17, 29] {
                let target = pattern(n, k);
                let via_plan = plan.decode(&target);
                let direct = RealtimeDecoder::new()
                    .decode(&target, &direct_mask, edge)
                    .unwrap();
                assert_eq!(via_plan.decoded, direct.decoded, "edge {edge:?} k={k}");
                assert_eq!(via_plan.flips, direct.flips);
            }
        }
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = RealtimePlan::new(39 * 8, FreeEdge::Front);
        let a = plan.decode(&pattern(39 * 8, 5));
        let b = plan.decode(&pattern(39 * 8, 5));
        assert_eq!(a.decoded, b.decoded);
    }

    #[test]
    fn replayed_rows_shrink_with_later_mutations() {
        let n = 39 * 8;
        let plan = RealtimePlan::new(n, FreeEdge::Front);
        let all = plan.replayed_rows_from(0);
        assert_eq!(all, plan.rows.len(), "t_start 0 replays the whole plan");
        assert_eq!(plan.replayed_rows_from(n), 0, "past-the-end replays nothing");
        let mut prev = all;
        for t in [1, n / 4, n / 2, n - 1] {
            let r = plan.replayed_rows_from(t);
            assert!(r <= prev, "replayed rows must be monotone in t_start");
            prev = r;
        }
        // Consistency with the row layout itself.
        for t in [0, 7, n / 3, n - 1] {
            let direct = plan.rows.iter().filter(|row| (row.t as usize) >= t).count();
            assert_eq!(plan.replayed_rows_from(t), direct);
        }
    }

    /// Recovers the edge a mask was built with (tests only): Front masks
    /// leave position 0 unprotected.
    fn edge_of(mask: &[bool]) -> FreeEdge {
        if mask[0] { FreeEdge::Back } else { FreeEdge::Front }
    }

    #[test]
    fn protected_mask_reaches_theoretical_maximum() {
        // Rate 2/3 has 26 information bits per 39 transmitted; the rank walk
        // must recover essentially all of them (startup may cost a few).
        for edge in [FreeEdge::Front, FreeEdge::Back] {
            let n = 39 * 8;
            let m = protected_mask(n, edge);
            let protected = m.iter().filter(|&&b| b).count();
            assert!(
                protected >= 26 * 8 - 4,
                "{edge:?}: only {protected} of {} protected",
                26 * 8
            );
            assert!(protected <= 26 * 8, "{edge:?}: rank bound violated");
        }
    }

    #[test]
    fn protected_mask_is_periodic_in_steady_state() {
        let m = protected_mask(39 * 10, FreeEdge::Front);
        // Away from the startup transient and the tail (where the rank walk
        // interacts with the stream boundaries) the pattern repeats.
        for t in 39 * 2..39 * 7 {
            assert_eq!(m[t], m[t + 39], "mask not periodic at {t}");
        }
    }

    #[test]
    fn decode_reproduces_protected_bits_front() {
        let n = 39 * 20;
        let target = pattern(n, 13);
        let mask = protected_mask(n, FreeEdge::Front);
        let out = RealtimeDecoder::new().decode(&target, &mask, edge_of(&mask)).expect("feasible");
        // No flip on a protected position; flips only at cycle fronts.
        for &f in &out.flips {
            assert!(!mask[f]);
            let pos = f % 13;
            assert!(pos <= 4, "flip at cycle position {pos}");
        }
        // The paper's guarantee: at most 1/3 of bits flip.
        assert!(out.flips.len() * 3 <= n);
    }

    #[test]
    fn decode_reproduces_protected_bits_back() {
        let n = 39 * 20;
        let target = pattern(n, 29);
        let mask = protected_mask(n, FreeEdge::Back);
        let out = RealtimeDecoder::new().decode(&target, &mask, edge_of(&mask)).expect("feasible");
        for &f in &out.flips {
            assert!(!mask[f]);
            // Away from the startup transient flips sit at cycle tails.
            if f >= 39 {
                assert!(f % 13 >= 8, "flip at cycle position {}", f % 13);
            }
        }
        assert!(out.flips.len() * 3 <= n + 39);
    }

    #[test]
    fn codeword_targets_decode_with_zero_flips() {
        // If the target IS a rate-2/3 codeword the solver must reproduce it
        // exactly: the protected constraints pin 2/3 of the inputs and the
        // free variables are consistent with the codeword by construction.
        let data = pattern(26 * 10, 7);
        let cw = puncture(CodeRate::R23, &encode_r12(&data));
        let mask = protected_mask(cw.len(), FreeEdge::Front);
        let out = RealtimeDecoder::new()
            .decode(&cw, &mask, FreeEdge::Front)
            .expect("feasible");
        for &f in &out.flips {
            assert!(!mask[f]);
        }
        // The solver does not have to find `data` itself (free variables
        // default to zero), but flips can only sit at unprotected positions
        // and should be rare for a consistent target.
        assert!(out.flips.len() * 3 <= cw.len());
    }

    #[test]
    fn all_masks_feasible_for_many_targets() {
        let dec = RealtimeDecoder::new();
        for k in 1..30u64 {
            let n = 39 * 6;
            let target = pattern(n, k);
            for edge in [FreeEdge::Front, FreeEdge::Back] {
                let mask = protected_mask(n, edge);
                let out = dec
                    .decode(&target, &mask, edge)
                    .unwrap_or_else(|e| panic!("k={k} edge={edge:?}: {e}"));
                for &f in &out.flips {
                    assert!(!mask[f], "k={k} edge={edge:?}: protected flip at {f}");
                }
            }
        }
    }

    #[test]
    fn flips_stay_out_of_the_protected_band_entirely() {
        // The guarantee BlueFi needs: with the Front mask, NO transmitted
        // bit whose cycle position is ≥ 4 ever flips — protected or not
        // (unprotected band positions are linearly dependent on protected
        // ones, so they match automatically... verify empirically).
        let n = 39 * 12;
        let dec = RealtimeDecoder::new();
        for k in 1..12u64 {
            let target = pattern(n, k);
            let mask = protected_mask(n, FreeEdge::Front);
            let out = dec.decode(&target, &mask, FreeEdge::Front).unwrap();
            for &f in &out.flips {
                assert!(f % 13 <= 4, "k={k}: flip at cycle position {}", f % 13);
            }
        }
    }

    #[test]
    fn paper_candidate_table_claim() {
        // Paper: "any 9-bit pattern has, and only has, eight 12-bit
        // candidates and their first 3 bits are distinct."
        //
        // Interpretation: with 3 bits of relevant prior history and 9 fresh
        // input bits (12-bit candidates), each 9-bit protected pattern of a
        // cycle is realized by exactly 8 candidates, one per distinct 3-bit
        // history. Brute-force over (history, inputs).
        let mut per_target = std::collections::HashMap::<u16, Vec<u16>>::new();
        for state3 in 0u16..8 {
            for inputs in 0u16..512 {
                let mut stream = Vec::new();
                for i in 0..3 {
                    stream.push((state3 >> i) & 1 == 1);
                }
                for i in 0..9 {
                    stream.push((inputs >> i) & 1 == 1);
                }
                let tx = puncture(CodeRate::R23, &encode_r12(&stream));
                let cycle = &tx[tx.len() - 13..];
                let protected_val: u16 = cycle[4..13]
                    .iter()
                    .enumerate()
                    .fold(0, |acc, (i, &b)| acc | ((b as u16) << i));
                per_target.entry(protected_val).or_default().push((state3 << 9) | inputs);
            }
        }
        assert_eq!(per_target.len(), 512, "every 9-bit pattern reachable");
        for (tgt, cands) in per_target {
            assert_eq!(cands.len(), 8, "target {tgt:#b} has {} candidates", cands.len());
            let mut states: Vec<u16> = cands.iter().map(|c| c >> 9).collect();
            states.sort_unstable();
            states.dedup();
            assert_eq!(states.len(), 8, "3-bit histories must be distinct");
        }
    }

    #[test]
    fn hardcoded_suffix_taps_match_the_generators() {
        // reencode_flips_suffix walks the generators with hardcoded tap
        // offsets; pin them against the canonical derivation.
        assert_eq!(taps(G0), vec![0, 2, 3, 5, 6]);
        assert_eq!(taps(G1), vec![0, 1, 2, 3, 6]);
    }

    #[test]
    fn suffix_redecode_matches_full_decode() {
        // Decode a base target, checkpoint, then mutate suffixes of varying
        // depth: the incremental path must reproduce the full decode's
        // information bits AND flip list word-for-word.
        let n = 39 * 24;
        let plan = RealtimePlan::new(n, FreeEdge::Front);
        let base = pattern(n, 13);
        let mut scratch = RealtimeScratch::new();
        let (mut decoded, mut flips) = (Vec::new(), Vec::new());
        plan.decode_into(&base, &mut scratch, &mut decoded, &mut flips);
        let mut ckpt = RealtimeCheckpoint::new();
        plan.save_checkpoint(&scratch, &decoded, &mut ckpt);
        let base_flips = flips.clone();

        for (t_start, k) in [(0usize, 5u64), (39, 7), (n / 2, 11), (n - 39, 17), (n - 1, 19), (n, 23)] {
            let mut target = base.clone();
            let tail = pattern(n, k);
            target[t_start..].copy_from_slice(&tail[t_start..]);

            let (mut want_dec, mut want_flips) = (Vec::new(), Vec::new());
            let mut full_scratch = RealtimeScratch::new();
            plan.decode_into(&target, &mut full_scratch, &mut want_dec, &mut want_flips);

            let mut got_dec = Vec::new();
            let b = plan.redecode_suffix(&target, t_start, &ckpt, &mut scratch, &mut got_dec);
            assert_eq!(got_dec, want_dec, "t_start={t_start}");
            // The bound is sound: everything below it matches the base.
            assert_eq!(got_dec[..b], ckpt.decoded[..b]);

            let mut got_flips = Vec::new();
            plan.reencode_flips_suffix(&got_dec, &target, b, t_start, &base_flips, &mut got_flips);
            assert_eq!(got_flips, want_flips, "t_start={t_start}");
        }
    }

    #[test]
    fn suffix_redecode_of_the_unchanged_target_is_identity() {
        let n = 39 * 8;
        let plan = RealtimePlan::new(n, FreeEdge::Front);
        let base = pattern(n, 3);
        let mut scratch = RealtimeScratch::new();
        let (mut decoded, mut flips) = (Vec::new(), Vec::new());
        plan.decode_into(&base, &mut scratch, &mut decoded, &mut flips);
        let mut ckpt = RealtimeCheckpoint::new();
        plan.save_checkpoint(&scratch, &decoded, &mut ckpt);
        let mut got = Vec::new();
        let b = plan.redecode_suffix(&base, n, &ckpt, &mut scratch, &mut got);
        assert_eq!(b, n / 3 * 2);
        assert_eq!(got, decoded);
        let mut got_flips = Vec::new();
        plan.reencode_flips_suffix(&got, &base, b, n, &flips, &mut got_flips);
        assert_eq!(got_flips, flips);
    }

    #[test]
    fn bad_lengths_are_rejected() {
        let d = RealtimeDecoder::new();
        assert!(matches!(
            d.decode(&[true; 40], &[true; 40], FreeEdge::Front),
            Err(RealtimeError::BadLength(40))
        ));
        assert!(matches!(
            d.decode(&[true; 39], &[true; 38], FreeEdge::Front),
            Err(RealtimeError::MaskMismatch { .. })
        ));
    }

    #[test]
    fn over_constrained_mask_reports_infeasible() {
        // Protecting EVERY bit of a non-codeword must fail: rate 2/3 can
        // only realize 2^26 of the 2^39 targets per group.
        let n = 39 * 4;
        let d = RealtimeDecoder::new();
        let all = vec![true; n];
        let mut hit_infeasible = false;
        for k in 1..20 {
            let target = pattern(n, k);
            match d.decode(&target, &all, FreeEdge::Front) {
                Err(RealtimeError::Infeasible { .. }) => {
                    hit_infeasible = true;
                    break;
                }
                Ok(out) => assert!(out.flips.is_empty()),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_infeasible);
    }

    #[test]
    fn decoded_length_is_two_thirds() {
        let n = 39 * 2;
        let target = pattern(n, 3);
        let mask = protected_mask(n, FreeEdge::Front);
        let out = RealtimeDecoder::new().decode(&target, &mask, FreeEdge::Front).unwrap();
        assert_eq!(out.decoded.len(), n / 3 * 2);
    }
}
