//! # bluefi-coding
//!
//! Channel-coding substrate for the BlueFi workspace — every bit-level
//! transform either standard applies, implemented from scratch:
//!
//! * [`lfsr`] — the 802.11 scrambler and Bluetooth whitening sequences
//!   (all built on the shared `x⁷+x⁴+1` register).
//! * [`convolutional`] — the 802.11 K=7 (133,171) mother code.
//! * [`puncture`] — rate 1/2, 2/3, 3/4, 5/6 puncturing with erasure-aware
//!   depuncturing.
//! * [`viterbi`] — weighted hard-decision Viterbi decoding (BlueFi's
//!   "important bits must not flip" reversal, paper Sec 2.7).
//! * [`trellis`] — the bit-packed branchless engine behind [`viterbi`]:
//!   interned per-(rate, length) trellis plans, u64 survivor words, and a
//!   branchless add–compare–select kernel.
//! * [`realtime`] — the O(T) exact-constraint decoder at rate 2/3 used for
//!   real-time packet generation (paper Sec 2.7 / 4.8).
//! * [`crc`] — Bluetooth HEC-8, CRC-16 and BLE CRC-24.
//! * [`hamming`] — Bluetooth rate-2/3 (15,10) FEC and rate-1/3 repetition.
//! * [`bch`] — the (64,30) sync-word code with the GIAC golden vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod convolutional;
pub mod crc;
pub mod hamming;
pub mod lfsr;
pub mod puncture;
pub mod realtime;
pub mod trellis;
pub mod viterbi;

pub use convolutional::ConvEncoder;
pub use puncture::CodeRate;
pub use realtime::{FreeEdge, RealtimeCheckpoint, RealtimeDecoder};
pub use trellis::{trellis_plan, TrellisPlan};
pub use viterbi::ViterbiScratch;
