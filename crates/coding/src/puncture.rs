//! Puncturing patterns for the 802.11 BCC (17.3.5.6 / Fig 17-9..11).
//!
//! Higher code rates are obtained from the rate-1/2 mother code by skipping
//! ("stealing") some output bits. Depuncturing re-inserts erasures at the
//! stolen positions so a decoder can treat them as "no information".

/// The four 802.11 code rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing).
    R12,
    /// Rate 2/3 — per 2 input bits transmit A1 B1 A2 (steal B2).
    R23,
    /// Rate 3/4 — per 3 input bits transmit A1 B1 A2 B3 (steal B2, A3).
    R34,
    /// Rate 5/6 — per 5 input bits transmit A1 B1 A2 B3 A4 B5.
    R56,
}

impl CodeRate {
    /// (numerator, denominator) of the information rate.
    pub fn ratio(self) -> (usize, usize) {
        match self {
            CodeRate::R12 => (1, 2),
            CodeRate::R23 => (2, 3),
            CodeRate::R34 => (3, 4),
            CodeRate::R56 => (5, 6),
        }
    }

    /// The puncturing pattern as (keep-A, keep-B) flags per input bit,
    /// repeated cyclically over the input stream.
    pub fn pattern(self) -> (&'static [bool], &'static [bool]) {
        match self {
            CodeRate::R12 => (&[true], &[true]),
            CodeRate::R23 => (&[true, true], &[true, false]),
            CodeRate::R34 => (&[true, true, false], &[true, false, true]),
            CodeRate::R56 => (
                &[true, true, false, true, false],
                &[true, false, true, false, true],
            ),
        }
    }

    /// Input bits per puncturing period.
    pub fn period_inputs(self) -> usize {
        self.pattern().0.len()
    }

    /// Transmitted bits per puncturing period.
    pub fn period_outputs(self) -> usize {
        let (a, b) = self.pattern();
        a.iter().filter(|&&k| k).count() + b.iter().filter(|&&k| k).count()
    }

    /// Number of transmitted (punctured) bits for `n_input` information
    /// bits. `n_input` must be a multiple of the period.
    pub fn n_transmitted(self, n_input: usize) -> usize {
        let p = self.period_inputs();
        assert_eq!(
            n_input % p,
            0,
            "input length {n_input} not a multiple of the rate-{:?} period {p}",
            self
        );
        n_input / p * self.period_outputs()
    }

    /// Number of information bits for `n_tx` transmitted bits.
    pub fn n_inputs(self, n_tx: usize) -> usize {
        let q = self.period_outputs();
        assert_eq!(n_tx % q, 0, "transmitted length {n_tx} not a multiple of {q}");
        n_tx / q * self.period_inputs()
    }
}

/// Punctures an interleaved mother-code stream `[A0, B0, A1, B1, ...]`.
/// Thin shim over [`puncture_into`].
pub fn puncture(rate: CodeRate, mother: &[bool]) -> Vec<bool> {
    let mut out = Vec::new();
    puncture_into(rate, mother, &mut out);
    out
}

/// Scratch-buffer variant of [`puncture`]: writes the surviving bits into
/// `out` (cleared first), allocating only when `out`'s capacity must grow.
pub fn puncture_into(rate: CodeRate, mother: &[bool], out: &mut Vec<bool>) {
    assert_eq!(mother.len() % 2, 0);
    let (ka, kb) = rate.pattern();
    let p = ka.len();
    // The mother length bounds the output; reserving it once keeps every
    // subsequent push allocation-free.
    bluefi_dsp::contracts::ensure_capacity(out, mother.len());
    for (i, pair) in mother.chunks_exact(2).enumerate() {
        let ph = i % p;
        if ka[ph] {
            out.push(pair[0]);
        }
        if kb[ph] {
            out.push(pair[1]);
        }
    }
    if bluefi_dsp::contracts::enabled() {
        // Stage contract: whenever the input covers whole puncturing
        // periods, the output length must agree with the rate arithmetic
        // the rest of the pipeline budgets with.
        let pairs = mother.len() / 2;
        if pairs % rate.period_inputs() == 0 {
            bluefi_dsp::contract!(
                out.len() == rate.n_transmitted(pairs),
                "puncture: rate {rate:?} emitted {} bits for {pairs} input bits, expected {}",
                out.len(),
                rate.n_transmitted(pairs)
            );
        }
    }
}

/// A received mother-stream symbol: a hard bit or an erasure (a punctured
/// position carrying no information).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxBit {
    /// A transmitted bit with an attached weight (importance; see the
    /// weighted Viterbi of the paper's Sec 2.7).
    Bit {
        /// Hard bit value.
        value: bool,
        /// Mismatch cost used by the Viterbi branch metric.
        weight: u32,
    },
    /// A stolen (punctured) position: matches anything at zero cost.
    Erasure,
}

/// Re-inserts erasures, expanding a punctured stream (optionally with
/// per-transmitted-bit weights) back to mother-code positions
/// `[A0, B0, A1, B1, ...]`.
///
/// `weights` must be `None` or the same length as `punctured`; missing
/// weights default to 1.
pub fn depuncture(rate: CodeRate, punctured: &[bool], weights: Option<&[u32]>) -> Vec<RxBit> {
    let mut out = Vec::new();
    depuncture_into(rate, punctured, weights, &mut out);
    out
}

/// Scratch-buffer variant of [`depuncture`]: expands into `out` (resized to
/// the mother-stream length), allocating only when `out` must grow.
pub fn depuncture_into(
    rate: CodeRate,
    punctured: &[bool],
    weights: Option<&[u32]>,
    out: &mut Vec<RxBit>,
) {
    if let Some(w) = weights {
        assert_eq!(w.len(), punctured.len());
    }
    let (ka, kb) = rate.pattern();
    let p = ka.len();
    let n_in = rate.n_inputs(punctured.len());
    bluefi_dsp::contracts::ensure_len(out, n_in * 2, RxBit::Erasure);
    let mut src = 0usize;
    let mut take = |keep: bool| -> RxBit {
        if keep {
            let v = punctured[src];
            let w = weights.map_or(1, |w| w[src]);
            src += 1;
            RxBit::Bit { value: v, weight: w }
        } else {
            RxBit::Erasure
        }
    };
    for i in 0..n_in {
        let ph = i % p;
        out[2 * i] = take(ka[ph]);
        out[2 * i + 1] = take(kb[ph]);
    }
    // Stage contracts: every transmitted bit must be consumed exactly once,
    // and the expanded stream must cover all mother-code positions.
    bluefi_dsp::contract!(
        src == punctured.len(),
        "depuncture: consumed {src} of {} transmitted bits",
        punctured.len()
    );
    bluefi_dsp::contract!(
        out.len() == 2 * n_in,
        "depuncture: produced {} mother positions for {n_in} input bits",
        out.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolutional::encode_r12;

    #[test]
    fn rate_arithmetic() {
        assert_eq!(CodeRate::R12.n_transmitted(10), 20);
        assert_eq!(CodeRate::R23.n_transmitted(10), 15);
        assert_eq!(CodeRate::R34.n_transmitted(9), 12);
        assert_eq!(CodeRate::R56.n_transmitted(10), 12);
        assert_eq!(CodeRate::R56.n_inputs(12), 10);
    }

    #[test]
    fn r23_steals_every_second_b() {
        // mother: A0 B0 A1 B1 A2 B2 A3 B3 -> keep A0 B0 A1 / A2 B2 A3.
        let mother: Vec<bool> = vec![
            true, false, // A0 B0
            true, true, // A1 B1 (B1 stolen)
            false, true, // A2 B2
            false, false, // A3 B3 (B3 stolen)
        ];
        assert_eq!(
            puncture(CodeRate::R23, &mother),
            vec![true, false, true, false, true, false]
        );
    }

    #[test]
    fn depuncture_restores_positions() {
        // 30 is a common multiple of every puncturing period (1, 2, 3, 5).
        let data: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let mother = encode_r12(&data);
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56] {
            let tx = puncture(rate, &mother);
            assert_eq!(tx.len(), rate.n_transmitted(data.len()));
            let rx = depuncture(rate, &tx, None);
            assert_eq!(rx.len(), mother.len());
            // Every non-erasure position must match the mother stream.
            let mut erasures = 0;
            for (i, r) in rx.iter().enumerate() {
                match r {
                    RxBit::Bit { value, .. } => assert_eq!(*value, mother[i], "pos {i}"),
                    RxBit::Erasure => erasures += 1,
                }
            }
            assert_eq!(erasures, mother.len() - tx.len());
        }
    }

    #[test]
    fn weights_ride_along() {
        let data = vec![true, false, true, true, false, true, false, false, true, true];
        let tx = puncture(CodeRate::R56, &encode_r12(&data));
        let weights: Vec<u32> = (0..tx.len() as u32).collect();
        let rx = depuncture(CodeRate::R56, &tx, Some(&weights));
        let seen: Vec<u32> = rx
            .iter()
            .filter_map(|r| match r {
                RxBit::Bit { weight, .. } => Some(*weight),
                RxBit::Erasure => None,
            })
            .collect();
        assert_eq!(seen, weights);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_length_panics() {
        CodeRate::R56.n_transmitted(7);
    }
}
