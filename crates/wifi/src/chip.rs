//! Models of the WiFi transmitters the paper evaluates (Sec 3):
//! the Atheros AR9331 (ath9k, GL-AR150 router), the Realtek RTL8811AU
//! (TP-Link T2U Nano) and a USRP-style SDR used for the impairment study.
//!
//! The chip model captures exactly the vendor behaviours BlueFi depends on:
//!
//! * **Scrambler seed policy** — Atheros increments the seed per packet
//!   (predictable, and settable to a constant 1 via the GEN_SCRAMBLER
//!   register bit); Realtek uses a fixed seed (71 on RTL8811AU); an SDR
//!   lets you pick.
//! * **OFDM windowing** — always on in COTS silicon, absent on the SDR
//!   (which is why waveforms that ignore the continuity constraint work on
//!   USRP but not on real chips, Sec 2.4).
//! * **Default transmit power** — 18 dBm on the AR9331, similar on the
//!   RTL8811AU; the USRP is calibrated per experiment.

use crate::mcs::Mcs;
use crate::preamble::ht_mixed_preamble;
use crate::tx::{data_field, TxConfig};
use bluefi_dsp::power::{dbm_to_mw, mean_power};
use bluefi_dsp::Cx;

/// How a chip chooses the scrambler seed for successive packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// A fixed seed for every packet (Realtek; or Atheros with
    /// GEN_SCRAMBLER cleared).
    Constant(u8),
    /// Arithmetic sequence: seed increments by 1 each packet, wrapping
    /// within 1..=127 (Atheros default).
    Incrementing {
        /// Seed used for the next packet.
        next: u8,
    },
}

impl SeedPolicy {
    /// The seed the next packet will use, advancing the policy state.
    pub fn take_seed(&mut self) -> u8 {
        match self {
            SeedPolicy::Constant(s) => *s,
            SeedPolicy::Incrementing { next } => {
                let s = *next;
                *next = if *next >= 127 { 1 } else { *next + 1 };
                s
            }
        }
    }

    /// Predicts the seed `k` packets ahead without advancing.
    pub fn predict(&self, k: usize) -> u8 {
        match self {
            SeedPolicy::Constant(s) => *s,
            SeedPolicy::Incrementing { next } => {
                (((*next as usize - 1) + k) % 127 + 1) as u8
            }
        }
    }
}

/// A WiFi transmitter model.
#[derive(Debug, Clone)]
pub struct ChipModel {
    /// Human-readable chip name.
    pub name: &'static str,
    /// Scrambler seed behaviour.
    pub seed_policy: SeedPolicy,
    /// Whether the TX path applies per-symbol windowing.
    pub windowing: bool,
    /// Default transmit power in dBm.
    pub default_tx_dbm: f64,
    /// Per-chip amplitude flatness ripple (fractional, models the wider
    /// RSSI variance the paper observed on the RTL8811AU, Fig 5c).
    pub amplitude_ripple: f64,
}

impl ChipModel {
    /// Qualcomm Atheros AR9331 (GL-AR150 router, ath79/ath9k).
    pub fn ar9331() -> ChipModel {
        ChipModel {
            name: "AR9331",
            // BlueFi sets the seed to a constant 1 by clearing the (moved)
            // GEN_SCRAMBLER register bit (Sec 3).
            seed_policy: SeedPolicy::Constant(1),
            windowing: true,
            default_tx_dbm: 18.0,
            amplitude_ripple: 0.02,
        }
    }

    /// Atheros with the stock driver: incrementing seeds, still predictable.
    pub fn ar9331_stock() -> ChipModel {
        ChipModel {
            seed_policy: SeedPolicy::Incrementing { next: 1 },
            ..ChipModel::ar9331()
        }
    }

    /// Realtek RTL8811AU (TP-Link T2U Nano): constant seed 71.
    pub fn rtl8811au() -> ChipModel {
        ChipModel {
            name: "RTL8811AU",
            seed_policy: SeedPolicy::Constant(71),
            windowing: true,
            default_tx_dbm: 18.0,
            amplitude_ripple: 0.08,
        }
    }

    /// A USRP-style SDR: chosen seed, no hardware windowing.
    pub fn usrp(seed: u8) -> ChipModel {
        ChipModel {
            name: "USRP",
            seed_policy: SeedPolicy::Constant(seed),
            windowing: false,
            default_tx_dbm: 10.0,
            amplitude_ripple: 0.0,
        }
    }

    /// Builds the TX configuration this chip applies to a BlueFi packet.
    pub fn tx_config(&self, mcs: Mcs, seed: u8) -> TxConfig {
        TxConfig {
            mcs,
            gi: crate::ofdm::GuardInterval::Short,
            scrambler_seed: seed,
            windowing: self.windowing,
        }
    }

    /// Transmits a PSDU: preamble + data field, scaled so mean transmit
    /// power equals `tx_dbm` (treating 1.0² sample power as 1 mW before
    /// scaling — an arbitrary but consistent reference the channel model
    /// shares).
    pub fn transmit(&mut self, psdu: &[u8], mcs: Mcs, tx_dbm: f64) -> Ppdu {
        let seed = self.seed_policy.take_seed();
        self.transmit_with_seed(psdu, mcs, tx_dbm, seed)
    }

    /// Like [`ChipModel::transmit`] but with an explicit scrambler seed
    /// (what BlueFi's driver patch arranges).
    pub fn transmit_with_seed(&self, psdu: &[u8], mcs: Mcs, tx_dbm: f64, seed: u8) -> Ppdu {
        let cfg = self.tx_config(mcs, seed);
        let data = data_field(psdu, &cfg);
        let mut preamble = ht_mixed_preamble(&mcs, psdu.len(), true);
        // The preamble is generated in normalized units; bring it to the
        // data field's unnormalized constellation units so both have the
        // standard's equal average power.
        let k = 1.0 / mcs.modulation.kmod();
        for v in &mut preamble {
            *v = v.scale(k);
        }
        let mut iq: Vec<Cx> = preamble;
        iq.extend(data);
        // Scale to the requested transmit power.
        let p = mean_power(&iq);
        let target = dbm_to_mw(tx_dbm);
        let g = (target / p).sqrt();
        for v in &mut iq {
            *v = v.scale(g);
        }
        Ppdu { iq, seed, preamble_len: 720 }
    }
}

/// A transmitted PPDU: 20 Msps baseband IQ plus metadata.
#[derive(Debug, Clone)]
pub struct Ppdu {
    /// Baseband IQ at 20 Msps, scaled to the requested power.
    pub iq: Vec<Cx>,
    /// Scrambler seed the packet was built with.
    pub seed: u8,
    /// Number of preamble samples before the data field.
    pub preamble_len: usize,
}

impl Ppdu {
    /// The data-field portion of the waveform.
    pub fn data(&self) -> &[Cx] {
        &self.iq[self.preamble_len..]
    }

    /// Airtime in microseconds at 20 Msps.
    pub fn airtime_us(&self) -> f64 {
        self.iq.len() as f64 / 20.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_policies() {
        let mut p = SeedPolicy::Incrementing { next: 126 };
        assert_eq!(p.take_seed(), 126);
        assert_eq!(p.take_seed(), 127);
        assert_eq!(p.take_seed(), 1); // wraps, never 0
        let mut c = SeedPolicy::Constant(71);
        assert_eq!(c.take_seed(), 71);
        assert_eq!(c.take_seed(), 71);
    }

    #[test]
    fn seed_prediction_matches_actuals() {
        let template = SeedPolicy::Incrementing { next: 120 };
        let mut live = template;
        for k in 0..20 {
            assert_eq!(template.predict(k), live.take_seed(), "packet {k}");
        }
    }

    #[test]
    fn transmit_power_is_respected() {
        let chip = ChipModel::rtl8811au();
        for dbm in [0.0, 10.0, 18.0] {
            let ppdu = chip.transmit_with_seed(&[0xAB; 50], Mcs::from_index(7), dbm, 71);
            let p = mean_power(&ppdu.iq);
            let err_db = (p / dbm_to_mw(dbm)).log10().abs() * 10.0;
            assert!(err_db < 0.01, "{dbm} dBm: error {err_db} dB");
        }
    }

    #[test]
    fn chips_differ_in_windowing() {
        assert!(ChipModel::ar9331().windowing);
        assert!(ChipModel::rtl8811au().windowing);
        assert!(!ChipModel::usrp(1).windowing);
    }

    #[test]
    fn ppdu_layout() {
        let chip = ChipModel::ar9331();
        let ppdu = chip.transmit_with_seed(&[0u8; 29], Mcs::from_index(7), 18.0, 1);
        assert_eq!(ppdu.iq.len(), 720 + 72);
        assert_eq!(ppdu.data().len(), 72);
        assert!((ppdu.airtime_us() - 39.6).abs() < 1e-9);
    }

    #[test]
    fn preamble_and_data_have_similar_power() {
        let chip = ChipModel::ar9331();
        let ppdu = chip.transmit_with_seed(&[0x5A; 500], Mcs::from_index(7), 18.0, 1);
        let pp = mean_power(&ppdu.iq[..720]);
        let pd = mean_power(ppdu.data());
        let ratio_db = 10.0 * (pp / pd).log10();
        assert!(ratio_db.abs() < 3.0, "preamble/data power ratio {ratio_db} dB");
    }
}
