//! The HT data-field transmit pipeline (Fig 1 of the paper): scrambler →
//! BCC encoder (+ puncturing) → interleaver → QAM → pilots/nulls → IFFT →
//! CP insertion → windowing.
//!
//! Every stage is exposed individually so `bluefi-core` can reverse them
//! block-by-block and so the Sec 4.6 impairment study can tap intermediate
//! signals.

use crate::interleaver::Interleaver;
use crate::mcs::Mcs;
use crate::ofdm::{append_symbol, modulate_symbol, modulate_symbol_into, stitch_symbols, GuardInterval};
use crate::pilots::ht_pilot_values;
use crate::qam::{map_bits, Modulation};
use crate::subcarriers::{subcarrier_of_data_index, FFT_SIZE, N_DATA, PILOT_SUBCARRIERS};
use bluefi_coding::lfsr::scramble;
use bluefi_coding::puncture::puncture;
use bluefi_coding::ConvEncoder;
use bluefi_dsp::bits::bytes_to_bits_lsb;
use bluefi_dsp::fft::{bin_of_subcarrier, fft_plan};
use bluefi_dsp::{cx, Cx};

/// Transmit-chain configuration.
#[derive(Debug, Clone, Copy)]
pub struct TxConfig {
    /// Modulation and coding scheme.
    pub mcs: Mcs,
    /// Guard interval (BlueFi requires [`GuardInterval::Short`]).
    pub gi: GuardInterval,
    /// Scrambler seed the chip will use (1..=127).
    pub scrambler_seed: u8,
    /// Whether the chip applies per-symbol windowing (COTS chips: yes;
    /// USRP-style SDR: no).
    pub windowing: bool,
}

impl TxConfig {
    /// The configuration BlueFi drives real chips with: MCS 7, SGI,
    /// windowing on.
    pub fn bluefi_default(scrambler_seed: u8) -> TxConfig {
        TxConfig {
            mcs: Mcs::bluefi_viterbi(),
            gi: GuardInterval::Short,
            scrambler_seed,
            windowing: true,
        }
    }
}

/// Stage 1 — bit assembly and scrambling (17.3.5.5): SERVICE (16 zero
/// bits) + PSDU + 6 tail bits + pad to a symbol boundary, scrambled; the
/// tail positions are re-zeroed after scrambling so the encoder flushes.
pub fn scrambled_bits(psdu: &[u8], seed: u8, mcs: Mcs) -> Vec<bool> {
    let mut bits = vec![false; 16];
    bits.extend(bytes_to_bits_lsb(psdu));
    let tail_start = bits.len();
    bits.extend([false; 6]);
    let ndbps = mcs.data_bits_per_symbol();
    while !bits.len().is_multiple_of(ndbps) {
        bits.push(false);
    }
    let mut s = scramble(seed, &bits);
    for b in &mut s[tail_start..tail_start + 6] {
        *b = false;
    }
    s
}

/// Stage 2 — FEC encoding and puncturing to the MCS code rate.
pub fn coded_bits(scrambled: &[bool], mcs: Mcs) -> Vec<bool> {
    puncture(mcs.rate, &ConvEncoder::new().encode(scrambled))
}

/// Stage 3 — one OFDM symbol's frequency-domain samples (64 bins, FFT
/// order, unnormalized constellation units) from one symbol's worth of
/// coded bits. `symbol_index` selects the pilot polarity. Thin shim over
/// [`TxScratch::symbol_spectrum_into`].
pub fn symbol_spectrum(coded: &[bool], mcs: Mcs, symbol_index: usize) -> Vec<Cx> {
    let mut out = Vec::new();
    TxScratch::new().symbol_spectrum_into(coded, mcs, symbol_index, &mut out);
    out
}

/// Reusable transmit-chain scratch: the (contract-checked) interleaver,
/// cached per modulation, plus the intermediate buffers of per-symbol
/// assembly. One scratch per worker thread; after warm-up, driving the TX
/// chain through it allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct TxScratch {
    il: Option<(Modulation, Interleaver)>,
    interleaved: Vec<bool>,
    spectrum: Vec<Cx>,
    symbol: Vec<Cx>,
}

impl TxScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> TxScratch {
        TxScratch::default()
    }

    fn interleaver_for(&mut self, modulation: Modulation) -> Interleaver {
        match self.il {
            Some((m, il)) if m == modulation => il,
            _ => {
                // Interleaver::new re-runs the bijectivity contract in
                // debug builds, so hoist it out of the per-symbol loop.
                let il = Interleaver::new(modulation);
                self.il = Some((modulation, il));
                il
            }
        }
    }

    /// Scratch-buffer variant of [`symbol_spectrum`]: assembles the 64-bin
    /// spectrum into `out`, allocating only when buffers must grow.
    pub fn symbol_spectrum_into(
        &mut self,
        coded: &[bool],
        mcs: Mcs,
        symbol_index: usize,
        out: &mut Vec<Cx>,
    ) {
        let il = self.interleaver_for(mcs.modulation);
        assert_eq!(coded.len(), il.block_len(), "one symbol of coded bits");
        let mut interleaved = std::mem::take(&mut self.interleaved);
        il.interleave_into(coded, &mut interleaved);
        let nbpsc = mcs.modulation.bits_per_symbol();
        bluefi_dsp::contracts::ensure_len(out, FFT_SIZE, Cx::ZERO);
        out.fill(Cx::ZERO);
        for d in 0..N_DATA {
            let point = map_bits(mcs.modulation, &interleaved[d * nbpsc..(d + 1) * nbpsc]);
            out[bin_of_subcarrier(subcarrier_of_data_index(d), FFT_SIZE)] = point;
        }
        // Pilots: ±1 in normalized units = ±1/K_MOD in constellation units.
        let pilot_scale = 1.0 / mcs.modulation.kmod();
        for (m, &sc) in PILOT_SUBCARRIERS.iter().enumerate() {
            let v = ht_pilot_values(symbol_index)[m] * pilot_scale;
            out[bin_of_subcarrier(sc, FFT_SIZE)] = cx(v, 0.0);
        }
        self.interleaved = interleaved;
    }

    /// Scratch-buffer variant of [`waveform_from_coded`]: assembles the
    /// data-field waveform into `out` symbol by symbol through the cached
    /// FFT plan and this scratch's buffers.
    pub fn waveform_from_coded_into(&mut self, coded: &[bool], cfg: &TxConfig, out: &mut Vec<Cx>) {
        let ncbps = cfg.mcs.coded_bits_per_symbol();
        assert_eq!(coded.len() % ncbps, 0, "coded bits must fill whole symbols");
        let n_sym = coded.len() / ncbps;
        let plan = fft_plan(FFT_SIZE);
        bluefi_dsp::contracts::ensure_capacity(out, n_sym * cfg.gi.symbol_len());
        let mut spectrum = std::mem::take(&mut self.spectrum);
        let mut symbol = std::mem::take(&mut self.symbol);
        let mut prev_ext: Option<Cx> = None;
        for (n, chunk) in coded.chunks_exact(ncbps).enumerate() {
            // lint: allow(r10) interleaver comes from the one-entry cache; Interleaver::new runs only on modulation change
            self.symbol_spectrum_into(chunk, cfg.mcs, n, &mut spectrum);
            modulate_symbol_into(&plan, &spectrum, cfg.gi, &mut symbol);
            append_symbol(out, &symbol, cfg.gi, cfg.windowing, prev_ext);
            prev_ext = Some(symbol[cfg.gi.len()]);
        }
        self.spectrum = spectrum;
        self.symbol = symbol;
    }
}

/// The full data-field waveform for a PSDU. Returns 20 Msps IQ samples in
/// unnormalized units (average power ≈ `52/64·(1/K_MOD)²`; scale at the
/// radio model).
pub fn data_field(psdu: &[u8], cfg: &TxConfig) -> Vec<Cx> {
    let scrambled = scrambled_bits(psdu, cfg.scrambler_seed, cfg.mcs);
    let coded = coded_bits(&scrambled, cfg.mcs);
    waveform_from_coded(&coded, cfg)
}

/// Lower-level entry: data-field waveform from already-coded bits (must be
/// a multiple of N_CBPS).
pub fn waveform_from_coded(coded: &[bool], cfg: &TxConfig) -> Vec<Cx> {
    let mut out = Vec::new();
    TxScratch::new().waveform_from_coded_into(coded, cfg, &mut out);
    out
}

/// Data-field waveform from explicit per-symbol spectra (used by the
/// impairment study to bypass earlier stages).
pub fn waveform_from_spectra(spectra: &[Vec<Cx>], gi: GuardInterval, windowing: bool) -> Vec<Cx> {
    let plan = fft_plan(FFT_SIZE);
    let symbols: Vec<Vec<Cx>> =
        spectra.iter().map(|s| modulate_symbol(&plan, s, gi)).collect();
    let wave = stitch_symbols(&symbols, gi, windowing);
    // Stage contract: stitching neither drops nor duplicates samples — the
    // waveform is exactly one symbol-length per spectrum (72 for SGI).
    bluefi_dsp::contract!(
        wave.len() == spectra.len() * gi.symbol_len(),
        "waveform_from_spectra: {} samples from {} spectra, expected {}",
        wave.len(),
        spectra.len(),
        spectra.len() * gi.symbol_len()
    );
    wave
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_coding::lfsr::recover_seed;
    use bluefi_dsp::power::mean_power;

    fn cfg() -> TxConfig {
        TxConfig::bluefi_default(71)
    }

    #[test]
    fn scrambled_bits_layout() {
        let mcs = Mcs::from_index(7);
        let s = scrambled_bits(&[0xAB; 30], 71, mcs);
        // 16 + 240 + 6 = 262 -> padded to 2 symbols of 260.
        assert_eq!(s.len(), 520);
        // Tail bits (positions 256..262) are zero.
        for i in 256..262 {
            assert!(!s[i], "tail bit {i}");
        }
        // The seed is recoverable from the scrambled SERVICE field.
        assert_eq!(recover_seed(&s[..7]), Some(71));
    }

    #[test]
    fn coded_length_matches_rate() {
        let mcs = Mcs::from_index(7);
        let s = scrambled_bits(&[0u8; 29], 1, mcs); // 254 -> 260 bits, 1 symbol
        assert_eq!(s.len(), 260);
        let c = coded_bits(&s, mcs);
        assert_eq!(c.len(), 312);
    }

    #[test]
    fn spectrum_has_pilots_nulls_and_data() {
        let mcs = Mcs::from_index(7);
        let coded: Vec<bool> = (0..312).map(|i| i % 3 == 0).collect();
        let spec = symbol_spectrum(&coded, mcs, 0);
        assert_eq!(spec.len(), 64);
        // DC null.
        assert_eq!(spec[0], Cx::ZERO);
        // Guard nulls.
        for k in 29..=35 {
            assert_eq!(spec[k], Cx::ZERO, "bin {k}");
        }
        // Pilot magnitude = sqrt(42).
        let p = spec[7].abs();
        assert!((p - 42f64.sqrt()).abs() < 1e-9, "pilot magnitude {p}");
        // Data subcarriers are odd-integer grid points.
        let d = spec[1];
        assert!((d.re.abs() as i64) % 2 == 1 && (d.im.abs() as i64) % 2 == 1);
    }

    #[test]
    fn waveform_length() {
        let w = data_field(&[0x55; 29], &cfg()); // 1 symbol at MCS7
        assert_eq!(w.len(), 72);
        let w = data_field(&[0x55; 100], &cfg()); // 16+800+6=822 -> 4 symbols
        assert_eq!(w.len(), 4 * 72);
    }

    #[test]
    fn long_gi_symbols_are_80_samples() {
        let mut c = cfg();
        c.gi = GuardInterval::Long;
        let w = data_field(&[0x55; 29], &c);
        assert_eq!(w.len(), 80);
    }

    #[test]
    fn different_seeds_give_different_waveforms() {
        let mut a = cfg();
        a.scrambler_seed = 1;
        let mut b = cfg();
        b.scrambler_seed = 2;
        let wa = data_field(&[0xAA; 29], &a);
        let wb = data_field(&[0xAA; 29], &b);
        let diff: f64 = wa.iter().zip(&wb).map(|(x, y)| (*x - *y).norm_sq()).sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn average_power_is_near_nominal() {
        // 56 populated subcarriers with average |X|² = 42 (unnormalized
        // 64-QAM), through a 1/64 IFFT: E|x|² = 56·42/64² ≈ 0.574.
        let w = data_field(&[0x3C; 200], &cfg());
        let p = mean_power(&w);
        assert!((p - 0.574).abs() < 0.1, "power {p}");
    }

    #[test]
    fn windowing_changes_symbol_boundaries_only() {
        let mut with = cfg();
        with.windowing = true;
        let mut without = cfg();
        without.windowing = false;
        let a = data_field(&[0x77; 100], &with);
        let b = data_field(&[0x77; 100], &without);
        let mut ndiff = 0;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if (*x - *y).abs() > 1e-12 {
                assert_eq!(i % 72, 0, "non-boundary sample {i} changed");
                ndiff += 1;
            }
        }
        assert_eq!(ndiff, 3, "one boundary per symbol after the first");
    }
}
