//! Pilot tones (IEEE 802.11-2016, 17.3.5.10 and 19.3.11.10).
//!
//! Four BPSK pilots ride at subcarriers ±7 and ±21. Their signs come from
//! two sources: the 127-periodic *polarity sequence* `p_n` (the scrambler
//! m-sequence with an all-ones seed, +1 for a 0 bit) indexed by symbol, and
//! — for HT — the per-stream pattern Ψ = {1,1,1,−1} that rotates across the
//! pilot positions with the symbol index.
//!
//! In unnormalized constellation units (64-QAM levels ±1..±7), a pilot has
//! magnitude `1/K_MOD = √42 ≈ 6.48` — which is why the paper's impairment
//! I3 calls pilots "on average of higher magnitudes than those for data
//! transmission".

use bluefi_coding::lfsr::Lfsr7;

/// The pilot polarity sequence `p_0..p_126`, cyclic.
///
/// Generated from the scrambler LFSR seeded with all ones: output bit 0 →
/// +1, bit 1 → −1 (the standard tabulates the same 127 values).
pub fn polarity_sequence() -> [i8; 127] {
    let mut lfsr = Lfsr7::new(0x7F);
    let mut out = [0i8; 127];
    for v in out.iter_mut() {
        *v = if lfsr.next_bit() { -1 } else { 1 };
    }
    out
}

/// Polarity `p_n` for an unbounded symbol index.
pub fn polarity(n: usize) -> i8 {
    polarity_sequence()[n % 127]
}

/// HT single-stream pilot pattern Ψ (19.3.11.10, N_STS = 1).
pub const HT_PSI: [i8; 4] = [1, 1, 1, -1];

/// Symbol-index offset of the first HT data symbol into the polarity
/// sequence: L-SIG consumes p₀, HT-SIG1/2 consume p₁ and p₂, so data
/// symbol n uses `p_{n+3}`.
pub const HT_DATA_Z: usize = 3;

/// Pilot values (±1, in K_MOD-normalized units) for HT data symbol `n`, in
/// subcarrier order (−21, −7, +7, +21).
pub fn ht_pilot_values(n: usize) -> [f64; 4] {
    let p = polarity(n + HT_DATA_Z) as f64;
    let mut out = [0.0; 4];
    for (m, o) in out.iter_mut().enumerate() {
        *o = p * HT_PSI[(m + n) % 4] as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_starts_like_the_standard() {
        // 17.3.5.10: p_0.. = 1,1,1,1, -1,-1,-1,1, -1,-1,-1,-1, 1,1,-1,1 ...
        let p = polarity_sequence();
        let head = [1i8, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1];
        assert_eq!(&p[..16], &head);
    }

    #[test]
    fn sequence_is_balanced_m_sequence() {
        let p = polarity_sequence();
        let minus = p.iter().filter(|&&v| v == -1).count();
        // An m-sequence of period 127 has 64 ones (LFSR bit 1 -> -1).
        assert_eq!(minus, 64);
        assert_eq!(p.len() - minus, 63);
    }

    #[test]
    fn polarity_wraps_at_127() {
        assert_eq!(polarity(0), polarity(127));
        assert_eq!(polarity(5), polarity(132));
    }

    #[test]
    fn ht_pilots_rotate_psi() {
        // Symbol 0 uses Ψ as-is times p_3; symbol 1 rotates by one.
        let p3 = polarity(3) as f64;
        assert_eq!(ht_pilot_values(0), [p3, p3, p3, -p3]);
        let p4 = polarity(4) as f64;
        assert_eq!(ht_pilot_values(1), [p4, p4, -p4, p4]);
    }

    #[test]
    fn pilot_values_are_unit_magnitude() {
        for n in 0..200 {
            for v in ht_pilot_values(n) {
                assert_eq!(v.abs(), 1.0);
            }
        }
    }
}
