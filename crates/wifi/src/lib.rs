//! # bluefi-wifi
//!
//! A complete, spec-faithful simulator of the IEEE 802.11n (HT-20, single
//! spatial stream) transmit chain — the substrate BlueFi reverses. Includes
//! the scrambler framing, BCC encoding and puncturing, the HT interleaver
//! (validated against the paper's Table 1), Gray-coded QAM up to 1024-QAM,
//! HT pilots, OFDM modulation with long/short guard intervals and
//! per-symbol windowing, the HT mixed-format preamble, MCS tables, 2.4 GHz
//! channelization with BlueFi's frequency planning, and models of the
//! actual chips the paper used (AR9331, RTL8811AU, USRP).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod chip;
pub mod interleaver;
pub mod mcs;
pub mod ofdm;
pub mod pilots;
pub mod preamble;
pub mod qam;
pub mod rx;
pub mod subcarriers;
pub mod tx;

pub use chip::{ChipModel, Ppdu, SeedPolicy};
pub use interleaver::Interleaver;
pub use mcs::Mcs;
pub use ofdm::GuardInterval;
pub use qam::Modulation;
pub use tx::{TxConfig, TxScratch};
