//! An 802.11n HT-20 *receiver* — the inverse of [`crate::tx`].
//!
//! BlueFi itself only transmits, but the reproduction needs a WiFi receiver
//! in two places: to verify that the chip models emit standard-decodable
//! frames (every BlueFi packet is, after all, a legitimate 802.11n PPDU),
//! and to play the "capturing the radio signals" role of the paper's
//! Sec 2.8/3 — recovering the scrambler seed a Realtek chip uses by
//! decoding its frames off the air.
//!
//! Scope: data-field demodulation with known timing and MCS (the preamble
//! detector locates the field; fine CFO/channel estimation is unnecessary
//! over the simulated link).

use crate::interleaver::Interleaver;
use crate::mcs::Mcs;
use crate::ofdm::GuardInterval;
use crate::qam::demap_point_into;
use crate::subcarriers::{data_subcarriers, FFT_SIZE};
use bluefi_coding::lfsr::{recover_seed, scramble};
use bluefi_coding::puncture::CodeRate;
use bluefi_coding::viterbi::decode_punctured;
use bluefi_dsp::bits::bits_to_bytes_lsb;
use bluefi_dsp::fft::{bin_of_subcarrier, fft_plan};
use bluefi_dsp::Cx;

/// Result of decoding a data field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxFrame {
    /// Recovered PSDU bytes.
    pub psdu: Vec<u8>,
    /// The scrambler seed the transmitter used (recovered from the SERVICE
    /// field).
    pub seed: u8,
}

/// Errors from [`decode_data_field`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxError {
    /// The waveform is shorter than one OFDM symbol.
    TooShort,
    /// The scrambler seed could not be recovered (SERVICE field garbled).
    BadService,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::TooShort => write!(f, "waveform shorter than one OFDM symbol"),
            RxError::BadService => write!(f, "could not recover the scrambler seed"),
        }
    }
}

impl std::error::Error for RxError {}

/// Finds the start of the HT data field in a full PPDU by skipping the
/// fixed-length HT-mixed preamble (720 samples at 20 Msps).
pub fn data_field_start() -> usize {
    720
}

/// Demodulates an HT-20 data field: `iq` must start at the first data
/// symbol's CP and contain whole symbols.
pub fn decode_data_field(iq: &[Cx], mcs: Mcs, gi: GuardInterval) -> Result<RxFrame, RxError> {
    let sym_len = gi.symbol_len();
    if iq.len() < sym_len {
        return Err(RxError::TooShort);
    }
    let n_sym = iq.len() / sym_len;
    let plan = fft_plan(FFT_SIZE);
    let il = Interleaver::new(mcs.modulation);
    let nbpsc = mcs.modulation.bits_per_symbol();

    // AGC: hard demapping needs the constellation at nominal scale. A
    // standard HT-20 data symbol has 56 unit-power (normalized) subcarriers,
    // i.e. mean sample power 56/(64·K²·64) = 56·(1/K_MOD²)/64² in the
    // unnormalized units the demapper expects ≈ 0.574 for 64-QAM.
    let nominal = 56.0 / (64.0 * 64.0) / mcs.modulation.kmod().powi(2);
    let measured = bluefi_dsp::power::mean_power(&iq[..n_sym * sym_len]);
    let agc = (nominal / measured.max(1e-30)).sqrt();

    // Per symbol: strip CP, FFT, demap data subcarriers, deinterleave.
    // Both working buffers are hoisted and reused across symbols.
    let mut coded = Vec::with_capacity(n_sym * il.block_len());
    let mut buf: Vec<Cx> = Vec::with_capacity(FFT_SIZE);
    let mut interleaved = Vec::with_capacity(il.block_len());
    let mut point_bits: Vec<bool> = Vec::with_capacity(6);
    let mut deinterleaved: Vec<bool> = Vec::with_capacity(il.block_len());
    for s in 0..n_sym {
        let body = &iq[s * sym_len + gi.len()..s * sym_len + sym_len];
        buf.clear();
        buf.extend(body.iter().map(|v| v.scale(agc)));
        plan.forward(&mut buf);
        interleaved.clear();
        for &sc in data_subcarriers().iter() {
            let x = buf[bin_of_subcarrier(sc, FFT_SIZE)];
            demap_point_into(mcs.modulation, x, &mut point_bits);
            interleaved.extend_from_slice(&point_bits);
        }
        debug_assert_eq!(interleaved.len(), 52 * nbpsc);
        il.deinterleave_into(&interleaved, &mut deinterleaved);
        coded.extend_from_slice(&deinterleaved);
    }

    // FEC decode (hard decisions; the simulated link is clean).
    let scrambled = decode_punctured(rate_of(mcs), &coded, None, false);

    // SERVICE field: 16 scrambled zeros reveal the seed.
    let seed = recover_seed(&scrambled[..16.min(scrambled.len())]).ok_or(RxError::BadService)?;
    let descrambled = scramble(seed, &scrambled);
    // PSDU bytes: everything between SERVICE and tail/pad, whole bytes.
    let payload_bits = (descrambled.len() - 16 - 6) / 8 * 8;
    let psdu = bits_to_bytes_lsb(&descrambled[16..16 + payload_bits]);
    Ok(RxFrame { psdu, seed })
}

fn rate_of(mcs: Mcs) -> CodeRate {
    mcs.rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipModel;
    use crate::tx::{data_field, TxConfig};

    fn psdu(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13 + 5) as u8).collect()
    }

    #[test]
    fn loopback_every_mcs() {
        for idx in 0..8u8 {
            let mcs = Mcs::from_index(idx);
            let cfg = TxConfig {
                mcs,
                gi: GuardInterval::Short,
                scrambler_seed: 93,
                windowing: false,
            };
            let tx = data_field(&psdu(40), &cfg);
            let rx = decode_data_field(&tx, mcs, GuardInterval::Short).unwrap();
            assert_eq!(rx.seed, 93, "MCS{idx}");
            assert_eq!(&rx.psdu[..40], &psdu(40)[..], "MCS{idx}");
        }
    }

    #[test]
    fn windowing_does_not_break_decoding() {
        // The windowed boundary sample sits in the CP, which the receiver
        // discards — a windowed frame decodes identically.
        let mcs = Mcs::from_index(7);
        let cfg = TxConfig { mcs, gi: GuardInterval::Short, scrambler_seed: 5, windowing: true };
        let tx = data_field(&psdu(100), &cfg);
        let rx = decode_data_field(&tx, mcs, GuardInterval::Short).unwrap();
        assert_eq!(&rx.psdu[..100], &psdu(100)[..]);
    }

    #[test]
    fn recovers_realtek_constant_seed_off_the_air() {
        // The paper: "We find this constant (71 for RTL8811AU) by decoding
        // the WiFi signals it sends." Same play here.
        let chip = ChipModel::rtl8811au();
        let mcs = Mcs::from_index(7);
        let ppdu = chip.transmit_with_seed(&psdu(60), mcs, 18.0, 71);
        let data = &ppdu.iq[data_field_start()..];
        let rx = decode_data_field(data, mcs, GuardInterval::Short).unwrap();
        assert_eq!(rx.seed, 71);
        assert_eq!(&rx.psdu[..60], &psdu(60)[..]);
    }

    #[test]
    fn observes_atheros_incrementing_seeds() {
        let mut chip = ChipModel::ar9331_stock();
        let mcs = Mcs::from_index(5);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let ppdu = chip.transmit(&psdu(30), mcs, 18.0);
            let rx = decode_data_field(&ppdu.iq[data_field_start()..], mcs, GuardInterval::Short)
                .unwrap();
            seen.push(rx.seed);
        }
        assert_eq!(seen, vec![1, 2, 3, 4], "arithmetic seed sequence visible off-air");
    }

    #[test]
    fn long_gi_frames_decode() {
        let mcs = Mcs::from_index(3);
        let cfg = TxConfig { mcs, gi: GuardInterval::Long, scrambler_seed: 17, windowing: true };
        let tx = data_field(&psdu(64), &cfg);
        let rx = decode_data_field(&tx, mcs, GuardInterval::Long).unwrap();
        assert_eq!(&rx.psdu[..64], &psdu(64)[..]);
    }

    #[test]
    fn truncated_waveform_errors() {
        assert_eq!(
            decode_data_field(&[Cx::ZERO; 10], Mcs::from_index(7), GuardInterval::Short),
            Err(RxError::TooShort)
        );
    }

    #[test]
    fn bluefi_psdus_are_legitimate_wifi_frames() {
        // The central compliance claim: a BlueFi packet is simultaneously a
        // Bluetooth waveform AND a standard-decodable 802.11n frame. Decode
        // one with this (independent) receiver and compare PSDUs.
        use bluefi_coding::lfsr::Lfsr7;
        let _ = Lfsr7::new(1); // exercise the re-export path
        let mcs = Mcs::from_index(7);
        let psdu: Vec<u8> = (0..2000).map(|i| (i % 251) as u8).collect();
        let chip = ChipModel::ar9331();
        let ppdu = chip.transmit_with_seed(&psdu, mcs, 18.0, 1);
        let rx = decode_data_field(&ppdu.iq[data_field_start()..], mcs, GuardInterval::Short)
            .unwrap();
        assert_eq!(rx.seed, 1);
        assert_eq!(&rx.psdu[..psdu.len()], &psdu[..]);
    }
}
