//! HT MCS table for one spatial stream at 20 MHz (IEEE 802.11-2016,
//! Table 19-27), plus the data-field bit pipeline parameters.

use crate::qam::Modulation;
use bluefi_coding::CodeRate;

/// An HT modulation-and-coding scheme (single spatial stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mcs {
    /// MCS index 0..=7.
    pub index: u8,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub rate: CodeRate,
}

impl Mcs {
    /// Looks up MCS 0..=7.
    ///
    /// # Panics
    /// Panics on indices above 7; use [`Mcs::try_from_index`] for untrusted
    /// input.
    pub fn from_index(index: u8) -> Mcs {
        Mcs::try_from_index(index)
            // lint: allow(panic) callers pass compile-time constants; try_from_index is the fallible path
            .unwrap_or_else(|| panic!("single-stream HT MCS is 0..=7, got {index}"))
    }

    /// Fallible MCS lookup: `None` for indices outside the single-stream
    /// HT range 0..=7.
    pub fn try_from_index(index: u8) -> Option<Mcs> {
        let (modulation, rate) = match index {
            0 => (Modulation::Bpsk, CodeRate::R12),
            1 => (Modulation::Qpsk, CodeRate::R12),
            2 => (Modulation::Qpsk, CodeRate::R34),
            3 => (Modulation::Qam16, CodeRate::R12),
            4 => (Modulation::Qam16, CodeRate::R34),
            5 => (Modulation::Qam64, CodeRate::R23),
            6 => (Modulation::Qam64, CodeRate::R34),
            7 => (Modulation::Qam64, CodeRate::R56),
            _ => return None,
        };
        Some(Mcs { index, modulation, rate })
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn coded_bits_per_symbol(self) -> usize {
        52 * self.modulation.bits_per_symbol()
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn data_bits_per_symbol(self) -> usize {
        let (num, den) = self.rate.ratio();
        self.coded_bits_per_symbol() * num / den
    }

    /// PHY data rate in Mbps with the given guard interval (3.6 µs or 4 µs
    /// symbols).
    pub fn rate_mbps(self, short_gi: bool) -> f64 {
        let sym_us = if short_gi { 3.6 } else { 4.0 };
        self.data_bits_per_symbol() as f64 / sym_us
    }

    /// The MCS BlueFi uses with the weighted Viterbi reversal (minimal
    /// information loss — rate 5/6, paper Sec 2.7).
    pub fn bluefi_viterbi() -> Mcs {
        Mcs::from_index(7)
    }

    /// The MCS BlueFi uses with the real-time decoder (highest compression
    /// — rate 2/3, paper Sec 2.7).
    pub fn bluefi_realtime() -> Mcs {
        Mcs::from_index(5)
    }
}

/// Number of OFDM symbols needed for `psdu_len` bytes at `mcs`
/// (SERVICE 16 bits + PSDU + 6 tail bits, padded up).
pub fn n_symbols(mcs: Mcs, psdu_len: usize) -> usize {
    let payload_bits = 16 + 8 * psdu_len + 6;
    payload_bits.div_ceil(mcs.data_bits_per_symbol())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_19_27_values() {
        // (index, Ncbps, Ndbps, rate @ 800ns GI Mbps, rate @ 400ns GI Mbps)
        let rows = [
            (0u8, 52usize, 26usize, 6.5, 26.0 / 3.6),
            (1, 104, 52, 13.0, 52.0 / 3.6),
            (2, 104, 78, 19.5, 78.0 / 3.6),
            (3, 208, 104, 26.0, 104.0 / 3.6),
            (4, 208, 156, 39.0, 156.0 / 3.6),
            (5, 312, 208, 52.0, 208.0 / 3.6),
            (6, 312, 234, 58.5, 234.0 / 3.6),
            (7, 312, 260, 65.0, 260.0 / 3.6),
        ];
        for (i, ncbps, ndbps, lgi, sgi) in rows {
            let m = Mcs::from_index(i);
            assert_eq!(m.coded_bits_per_symbol(), ncbps, "MCS{i}");
            assert_eq!(m.data_bits_per_symbol(), ndbps, "MCS{i}");
            assert!((m.rate_mbps(false) - lgi).abs() < 1e-9, "MCS{i} LGI");
            assert!((m.rate_mbps(true) - sgi).abs() < 1e-9, "MCS{i} SGI");
        }
    }

    #[test]
    fn mcs7_sgi_is_72_point_2() {
        // The "advertised 150 Mbps per stream" family: MCS7 + SGI = 72.2.
        assert!((Mcs::from_index(7).rate_mbps(true) - 72.222).abs() < 0.001);
    }

    #[test]
    fn symbol_count() {
        let m = Mcs::from_index(7); // 260 bits/symbol
        assert_eq!(n_symbols(m, 0), 1);
        assert_eq!(n_symbols(m, 29), 1); // 16+232+6 = 254 <= 260
        assert_eq!(n_symbols(m, 30), 2); // 16+240+6 = 262 > 260
    }

    #[test]
    fn bluefi_choices() {
        assert_eq!(Mcs::bluefi_viterbi().rate, CodeRate::R56);
        assert_eq!(Mcs::bluefi_realtime().rate, CodeRate::R23);
        assert_eq!(Mcs::bluefi_viterbi().modulation, Modulation::Qam64);
    }

    #[test]
    #[should_panic(expected = "0..=7")]
    fn mcs8_rejected() {
        Mcs::from_index(8);
    }
}
