//! QAM constellation mapping (IEEE 802.11-2016, 17.3.5.8 / Table 17-12).
//!
//! Per-axis levels follow the standard's Gray coding: with `m` bits per
//! axis the level is `2·gray_decode(bits) − (2^m − 1)`, which reproduces the
//! standard's 16/64-QAM tables exactly (pinned in tests). 256-QAM and
//! 1024-QAM (802.11ac/ax) are included for the paper's Sec 5.1 discussion of
//! quantization error at higher modulation orders.
//!
//! Constellations are exposed in *unnormalized* units (odd integers
//! −(L−1)..(L−1)); [`Modulation::kmod`] gives the standard's power
//! normalization 1/√Σ.

use bluefi_dsp::{cx, Cx};

/// Modulation order of one OFDM data subcarrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// BPSK (1 bit, real axis only).
    Bpsk,
    /// QPSK (2 bits).
    Qpsk,
    /// 16-QAM (4 bits).
    Qam16,
    /// 64-QAM (6 bits) — the workhorse for BlueFi.
    Qam64,
    /// 256-QAM (8 bits, 802.11ac).
    Qam256,
    /// 1024-QAM (10 bits, 802.11ax).
    Qam1024,
}

impl Modulation {
    /// Coded bits carried per subcarrier (N_BPSCS).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
            Modulation::Qam1024 => 10,
        }
    }

    /// Levels per axis (1 for BPSK's imaginary axis).
    pub fn levels_per_axis(self) -> usize {
        match self {
            Modulation::Bpsk => 2,
            _ => 1 << (self.bits_per_symbol() / 2),
        }
    }

    /// The standard's normalization factor K_MOD (multiply constellation
    /// units by this to get unit average power).
    pub fn kmod(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
            Modulation::Qam256 => 1.0 / 170f64.sqrt(),
            Modulation::Qam1024 => 1.0 / 682f64.sqrt(),
        }
    }

    /// Maximum per-axis level (L−1): 7 for 64-QAM.
    pub fn max_level(self) -> i32 {
        (self.levels_per_axis() as i32) * 2 - 1 - self.levels_per_axis() as i32
    }
}

#[inline]
fn gray_decode(mut g: u32) -> u32 {
    let mut shift = 1;
    while shift < 32 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

#[inline]
fn gray_encode(b: u32) -> u32 {
    b ^ (b >> 1)
}

/// Maps `m` bits (b0 first, as they come off the interleaver) to one axis
/// level in unnormalized units.
fn bits_to_level(bits: &[bool]) -> i32 {
    let m = bits.len() as u32;
    // b0 is the most significant bit of the Gray index.
    let idx = bits.iter().fold(0u32, |acc, &b| (acc << 1) | b as u32);
    let v = gray_decode(idx);
    2 * v as i32 - ((1 << m) - 1)
}

/// Writes one axis level's `m` bits into `out` (b0 first; the inverse of
/// [`bits_to_level`]), allocation-free.
fn write_level_bits(level: i32, m: usize, out: &mut [bool]) {
    let v = ((level + ((1 << m) - 1)) / 2) as u32;
    let idx = gray_encode(v);
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = (idx >> (m - 1 - j)) & 1 == 1;
    }
}

/// Maps `bits_per_symbol` interleaved bits to a constellation point in
/// unnormalized units (multiply by [`Modulation::kmod`] for standard power).
pub fn map_bits(modulation: Modulation, bits: &[bool]) -> Cx {
    assert_eq!(bits.len(), modulation.bits_per_symbol());
    let point = match modulation {
        Modulation::Bpsk => cx(if bits[0] { 1.0 } else { -1.0 }, 0.0),
        _ => {
            let half = bits.len() / 2;
            let i = bits_to_level(&bits[..half]);
            let q = bits_to_level(&bits[half..]);
            cx(i as f64, q as f64)
        }
    };
    // Stage contract: mapping must invert exactly through the demapper for
    // every on-grid point, or the FEC-reversal bit accounting breaks.
    // Demap onto the stack so the contract itself stays allocation-free
    // (the probe must see a silent steady state).
    if bluefi_dsp::contracts::enabled() {
        let n = modulation.bits_per_symbol();
        let mut rt = [false; 10];
        demap_point_to(modulation, point, &mut rt[..n]);
        bluefi_dsp::contract!(
            rt[..n] == *bits,
            "map_bits: {modulation:?} point {point:?} does not demap to its source bits"
        );
    }
    point
}

/// Demaps a constellation point (in unnormalized units) back to bits —
/// exact for on-grid points, nearest-point otherwise. Thin shim over
/// [`demap_point_into`].
pub fn demap_point(modulation: Modulation, point: Cx) -> Vec<bool> {
    let mut out = Vec::new();
    demap_point_into(modulation, point, &mut out);
    out
}

/// Scratch-buffer variant of [`demap_point`]: writes the
/// `bits_per_symbol()` demapped bits into `out` (resized to fit),
/// allocating only when `out` must grow — the per-subcarrier workhorse of
/// the FEC-reversal hot loop.
pub fn demap_point_into(modulation: Modulation, point: Cx, out: &mut Vec<bool>) {
    let n = modulation.bits_per_symbol();
    bluefi_dsp::contracts::ensure_len(out, n, false);
    demap_point_to(modulation, point, out);
}

/// Slice form of the demapper: `out` must be exactly `bits_per_symbol()`
/// long. Allocation-free; used by the contract inside [`map_bits`].
fn demap_point_to(modulation: Modulation, point: Cx, out: &mut [bool]) {
    let n = modulation.bits_per_symbol();
    assert_eq!(out.len(), n);
    match modulation {
        Modulation::Bpsk => out[0] = point.re >= 0.0,
        _ => {
            let m = n / 2;
            let i = quantize_axis(point.re, modulation);
            let q = quantize_axis(point.im, modulation);
            write_level_bits(i, m, &mut out[..m]);
            write_level_bits(q, m, &mut out[m..]);
        }
    }
}

/// Stage contract: the K_MOD-normalized constellation has unit average
/// power (IEEE 802.11 17.3.5.8). No-op unless contracts are enabled; call
/// once per constructed quantizer/mapper, not per symbol.
pub fn check_constellation_unit_energy(modulation: Modulation) {
    if !bluefi_dsp::contracts::enabled() {
        return;
    }
    let n = modulation.bits_per_symbol();
    let points: Vec<Cx> = (0..(1u32 << n))
        .map(|v| {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            map_bits(modulation, &bits) * modulation.kmod()
        })
        .collect();
    bluefi_dsp::contracts::check_unit_mean_energy(
        &points,
        1e-12,
        "constellation K_MOD normalization",
    );
}

/// Snaps one axis value to the nearest constellation level (odd integer in
/// `[-max, max]`).
pub fn quantize_axis(v: f64, modulation: Modulation) -> i32 {
    let max = modulation.max_level();
    if modulation == Modulation::Bpsk {
        return if v >= 0.0 { 1 } else { -1 };
    }
    // Nearest odd integer, clamped.
    let snapped = 2.0 * ((v - 1.0) / 2.0).round() + 1.0;
    (snapped as i32).clamp(-max, max)
}

/// Snaps a complex value to the nearest constellation point (unnormalized
/// units) — the paper's Sec 2.5 quantizer (Fig 4).
pub fn quantize_point(v: Cx, modulation: Modulation) -> Cx {
    match modulation {
        Modulation::Bpsk => cx(quantize_axis(v.re, modulation) as f64, 0.0),
        _ => cx(
            quantize_axis(v.re, modulation) as f64,
            quantize_axis(v.im, modulation) as f64,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_to_bits(level: i32, m: usize) -> Vec<bool> {
        let mut out = vec![false; m];
        write_level_bits(level, m, &mut out);
        out
    }

    #[test]
    fn qam64_table_matches_standard() {
        // IEEE 802.11 Table 17-12: b0b1b2 -> I level.
        let table: [(u8, i32); 8] = [
            (0b000, -7),
            (0b001, -5),
            (0b011, -3),
            (0b010, -1),
            (0b110, 1),
            (0b111, 3),
            (0b101, 5),
            (0b100, 7),
        ];
        for (bits, level) in table {
            let b = [(bits >> 2) & 1 == 1, (bits >> 1) & 1 == 1, bits & 1 == 1];
            assert_eq!(bits_to_level(&b), level, "bits {bits:03b}");
        }
    }

    #[test]
    fn qam16_table_matches_standard() {
        let table: [(u8, i32); 4] = [(0b00, -3), (0b01, -1), (0b11, 1), (0b10, 3)];
        for (bits, level) in table {
            let b = [(bits >> 1) & 1 == 1, bits & 1 == 1];
            assert_eq!(bits_to_level(&b), level, "bits {bits:02b}");
        }
    }

    #[test]
    fn map_demap_roundtrip_all_modulations() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
            Modulation::Qam256,
            Modulation::Qam1024,
        ] {
            let n = m.bits_per_symbol();
            for v in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
                let p = map_bits(m, &bits);
                assert_eq!(demap_point(m, p), bits, "{m:?} value {v:#b}");
            }
        }
    }

    #[test]
    fn gray_neighbors_differ_in_one_bit() {
        // Adjacent 64-QAM I levels must differ in exactly one bit — the
        // whole point of Gray mapping.
        for lv in (-7..=5).step_by(2) {
            let a = level_to_bits(lv, 3);
            let b = level_to_bits(lv + 2, 3);
            let d = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(d, 1, "levels {lv} vs {}", lv + 2);
        }
    }

    #[test]
    fn kmod_normalizes_average_power_to_one() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64, Modulation::Qam256] {
            let n = m.bits_per_symbol();
            let total: f64 = (0..(1u32 << n))
                .map(|v| {
                    let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
                    (map_bits(m, &bits) * m.kmod()).norm_sq()
                })
                .sum();
            let avg = total / (1u64 << n) as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m:?}: avg power {avg}");
        }
    }

    #[test]
    fn quantizer_snaps_to_nearest() {
        let m = Modulation::Qam64;
        assert_eq!(quantize_axis(0.4, m), 1);
        assert_eq!(quantize_axis(-0.4, m), -1);
        assert_eq!(quantize_axis(1.99, m), 1);
        assert_eq!(quantize_axis(2.01, m), 3);
        assert_eq!(quantize_axis(7.9, m), 7); // clamped
        assert_eq!(quantize_axis(-123.0, m), -7);
        let p = quantize_point(cx(4.2, -6.8), m);
        assert_eq!((p.re, p.im), (5.0, -7.0));
    }

    #[test]
    fn higher_order_reduces_quantization_error() {
        // Sec 5.1: 256-QAM has finer resolution. Quantize a mid-grid value
        // scaled into each constellation's range.
        let target = 0.37; // fraction of full scale
        let err = |m: Modulation| {
            let v = target * m.max_level() as f64;
            (quantize_axis(v, m) as f64 - v).abs() / m.max_level() as f64
        };
        assert!(err(Modulation::Qam256) < err(Modulation::Qam64));
        assert!(err(Modulation::Qam1024) < err(Modulation::Qam256));
    }

    #[test]
    fn max_levels() {
        assert_eq!(Modulation::Qam64.max_level(), 7);
        assert_eq!(Modulation::Qam16.max_level(), 3);
        assert_eq!(Modulation::Qpsk.max_level(), 1);
        assert_eq!(Modulation::Qam256.max_level(), 15);
        assert_eq!(Modulation::Qam1024.max_level(), 31);
    }
}
