//! The HT mixed-format preamble (IEEE 802.11-2016, 19.3.9): L-STF, L-LTF,
//! L-SIG, HT-SIG1/2, HT-STF and one HT-LTF — 36 µs / 720 samples ahead of
//! the data field.
//!
//! BlueFi transmits the preamble because the hardware insists on it; from a
//! Bluetooth receiver's point of view it is a short burst of wideband
//! interference before the GFSK payload (the "+Header" impairment of
//! Fig 8). The field structure here is spec-faithful for the legacy part
//! and the HT-SIG contents; the two HT-LTF edge subcarriers use the common
//! {+1,+1,…,−1,−1} extension.

use crate::mcs::Mcs;
use crate::ofdm::{modulate_symbol, spectrum_from_subcarriers, GuardInterval};
use crate::pilots::polarity;
use crate::subcarriers::FFT_SIZE;
use bluefi_coding::puncture::{puncture, CodeRate};
use bluefi_coding::ConvEncoder;
use bluefi_dsp::{cx, Cx, FftPlan};

/// Legacy short-training-field frequency pattern: ±(1+j)·√(13/6) on
/// multiples of 4.
fn lstf_spectrum() -> Vec<Cx> {
    let a = (13.0f64 / 6.0).sqrt();
    let p = cx(a, a);
    let m = -p;
    let table: [(i32, Cx); 12] = [
        (-24, p),
        (-20, m),
        (-16, p),
        (-12, m),
        (-8, m),
        (-4, p),
        (4, m),
        (8, m),
        (12, p),
        (16, p),
        (20, p),
        (24, p),
    ];
    spectrum_from_subcarriers(&table)
}

/// Legacy long-training-field sequence on subcarriers −26..26.
pub const LTF_SEQ: [i8; 53] = [
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, // -26..-1
    0, // DC
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1, // 1..26
];

fn lltf_spectrum() -> Vec<Cx> {
    let vals: Vec<(i32, Cx)> = (-26..=26)
        .map(|k| (k, cx(LTF_SEQ[(k + 26) as usize] as f64, 0.0)))
        .collect();
    spectrum_from_subcarriers(&vals)
}

/// HT-LTF: the legacy sequence extended to ±28 with {+1,+1} on −28,−27 and
/// {−1,−1} on 27,28.
fn htltf_spectrum() -> Vec<Cx> {
    let mut vals: Vec<(i32, Cx)> = (-26..=26)
        .map(|k| (k, cx(LTF_SEQ[(k + 26) as usize] as f64, 0.0)))
        .collect();
    vals.push((-28, cx(1.0, 0.0)));
    vals.push((-27, cx(1.0, 0.0)));
    vals.push((27, cx(-1.0, 0.0)));
    vals.push((28, cx(-1.0, 0.0)));
    spectrum_from_subcarriers(&vals)
}

/// Encodes and maps a 24-bit-per-symbol legacy signaling field (L-SIG or
/// HT-SIG): rate-1/2 BCC, legacy 48-bit interleaving, (Q)BPSK with legacy
/// pilots.
fn signal_symbols(bits: &[bool], qbpsk: bool, polarity_start: usize) -> Vec<Vec<Cx>> {
    assert_eq!(bits.len() % 24, 0);
    let coded = puncture(CodeRate::R12, &ConvEncoder::new().encode(bits));
    // Legacy interleaver for BPSK (48 coded bits/symbol, s = 1):
    // i = 3·(k mod 16) + ⌊k/16⌋, j = i.
    let plan = FftPlan::new(FFT_SIZE);
    coded
        .chunks_exact(48)
        .enumerate()
        .map(|(n, chunk)| {
            let mut inter = [false; 48];
            for (k, &b) in chunk.iter().enumerate() {
                inter[3 * (k % 16) + k / 16] = b;
            }
            // Legacy data subcarriers: −26..26 minus pilots/DC.
            let mut vals: Vec<(i32, Cx)> = Vec::with_capacity(52);
            let mut d = 0;
            for k in -26i32..=26 {
                if k == 0 || [-21, -7, 7, 21].contains(&k) {
                    continue;
                }
                let v = if inter[d] { 1.0 } else { -1.0 };
                vals.push((k, if qbpsk { cx(0.0, v) } else { cx(v, 0.0) }));
                d += 1;
            }
            let p = polarity(polarity_start + n) as f64;
            for (m, &sc) in [-21i32, -7, 7, 21].iter().enumerate() {
                let sign = if m == 3 { -1.0 } else { 1.0 };
                vals.push((sc, cx(p * sign, 0.0)));
            }
            modulate_symbol(&plan, &spectrum_from_subcarriers(&vals), GuardInterval::Long)
        })
        .collect()
}

/// L-SIG contents: RATE = 6 Mbps (0b1101), 12-bit LENGTH, even parity,
/// 6 tail zeros.
fn lsig_bits(length: usize) -> Vec<bool> {
    assert!(length < 4096);
    let mut bits = vec![true, true, false, true]; // RATE 6 Mbps, LSB first per spec order R1-R4
    bits.push(false); // reserved
    for i in 0..12 {
        bits.push((length >> i) & 1 == 1);
    }
    let parity = bits.iter().filter(|&&b| b).count() % 2 == 1;
    bits.push(parity); // even parity over bits 0..17
    bits.extend([false; 6]);
    bits
}

/// HT-SIG contents (19.3.9.4.3): MCS, CBW20, HT length, SGI flag, CRC-8,
/// tail.
fn htsig_bits(mcs: &Mcs, psdu_len: usize, short_gi: bool) -> Vec<bool> {
    let mut bits = Vec::with_capacity(48);
    for i in 0..7 {
        bits.push((mcs.index >> i) & 1 == 1);
    }
    bits.push(false); // CBW 20 MHz
    for i in 0..16 {
        bits.push((psdu_len >> i) & 1 == 1);
    }
    bits.push(true); // smoothing
    bits.push(true); // not sounding
    bits.push(true); // reserved
    bits.push(false); // aggregation
    bits.extend([false, false]); // STBC
    bits.push(false); // FEC: BCC
    bits.push(short_gi);
    bits.extend([false, false]); // extension spatial streams
    // CRC-8 over bits 0..34 (x^8+x^2+x+1, init all ones, output inverted).
    let mut reg = 0xFFu8;
    for &b in &bits {
        let fb = ((reg >> 7) & 1 == 1) ^ b;
        reg <<= 1;
        if fb {
            reg ^= 0x07;
        }
    }
    reg = !reg;
    for i in (0..8).rev() {
        bits.push((reg >> i) & 1 == 1);
    }
    bits.extend([false; 6]);
    assert_eq!(bits.len(), 48);
    bits
}

/// Generates the full 720-sample HT-mixed preamble for a transmission of
/// `psdu_len` bytes at `mcs`.
pub fn ht_mixed_preamble(mcs: &Mcs, psdu_len: usize, short_gi: bool) -> Vec<Cx> {
    let plan = FftPlan::new(FFT_SIZE);
    let mut out = Vec::with_capacity(720);

    // L-STF: 10 repetitions of the 16-sample short symbol (160 samples).
    let stf_time = {
        let mut buf = lstf_spectrum();
        plan.inverse(&mut buf);
        buf
    };
    for _ in 0..10 {
        out.extend_from_slice(&stf_time[..16]);
    }

    // L-LTF: 32-sample CP + two 64-sample long symbols.
    let ltf_time = {
        let mut buf = lltf_spectrum();
        plan.inverse(&mut buf);
        buf
    };
    out.extend_from_slice(&ltf_time[32..]);
    out.extend_from_slice(&ltf_time);
    out.extend_from_slice(&ltf_time);

    // L-SIG (1 symbol, polarity p0). The legacy LENGTH field spoofs the
    // duration of the whole HT transmission for legacy deference.
    let legacy_len = (psdu_len * 8 / 6 + 20).min(4095);
    out.extend(signal_symbols(&lsig_bits(legacy_len), false, 0).remove(0));

    // HT-SIG1/2 (2 QBPSK symbols, polarities p1, p2).
    let ht = signal_symbols(&htsig_bits(mcs, psdu_len, short_gi), true, 1);
    for sym in ht {
        out.extend(sym);
    }

    // HT-STF (80 samples: 5 reps of the 16-sample pattern).
    for _ in 0..5 {
        out.extend_from_slice(&stf_time[..16]);
    }

    // HT-LTF (16-sample CP + 64).
    let htltf_time = {
        let mut buf = htltf_spectrum();
        plan.inverse(&mut buf);
        buf
    };
    out.extend_from_slice(&htltf_time[48..]);
    out.extend_from_slice(&htltf_time);

    debug_assert_eq!(out.len(), 720);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_dsp::power::mean_power;

    #[test]
    fn preamble_is_720_samples() {
        let p = ht_mixed_preamble(&Mcs::from_index(7), 1000, true);
        assert_eq!(p.len(), 720);
    }

    #[test]
    fn lstf_is_16_periodic() {
        let p = ht_mixed_preamble(&Mcs::from_index(7), 100, true);
        for i in 0..160 - 16 {
            assert!((p[i] - p[i + 16]).abs() < 1e-12, "sample {i}");
        }
    }

    #[test]
    fn lltf_repeats_after_cp() {
        let p = ht_mixed_preamble(&Mcs::from_index(7), 100, true);
        // L-LTF occupies samples 160..320: 32 CP + 64 + 64.
        for i in 0..64 {
            assert!((p[192 + i] - p[256 + i]).abs() < 1e-12, "sample {i}");
        }
    }

    #[test]
    fn lsig_parity_is_even() {
        for len in [0usize, 1, 100, 4095] {
            let bits = lsig_bits(len);
            assert_eq!(bits.len(), 24);
            let ones = bits[..18].iter().filter(|&&b| b).count();
            assert_eq!(ones % 2, 0, "length {len}");
            assert!(bits[18..].iter().all(|&b| !b));
        }
    }

    #[test]
    fn htsig_encodes_mcs_and_length() {
        let bits = htsig_bits(&Mcs::from_index(7), 0x1234, true);
        let mcs_val = bits[..7]
            .iter()
            .enumerate()
            .fold(0u8, |a, (i, &b)| a | ((b as u8) << i));
        assert_eq!(mcs_val, 7);
        let len_val = bits[8..24]
            .iter()
            .enumerate()
            .fold(0usize, |a, (i, &b)| a | ((b as usize) << i));
        assert_eq!(len_val, 0x1234);
        assert!(bits[34], "SGI flag");
    }

    #[test]
    fn htsig_differs_when_any_field_changes() {
        let a = htsig_bits(&Mcs::from_index(7), 100, true);
        assert_ne!(a, htsig_bits(&Mcs::from_index(5), 100, true));
        assert_ne!(a, htsig_bits(&Mcs::from_index(7), 101, true));
        assert_ne!(a, htsig_bits(&Mcs::from_index(7), 100, false));
    }

    #[test]
    fn ht_sig_symbols_are_quadrature_bpsk() {
        // QBPSK puts data energy on the imaginary axis; check the HT-SIG
        // portion (samples 400..560) differs from a BPSK rendering.
        let p = ht_mixed_preamble(&Mcs::from_index(7), 100, true);
        let htsig = &p[400..560];
        assert!(mean_power(htsig) > 0.005);
        // QBPSK is a frequency-domain property: demodulate the first HT-SIG
        // symbol (skip its 16-sample CP) and check data subcarriers sit on
        // the imaginary axis while pilots stay real.
        let spec = crate::ofdm::demodulate_symbol(&FftPlan::new(64), &htsig[16..80]);
        for k in [-26i32, -10, 5, 26] {
            let v = spec[bluefi_dsp::fft::bin_of_subcarrier(k, 64)];
            assert!(v.re.abs() < 1e-9 && v.im.abs() > 0.5, "subcarrier {k}: {v:?}");
        }
        for k in [-21i32, -7, 7, 21] {
            let v = spec[bluefi_dsp::fft::bin_of_subcarrier(k, 64)];
            assert!(v.im.abs() < 1e-9 && v.re.abs() > 0.5, "pilot {k}: {v:?}");
        }
    }

    #[test]
    fn preamble_power_is_uniform_in_normalized_units() {
        // 52-53 unit-power subcarriers through a 1/64 IFFT: ≈ 52/64² ≈ 0.0127
        // in normalized units (the chip model scales by 1/K_MOD to match the
        // data field).
        let p = ht_mixed_preamble(&Mcs::from_index(7), 100, true);
        let pw = mean_power(&p);
        assert!(pw > 0.008 && pw < 0.03, "power {pw}");
    }
}
