//! OFDM symbol assembly: IFFT, cyclic prefix, and the per-symbol windowing
//! that the paper's impairment I1 revolves around.
//!
//! Conventions (shared with `bluefi-core`'s reversal):
//!
//! * Frequency-domain samples are in **unnormalized constellation units**
//!   (odd integers for data, ±√42 for pilots at 64-QAM scale).
//! * Time-domain samples are `x[n] = (1/64)·Σ_f X[f]·e^{+j2πfn/64}` —
//!   i.e. `ifft` with 1/N, so a frequency sample of magnitude 32 yields a
//!   unit-ish time-domain tone (the paper's "magnitude of around 32 units"
//!   bookkeeping).

use crate::subcarriers::FFT_SIZE;
use bluefi_dsp::fft::{bin_of_subcarrier, FftPlan};
use bluefi_dsp::Cx;

/// Guard-interval length in samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardInterval {
    /// Long GI: 16 samples (800 ns).
    Long,
    /// Short GI: 8 samples (400 ns) — required by BlueFi (Sec 2.1.2).
    Short,
}

impl GuardInterval {
    /// CP length in samples.
    pub fn len(self) -> usize {
        match self {
            GuardInterval::Long => 16,
            GuardInterval::Short => 8,
        }
    }

    /// Never empty.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Total OFDM symbol length (CP + 64).
    pub fn symbol_len(self) -> usize {
        self.len() + FFT_SIZE
    }
}

/// Builds the frequency-domain vector (64 bins, FFT order) from per-
/// subcarrier values given on centered indices −32..31.
pub fn spectrum_from_subcarriers(values: &[(i32, Cx)]) -> Vec<Cx> {
    let mut spec = vec![Cx::ZERO; FFT_SIZE];
    spectrum_from_subcarriers_into(values, &mut spec);
    spec
}

/// In-place variant of [`spectrum_from_subcarriers`]: zeroes `spec` (which
/// must already be 64 bins long) and writes the given subcarrier values.
pub fn spectrum_from_subcarriers_into(values: &[(i32, Cx)], spec: &mut [Cx]) {
    assert_eq!(spec.len(), FFT_SIZE);
    spec.fill(Cx::ZERO);
    for &(k, v) in values {
        spec[bin_of_subcarrier(k, FFT_SIZE)] = v;
    }
}

/// One OFDM symbol in the time domain: IFFT of `spectrum` (64 bins, FFT
/// order) with the CP prepended. Returns `gi.symbol_len()` samples. Thin
/// shim over [`modulate_symbol_into`].
pub fn modulate_symbol(plan: &FftPlan, spectrum: &[Cx], gi: GuardInterval) -> Vec<Cx> {
    let mut out = Vec::new();
    modulate_symbol_into(plan, spectrum, gi, &mut out);
    out
}

/// Scratch-buffer variant of [`modulate_symbol`]: assembles the symbol into
/// `out` (resized to `gi.symbol_len()`), running the IFFT in place in the
/// post-CP region — no intermediate buffer, allocating only when `out` must
/// grow.
pub fn modulate_symbol_into(plan: &FftPlan, spectrum: &[Cx], gi: GuardInterval, out: &mut Vec<Cx>) {
    assert_eq!(spectrum.len(), FFT_SIZE);
    let cp = gi.len();
    bluefi_dsp::contracts::ensure_len(out, cp + FFT_SIZE, Cx::ZERO);
    out[cp..].copy_from_slice(spectrum);
    plan.inverse(&mut out[cp..]);
    let (front, body) = out.split_at_mut(cp);
    front.copy_from_slice(&body[FFT_SIZE - cp..]);
}

/// Stitches OFDM symbols into a waveform, optionally applying the
/// standard's per-symbol windowing (17.3.2.5, the paper's Fig 2):
/// each symbol is extended by one sample — a copy of its first post-CP
/// sample, i.e. the continuation of its cyclic waveform — and that
/// extension is averaged with the first sample of the next symbol.
///
/// COTS chips implement this smoothing in hardware (BlueFi found the Atheros
/// and Realtek parts always window); SDRs like USRP transmit the raw
/// concatenation, which is why a waveform can work on USRP but fail on real
/// chips (paper Sec 2.4).
pub fn stitch_symbols(symbols: &[Vec<Cx>], gi: GuardInterval, windowing: bool) -> Vec<Cx> {
    let sym_len = gi.symbol_len();
    let mut out = Vec::with_capacity(symbols.len() * sym_len);
    let mut prev_ext: Option<Cx> = None;
    for (s, sym) in symbols.iter().enumerate() {
        assert_eq!(sym.len(), sym_len, "symbol {s} has wrong length");
        append_symbol(&mut out, sym, gi, windowing, prev_ext);
        prev_ext = Some(sym[gi.len()]);
    }
    out
}

/// Streaming form of [`stitch_symbols`]: appends one symbol to a growing
/// waveform. `prev_extension` is the previous symbol's extension sample —
/// its waveform continued one sample past the end, which by cyclic
/// structure equals its sample right after the CP (`prev[gi.len()]`); pass
/// `None` for the first symbol. The caller should reserve the full
/// waveform's capacity up front to keep the append allocation-free.
pub fn append_symbol(
    out: &mut Vec<Cx>,
    sym: &[Cx],
    gi: GuardInterval,
    windowing: bool,
    prev_extension: Option<Cx>,
) {
    assert_eq!(sym.len(), gi.symbol_len(), "symbol has wrong length");
    if out.capacity() < out.len() + sym.len() {
        bluefi_dsp::contracts::probe_alloc();
    }
    let start = out.len();
    out.extend_from_slice(sym);
    if windowing {
        if let Some(extension) = prev_extension {
            out[start] = (out[start] + extension).scale(0.5);
        }
    }
}

/// Demodulates one received OFDM symbol (CP stripped by the caller) back to
/// its 64 frequency bins — used by tests and by BlueFi's verification path.
pub fn demodulate_symbol(plan: &FftPlan, time: &[Cx]) -> Vec<Cx> {
    assert_eq!(time.len(), FFT_SIZE);
    let mut buf = time.to_vec();
    plan.forward(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_dsp::cx;

    fn plan() -> FftPlan {
        FftPlan::new(FFT_SIZE)
    }

    #[test]
    fn cp_is_a_copy_of_the_tail() {
        let spec = spectrum_from_subcarriers(&[(3, cx(7.0, 0.0)), (-5, cx(0.0, -3.0))]);
        for gi in [GuardInterval::Long, GuardInterval::Short] {
            let sym = modulate_symbol(&plan(), &spec, gi);
            assert_eq!(sym.len(), gi.symbol_len());
            let cp = gi.len();
            for i in 0..cp {
                assert_eq!(sym[i], sym[64 + i], "gi {gi:?} sample {i}");
            }
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let spec = spectrum_from_subcarriers(&[(1, cx(5.0, 5.0)), (-28, cx(-7.0, 1.0))]);
        let sym = modulate_symbol(&plan(), &spec, GuardInterval::Short);
        let rx = demodulate_symbol(&plan(), &sym[8..]);
        for (a, b) in spec.iter().zip(&rx) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn single_subcarrier_is_a_pure_tone() {
        let spec = spectrum_from_subcarriers(&[(4, cx(32.0, 0.0))]);
        let sym = modulate_symbol(&plan(), &spec, GuardInterval::Short);
        // Amplitude 32/64 = 0.5, frequency 4/64 cycles/sample.
        for (n, v) in sym[8..].iter().enumerate() {
            let expect = Cx::expj(2.0 * std::f64::consts::PI * 4.0 * n as f64 / 64.0).scale(0.5);
            assert!((*v - expect).abs() < 1e-9, "sample {n}");
        }
    }

    #[test]
    fn windowing_averages_boundaries() {
        let spec_a = spectrum_from_subcarriers(&[(2, cx(10.0, 0.0))]);
        let spec_b = spectrum_from_subcarriers(&[(5, cx(0.0, 10.0))]);
        let p = plan();
        let gi = GuardInterval::Short;
        let a = modulate_symbol(&p, &spec_a, gi);
        let b = modulate_symbol(&p, &spec_b, gi);
        let plain = stitch_symbols(&[a.clone(), b.clone()], gi, false);
        let windowed = stitch_symbols(&[a.clone(), b.clone()], gi, true);
        assert_eq!(plain.len(), windowed.len());
        // Only the first sample of symbol 2 differs.
        for i in 0..plain.len() {
            if i == gi.symbol_len() {
                let expect = (b[0] + a[gi.len()]).scale(0.5);
                assert!((windowed[i] - expect).abs() < 1e-12);
                assert!((windowed[i] - plain[i]).abs() > 1e-6, "boundary unchanged");
            } else {
                assert_eq!(plain[i], windowed[i], "sample {i}");
            }
        }
    }

    #[test]
    fn windowing_is_transparent_for_cyclically_continuous_symbols() {
        // The BlueFi design goal (Sec 2.4): when the next symbol's first
        // sample equals the previous symbol's extension, averaging changes
        // nothing. Identical symbols have that property.
        let spec = spectrum_from_subcarriers(&[(2, cx(10.0, 3.0))]);
        let p = plan();
        let gi = GuardInterval::Short;
        let a = modulate_symbol(&p, &spec, gi);
        // Choose a subcarrier-2 tone: after 72 samples the phase advances by
        // 2π·2·72/64 — NOT an integer number of turns, so two identical
        // symbols are not continuous and windowing must change the boundary.
        let w = stitch_symbols(&[a.clone(), a.clone()], gi, true);
        let pl = stitch_symbols(&[a.clone(), a.clone()], gi, false);
        assert!((w[72] - pl[72]).abs() > 1e-9);
        // But a subcarrier-8 tone advances 2π·8·72/64 = 9 full turns: the
        // waveform IS cyclically continuous and windowing is a no-op.
        let spec8 = spectrum_from_subcarriers(&[(8, cx(10.0, 3.0))]);
        let b = modulate_symbol(&p, &spec8, gi);
        let w8 = stitch_symbols(&[b.clone(), b.clone()], gi, true);
        let pl8 = stitch_symbols(&[b.clone(), b.clone()], gi, false);
        for i in 0..w8.len() {
            assert!((w8[i] - pl8[i]).abs() < 1e-9, "sample {i}");
        }
    }
}
