//! HT-20 subcarrier layout (IEEE 802.11-2016, 19.3.11).
//!
//! One 20 MHz HT OFDM symbol uses 56 of the 64 subcarriers: 52 carry data,
//! 4 carry pilots (±7, ±21), the DC subcarrier is null, and ±29..±31 plus
//! −32 are guard nulls. Subcarrier spacing is 20 MHz / 64 = 312.5 kHz.

/// FFT size of a 20 MHz 802.11a/g/n symbol.
pub const FFT_SIZE: usize = 64;
/// Subcarrier spacing in Hz.
pub const SUBCARRIER_SPACING_HZ: f64 = 20.0e6 / 64.0;
/// Number of data subcarriers in an HT-20 symbol.
pub const N_DATA: usize = 52;
/// Pilot subcarrier indices.
pub const PILOT_SUBCARRIERS: [i32; 4] = [-21, -7, 7, 21];
/// Outermost populated subcarrier (HT uses −28..28).
pub const MAX_SUBCARRIER: i32 = 28;

/// Returns true when `k` is one of the four pilot subcarriers.
#[inline]
pub fn is_pilot(k: i32) -> bool {
    PILOT_SUBCARRIERS.contains(&k)
}

/// Returns true when `k` carries data in an HT-20 symbol.
#[inline]
pub fn is_data(k: i32) -> bool {
    (-MAX_SUBCARRIER..=MAX_SUBCARRIER).contains(&k) && k != 0 && !is_pilot(k)
}

/// The 52 data subcarriers in ascending order
/// (−28..−22, −20..−8, −6..−1, 1..6, 8..20, 22..28).
pub fn data_subcarriers() -> [i32; N_DATA] {
    let mut out = [0i32; N_DATA];
    let mut n = 0;
    for k in -MAX_SUBCARRIER..=MAX_SUBCARRIER {
        if is_data(k) {
            out[n] = k;
            n += 1;
        }
    }
    debug_assert_eq!(n, N_DATA);
    out
}

/// Maps a data-subcarrier ordinal (0..52) to its subcarrier index.
pub fn subcarrier_of_data_index(d: usize) -> i32 {
    assert!(d < N_DATA, "data index 0..{N_DATA}, got {d}");
    data_subcarriers()[d]
}

/// Maps a subcarrier index to its data ordinal, if it carries data.
pub fn data_index_of_subcarrier(k: i32) -> Option<usize> {
    if !is_data(k) {
        return None;
    }
    data_subcarriers().iter().position(|&s| s == k)
}

/// Baseband frequency of subcarrier `k` in Hz.
#[inline]
pub fn subcarrier_freq_hz(k: i32) -> f64 {
    k as f64 * SUBCARRIER_SPACING_HZ
}

/// The (possibly fractional) subcarrier position of a baseband frequency.
#[inline]
pub fn subcarrier_of_freq(freq_hz: f64) -> f64 {
    freq_hz / SUBCARRIER_SPACING_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_up() {
        let data = data_subcarriers();
        assert_eq!(data.len(), 52);
        assert!(data.windows(2).all(|w| w[0] < w[1]));
        // 52 data + 4 pilots + 1 DC = 57 of -28..28 (57 slots).
        let populated = (-28..=28).filter(|&k| is_data(k) || is_pilot(k)).count();
        assert_eq!(populated, 56);
    }

    #[test]
    fn pilots_and_dc_are_not_data() {
        for k in [-21, -7, 0, 7, 21] {
            assert!(!is_data(k), "{k}");
        }
        assert!(is_data(-28) && is_data(28) && is_data(1) && is_data(-1));
        assert!(!is_data(29) && !is_data(-29));
    }

    #[test]
    fn paper_table1_subcarrier_ordinals() {
        // The data-index positions the paper's Table 1 relies on.
        assert_eq!(subcarrier_of_data_index(0), -28);
        assert_eq!(subcarrier_of_data_index(4), -24);
        assert_eq!(subcarrier_of_data_index(32), 8);
        assert_eq!(subcarrier_of_data_index(48), 25);
    }

    #[test]
    fn ordinal_roundtrip() {
        for d in 0..N_DATA {
            let k = subcarrier_of_data_index(d);
            assert_eq!(data_index_of_subcarrier(k), Some(d));
        }
        assert_eq!(data_index_of_subcarrier(0), None);
        assert_eq!(data_index_of_subcarrier(7), None);
    }

    #[test]
    fn frequencies() {
        assert_eq!(subcarrier_freq_hz(1), 312_500.0);
        assert_eq!(subcarrier_freq_hz(-28), -8_750_000.0);
        assert!((subcarrier_of_freq(1_812_500.0) - 5.8).abs() < 1e-12);
    }
}
