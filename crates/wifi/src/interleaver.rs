//! The HT BCC interleaver (IEEE 802.11-2016, 19.3.11.8.1; single stream,
//! 20 MHz, no rotation).
//!
//! Two permutations act on each OFDM symbol's block of `N_CBPS` coded bits:
//!
//! * `i = N_ROW·(k mod N_COL) + ⌊k / N_COL⌋` with `N_COL = 13`,
//!   `N_ROW = 4·N_BPSCS` — adjacent coded bits land on far-apart
//!   subcarriers; and
//! * `j = s·⌊i/s⌋ + (i + N_CBPS − ⌊13·i / N_CBPS⌋) mod s` with
//!   `s = max(N_BPSCS/2, 1)` — rotates bit significance within a subcarrier.
//!
//! The column count of 13 is the "internal period" BlueFi's real-time
//! decoder leans on (paper Sec 2.7), and the paper's Table 1 — reproduced
//! as a golden test below — is exactly this mapping evaluated at 64-QAM.

use crate::qam::Modulation;
use crate::subcarriers::{subcarrier_of_data_index, N_DATA};

/// Number of interleaver columns (HT-20).
pub const N_COL: usize = 13;

/// The interleaver for one modulation order at HT-20 / 1 spatial stream.
#[derive(Debug, Clone, Copy)]
pub struct Interleaver {
    modulation: Modulation,
}

impl Interleaver {
    /// Creates the interleaver for `modulation`.
    pub fn new(modulation: Modulation) -> Interleaver {
        let il = Interleaver { modulation };
        if bluefi_dsp::contracts::enabled() {
            // Stage contract: the two-permutation formula must be a
            // bijection on the symbol block, or deinterleaving silently
            // drops coded bits.
            bluefi_dsp::contracts::check_permutation_bijective(
                il.block_len(),
                |k| il.permute(k),
                "HT interleaver",
            );
        }
        il
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn block_len(&self) -> usize {
        N_DATA * self.modulation.bits_per_symbol()
    }

    /// The output position of input (coded) bit `k` within its symbol.
    pub fn permute(&self, k: usize) -> usize {
        let ncbps = self.block_len();
        assert!(k < ncbps);
        let nbpsc = self.modulation.bits_per_symbol();
        let nrow = 4 * nbpsc;
        let s = (nbpsc / 2).max(1);
        let i = nrow * (k % N_COL) + k / N_COL;
        s * (i / s) + (i + ncbps - 13 * i / ncbps) % s
    }

    /// Interleaves one symbol's worth of coded bits. Thin shim over
    /// [`Interleaver::interleave_into`].
    pub fn interleave(&self, block: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.interleave_into(block, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Interleaver::interleave`]: permutes into
    /// `out` (resized to the block length), allocating only when `out` must
    /// grow.
    pub fn interleave_into(&self, block: &[bool], out: &mut Vec<bool>) {
        assert_eq!(block.len(), self.block_len());
        bluefi_dsp::contracts::ensure_len(out, block.len(), false);
        for (k, &b) in block.iter().enumerate() {
            out[self.permute(k)] = b;
        }
    }

    /// Inverse of [`Interleaver::interleave`]. Thin shim over
    /// [`Interleaver::deinterleave_into`].
    pub fn deinterleave(&self, block: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.deinterleave_into(block, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Interleaver::deinterleave`].
    pub fn deinterleave_into(&self, block: &[bool], out: &mut Vec<bool>) {
        assert_eq!(block.len(), self.block_len());
        bluefi_dsp::contracts::ensure_len(out, block.len(), false);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = block[self.permute(k)];
        }
    }

    /// Where coded bit `k` ends up: `(subcarrier, bit_within_subcarrier)`.
    ///
    /// `bit_within_subcarrier` counts the paper's way: bit 5 is the first
    /// (most significant) mapper input of a 64-QAM group, bit 0 the last —
    /// i.e. `N_BPSCS − 1 − (j mod N_BPSCS)`.
    pub fn mapped_location(&self, k: usize) -> (i32, usize) {
        let j = self.permute(k);
        let nbpsc = self.modulation.bits_per_symbol();
        let sc = subcarrier_of_data_index(j / nbpsc);
        (sc, nbpsc - 1 - j % nbpsc)
    }

    /// The subcarrier that coded bit `k` modulates.
    pub fn subcarrier_of(&self, k: usize) -> i32 {
        self.mapped_location(k).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_golden_vector() {
        // Paper Table 1 (64-QAM / MCS7): "Bit | Mapped Location".
        let il = Interleaver::new(Modulation::Qam64);
        let expect: [(usize, i32, usize); 7] = [
            (0, -28, 5),
            (1, -24, 3),
            (7, 3, 3),
            (8, 8, 4),
            (9, 12, 5),
            (10, 16, 3),
            (11, 20, 4),
        ];
        for (k, sc, bit) in expect {
            assert_eq!(il.mapped_location(k), (sc, bit), "coded bit {k}");
        }
        // Bit 12 -> subcarrier 25, bit 5.
        assert_eq!(il.mapped_location(12), (25, 5));
    }

    #[test]
    fn permutation_is_a_bijection() {
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let il = Interleaver::new(m);
            let mut seen = vec![false; il.block_len()];
            for k in 0..il.block_len() {
                let j = il.permute(k);
                assert!(!seen[j], "{m:?}: output {j} hit twice");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn interleave_roundtrip() {
        let il = Interleaver::new(Modulation::Qam64);
        let block: Vec<bool> = (0..il.block_len()).map(|i| i % 5 < 2).collect();
        assert_eq!(il.deinterleave(&il.interleave(&block)), block);
    }

    #[test]
    fn cycle_position_selects_band_slice() {
        // The BlueFi property: k mod 13 determines a 4-subcarrier-wide slice
        // of the band, ascending from -28.
        let il = Interleaver::new(Modulation::Qam64);
        for k in 0..il.block_len() {
            let sc = il.subcarrier_of(k);
            let slice = k % N_COL;
            // Data ordinal range for this slice: [4*slice, 4*slice+4).
            let d = crate::subcarriers::data_index_of_subcarrier(sc).unwrap();
            assert!(
                d >= 4 * slice && d < 4 * slice + 4,
                "bit {k} (slice {slice}) on data ordinal {d}"
            );
        }
    }

    #[test]
    fn adjacent_coded_bits_map_far_apart() {
        let il = Interleaver::new(Modulation::Qam64);
        for k in 0..il.block_len() - 1 {
            if k % N_COL == N_COL - 1 {
                continue; // wrap within the period
            }
            let a = il.subcarrier_of(k);
            let b = il.subcarrier_of(k + 1);
            assert!((a - b).abs() >= 3, "bits {k},{} on {a},{b}", k + 1);
        }
    }

    #[test]
    fn block_lengths() {
        assert_eq!(Interleaver::new(Modulation::Bpsk).block_len(), 52);
        assert_eq!(Interleaver::new(Modulation::Qpsk).block_len(), 104);
        assert_eq!(Interleaver::new(Modulation::Qam16).block_len(), 208);
        assert_eq!(Interleaver::new(Modulation::Qam64).block_len(), 312);
    }
}
