//! 2.4 GHz channelization for both standards, and the paper's Sec 2.6
//! frequency planning.
//!
//! WiFi channels 1–13 sit at 2412 + 5·(ch−1) MHz and are 20 MHz wide, so
//! adjacent channels overlap heavily — the degree of freedom BlueFi uses to
//! keep a Bluetooth channel away from pilot/null subcarriers. Bluetooth BR
//! channels k = 0..78 sit at 2402 + k MHz; BLE advertising channels 37, 38,
//! 39 sit at 2402, 2426 and 2480 MHz.

use crate::subcarriers::{subcarrier_of_freq, PILOT_SUBCARRIERS};

/// Center frequency of 2.4 GHz WiFi channel `ch` (1..=13) in Hz.
pub fn wifi_channel_freq_hz(ch: u8) -> f64 {
    assert!((1..=13).contains(&ch), "WiFi channel 1..=13, got {ch}");
    (2412.0 + 5.0 * (ch as f64 - 1.0)) * 1e6
}

/// Center frequency of Bluetooth BR channel `k` (0..=78) in Hz.
pub fn bt_channel_freq_hz(k: u8) -> f64 {
    assert!(k <= 78, "BT channel 0..=78, got {k}");
    (2402.0 + k as f64) * 1e6
}

/// BLE advertising channels and their frequencies.
pub const BLE_ADV_CHANNELS: [(u8, f64); 3] =
    [(37, 2.402e9), (38, 2.426e9), (39, 2.480e9)];

/// The (fractional) subcarrier position of an absolute frequency within a
/// WiFi channel.
pub fn subcarrier_in_channel(freq_hz: f64, wifi_ch: u8) -> f64 {
    subcarrier_of_freq(freq_hz - wifi_channel_freq_hz(wifi_ch))
}

/// Distance (in subcarriers) from a fractional subcarrier position to the
/// nearest pilot or the DC null.
pub fn distance_to_pilot_or_null(subcarrier: f64) -> f64 {
    PILOT_SUBCARRIERS
        .iter()
        .map(|&p| (subcarrier - p as f64).abs())
        .chain(std::iter::once(subcarrier.abs()))
        .fold(f64::INFINITY, f64::min)
}

/// Result of frequency planning for one Bluetooth channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPlan {
    /// Chosen WiFi channel.
    pub wifi_channel: u8,
    /// The Bluetooth channel's true center as a (fractional) subcarrier in
    /// that channel — receivers are tuned here.
    pub subcarrier: f64,
    /// The subcarrier the waveform is actually synthesized at. Equal to
    /// `subcarrier` unless integer snapping applied (see [`plan_channel`]).
    pub tx_subcarrier: f64,
    /// Distance from `tx_subcarrier` to the nearest pilot/null.
    pub clearance: f64,
}

impl ChannelPlan {
    /// A plan pinned to an explicit (channel, subcarrier) placement with no
    /// snapping — for tests and manual sweeps.
    pub fn pinned(wifi_channel: u8, subcarrier: f64) -> ChannelPlan {
        ChannelPlan {
            wifi_channel,
            subcarrier,
            tx_subcarrier: subcarrier,
            clearance: distance_to_pilot_or_null(subcarrier),
        }
    }
}

/// Bluetooth receivers must accept an initial carrier error of ±75 kHz, so
/// the synthesizer may shift its carrier by up to this many subcarriers
/// (0.24 × 312.5 kHz = 75 kHz) to land on an integer subcarrier.
pub const MAX_SNAP_SUBCARRIERS: f64 = 75e3 / SUBCARRIER_SPACING_HZ_LOCAL;
const SUBCARRIER_SPACING_HZ_LOCAL: f64 = 20.0e6 / 64.0;

/// Paper Sec 2.6: choose the WiFi channel that keeps a Bluetooth center
/// frequency farthest from any pilot or null, subject to the Bluetooth
/// signal fitting well inside the occupied band (|subcarrier| ≤ 26 keeps
/// ~±650 kHz of signal on populated subcarriers).
///
/// Additionally, the transmit carrier is snapped to the nearest *integer*
/// subcarrier when that stays within the Bluetooth ±75 kHz carrier
/// tolerance: on an integer subcarrier the 64-sample phase advance of the
/// carrier is a whole number of turns, so the CP-pocket glitches of
/// Sec 2.4 carry no carrier-phase offset — a measurable reception
/// improvement (see `ablation_snapping`).
pub fn plan_channel(bt_freq_hz: f64) -> Option<ChannelPlan> {
    let mut best: Option<ChannelPlan> = None;
    for ch in 1..=13u8 {
        let sc = subcarrier_in_channel(bt_freq_hz, ch);
        if sc.abs() > 26.0 {
            continue; // too close to the channel edge
        }
        let tx = if (sc.round() - sc).abs() <= MAX_SNAP_SUBCARRIERS {
            sc.round()
        } else {
            sc
        };
        let clearance = distance_to_pilot_or_null(tx);
        let cand = ChannelPlan { wifi_channel: ch, subcarrier: sc, tx_subcarrier: tx, clearance };
        if best.is_none_or(|b| cand.clearance > b.clearance) {
            best = Some(cand);
        }
    }
    best
}

/// The ~20 Bluetooth BR channels whose centers fall inside a WiFi channel
/// (the paper's Sec 4.7 AFH restriction: "only use the 20 channels
/// corresponding to the single WiFi channel"). Depending on alignment this
/// is 19–21 channels; edge channels overlap guard subcarriers and perform
/// poorly, which is why Fig 9 uses only the good half.
pub fn bt_channels_in_wifi(wifi_ch: u8) -> Vec<u8> {
    let center = wifi_channel_freq_hz(wifi_ch);
    (0..=78u8)
        .filter(|&k| {
            let f = bt_channel_freq_hz(k);
            subcarrier_of_freq(f - center).abs() <= 31.5
        })
        .collect()
}

/// Bluetooth BR channels that sit comfortably on populated subcarriers of a
/// WiFi channel (the ±650 kHz signal stays within ±26 subcarriers) — the
/// candidates worth transmitting on.
pub fn usable_bt_channels_in_wifi(wifi_ch: u8) -> Vec<u8> {
    let center = wifi_channel_freq_hz(wifi_ch);
    (0..=78u8)
        .filter(|&k| {
            let f = bt_channel_freq_hz(k);
            subcarrier_of_freq(f - center).abs() <= 26.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_frequencies() {
        assert_eq!(wifi_channel_freq_hz(1), 2.412e9);
        assert_eq!(wifi_channel_freq_hz(3), 2.422e9);
        assert_eq!(wifi_channel_freq_hz(13), 2.472e9);
        assert_eq!(bt_channel_freq_hz(0), 2.402e9);
        assert_eq!(bt_channel_freq_hz(78), 2.480e9);
    }

    #[test]
    fn paper_example_bt38_subcarriers() {
        // Sec 2.6: BT channel 38 (2426 MHz) corresponds to subcarriers
        // 28.8, 12.8, -3.2 and -19.2 on WiFi channels 2, 3, 4 and 5.
        let f = 2.426e9;
        assert!((subcarrier_in_channel(f, 2) - 28.8).abs() < 1e-9);
        assert!((subcarrier_in_channel(f, 3) - 12.8).abs() < 1e-9);
        assert!((subcarrier_in_channel(f, 4) + 3.2).abs() < 1e-9);
        assert!((subcarrier_in_channel(f, 5) + 19.2).abs() < 1e-9);
    }

    #[test]
    fn paper_example_plans_channel_3() {
        // "In this example, we should use WiFi channel 3. Using channel 3,
        // the closest pilot is 1.8125 MHz (5.8 subcarriers) away."
        let plan = plan_channel(2.426e9).expect("plannable");
        assert_eq!(plan.wifi_channel, 3);
        assert!((plan.subcarrier - 12.8).abs() < 1e-9);
        // The transmit carrier snaps to subcarrier 13 (62.5 kHz shift,
        // inside the ±75 kHz Bluetooth tolerance), improving clearance to
        // 6.0 subcarriers.
        assert!((plan.tx_subcarrier - 13.0).abs() < 1e-9);
        assert!((plan.clearance - 6.0).abs() < 1e-9);
    }

    #[test]
    fn snapping_respects_the_carrier_tolerance() {
        for k in 2..=78u8 {
            let plan = plan_channel(bt_channel_freq_hz(k)).unwrap();
            let shift_hz =
                (plan.tx_subcarrier - plan.subcarrier).abs() * 312_500.0;
            assert!(shift_hz <= 75_000.0 + 1e-6, "BT channel {k}: {shift_hz} Hz");
        }
    }

    #[test]
    fn almost_every_bt_channel_is_plannable() {
        // BT channels 0 and 1 (2402/2403 MHz) sit below WiFi channel 1's
        // populated subcarriers — no 2.4 GHz WiFi channel covers them. That
        // is exactly why the paper notes only ONE BLE advertising channel
        // (38, 2426 MHz) is "well-covered by WiFi channel 3".
        for k in 0..=1u8 {
            assert!(plan_channel(bt_channel_freq_hz(k)).is_none(), "BT channel {k}");
        }
        for k in 2..=78u8 {
            let plan = plan_channel(bt_channel_freq_hz(k));
            assert!(plan.is_some(), "BT channel {k}");
            let p = plan.unwrap();
            assert!(p.clearance > 1.0, "BT channel {k}: clearance {}", p.clearance);
        }
    }

    #[test]
    fn afh_channel_count_is_about_twenty() {
        for ch in [1u8, 3, 6, 11] {
            let n = bt_channels_in_wifi(ch).len();
            assert!((19..=21).contains(&n), "channel {ch}: {n} BT channels");
            let usable = usable_bt_channels_in_wifi(ch).len();
            assert!((16..=17).contains(&usable), "channel {ch}: {usable} usable");
        }
    }

    #[test]
    fn clearance_metric() {
        assert_eq!(distance_to_pilot_or_null(0.0), 0.0);
        assert_eq!(distance_to_pilot_or_null(7.0), 0.0);
        assert_eq!(distance_to_pilot_or_null(14.0), 7.0);
        assert_eq!(distance_to_pilot_or_null(-24.0), 3.0);
    }
}
