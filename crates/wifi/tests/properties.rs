//! Property-based tests for the 802.11n TX-chain invariants.

use bluefi_wifi::channels::{plan_channel, MAX_SNAP_SUBCARRIERS};
use bluefi_wifi::qam::{demap_point, map_bits, quantize_point, Modulation};
use bluefi_wifi::tx::{coded_bits, scrambled_bits, symbol_spectrum};
use bluefi_wifi::{Interleaver, Mcs};
use bluefi_dsp::cx;
use proptest::prelude::*;

proptest! {
    #[test]
    fn interleaver_roundtrip(bits in prop::collection::vec(any::<bool>(), 312), m in 0usize..4) {
        let modulation = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][m];
        let il = Interleaver::new(modulation);
        let block = &bits[..il.block_len()];
        prop_assert_eq!(il.deinterleave(&il.interleave(block)), block.to_vec());
    }

    #[test]
    fn qam_map_demap_roundtrip(v in any::<u16>(), m in 0usize..6) {
        let modulation = [
            Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16,
            Modulation::Qam64, Modulation::Qam256, Modulation::Qam1024,
        ][m];
        let n = modulation.bits_per_symbol();
        let bits: Vec<bool> = (0..n).map(|i| (v >> (i % 16)) & 1 == 1).collect();
        let p = map_bits(modulation, &bits);
        prop_assert_eq!(demap_point(modulation, p), bits);
    }

    #[test]
    fn quantizer_is_locally_optimal(re in -12.0f64..12.0, im in -12.0f64..12.0) {
        // No other 64-QAM point is closer than the chosen one.
        let x = cx(re, im);
        let q = quantize_point(x, Modulation::Qam64);
        let chosen = (x - q).norm_sq();
        for dre in [-2.0, 0.0, 2.0] {
            for dim in [-2.0, 0.0, 2.0] {
                let alt = cx(q.re + dre, q.im + dim);
                if alt.re.abs() <= 7.0 && alt.im.abs() <= 7.0 {
                    prop_assert!((x - alt).norm_sq() >= chosen - 1e-9);
                }
            }
        }
    }

    #[test]
    fn scrambled_stream_keeps_tail_zero(psdu in prop::collection::vec(any::<u8>(), 1..200), seed in 1u8..128) {
        let mcs = Mcs::from_index(7);
        let s = scrambled_bits(&psdu, seed, mcs);
        prop_assert_eq!(s.len() % mcs.data_bits_per_symbol(), 0);
        let tail_start = 16 + psdu.len() * 8;
        for i in tail_start..tail_start + 6 {
            prop_assert!(!s[i], "tail bit {} nonzero", i);
        }
    }

    #[test]
    fn coded_stream_length_matches_rate(psdu in prop::collection::vec(any::<u8>(), 1..100), idx in 0u8..8) {
        let mcs = Mcs::from_index(idx);
        let s = scrambled_bits(&psdu, 1, mcs);
        let c = coded_bits(&s, mcs);
        let (num, den) = mcs.rate.ratio();
        prop_assert_eq!(c.len(), s.len() * den / num);
        prop_assert_eq!(c.len() % mcs.coded_bits_per_symbol(), 0);
    }

    #[test]
    fn every_symbol_spectrum_respects_nulls_and_pilots(
        coded in prop::collection::vec(any::<bool>(), 312),
        sym in 0usize..40,
    ) {
        let spec = symbol_spectrum(&coded, Mcs::from_index(7), sym);
        // DC and guards are zero.
        prop_assert_eq!(spec[0], bluefi_dsp::Cx::ZERO);
        for k in 29..=35usize {
            prop_assert_eq!(spec[k], bluefi_dsp::Cx::ZERO);
        }
        // Pilots are ±sqrt(42), purely real.
        for bin in [7usize, 57, 21, 43] {
            prop_assert!((spec[bin].abs() - 42f64.sqrt()).abs() < 1e-9);
            prop_assert!(spec[bin].im.abs() < 1e-12);
        }
    }

    #[test]
    fn planning_respects_carrier_tolerance(freq_mhz in 2404.0f64..2480.0) {
        if let Some(plan) = plan_channel(freq_mhz * 1e6) {
            prop_assert!((plan.tx_subcarrier - plan.subcarrier).abs() <= MAX_SNAP_SUBCARRIERS + 1e-9);
            prop_assert!(plan.subcarrier.abs() <= 26.0);
            prop_assert!(plan.clearance >= 0.0);
        }
    }
}
