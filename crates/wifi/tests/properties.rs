//! Randomized-property tests for the 802.11n TX-chain invariants, on the
//! in-tree `bluefi_core::check` harness.

use bluefi_core::check::{bools, bytes, check};
use bluefi_core::rng::Rng;
use bluefi_core::{prop_assert, prop_assert_eq};
use bluefi_dsp::cx;
use bluefi_wifi::channels::{plan_channel, MAX_SNAP_SUBCARRIERS};
use bluefi_wifi::qam::{demap_point, map_bits, quantize_point, Modulation};
use bluefi_wifi::tx::{coded_bits, scrambled_bits, symbol_spectrum};
use bluefi_wifi::{Interleaver, Mcs};

#[test]
fn interleaver_roundtrip() {
    check(
        "interleaver_roundtrip",
        |rng| (bools(rng, 312..313), rng.gen_range(0usize..4)),
        |(bits, m)| {
            let modulation =
                [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][*m];
            let il = Interleaver::new(modulation);
            let block = &bits[..il.block_len()];
            prop_assert_eq!(il.deinterleave(&il.interleave(block)), block.to_vec());
            Ok(())
        },
    );
}

#[test]
fn qam_map_demap_roundtrip() {
    check(
        "qam_map_demap_roundtrip",
        |rng| (rng.gen::<u16>(), rng.gen_range(0usize..6)),
        |&(v, m)| {
            let modulation = [
                Modulation::Bpsk,
                Modulation::Qpsk,
                Modulation::Qam16,
                Modulation::Qam64,
                Modulation::Qam256,
                Modulation::Qam1024,
            ][m];
            let n = modulation.bits_per_symbol();
            let bits: Vec<bool> = (0..n).map(|i| (v >> (i % 16)) & 1 == 1).collect();
            let p = map_bits(modulation, &bits);
            prop_assert_eq!(demap_point(modulation, p), bits);
            Ok(())
        },
    );
}

#[test]
fn quantizer_is_locally_optimal() {
    check(
        "quantizer_is_locally_optimal",
        |rng| (rng.gen_range(-12.0..12.0), rng.gen_range(-12.0..12.0)),
        |&(re, im)| {
            // No other 64-QAM point is closer than the chosen one.
            let x = cx(re, im);
            let q = quantize_point(x, Modulation::Qam64);
            let chosen = (x - q).norm_sq();
            for dre in [-2.0, 0.0, 2.0] {
                for dim in [-2.0, 0.0, 2.0] {
                    let alt = cx(q.re + dre, q.im + dim);
                    if alt.re.abs() <= 7.0 && alt.im.abs() <= 7.0 {
                        prop_assert!((x - alt).norm_sq() >= chosen - 1e-9);
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn scrambled_stream_keeps_tail_zero() {
    check(
        "scrambled_stream_keeps_tail_zero",
        |rng| (bytes(rng, 1..200), rng.gen_range(1u8..128)),
        |(psdu, seed)| {
            let mcs = Mcs::from_index(7);
            let s = scrambled_bits(psdu, *seed, mcs);
            prop_assert_eq!(s.len() % mcs.data_bits_per_symbol(), 0);
            let tail_start = 16 + psdu.len() * 8;
            for i in tail_start..tail_start + 6 {
                prop_assert!(!s[i], "tail bit {} nonzero", i);
            }
            Ok(())
        },
    );
}

#[test]
fn coded_stream_length_matches_rate() {
    check(
        "coded_stream_length_matches_rate",
        |rng| (bytes(rng, 1..100), rng.gen_range(0u8..8)),
        |(psdu, idx)| {
            let mcs = Mcs::from_index(*idx);
            let s = scrambled_bits(psdu, 1, mcs);
            let c = coded_bits(&s, mcs);
            let (num, den) = mcs.rate.ratio();
            prop_assert_eq!(c.len(), s.len() * den / num);
            prop_assert_eq!(c.len() % mcs.coded_bits_per_symbol(), 0);
            Ok(())
        },
    );
}

#[test]
fn every_symbol_spectrum_respects_nulls_and_pilots() {
    check(
        "every_symbol_spectrum_respects_nulls_and_pilots",
        |rng| (bools(rng, 312..313), rng.gen_range(0usize..40)),
        |(coded, sym)| {
            let spec = symbol_spectrum(coded, Mcs::from_index(7), *sym);
            // DC and guards are zero.
            prop_assert_eq!(spec[0], bluefi_dsp::Cx::ZERO);
            for k in 29..=35usize {
                prop_assert_eq!(spec[k], bluefi_dsp::Cx::ZERO);
            }
            // Pilots are ±sqrt(42), purely real.
            for bin in [7usize, 57, 21, 43] {
                prop_assert!((spec[bin].abs() - 42f64.sqrt()).abs() < 1e-9);
                prop_assert!(spec[bin].im.abs() < 1e-12);
            }
            Ok(())
        },
    );
}

#[test]
fn planning_respects_carrier_tolerance() {
    check(
        "planning_respects_carrier_tolerance",
        |rng| rng.gen_range(2404.0..2480.0),
        |&freq_mhz| {
            if let Some(plan) = plan_channel(freq_mhz * 1e6) {
                prop_assert!(
                    (plan.tx_subcarrier - plan.subcarrier).abs() <= MAX_SNAP_SUBCARRIERS + 1e-9
                );
                prop_assert!(plan.subcarrier.abs() <= 26.0);
                prop_assert!(plan.clearance >= 0.0);
            }
            Ok(())
        },
    );
}
