//! # bluefi-sim
//!
//! The measurement substrate for reproducing the paper's evaluation:
//! a radio channel model (path loss, shadowing, AWGN, CFO, multipath,
//! interference), per-device receiver models for the three phones the paper
//! measures with, a dedicated-Bluetooth-transmitter model, a CSMA/CA
//! airtime simulator for the throughput study, and the beacon-session
//! harness the figure generators drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod devices;
pub mod experiments;
pub mod mac;

pub use channel::{Channel, ChannelConfig};
pub use devices::{BtTransmitter, DeviceModel};
pub use experiments::{run_beacon_session, RssiSample, SessionConfig, TxKind};
