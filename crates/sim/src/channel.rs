//! The over-the-air channel model standing in for the paper's office
//! environment: log-distance path loss, log-normal shadowing, AWGN, carrier
//! frequency offset, an optional two-ray multipath, and bursty co-channel
//! interference ("at least 2 other APs operating on the same channel").

use bluefi_core::rng::Rng;
use bluefi_dsp::power::{dbm_to_mw, from_db};
use bluefi_dsp::Cx;

/// Channel configuration.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Transmitter–receiver distance in meters.
    pub distance_m: f64,
    /// Path loss at the 1 m reference distance, dB (≈ 46 dB at 2.4 GHz
    /// including typical antenna inefficiencies).
    pub ref_loss_db: f64,
    /// Path-loss exponent (2.0 free space; 2.2–3.0 indoors).
    pub path_loss_exponent: f64,
    /// Per-packet log-normal shadowing sigma, dB.
    pub shadowing_sigma_db: f64,
    /// Receiver noise floor over the 20 MHz sampled band, dBm (thermal
    /// −101 dBm/20 MHz plus the device's noise figure).
    pub noise_floor_dbm: f64,
    /// Carrier frequency offset between TX and RX crystals, Hz.
    pub cfo_hz: f64,
    /// Optional second ray: (delay in samples, relative amplitude).
    pub multipath: Option<(usize, f64)>,
    /// Probability that a packet overlaps a co-channel interference burst,
    /// and the burst's power relative to the noise floor in dB.
    pub interference: Option<(f64, f64)>,
}

impl Default for ChannelConfig {
    fn default() -> ChannelConfig {
        ChannelConfig {
            distance_m: 1.5,
            ref_loss_db: 46.0,
            path_loss_exponent: 2.2,
            shadowing_sigma_db: 1.5,
            noise_floor_dbm: -91.0,
            cfo_hz: 10e3,
            multipath: None,
            interference: None,
        }
    }
}

impl ChannelConfig {
    /// Mean path loss in dB at the configured distance.
    pub fn path_loss_db(&self) -> f64 {
        self.ref_loss_db
            + 10.0 * self.path_loss_exponent * self.distance_m.max(0.05).log10()
    }

    /// An office channel at a given distance (the paper's near/close/far).
    pub fn office(distance_m: f64) -> ChannelConfig {
        ChannelConfig {
            distance_m,
            interference: Some((0.05, 15.0)),
            ..Default::default()
        }
    }
}

/// The channel itself.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: ChannelConfig,
    sample_rate_hz: f64,
}

impl Channel {
    /// Builds a channel at the 20 MHz simulation rate.
    pub fn new(cfg: ChannelConfig) -> Channel {
        Channel { cfg, sample_rate_hz: 20e6 }
    }

    /// Configuration access.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Applies the channel to one transmitted packet, returning the
    /// waveform at the receiver's antenna. Deterministic given `rng`.
    pub fn apply<R: Rng>(&self, tx: &[Cx], rng: &mut R) -> Vec<Cx> {
        let shadow_db = rng.gen_normal() * self.cfg.shadowing_sigma_db;
        let gain = from_db(-(self.cfg.path_loss_db() + shadow_db)).sqrt();
        let w = 2.0 * std::f64::consts::PI * self.cfg.cfo_hz / self.sample_rate_hz;

        // Path loss + CFO (+ optional two-ray).
        let mut rx: Vec<Cx> = tx
            .iter()
            .enumerate()
            .map(|(n, &v)| v.scale(gain).rotate(w * n as f64))
            .collect();
        if let Some((delay, amp)) = self.cfg.multipath {
            let ray_phase = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let ray = Cx::expj(ray_phase).scale(amp);
            for n in (delay..rx.len()).rev() {
                let echo = rx[n - delay] * ray;
                rx[n] += echo;
            }
        }

        // AWGN at the noise floor (complex: half the power per component).
        let sigma = (dbm_to_mw(self.cfg.noise_floor_dbm) / 2.0).sqrt();
        for v in rx.iter_mut() {
            v.re += sigma * rng.gen_normal();
            v.im += sigma * rng.gen_normal();
        }

        // Bursty co-channel interference: raise the floor for a stretch of
        // the packet.
        if let Some((prob, power_db)) = self.cfg.interference {
            if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                let burst_sigma =
                    (dbm_to_mw(self.cfg.noise_floor_dbm + power_db) / 2.0).sqrt();
                let len = rx.len() / 4;
                let start = rng.gen_range(0..rx.len() - len);
                for v in rx[start..start + len].iter_mut() {
                    v.re += burst_sigma * rng.gen_normal();
                    v.im += burst_sigma * rng.gen_normal();
                }
            }
        }
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_core::rng::{SeedableRng, StdRng};
    use bluefi_dsp::power::{mean_power, mw_to_dbm};

    fn tone(n: usize) -> Vec<Cx> {
        (0..n).map(|i| Cx::expj(0.3 * i as f64)).collect()
    }

    #[test]
    fn path_loss_scales_with_distance() {
        let a = ChannelConfig { distance_m: 1.0, ..Default::default() };
        let b = ChannelConfig { distance_m: 10.0, ..Default::default() };
        let d = b.path_loss_db() - a.path_loss_db();
        assert!((d - 22.0).abs() < 1e-9, "10x distance = 10·n dB, got {d}");
    }

    #[test]
    fn received_power_matches_budget() {
        let cfg = ChannelConfig {
            distance_m: 1.5,
            shadowing_sigma_db: 0.0,
            noise_floor_dbm: -120.0, // negligible
            cfo_hz: 0.0,
            interference: None,
            ..Default::default()
        };
        let expect_db = -cfg.path_loss_db();
        let ch = Channel::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let rx = ch.apply(&tone(20_000), &mut rng);
        let got = mw_to_dbm(mean_power(&rx)); // tx power = 0 dBm (unit tone)
        assert!((got - expect_db).abs() < 0.5, "{got} vs {expect_db}");
    }

    #[test]
    fn noise_floor_is_respected() {
        let cfg = ChannelConfig {
            noise_floor_dbm: -91.0,
            shadowing_sigma_db: 0.0,
            interference: None,
            ..Default::default()
        };
        let ch = Channel::new(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        let silence = vec![Cx::ZERO; 50_000];
        let rx = ch.apply(&silence, &mut rng);
        let got = mw_to_dbm(mean_power(&rx));
        assert!((got + 91.0).abs() < 0.3, "noise floor {got}");
    }

    #[test]
    fn shadowing_varies_per_packet() {
        let cfg = ChannelConfig { shadowing_sigma_db: 4.0, ..Default::default() };
        let ch = Channel::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let t = tone(5_000);
        let powers: Vec<f64> = (0..20)
            .map(|_| mw_to_dbm(mean_power(&ch.apply(&t, &mut rng))))
            .collect();
        let spread = powers.iter().cloned().fold(f64::MIN, f64::max)
            - powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 5.0, "shadowing spread {spread} dB");
    }

    #[test]
    fn cfo_rotates_the_carrier() {
        let cfg = ChannelConfig {
            cfo_hz: 100e3,
            shadowing_sigma_db: 0.0,
            noise_floor_dbm: -150.0,
            ref_loss_db: 0.0,
            path_loss_exponent: 0.0,
            interference: None,
            ..Default::default()
        };
        let ch = Channel::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let dc = vec![Cx::ONE; 1000];
        let rx = ch.apply(&dc, &mut rng);
        // After 200 samples (10 µs) the 100 kHz CFO advances by 2π x .
        let expect = 2.0 * std::f64::consts::PI * 100e3 / 20e6 * 200.0;
        let got = (rx[200] * rx[0].conj()).arg();
        let err = bluefi_dsp::phase::wrap_angle(got - expect);
        assert!(err.abs() < 1e-6, "{err}");
    }

    #[test]
    fn multipath_adds_an_echo() {
        let cfg = ChannelConfig {
            multipath: Some((40, 0.5)),
            shadowing_sigma_db: 0.0,
            noise_floor_dbm: -150.0,
            cfo_hz: 0.0,
            interference: None,
            ..Default::default()
        };
        let ch = Channel::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        // An impulse: the echo must appear at the delay.
        let mut x = vec![Cx::ZERO; 200];
        x[10] = Cx::ONE;
        let rx = ch.apply(&x, &mut rng);
        let main = rx[10].abs();
        let echo = rx[50].abs();
        assert!(echo > main * 0.45 && echo < main * 0.55, "echo {echo} main {main}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ch = Channel::new(ChannelConfig::office(1.5));
        let t = tone(1000);
        let a = ch.apply(&t, &mut StdRng::seed_from_u64(9));
        let b = ch.apply(&t, &mut StdRng::seed_from_u64(9));
        assert_eq!(
            a.iter().map(|v| v.re).sum::<f64>(),
            b.iter().map(|v| v.re).sum::<f64>()
        );
    }
}
