//! Experiment glue: the beacon-session harness behind Figs 5, 6, 7a, 7c
//! and 8. One session models a phone running nRF Connect / Beacon Scanner
//! for two minutes while a transmitter (a BlueFi-driven WiFi chip, a
//! dedicated Bluetooth radio, or a USRP emitting a staged waveform) sends
//! advertising packets.

use crate::channel::{Channel, ChannelConfig};
use crate::devices::{BtTransmitter, DeviceModel};
use bluefi_bt::ble::{adv_air_bits, AdvChannel, AdvPdu, AdvPduType};
use bluefi_core::pipeline::BlueFi;
use bluefi_core::stages::{waveform_at_stage, Stage};
use bluefi_dsp::Cx;
use bluefi_wifi::channels::plan_channel;
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi_wifi::ChipModel;
use bluefi_core::json::{Json, ToJson};
use bluefi_core::rng::{Rng, SeedableRng, StdRng};
use bluefi_core::telemetry::{self, Counter, SpanKind};

/// Which transmitter drives a session.
#[derive(Debug, Clone)]
pub enum TxKind {
    /// BlueFi on a COTS WiFi chip at `tx_dbm`.
    BlueFi {
        /// The WiFi chip model.
        chip: ChipModel,
        /// Transmit power, dBm.
        tx_dbm: f64,
    },
    /// A dedicated Bluetooth radio (Sec 4.4 comparison).
    Dedicated(BtTransmitter),
    /// A USRP emitting the waveform truncated at a pipeline stage
    /// (Sec 4.6), normalized to `tx_dbm`.
    UsrpStage {
        /// Pipeline stage.
        stage: Stage,
        /// Transmit power, dBm.
        tx_dbm: f64,
    },
}

/// One RSSI report, as a scanner app would log it.
#[derive(Debug, Clone, Copy)]
pub struct RssiSample {
    /// Session time, seconds.
    pub t_s: f64,
    /// Reported RSSI, dBm.
    pub rssi_dbm: f64,
}

impl ToJson for RssiSample {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t_s", Json::Num(self.t_s)),
            ("rssi_dbm", Json::Num(self.rssi_dbm)),
        ])
    }
}

/// Session parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Receiving phone.
    pub device: DeviceModel,
    /// Distance and environment.
    pub channel: ChannelConfig,
    /// Session length (the apps' default is 120 s).
    pub duration_s: f64,
    /// Reports per second actually simulated (scanner apps aggregate to
    /// ~1 Hz even when beacons run at 10 Hz).
    pub reports_hz: f64,
    /// BLE advertising channel; 38 = 2426 MHz is the well-covered one.
    pub ble_channel: AdvChannel,
}

impl SessionConfig {
    /// A 2-minute office session at `distance_m`.
    pub fn office(device: DeviceModel, distance_m: f64) -> SessionConfig {
        let mut channel = ChannelConfig::office(distance_m);
        channel.noise_floor_dbm = -101.0 + device.noise_figure_db;
        SessionConfig {
            device,
            channel,
            duration_s: 120.0,
            reports_hz: 1.0,
            ble_channel: AdvChannel::ALL[1], // channel 38 = 2426 MHz
        }
    }
}

fn beacon_pdu() -> AdvPdu {
    // The paper's payload: "30 bytes of data with 6 bytes of address".
    AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [0xB1, 0x0E, 0xF1, 0x00, 0x00, 0x01],
        adv_data: (0..30).map(|i| (i * 5 + 1) as u8).collect(),
        tx_add: false,
    }
}

/// Builds the transmitted waveform, the receiver offset (Hz, relative to
/// the capture baseband) and the transmitter's per-packet amplitude-ripple
/// sigma for a transmitter kind.
fn build_tx(kind: &TxKind, ble_channel: AdvChannel) -> (Vec<Cx>, f64, f64) {
    let bt_freq = ble_channel.freq_hz();
    let bits = adv_air_bits(&beacon_pdu(), ble_channel.index());
    match kind {
        TxKind::BlueFi { chip, tx_dbm } => {
            let bf = BlueFi::default();
            let syn = bf
                .synthesize(&bits, bt_freq, chip_seed(chip))
                // lint: allow(panic) every AdvChannel frequency is plannable by construction
                .expect("advertising channel must be plannable");
            let ppdu = chip.transmit_with_seed(&syn.psdu, syn.mcs, *tx_dbm, syn.seed);
            (
                ppdu.iq,
                syn.plan.subcarrier * SUBCARRIER_SPACING_HZ,
                chip.amplitude_ripple,
            )
        }
        TxKind::Dedicated(tx) => (tx.transmit(&bits, 0.0), 0.0, 0.0),
        TxKind::UsrpStage { stage, tx_dbm } => {
            let bf = BlueFi::default();
            // lint: allow(panic) every AdvChannel frequency is plannable by construction
            let plan = plan_channel(bt_freq).expect("plannable advertising channel");
            let wave = waveform_at_stage(&bf, &bits, plan, 1, *stage);
            // Normalize to the requested power.
            let p = bluefi_dsp::power::mean_power(&wave);
            let g = (bluefi_dsp::power::dbm_to_mw(*tx_dbm) / p).sqrt();
            (
                wave.into_iter().map(|v| v.scale(g)).collect(),
                plan.subcarrier * SUBCARRIER_SPACING_HZ,
                0.0,
            )
        }
    }
}

fn chip_seed(chip: &ChipModel) -> u8 {
    match chip.seed_policy {
        bluefi_wifi::SeedPolicy::Constant(s) => s,
        bluefi_wifi::SeedPolicy::Incrementing { next } => next,
    }
}

/// Runs a beacon session and returns the RSSI trace the scanner app would
/// show. `seed` controls all randomness (channel noise, shadowing, device
/// jitter).
pub fn run_beacon_session(kind: &TxKind, cfg: &SessionConfig, seed: u64) -> Vec<RssiSample> {
    let _sp = telemetry::span(SpanKind::SimSession);
    telemetry::incr(Counter::SimTrials);
    let (tx_wave, rx_offset_hz, ripple) = build_tx(kind, cfg.ble_channel);
    let channel = Channel::new(cfg.channel.clone());
    let rx = cfg.device.receiver(rx_offset_hz);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let n_reports = (cfg.duration_s * cfg.reports_hz).round() as usize;
    for k in 0..n_reports {
        let t = k as f64 / cfg.reports_hz;
        if !cfg.device.still_scanning(t) {
            break;
        }
        // Per-packet transmitter amplitude ripple (power-amplifier flatness
        // drift — the Realtek parts wobble more, paper Fig 5c).
        let tx_wave = if ripple > 0.0 {
            let g = 1.0 + rng.gen_range(-ripple..ripple) * 3.0;
            tx_wave.iter().map(|v| v.scale(g)).collect()
        } else {
            tx_wave.clone()
        };
        let rx_wave = channel.apply(&tx_wave, &mut rng);
        let result = rx.receive_ble_adv(&rx_wave, cfg.ble_channel.index());
        // An RSSI report requires the access address to have matched; we do
        // not additionally gate on the CRC because the simulated
        // discriminator keeps a small residual BER on BlueFi waveforms that
        // real silicon doesn't, and gating would starve the trace rather
        // than model the phones' behaviour (see EXPERIMENTS.md).
        if let Some(rssi) = result.rssi_dbm {
            out.push(RssiSample {
                t_s: t,
                rssi_dbm: cfg.device.reported_rssi(rssi, &mut rng),
            });
        }
    }
    telemetry::add(Counter::SimRssiReports, out.len() as u64);
    // RSSI is negative dBm; accumulate -rssi in centi-dB so a mean can be
    // recovered from two integer counters (sum / reports / -100).
    let neg_centidb: u64 = out
        .iter()
        .map(|s| (-s.rssi_dbm * 100.0).max(0.0).round() as u64)
        .sum();
    telemetry::add(Counter::SimRssiSumNegCentiDbm, neg_centidb);
    out
}

/// One independent beacon-session trial for the parallel batch runner.
#[derive(Debug, Clone)]
pub struct SessionTrial {
    /// Transmitter under test.
    pub kind: TxKind,
    /// Session parameters.
    pub cfg: SessionConfig,
    /// Seed for all session randomness.
    pub seed: u64,
}

/// Runs independent beacon sessions in parallel (one worker per core, or
/// `BLUEFI_THREADS`), results in trial order. Each trial carries its own
/// seed, so the output is bit-identical to calling [`run_beacon_session`]
/// sequentially per trial, for any worker count.
pub fn run_beacon_sessions(trials: &[SessionTrial]) -> Vec<Vec<RssiSample>> {
    bluefi_core::par::par_map(trials, |_, t| run_beacon_session(&t.kind, &t.cfg, t.seed))
}

/// Counts sync/decode outcomes over `n` packets — the session-level PER
/// view (used by the background-traffic experiment and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketCounts {
    /// Fully decoded packets.
    pub ok: usize,
    /// Synchronized but CRC failed.
    pub crc_error: usize,
    /// Nothing usable found.
    pub lost: usize,
}

impl ToJson for PacketCounts {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Num(self.ok as f64)),
            ("crc_error", Json::Num(self.crc_error as f64)),
            ("lost", Json::Num(self.lost as f64)),
        ])
    }
}

/// Runs `n` packets through the session's channel and classifies outcomes.
pub fn run_packet_counts(kind: &TxKind, cfg: &SessionConfig, n: usize, seed: u64) -> PacketCounts {
    let (tx_wave, rx_offset_hz, _ripple) = build_tx(kind, cfg.ble_channel);
    let channel = Channel::new(cfg.channel.clone());
    let rx = cfg.device.receiver(rx_offset_hz);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = PacketCounts::default();
    for _ in 0..n {
        let rx_wave = channel.apply(&tx_wave, &mut rng);
        let result = rx.receive_ble_adv(&rx_wave, cfg.ble_channel.index());
        match result.decode {
            Some(bluefi_bt::ble::AdvDecode::Ok(_)) => counts.ok += 1,
            Some(_) => counts.crc_error += 1,
            None => counts.lost += 1,
        }
    }
    telemetry::add(Counter::SimPacketsOk, counts.ok as u64);
    telemetry::add(Counter::SimPacketsCrcError, counts.crc_error as u64);
    telemetry::add(Counter::SimPacketsLost, counts.lost as u64);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_session(device: DeviceModel, distance: f64) -> SessionConfig {
        let mut s = SessionConfig::office(device, distance);
        s.duration_s = 12.0;
        s
    }

    #[test]
    fn bluefi_session_produces_rssi_reports() {
        let kind = TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 };
        let cfg = quick_session(DeviceModel::pixel(), 1.5);
        let trace = run_beacon_session(&kind, &cfg, 42);
        assert!(trace.len() >= 4, "only {} reports", trace.len());
        for s in &trace {
            assert!(s.rssi_dbm < 0.0 && s.rssi_dbm > -90.0, "rssi {}", s.rssi_dbm);
        }
    }

    #[test]
    fn rssi_falls_with_distance() {
        let kind = TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 };
        let mean = |d: f64| {
            let cfg = quick_session(DeviceModel::pixel(), d);
            let t = run_beacon_session(&kind, &cfg, 7);
            assert!(!t.is_empty(), "no reports at {d} m");
            t.iter().map(|s| s.rssi_dbm).sum::<f64>() / t.len() as f64
        };
        let near = mean(0.2);
        let close = mean(1.5);
        let far = mean(4.5);
        assert!(near > close + 5.0, "near {near}, close {close}");
        assert!(close > far + 5.0, "close {close}, far {far}");
    }

    #[test]
    fn s6_reports_lower_than_pixel_at_same_distance() {
        let kind = TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 };
        let mean = |dev: DeviceModel| {
            let cfg = quick_session(dev, 1.5);
            let t = run_beacon_session(&kind, &cfg, 21);
            t.iter().map(|s| s.rssi_dbm).sum::<f64>() / t.len().max(1) as f64
        };
        let pixel = mean(DeviceModel::pixel());
        let s6 = mean(DeviceModel::s6());
        assert!(pixel - s6 > 4.0, "pixel {pixel}, s6 {s6}");
    }

    #[test]
    fn iphone_trace_truncates_at_110s() {
        let kind = TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 };
        let mut cfg = quick_session(DeviceModel::iphone(), 0.2);
        cfg.duration_s = 120.0;
        cfg.reports_hz = 0.2; // keep the test fast: a report every 5 s
        let trace = run_beacon_session(&kind, &cfg, 3);
        let last = trace.last().unwrap().t_s;
        assert!(last < 110.0, "iPhone reported at {last} s");
        assert!(last > 90.0);
    }

    #[test]
    fn dedicated_bt_session_works() {
        let kind = TxKind::Dedicated(BtTransmitter::phone("Pixel"));
        let cfg = quick_session(DeviceModel::s6(), 1.5);
        let trace = run_beacon_session(&kind, &cfg, 5);
        assert!(trace.len() >= 8, "only {} reports", trace.len());
    }

    #[test]
    fn parallel_sessions_match_sequential() {
        let trials: Vec<SessionTrial> = [(0.2, 5u64), (1.5, 6), (4.5, 7), (1.5, 8)]
            .iter()
            .map(|&(d, seed)| SessionTrial {
                kind: TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 },
                cfg: quick_session(DeviceModel::pixel(), d),
                seed,
            })
            .collect();
        let par = run_beacon_sessions(&trials);
        for (t, got) in trials.iter().zip(&par) {
            let seq = run_beacon_session(&t.kind, &t.cfg, t.seed);
            assert_eq!(seq.len(), got.len());
            for (a, b) in seq.iter().zip(got) {
                assert!(a.t_s == b.t_s && a.rssi_dbm == b.rssi_dbm);
            }
        }
    }

    #[test]
    fn packet_counts_add_up() {
        let kind = TxKind::Dedicated(BtTransmitter::phone("Pixel"));
        let cfg = quick_session(DeviceModel::pixel(), 1.5);
        let c = run_packet_counts(&kind, &cfg, 20, 9);
        assert_eq!(c.ok + c.crc_error + c.lost, 20);
        assert!(c.ok >= 18, "{c:?}");
    }

    #[test]
    fn usrp_stage_sessions_degrade_with_stages() {
        // Baseline stage should decode at least as reliably as +Header.
        let cfg = quick_session(DeviceModel::pixel(), 1.5);
        let count = |stage: Stage| {
            let kind = TxKind::UsrpStage { stage, tx_dbm: 10.0 };
            run_packet_counts(&kind, &cfg, 15, 11).ok
        };
        let base = count(Stage::Baseline);
        let full = count(Stage::Header);
        assert!(base >= full, "baseline {base} vs full {full}");
        assert!(base >= 13, "baseline too lossy: {base}");
    }
}
