//! A discrete-event CSMA/CA airtime simulator for the Sec 4.5 throughput
//! study (Fig 7b/7c): one saturated WiFi flow (the iPerf3 run) sharing the
//! channel with optional BlueFi beacon transmissions, plus the small CPU
//! overhead the paper attributes to generating BlueFi packets on the
//! AR9331's single-core MIPS.
//!
//! Timing constants follow 802.11 DCF at 2.4 GHz (slot 9 µs, SIFS 10 µs,
//! DIFS 28 µs); the saturated flow sends ~1.5 ms A-MPDU bursts at an
//! effective PHY efficiency calibrated so the baseline lands at the paper's
//! ≈ 48.8 Mbps iPerf3 number.

use bluefi_core::rng::Rng;

/// DCF slot time, µs.
const SLOT_US: f64 = 9.0;
/// DIFS, µs.
const DIFS_US: f64 = 28.0;
/// SIFS + block-ACK, µs.
const SIFS_ACK_US: f64 = 10.0 + 44.0;
/// A-MPDU burst duration, µs.
const BURST_US: f64 = 1500.0;
/// Application-layer goodput carried by one burst, bits (calibrated:
/// ~48.8 Mbps baseline with DCF overheads).
const BURST_BITS: f64 = 80_500.0;

/// One contender for airtime besides the saturated flow.
#[derive(Debug, Clone)]
pub struct PeriodicLoad {
    /// Label for reports.
    pub name: &'static str,
    /// Transmission period, µs (100 ms for a 10 Hz beacon).
    pub period_us: f64,
    /// Airtime per transmission, µs.
    pub airtime_us: f64,
    /// Whether the load contends on the WiFi channel (a BlueFi packet
    /// does; a *dedicated* Bluetooth chip transmits on its own radio and
    /// only occasionally collides — modeled as a small collision
    /// probability instead).
    pub contends: bool,
    /// For non-contending (real BT) loads: probability that a given WiFi
    /// burst is corrupted by BT interference and must be retransmitted.
    pub collision_prob: f64,
    /// CPU-time overhead on the AP per transmission, µs (packet generation
    /// on the AR9331's single core steals cycles from iPerf3).
    pub cpu_us: f64,
}

impl PeriodicLoad {
    /// BlueFi beacons at `rate_hz` with `airtime_us` per packet.
    pub fn bluefi_beacon(rate_hz: f64, airtime_us: f64) -> PeriodicLoad {
        PeriodicLoad {
            name: "BlueFi",
            period_us: 1e6 / rate_hz,
            airtime_us,
            contends: true,
            collision_prob: 0.0,
            // The paper: "0% of the CPU and 1% of the virtual memory ...
            // most likely contributes to the reduction in throughput" —
            // model the netlink + queueing work as ~1.5 ms per packet.
            cpu_us: 1500.0,
        }
    }

    /// A dedicated Bluetooth transmitter on its own radio (Pixel/S6): no
    /// WiFi airtime, rare collisions.
    pub fn dedicated_bt(name: &'static str, rate_hz: f64) -> PeriodicLoad {
        PeriodicLoad {
            name,
            period_us: 1e6 / rate_hz,
            airtime_us: 400.0,
            contends: false,
            collision_prob: 0.004,
            cpu_us: 0.0,
        }
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct ThroughputRun {
    /// Per-second application throughput, Mbps.
    pub per_second_mbps: Vec<f64>,
}

impl ThroughputRun {
    /// Mean throughput, Mbps.
    pub fn mean_mbps(&self) -> f64 {
        bluefi_dsp::power::mean(&self.per_second_mbps)
    }

    /// Median throughput, Mbps.
    pub fn median_mbps(&self) -> f64 {
        bluefi_dsp::power::median(&self.per_second_mbps)
    }
}

/// Simulates `duration_s` of a saturated flow sharing the medium with
/// `load` (if any).
pub fn simulate<R: Rng>(duration_s: usize, load: Option<&PeriodicLoad>, rng: &mut R) -> ThroughputRun {
    let mut per_second = Vec::with_capacity(duration_s);
    let mut now_us = 0.0f64;
    let mut next_load_tx = load.map(|l| rng.gen_range(0.0..l.period_us)).unwrap_or(f64::MAX);
    let mut second_end = 1e6;
    let mut bits_this_second = 0.0f64;

    while per_second.len() < duration_s {
        // Pending BlueFi-style packet wins contention first when due (it is
        // queued like a normal packet; ties go either way via backoff).
        if let Some(l) = load {
            if l.contends && now_us >= next_load_tx {
                let backoff = SLOT_US * rng.gen_range(0..16) as f64;
                now_us += DIFS_US + backoff + l.airtime_us;
                // CPU overhead: the AP's core is busy generating the next
                // packet instead of pumping iPerf3 — the medium idles.
                now_us += l.cpu_us;
                next_load_tx += l.period_us;
                continue;
            }
        }
        // One saturated-flow burst.
        let backoff = SLOT_US * rng.gen_range(0..16) as f64;
        let t_burst = DIFS_US + backoff + BURST_US + SIFS_ACK_US;
        let collided = load
            .map(|l| !l.contends && rng.gen_bool(l.collision_prob))
            .unwrap_or(false);
        now_us += t_burst;
        if !collided {
            bits_this_second += BURST_BITS;
        }
        while now_us >= second_end && per_second.len() < duration_s {
            per_second.push(bits_this_second / 1e6);
            bits_this_second = 0.0;
            second_end += 1e6;
        }
    }
    ThroughputRun { per_second_mbps: per_second }
}

/// The four Fig 7b scenarios.
pub fn fig7b_scenarios<R: Rng>(duration_s: usize, rng: &mut R) -> Vec<(&'static str, ThroughputRun)> {
    let bluefi = PeriodicLoad::bluefi_beacon(10.0, 450.0);
    let pixel = PeriodicLoad::dedicated_bt("Pixel", 10.0);
    let s6 = PeriodicLoad::dedicated_bt("S6", 10.0);
    vec![
        ("Bluetooth Disabled", simulate(duration_s, None, rng)),
        ("BlueFi", simulate(duration_s, Some(&bluefi), rng)),
        ("Pixel", simulate(duration_s, Some(&pixel), rng)),
        ("S6", simulate(duration_s, Some(&s6), rng)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_core::rng::{SeedableRng, StdRng};

    #[test]
    fn baseline_lands_near_48_8_mbps() {
        let mut rng = StdRng::seed_from_u64(7);
        let run = simulate(120, None, &mut rng);
        let m = run.mean_mbps();
        assert!((m - 48.8).abs() < 1.0, "baseline {m} Mbps");
    }

    #[test]
    fn bluefi_costs_about_one_mbps() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = simulate(120, None, &mut rng).mean_mbps();
        let load = PeriodicLoad::bluefi_beacon(10.0, 450.0);
        let with = simulate(120, Some(&load), &mut rng).mean_mbps();
        let cost = base - with;
        assert!((0.4..2.0).contains(&cost), "BlueFi cost {cost} Mbps");
    }

    #[test]
    fn dedicated_bt_costs_less_than_bluefi() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = simulate(120, None, &mut rng).mean_mbps();
        let bf = PeriodicLoad::bluefi_beacon(10.0, 450.0);
        let bt = PeriodicLoad::dedicated_bt("Pixel", 10.0);
        let with_bf = simulate(120, Some(&bf), &mut rng).mean_mbps();
        let with_bt = simulate(120, Some(&bt), &mut rng).mean_mbps();
        assert!(with_bt > with_bf, "bt {with_bt} vs bluefi {with_bf}");
        assert!(base - with_bt < 0.8, "dedicated BT cost {}", base - with_bt);
    }

    #[test]
    fn per_second_series_has_right_length_and_variance() {
        let mut rng = StdRng::seed_from_u64(10);
        let run = simulate(120, None, &mut rng);
        assert_eq!(run.per_second_mbps.len(), 120);
        let sd = bluefi_dsp::power::std_dev(&run.per_second_mbps);
        assert!(sd > 0.01 && sd < 2.0, "per-second sd {sd}");
    }

    #[test]
    fn fig7b_produces_four_scenarios() {
        let mut rng = StdRng::seed_from_u64(11);
        let rows = fig7b_scenarios(30, &mut rng);
        assert_eq!(rows.len(), 4);
        for (name, run) in &rows {
            assert!(run.mean_mbps() > 40.0, "{name}: {}", run.mean_mbps());
        }
    }
}
