//! Models of the Bluetooth *receivers* the paper measures with — the
//! Google Pixel, Samsung Galaxy S6 (Edge) and iPhone — plus a dedicated
//! Bluetooth transmitter model for the Sec 4.4 comparison.
//!
//! The per-device constants encode exactly the behaviours Figs 5–8 show:
//! the S6 reports 6–10 dB lower RSSI than its peers at the same distance
//! (paper: "most likely … different sensitivity"), the iPhone's RSSI
//! fluctuates more and its power-saving kicks in after ~110 s, truncating
//! the 2-minute traces.

use bluefi_bt::gfsk::{modulate_iq, GfskParams};
use bluefi_bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi_core::rng::Rng;
use bluefi_dsp::Cx;

/// A phone acting as a Bluetooth receiver.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// Device name as the paper labels it.
    pub name: &'static str,
    /// Receiver noise figure, dB (sets effective sensitivity through the
    /// channel's noise floor).
    pub noise_figure_db: f64,
    /// Systematic RSSI reporting offset, dB (S6 ≈ −8).
    pub rssi_offset_db: f64,
    /// Random per-report RSSI jitter sigma, dB (iPhone ≈ 3).
    pub rssi_jitter_db: f64,
    /// Scan/report truncation, seconds (iPhone power-save ≈ 110 s;
    /// `f64::INFINITY` otherwise).
    pub trace_truncation_s: f64,
    /// Channel-select filter half-width, Hz (small per-chip variation).
    pub filter_halfwidth_hz: f64,
}

impl DeviceModel {
    /// Google Pixel: the best-behaved receiver in the paper.
    pub fn pixel() -> DeviceModel {
        DeviceModel {
            name: "Pixel",
            noise_figure_db: 8.0,
            rssi_offset_db: 0.0,
            rssi_jitter_db: 1.0,
            trace_truncation_s: f64::INFINITY,
            filter_halfwidth_hz: 650e3,
        }
    }

    /// Samsung Galaxy S6 Edge: reports 6–10 dB lower RSSI.
    pub fn s6() -> DeviceModel {
        DeviceModel {
            name: "S6",
            noise_figure_db: 11.0,
            rssi_offset_db: -8.0,
            rssi_jitter_db: 1.8,
            trace_truncation_s: f64::INFINITY,
            filter_halfwidth_hz: 600e3,
        }
    }

    /// iPhone: fluctuating RSSI, ~110 s power-save truncation.
    pub fn iphone() -> DeviceModel {
        DeviceModel {
            name: "iPhone",
            noise_figure_db: 9.0,
            rssi_offset_db: -1.0,
            rssi_jitter_db: 3.0,
            trace_truncation_s: 110.0,
            filter_halfwidth_hz: 650e3,
        }
    }

    /// The three phones of the evaluation.
    pub fn all_phones() -> [DeviceModel; 3] {
        [DeviceModel::pixel(), DeviceModel::s6(), DeviceModel::iphone()]
    }

    /// Builds this device's GFSK receiver tuned `offset_hz` from the
    /// capture's baseband center.
    pub fn receiver(&self, offset_hz: f64) -> GfskReceiver {
        GfskReceiver::new(ReceiverConfig {
            channel_offset_hz: offset_hz,
            filter_halfwidth_hz: self.filter_halfwidth_hz,
            ..Default::default()
        })
    }

    /// The RSSI value the phone's API would report for a measured in-band
    /// power.
    pub fn reported_rssi<R: Rng>(&self, measured_dbm: f64, rng: &mut R) -> f64 {
        let jitter = if self.rssi_jitter_db > 0.0 {
            // Uniform approximation of report jitter: phones quantize and
            // average internally; a bounded distribution matches traces
            // better than a Gaussian tail.
            rng.gen_range(-self.rssi_jitter_db..self.rssi_jitter_db)
        } else {
            0.0
        };
        // Phones quantize RSSI to 1 dB.
        (measured_dbm + self.rssi_offset_db + jitter).round()
    }

    /// Whether the device is still scanning at time `t` of a session
    /// (iPhone stops at ~110 s).
    pub fn still_scanning(&self, t_s: f64) -> bool {
        t_s < self.trace_truncation_s
    }
}

/// A dedicated Bluetooth transmitter (a phone running Beacon Simulator, or
/// the imaginary "real BT chip" of Sec 4.4): emits a clean GFSK waveform at
/// `tx_dbm`.
#[derive(Debug, Clone)]
pub struct BtTransmitter {
    /// Label ("Pixel", "S6").
    pub name: &'static str,
    /// Transmit power at the antenna, dBm ("high" ≈ 9 dBm on Android).
    pub tx_dbm: f64,
    /// Modulation parameters.
    pub gfsk: GfskParams,
}

impl BtTransmitter {
    /// A phone with TX power set to "high" (≈ 9 dBm class 1.5).
    pub fn phone(name: &'static str) -> BtTransmitter {
        BtTransmitter { name, tx_dbm: 9.0, gfsk: GfskParams::default() }
    }

    /// Modulates packet bits at `offset_hz` from baseband center, scaled to
    /// the configured power (1.0² sample power ≡ 1 mW).
    pub fn transmit(&self, bits: &[bool], offset_hz: f64) -> Vec<Cx> {
        let iq = modulate_iq(bits, &self.gfsk, offset_hz);
        let g = bluefi_dsp::power::dbm_to_mw(self.tx_dbm).sqrt();
        iq.into_iter().map(|v| v.scale(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_core::rng::{SeedableRng, StdRng};

    #[test]
    fn s6_reports_lower_rssi() {
        let mut rng = StdRng::seed_from_u64(1);
        let pixel: f64 = (0..100)
            .map(|_| DeviceModel::pixel().reported_rssi(-60.0, &mut rng))
            .sum::<f64>()
            / 100.0;
        let s6: f64 = (0..100)
            .map(|_| DeviceModel::s6().reported_rssi(-60.0, &mut rng))
            .sum::<f64>()
            / 100.0;
        let d = pixel - s6;
        assert!((6.0..10.0).contains(&d), "offset {d}");
    }

    #[test]
    fn iphone_fluctuates_more_and_truncates() {
        let mut rng = StdRng::seed_from_u64(2);
        let spread = |d: &DeviceModel, rng: &mut StdRng| {
            let v: Vec<f64> = (0..200).map(|_| d.reported_rssi(-60.0, rng)).collect();
            bluefi_dsp::power::std_dev(&v)
        };
        let iphone = spread(&DeviceModel::iphone(), &mut rng);
        let pixel = spread(&DeviceModel::pixel(), &mut rng);
        assert!(iphone > pixel * 1.5, "iphone {iphone}, pixel {pixel}");
        assert!(DeviceModel::iphone().still_scanning(100.0));
        assert!(!DeviceModel::iphone().still_scanning(115.0));
        assert!(DeviceModel::pixel().still_scanning(119.0));
    }

    #[test]
    fn rssi_is_quantized_to_1db() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = DeviceModel::pixel().reported_rssi(-61.37, &mut rng);
        assert_eq!(r, r.round());
    }

    #[test]
    fn bt_transmitter_power() {
        let tx = BtTransmitter::phone("Pixel");
        let bits = vec![true; 64];
        let iq = tx.transmit(&bits, 0.0);
        let p = bluefi_dsp::power::mw_to_dbm(bluefi_dsp::power::mean_power(&iq));
        assert!((p - 9.0).abs() < 0.1, "tx power {p}");
    }

    #[test]
    fn device_receivers_differ_in_filters() {
        let a = DeviceModel::pixel().receiver(0.0);
        let b = DeviceModel::s6().receiver(0.0);
        assert!(
            (a.config().filter_halfwidth_hz - b.config().filter_halfwidth_hz).abs() > 1.0
        );
    }
}
