//! Property tests for the radio channel model: the deterministic parts of
//! [`bluefi_sim::channel::Channel::apply`] must be *exactly* what the
//! config promises, and CFO must be a pure rotation.

use bluefi_core::check::{check, vec_with};
use bluefi_core::prop_assert;
use bluefi_core::rng::{Rng, SeedableRng, StdRng};
use bluefi_dsp::power::from_db;
use bluefi_dsp::{cx, Cx};
use bluefi_sim::channel::{Channel, ChannelConfig};

fn samples(rng: &mut StdRng, len: std::ops::Range<usize>) -> Vec<Cx> {
    vec_with(rng, len, |r| cx(r.gen_range(-2.0..2.0), r.gen_range(-2.0..2.0)))
}

/// A config with every random impairment off; only path loss remains.
fn deterministic_config(distance_m: f64) -> ChannelConfig {
    ChannelConfig {
        distance_m,
        shadowing_sigma_db: 0.0,
        noise_floor_dbm: f64::NEG_INFINITY,
        cfo_hz: 0.0,
        multipath: None,
        interference: None,
        ..ChannelConfig::default()
    }
}

#[test]
fn cfo_rotation_preserves_per_sample_magnitude() {
    check(
        "cfo_rotation_preserves_per_sample_magnitude",
        |rng| {
            let cfg = ChannelConfig {
                cfo_hz: rng.gen_range(-100e3..100e3),
                ..deterministic_config(rng.gen_range(0.2..20.0))
            };
            (cfg, samples(rng, 1..300), rng.next_u64())
        },
        |(cfg, tx, seed)| {
            let gain = from_db(-cfg.path_loss_db()).sqrt();
            let rx = Channel::new(cfg.clone()).apply(tx, &mut StdRng::seed_from_u64(*seed));
            prop_assert!(rx.len() == tx.len(), "length changed: {} -> {}", tx.len(), rx.len());
            for (n, (a, b)) in tx.iter().zip(&rx).enumerate() {
                let want = a.abs() * gain;
                let got = b.abs();
                prop_assert!(
                    (want - got).abs() <= 1e-9 * want.max(1e-12),
                    "sample {n}: |rx| {got} vs |tx|·gain {want}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn zero_impairment_channel_is_exactly_scaled_identity() {
    check(
        "zero_impairment_channel_is_exactly_scaled_identity",
        |rng| (deterministic_config(1.0), samples(rng, 1..300), rng.next_u64()),
        |(cfg, tx, seed)| {
            // With shadowing sigma 0, −∞ noise floor, zero CFO and no
            // multipath/interference, every arithmetic step is exact:
            // 0·normal = 0, rotate(0) = ×(1, 0), AWGN sigma = 0. The
            // output must equal the input times the known path-loss
            // scalar, to the last bit of float equality.
            let gain = from_db(-cfg.path_loss_db()).sqrt();
            let rx = Channel::new(cfg.clone()).apply(tx, &mut StdRng::seed_from_u64(*seed));
            prop_assert!(rx.len() == tx.len(), "length changed");
            for (n, (a, b)) in tx.iter().zip(&rx).enumerate() {
                let want = a.scale(gain);
                prop_assert!(
                    want.re == b.re && want.im == b.im,
                    "sample {n}: {b:?} != {want:?} (gain {gain})"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn zero_amplitude_second_ray_is_identity() {
    check(
        "zero_amplitude_second_ray_is_identity",
        |rng| {
            let cfg = ChannelConfig {
                multipath: Some((rng.gen_range(1usize..16), 0.0)),
                ..deterministic_config(rng.gen_range(0.5..5.0))
            };
            (cfg, samples(rng, 20..300), rng.next_u64())
        },
        |(cfg, tx, seed)| {
            // A second ray with amplitude 0 contributes ±0.0 to every
            // sample; adding that never changes the value under float
            // equality, so the output matches the no-multipath channel.
            let gain = from_db(-cfg.path_loss_db()).sqrt();
            let rx = Channel::new(cfg.clone()).apply(tx, &mut StdRng::seed_from_u64(*seed));
            for (n, (a, b)) in tx.iter().zip(&rx).enumerate() {
                let want = a.scale(gain);
                prop_assert!(
                    want.re == b.re && want.im == b.im,
                    "sample {n}: {b:?} != {want:?}"
                );
            }
            Ok(())
        },
    );
}
